#!/usr/bin/env python3
"""Quickstart: the declarative experiment API on one sEMG pattern.

Runs the paper's core comparison on a single 20 s synthetic recording:

1. generate a pattern from the 190-pattern dataset;
2. describe both schemes as :class:`repro.ExperimentSpec` trees and run
   them through the :class:`repro.Experiment` facade (fixed-threshold ATC
   at 0.3 V vs D-ATC);
3. report correlation and symbol cost for both schemes;
4. sweep the ATC threshold with the one generic ``sweep()`` (no bespoke
   sweep function needed), cached in an on-disk result store so a second
   run of this script re-evaluates nothing;
5. re-encode the same recording through the *streaming* API in 100 ms
   chunks and show the output is bit-identical (see docs/STREAMING.md).

Usage::

    python examples/quickstart.py [pattern_id]
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import (
    ATCConfig,
    DATCEncoder,
    EncoderSpec,
    Experiment,
    ExperimentSpec,
    ResultStore,
    default_dataset,
)


def main() -> None:
    pattern_id = int(sys.argv[1]) if len(sys.argv) > 1 else 22
    dataset = default_dataset()
    pattern = dataset.pattern(pattern_id)

    print(f"pattern {pattern_id}: subject {pattern.subject.subject_id}, "
          f"{pattern.n_samples} samples over {pattern.duration_s:.0f} s, "
          f"amplified sEMG gain {pattern.subject.model.gain_v:.2f} V @ MVC")

    # One spec per scheme: a frozen, serialisable, content-addressed
    # description of the whole encode -> decode -> score chain.
    atc_spec = ExperimentSpec(encoder=EncoderSpec("atc", ATCConfig(vth=0.3)))
    datc_spec = ExperimentSpec()  # D-ATC at the paper's operating point
    print(f"\nspec keys: ATC {atc_spec.key()[:12]}..., "
          f"D-ATC {datc_spec.key()[:12]}... "
          f"(stable across processes and Python versions)")

    atc = Experiment(atc_spec).run_one(pattern)
    datc = Experiment(datc_spec).run_one(pattern)

    print(f"\n{'scheme':<14}{'events':>8}{'symbols':>9}{'correlation':>13}")
    print("-" * 44)
    print(f"{'ATC (0.3 V)':<14}{atc.n_events:>8d}{atc.n_symbols:>9d}"
          f"{atc.correlation_pct:>12.2f}%")
    print(f"{'D-ATC':<14}{datc.n_events:>8d}{datc.n_symbols:>9d}"
          f"{datc.correlation_pct:>12.2f}%")

    advantage = datc.correlation_pct - atc.correlation_pct
    print(f"\nD-ATC reconstructs the muscle-force envelope {advantage:+.2f}% "
          f"better than the fixed threshold,")
    print(f"spending {datc.n_events / max(atc.n_events, 1):.2f}x the events "
          f"— no per-subject threshold trimming required.")

    # Show the dynamic threshold at work: the mean level it selected.
    levels = datc.trace.frame_levels
    print(f"\nDTC threshold levels over the recording: "
          f"min {levels.min()}, mean {levels.mean():.1f}, max {levels.max()} "
          f"(DAC range 1-15, 62.5 mV/step)")

    # The generic sweep: substitute values into the spec tree.  With a
    # ResultStore attached every operating point is memoised on disk —
    # run this script twice and the sweep reports pure cache hits.
    store = ResultStore(Path(tempfile.gettempdir()) / "repro-quickstart-cache")
    sweeper = Experiment(atc_spec, store=store)
    points = sweeper.sweep(pattern, "encoder.config.vth",
                           [0.1, 0.2, 0.3, 0.4, 0.5])
    print("\nATC threshold sweep (generic spec-substitution sweep):")
    for point in points:
        print(f"  vth {point.parameter:.1f} V: {point.correlation_pct:6.2f}% "
              f"({point.n_events} events)")
    stats = store.stats()
    print(f"  store: {stats['hits']} hits, {stats['misses']} misses "
          f"(re-run me: the sweep becomes pure hits)")

    # Streaming API: same encoder, fed 100 ms at a time (a live device).
    encoder = DATCEncoder(pattern.fs)
    chunk = int(0.1 * pattern.fs)
    live_events = sum(
        encoder.push(pattern.emg[i:i + chunk]).n_events
        for i in range(0, pattern.n_samples, chunk)
    )
    encoder.finalize()
    identical = np.array_equal(encoder.stream.times, datc.stream.times)
    print(f"\nstreaming in 100 ms chunks: {live_events} events pushed "
          f"incrementally, bit-identical to one-shot: {identical}")


if __name__ == "__main__":
    main()
