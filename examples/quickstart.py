#!/usr/bin/env python3
"""Quickstart: encode one sEMG pattern with ATC and D-ATC and compare.

Runs the paper's core comparison on a single 20 s synthetic recording:

1. generate a pattern from the 190-pattern dataset;
2. encode it with fixed-threshold ATC (0.3 V) and with D-ATC;
3. reconstruct the muscle-force envelope at the receiver;
4. report correlation and symbol cost for both schemes;
5. re-encode the same recording through the *streaming* API in 100 ms
   chunks and show the output is bit-identical (see docs/STREAMING.md).

Usage::

    python examples/quickstart.py [pattern_id]
"""

import sys

import numpy as np

from repro import ATCConfig, DATCEncoder, default_dataset, run_atc, run_datc


def main() -> None:
    pattern_id = int(sys.argv[1]) if len(sys.argv) > 1 else 22
    dataset = default_dataset()
    pattern = dataset.pattern(pattern_id)

    print(f"pattern {pattern_id}: subject {pattern.subject.subject_id}, "
          f"{pattern.n_samples} samples over {pattern.duration_s:.0f} s, "
          f"amplified sEMG gain {pattern.subject.model.gain_v:.2f} V @ MVC")

    atc = run_atc(pattern, ATCConfig(vth=0.3))
    datc = run_datc(pattern)

    print(f"\n{'scheme':<14}{'events':>8}{'symbols':>9}{'correlation':>13}")
    print("-" * 44)
    print(f"{'ATC (0.3 V)':<14}{atc.n_events:>8d}{atc.n_symbols:>9d}"
          f"{atc.correlation_pct:>12.2f}%")
    print(f"{'D-ATC':<14}{datc.n_events:>8d}{datc.n_symbols:>9d}"
          f"{datc.correlation_pct:>12.2f}%")

    advantage = datc.correlation_pct - atc.correlation_pct
    print(f"\nD-ATC reconstructs the muscle-force envelope {advantage:+.2f}% "
          f"better than the fixed threshold,")
    print(f"spending {datc.n_events / max(atc.n_events, 1):.2f}x the events "
          f"— no per-subject threshold trimming required.")

    # Show the dynamic threshold at work: the mean level it selected.
    levels = datc.trace.frame_levels
    print(f"\nDTC threshold levels over the recording: "
          f"min {levels.min()}, mean {levels.mean():.1f}, max {levels.max()} "
          f"(DAC range 1-15, 62.5 mV/step)")

    # Streaming API: same encoder, fed 100 ms at a time (a live device).
    encoder = DATCEncoder(pattern.fs)
    chunk = int(0.1 * pattern.fs)
    live_events = sum(
        encoder.push(pattern.emg[i:i + chunk]).n_events
        for i in range(0, pattern.n_samples, chunk)
    )
    encoder.finalize()
    identical = np.array_equal(encoder.stream.times, datc.stream.times)
    print(f"\nstreaming in 100 ms chunks: {live_events} events pushed "
          f"incrementally, bit-identical to one-shot: {identical}")


if __name__ == "__main__":
    main()
