#!/usr/bin/env python3
"""Robustness study: artifacts, pulse loss, and comparator non-idealities.

Quantifies the paper's Sec. III-B claim — "even if we add some pulses due
to the artifacts we believe that the signal is still received with a good
correlation, as artifacts effect is similar to pulse missing" — plus the
front-end imperfections the DTC must tolerate (comparator hysteresis and
noise, In_reg metastability).

Usage::

    python examples/robustness_study.py
"""

import numpy as np

from repro import (
    DATCConfig,
    Experiment,
    ExperimentSpec,
    datc_encode,
    default_dataset,
)
from repro.analog.comparator import Comparator
from repro.rx.correlation import aligned_correlation_percent
from repro.rx.reconstruction import reconstruct_hybrid
from repro.signals import add_motion_artifacts, add_powerline, add_spike_artifacts


def correlation_for(emg, pattern, comparator=None, rng=None) -> float:
    stream, _ = datc_encode(emg, pattern.fs, DATCConfig(), comparator=comparator, rng=rng)
    recon = reconstruct_hybrid(stream)
    return aligned_correlation_percent(recon, pattern.ground_truth_envelope())


def main() -> None:
    pattern = default_dataset().pattern(22)
    rng = np.random.default_rng(99)
    base = correlation_for(pattern.emg, pattern)
    print(f"clean recording: D-ATC correlation {base:.2f}%\n")

    print("signal artifacts (TX side):")
    spiky = add_spike_artifacts(pattern.emg, pattern.fs, rng, rate_hz=1.0, amplitude_v=0.5)
    motion = add_motion_artifacts(pattern.emg, pattern.fs, rng, n_bursts=4, amplitude_v=0.25)
    mains = add_powerline(pattern.emg, pattern.fs, amplitude_v=0.03)
    for name, emg in (("spike artifacts (1/s)", spiky),
                      ("motion artifacts (4 bursts)", motion),
                      ("50 Hz powerline (30 mV)", mains)):
        corr = correlation_for(emg, pattern)
        print(f"  {name:<30} {corr:6.2f}%  (delta {corr - base:+.2f})")

    print("\npulse loss (channel erasures):")
    experiment = Experiment(ExperimentSpec())  # the paper's D-ATC operating point
    for point in experiment.sweep(pattern, "stream.drop_prob",
                                  (0.0, 0.1, 0.2, 0.3, 0.5)):
        print(f"  loss {point.parameter:4.0%}: {point.correlation_pct:6.2f}% "
              f"({point.n_events} events survive)")

    print("\ncomparator non-idealities:")
    for name, comp in (
        ("ideal", None),
        ("hysteresis 30 mV", Comparator(hysteresis_v=0.03)),
        ("input noise 10 mV rms", Comparator(noise_rms_v=0.01)),
        ("both", Comparator(hysteresis_v=0.03, noise_rms_v=0.01)),
    ):
        corr = correlation_for(pattern.emg, pattern, comparator=comp,
                               rng=np.random.default_rng(5))
        print(f"  {name:<24} {corr:6.2f}%")

    print("\nConclusion: the event/level representation degrades gracefully "
          "under every\nperturbation — artifacts behave like pulse "
          "insertion/loss, as the paper argues.")


if __name__ == "__main__":
    main()
