#!/usr/bin/env python3
"""Regenerate Table I and explore the DTC's hardware design space.

Prints the paper-vs-model synthesis table, the area breakdown per
architectural block, power with *measured* switching activity (a real
pattern replayed through the cycle-accurate RTL), and the DAC-resolution /
supply-voltage scaling of the design.

Usage::

    python examples/hardware_report.py
"""

from repro import DATCConfig, datc_encode, default_dataset
from repro.digital.dtc_rtl import DTCRtl
from repro.hardware import (
    build_dtc_netlist,
    estimate_power,
    generate_table1,
    hv180_library,
    synthesize,
)
from repro.hardware.power import activity_from_rtl


def main() -> None:
    table = generate_table1()
    print(table.format_table())

    print("\narea by architectural block:")
    syn = synthesize(build_dtc_netlist())
    for block, area in sorted(syn.area_by_block().items(), key=lambda kv: -kv[1]):
        share = 100.0 * area / syn.cell_area_um2
        print(f"  {block:<18} {area:8.0f} um^2  ({share:4.1f}%)")

    # Power with measured activity: replay a real pattern's comparator
    # stream through the RTL (the paper's post-synthesis simulation flow).
    pattern = default_dataset().pattern(22)
    _, trace = datc_encode(pattern.emg, pattern.fs, DATCConfig(quantized=True))
    activity = activity_from_rtl(DTCRtl(), trace.d_in)
    measured = estimate_power(build_dtc_netlist(), hv180_library(), activity=activity)
    print(f"\npower with measured activity (pattern 22): "
          f"{measured.dynamic_nw:.1f} nW dynamic "
          f"(clock {measured.clock_nw:.1f}, sequential {measured.sequential_nw:.1f}, "
          f"combinational {measured.combinational_nw:.1f}), "
          f"leakage {measured.leakage_nw:.2f} nW")

    print("\nDAC-resolution scaling (cells / area / power):")
    for bits in (2, 3, 4, 5, 6):
        n_levels = 1 << bits
        t1 = generate_table1(
            DATCConfig(dac_bits=bits, n_levels=n_levels,
                       interval_step=0.48 / n_levels, initial_level=n_levels // 2)
        )
        marker = "  <- paper" if bits == 4 else ""
        print(f"  {bits} bits: {t1.n_cells:4d} cells, {t1.core_area_um2:7.0f} um^2, "
              f"{t1.dynamic_power_nw:5.1f} nW{marker}")

    print("\nsupply-voltage scaling (dynamic power ~ VDD^2):")
    nl = build_dtc_netlist()
    for vdd in (1.8, 1.2, 0.9):
        report = estimate_power(nl, hv180_library().scaled(vdd))
        print(f"  {vdd:.1f} V: {report.dynamic_nw:5.1f} nW dynamic, "
              f"{report.leakage_nw:.2f} nW leakage")


if __name__ == "__main__":
    main()
