#!/usr/bin/env python3
"""Hand-exoskeleton control from D-ATC events (the paper's motivation).

The introduction cites sEMG-driven hand-exoskeleton control (ref. [8]:
"Continuous Position Control of 1 DOF Manipulator Using EMG Signals") as
the driving application: bioreceptor data used directly for actuation.
This example closes that loop end to end:

  muscle force -> synthetic sEMG -> D-ATC transmitter -> IR-UWB link
  -> receiver reconstruction -> proportional position controller
  -> 1-DOF actuator model -> grip aperture

and reports how faithfully the actuated aperture tracks the subject's
intended grip, including with a lossy radio.  The transmitter runs the
*streaming* encoder (repro.core.encoders.DATCEncoder), consuming the
sEMG in 100 ms chunks exactly as a wearable front end would — the
events are available to the radio with frame-level latency instead of
after the whole recording.

Usage::

    python examples/exoskeleton_control.py
"""

import numpy as np

from repro import DATCConfig, DATCEncoder
from repro.rx.correlation import correlation_percent, resample_to_length
from repro.rx.reconstruction import reconstruct_hybrid
from repro.signals import EMGModel, mvc_grip_protocol, synthesize_emg
from repro.uwb.channel import UWBChannel
from repro.uwb.link import LinkConfig, simulate_link


class OneDofActuator:
    """A first-order 1-DOF exoskeleton joint: commanded vs actual aperture.

    ``tau_s`` models the mechanical lag of the actuator; the proportional
    controller simply commands the normalised force estimate.
    """

    def __init__(self, tau_s: float = 0.15, fs: float = 100.0):
        self.alpha = 1.0 - np.exp(-1.0 / (tau_s * fs))
        self.fs = fs

    def drive(self, command: np.ndarray) -> np.ndarray:
        """Track the command with first-order dynamics."""
        position = np.empty_like(command)
        state = 0.0
        for i, c in enumerate(np.clip(command, 0.0, 1.0)):
            state += self.alpha * (c - state)
            position[i] = state
        return position


def run_trial(erasure_prob: float, rng: np.random.Generator) -> None:
    fs = 2500.0
    duration = 20.0
    force = mvc_grip_protocol(duration, fs)  # the subject's intent
    emg = synthesize_emg(force, fs, EMGModel(gain_v=0.45), rng)

    # Transmit side: the always-on streaming encoder eats 100 ms chunks
    # (bit-identical to one-shot datc_encode, but event-by-event live).
    encoder = DATCEncoder(fs, DATCConfig())
    chunk = int(0.1 * fs)
    for start in range(0, emg.size, chunk):
        encoder.push(emg[start:start + chunk])
    encoder.finalize()
    stream = encoder.stream
    channel = UWBChannel(erasure_prob=erasure_prob)
    link = simulate_link(stream, LinkConfig(), channel=channel,
                         rng=rng if erasure_prob else None)

    # Receive side: envelope estimate -> normalised control command.
    fs_ctrl = 100.0
    envelope = reconstruct_hybrid(link.rx_stream, fs_out=fs_ctrl)
    peak = envelope.max()
    command = envelope / peak if peak > 0 else envelope

    # Actuate and score against the intended grip profile.
    actuator = OneDofActuator(fs=fs_ctrl)
    aperture = actuator.drive(command)
    intent = resample_to_length(force, aperture.size)
    tracking = correlation_percent(aperture, intent)
    rmse = float(np.sqrt(np.mean((aperture - intent) ** 2)))

    print(f"  pulse loss {erasure_prob:4.0%}: "
          f"{link.rx_stream.n_events:4d} events delivered, "
          f"tracking correlation {tracking:6.2f}%, RMSE {rmse:.3f} (of MVC)")


def main() -> None:
    print("1-DOF hand-exoskeleton control via D-ATC / IR-UWB")
    print("grip intent: 70% MVC contractions decreasing to rest over 20 s\n")
    rng = np.random.default_rng(2015)
    for erasure in (0.0, 0.1, 0.3):
        run_trial(erasure, rng)
    print("\nEven with 30% of radiated pulses lost, the reconstructed grip "
          "command remains usable —\nthe event representation degrades "
          "gracefully (paper Sec. III-B artifact argument).")


if __name__ == "__main__":
    main()
