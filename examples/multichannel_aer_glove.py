#!/usr/bin/env python3
"""Multi-channel AER transmission: the sensing-glove scenario (ref. [12]).

The paper's system context is multi-channel: refs. [9] and [12] transmit
several ATC channels over one IR-UWB link with Address-Event
Representation (AER).  This example runs four forearm electrode channels —
each with its own D-ATC encoder — through a shared AER link and recovers
every channel's force envelope at the receiver:

  4 x sEMG -> 4 x D-ATC -> AER merge -> one IR-UWB link -> AER demux
  -> 4 x envelope reconstruction

Usage::

    python examples/multichannel_aer_glove.py
"""

import numpy as np

from repro import DATCConfig, datc_encode
from repro.rx.correlation import aligned_correlation_percent
from repro.rx.reconstruction import reconstruct_hybrid
from repro.signals import (
    EMGModel,
    arv_envelope,
    mvc_grip_protocol,
    sinusoidal_profile,
    synthesize_emg,
    trapezoid_profile,
    rest_profile,
    concatenate_profiles,
)
from repro.uwb.aer import AERConfig, aer_decode, aer_encode
from repro.uwb.link import LinkConfig, simulate_link


def make_channels(fs: float, duration: float, rng: np.random.Generator):
    """Four channels with distinct activation patterns (different muscles
    engage at different phases of a grasp)."""
    profiles = [
        mvc_grip_protocol(duration, fs),
        sinusoidal_profile(duration, fs, mean=0.35, amplitude=0.25, frequency_hz=0.3),
        concatenate_profiles(
            rest_profile(duration / 4, fs),
            trapezoid_profile(duration / 8, duration / 4, duration / 8, fs, 0.6),
            rest_profile(duration / 4, fs),
        ),
        mvc_grip_protocol(duration, fs, max_level=0.4, n_contractions=3),
    ]
    gains = (0.5, 0.3, 0.7, 0.2)  # per-site amplitude spread
    channels = []
    for profile, gain in zip(profiles, gains):
        profile = profile[: int(duration * fs)]
        if profile.size < int(duration * fs):
            profile = np.concatenate(
                [profile, np.zeros(int(duration * fs) - profile.size)]
            )
        emg = synthesize_emg(profile, fs, EMGModel(gain_v=gain), rng)
        channels.append((profile, emg))
    return channels


def main() -> None:
    fs, duration = 2500.0, 20.0
    rng = np.random.default_rng(7)
    channels = make_channels(fs, duration, rng)

    config = DATCConfig()
    streams = [datc_encode(emg, fs, config)[0] for _, emg in channels]

    aer = AERConfig(n_channels=len(streams), level_bits=config.dac_bits)
    # Arbiter serialisation: each event's burst occupies
    # symbols_per_event x 2 us on the link, so colliding events are queued.
    merged = aer_encode(streams, aer, min_spacing_s=aer.symbols_per_event * 2e-6)
    print(f"AER link: {aer.n_channels} channels, "
          f"{aer.symbols_per_event} symbols/event "
          f"(1 marker + {aer.address_bits} address + {aer.level_bits} level)")
    print(f"merged stream: {merged.n_events} events, "
          f"{merged.n_symbols} symbols over {duration:.0f} s\n")

    link = simulate_link(merged, LinkConfig(symbol_period_s=2e-6))
    decoded = aer_decode(link.rx_stream, aer)

    print(f"{'channel':>8}{'events':>9}{'corr %':>9}")
    for ch, ((profile, emg), stream) in enumerate(zip(channels, decoded)):
        recon = reconstruct_hybrid(stream, vref=config.vref, dac_bits=config.dac_bits)
        reference = arv_envelope(emg, fs)
        corr = aligned_correlation_percent(recon, reference)
        print(f"{ch:>8d}{stream.n_events:>9d}{corr:>9.2f}")

    print("\nEvery channel's force envelope is recovered from the single "
          "shared link; addresses\nkeep the channels separable exactly as "
          "in the quasi-digital tactile glove of ref. [12].")


if __name__ == "__main__":
    main()
