#!/usr/bin/env python3
"""IR-UWB pulse design and FCC mask compliance.

Explores the Gaussian-derivative pulse family used by IR-UWB transmitters
and verifies the -41.3 dBm/MHz FCC constraint the paper's radio must meet
(refs. [4], [11]).  Event-driven transmission keeps the pulse repetition
frequency at the event rate (<= 2 kHz x 5 symbols here), which is what
makes the spectral margin enormous compared to a continuously streaming
radio.

Usage::

    python examples/uwb_pulse_design.py
"""

from repro import DATCConfig, datc_encode, default_dataset
from repro.uwb.pulse import check_fcc_compliance, pulse_waveform


def main() -> None:
    print("Gaussian-derivative UWB pulses (tau = 51 ps):")
    print(f"{'order':>6} {'peak freq GHz':>14} {'FCC ok @2kHz':>13} {'margin dB':>10}")
    for order in (1, 2, 3, 5, 7):
        shape = pulse_waveform(order=order, tau_s=51e-12)
        ok, margin = check_fcc_compliance(shape, prf_hz=2000.0, peak_amplitude_v=0.5)
        print(f"{order:>6d} {shape.peak_frequency_hz() / 1e9:>14.2f} "
              f"{'yes' if ok else 'NO':>13} {margin:>10.1f}")

    # The actual worst-case PRF of a D-ATC transmitter: the measured event
    # rate of the busiest pattern times 5 symbols per event.
    dataset = default_dataset()
    worst_rate = 0.0
    for pid in range(0, 24):
        p = dataset.pattern(pid)
        stream, _ = datc_encode(p.emg, p.fs, DATCConfig())
        worst_rate = max(worst_rate, stream.mean_rate_hz)
    prf = worst_rate * 5
    shape = pulse_waveform(order=5, tau_s=51e-12)
    ok, margin = check_fcc_compliance(shape, prf_hz=prf, peak_amplitude_v=0.5)
    print(f"\nbusiest D-ATC pattern (first 24): {worst_rate:.0f} events/s "
          f"-> PRF {prf:.0f} pulses/s")
    print(f"5th-derivative pulse at that PRF: "
          f"{'compliant' if ok else 'VIOLATION'} with {margin:.1f} dB margin")

    # How hard can the link be pushed before the mask bites?
    prf_limit = prf
    while check_fcc_compliance(shape, prf_hz=prf_limit * 10, peak_amplitude_v=0.5)[0]:
        prf_limit *= 10
    print(f"the mask only becomes binding beyond ~{prf_limit * 10:.0e} pulses/s — "
          f"duty-cycled event radio operates orders of magnitude below it")


if __name__ == "__main__":
    main()
