"""Packaging for the D-ATC (DATE 2015) reproduction toolkit.

The default install is pure numpy.  The ``compiled`` extra pulls in
numba for the opt-in jitted kernel tier (``repro.kernels``, see
docs/KERNELS.md)::

    pip install -e .             # numpy-only reference paths
    pip install -e .[compiled]   # + numba-jitted kernels
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    description=(
        "Reproduction of the DATE 2015 dynamic average threshold "
        "crossing (D-ATC) sEMG event-encoding system"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        # The compiled kernel tier degrades gracefully when absent:
        # dispatch warns once and serves the numpy reference kernels.
        "compiled": ["numba>=0.57"],
        "dev": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
