"""Shared fixtures for the repro test suite.

Most tests run on a *small* dataset (8 patterns of 4 s at the paper's
2500 Hz) so the full suite stays fast; the benchmark harness is where the
full 190 x 20 s dataset is exercised.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.signals.dataset import DatasetSpec


@pytest.fixture(autouse=True)
def _bench_records_to_tmp(tmp_path, monkeypatch):
    """Keep BENCH_*.json telemetry out of the repo when tests run benches."""
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "bench-records"))


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for test randomness."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_dataset() -> DatasetSpec:
    """An 8-pattern, 4-second dataset sharing the paper's subjects."""
    return DatasetSpec(n_patterns=8, duration_s=4.0, seed=2015)


@pytest.fixture(scope="session")
def mid_pattern(small_dataset: DatasetSpec):
    """A mid-amplitude pattern (subject 2, gain ~0.63 V at MVC)."""
    return small_dataset.pattern(2)


@pytest.fixture(scope="session")
def weak_pattern(small_dataset: DatasetSpec):
    """A low-amplitude pattern (subject 0, the fixed-threshold failure case)."""
    return small_dataset.pattern(0)


@pytest.fixture(scope="session")
def strong_pattern(small_dataset: DatasetSpec):
    """A high-amplitude pattern (subject 3, gain ~0.9 V at MVC)."""
    return small_dataset.pattern(3)
