"""Tests for the packet-based baseline framing."""

import numpy as np
import pytest

from repro.uwb.packets import (
    PacketFormat,
    _crc8_bitwise,
    crc8,
    depacketize,
    packetize,
    payload_symbol_count,
)


class TestPayloadSymbolCount:
    def test_paper_number(self):
        """Sec. III-B: 12 x 50000 = 600000 symbols for the 20 s wave."""
        assert payload_symbol_count(50_000, adc_bits=12) == 600_000

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            payload_symbol_count(-1)
        with pytest.raises(ValueError):
            payload_symbol_count(10, adc_bits=0)


class TestCrc8:
    def test_known_vector(self):
        # CRC-8/ATM of 0x00 is 0x00; of a known byte pattern, stable.
        assert crc8(np.zeros(8, dtype=np.uint8)) == 0

    def test_standard_check_value(self):
        """The canonical CRC-8 (poly 0x07) check: crc8("123456789") = 0xF4."""
        bits = np.unpackbits(np.frombuffer(b"123456789", dtype=np.uint8))
        assert crc8(bits) == 0xF4

    def test_table_matches_bit_serial(self, rng):
        """Table-driven CRC == the bit-serial recurrence, any length/poly/init."""
        for _ in range(50):
            bits = rng.integers(0, 2, int(rng.integers(0, 70))).astype(np.uint8)
            poly = int(rng.integers(1, 256))
            init = int(rng.integers(0, 256))
            assert crc8(bits, poly, init) == _crc8_bitwise(bits, poly, init)

    def test_non_byte_aligned_tail(self):
        """Lengths that are not byte multiples use the tail recurrence."""
        bits = np.array([1, 0, 1, 1, 0, 1, 0, 0, 1, 1, 0], dtype=np.uint8)
        assert crc8(bits) == _crc8_bitwise(bits)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            crc8(np.zeros((2, 8), dtype=np.uint8))

    def test_detects_single_bit_flips(self, rng):
        bits = rng.integers(0, 2, 64).astype(np.uint8)
        reference = crc8(bits)
        for i in range(bits.size):
            flipped = bits.copy()
            flipped[i] ^= 1
            assert crc8(flipped) != reference

    def test_deterministic(self, rng):
        bits = rng.integers(0, 2, 32).astype(np.uint8)
        assert crc8(bits) == crc8(bits)


class TestPacketFormat:
    def test_default_geometry(self):
        fmt = PacketFormat()
        assert fmt.overhead_bits == 32
        assert fmt.payload_bits == 96
        assert fmt.packet_bits == 128

    def test_packet_count_rounds_up(self):
        fmt = PacketFormat(samples_per_packet=8)
        assert fmt.n_packets(16) == 2
        assert fmt.n_packets(17) == 3
        assert fmt.n_packets(0) == 0

    def test_total_bits(self):
        fmt = PacketFormat()
        assert fmt.total_bits(8) == 128

    def test_overhead_exceeds_payload_only_count(self):
        """Framing overhead makes the real stream larger than the paper's
        payload-only 600000 figure."""
        fmt = PacketFormat(adc_bits=12)
        assert fmt.total_bits(50_000) > payload_symbol_count(50_000, 12)

    def test_invalid_format(self):
        with pytest.raises(ValueError):
            PacketFormat(adc_bits=0)
        with pytest.raises(ValueError):
            PacketFormat(samples_per_packet=0)
        with pytest.raises(ValueError):
            PacketFormat(header_bits=-1)


class TestPacketizeRoundtrip:
    def test_roundtrip(self, rng):
        fmt = PacketFormat()
        codes = rng.integers(0, 4096, 64)
        bits = packetize(codes, fmt)
        result = depacketize(bits, fmt)
        assert result.n_crc_errors == 0
        assert result.n_truncated_bits == 0
        assert np.array_equal(result.codes[: codes.size], codes)

    def test_padding_zeros(self):
        fmt = PacketFormat(samples_per_packet=4)
        codes = np.array([1, 2, 3, 4, 5])
        decoded, _, _ = depacketize(packetize(codes, fmt), fmt)
        assert decoded.size == 8
        assert np.array_equal(decoded[5:], [0, 0, 0])

    def test_corrupted_packet_dropped_by_crc(self, rng):
        fmt = PacketFormat()
        codes = rng.integers(0, 4096, 16)  # two packets
        bits = packetize(codes, fmt)
        bits = bits.copy()
        # Flip a payload bit in the first packet.
        bits[fmt.header_bits + fmt.sfd_bits + fmt.id_bits + 3] ^= 1
        result = depacketize(bits, fmt)
        assert result.n_crc_errors == 1
        assert result.codes.size == fmt.samples_per_packet  # only packet 2 kept

    def test_codes_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            packetize(np.array([4096]), PacketFormat())

    def test_empty_codes(self):
        fmt = PacketFormat()
        assert packetize(np.zeros(0, dtype=np.int64), fmt).size == 0
        result = depacketize(np.zeros(0, dtype=np.uint8), fmt)
        assert result.codes.size == 0
        assert result.n_truncated_bits == 0

    def test_truncated_tail_reported(self, rng):
        """A cut-off stream reports the discarded bits instead of hiding
        them — exact loss accounting for the packet baseline."""
        fmt = PacketFormat()
        codes = rng.integers(0, 4096, 16)
        bits = packetize(codes, fmt)
        result = depacketize(bits[:-37], fmt)
        assert result.n_truncated_bits == fmt.packet_bits - 37
        assert result.n_crc_errors == 0
        assert result.codes.size == fmt.samples_per_packet  # first packet only

    def test_shorter_than_one_packet(self):
        result = depacketize(np.zeros(100, dtype=np.uint8), PacketFormat())
        assert result.codes.size == 0
        assert result.n_truncated_bits == 100

    def test_crc_disabled_keeps_everything(self, rng):
        fmt = PacketFormat(crc_bits=0)
        codes = rng.integers(0, 4096, 16)
        bits = packetize(codes, fmt).copy()
        bits[fmt.header_bits + fmt.sfd_bits + fmt.id_bits] ^= 1  # corrupt freely
        result = depacketize(bits, fmt)
        assert result.n_crc_errors == 0
        assert result.codes.size == codes.size
