"""Tests for OOK / PPM event modulation."""

import numpy as np
import pytest

from repro.core.events import EventStream
from repro.uwb.modulation import (
    ook_demodulate,
    ook_modulate,
    ppm_demodulate,
    ppm_modulate,
)


def datc_stream(times, levels, duration=10.0):
    return EventStream(
        times=np.asarray(times, dtype=float),
        duration_s=duration,
        levels=np.asarray(levels, dtype=np.int64),
        symbols_per_event=5,
    )


def atc_stream(times, duration=10.0):
    return EventStream(
        times=np.asarray(times, dtype=float), duration_s=duration, symbols_per_event=1
    )


class TestOokModulate:
    def test_symbol_count_is_five_per_datc_event(self):
        s = datc_stream([1.0, 2.0, 3.0], [5, 8, 15])
        train = ook_modulate(s, symbol_period_s=1e-5)
        assert train.n_symbols == 15

    def test_pulse_count_depends_on_level_popcount(self):
        """OOK radiates marker + one pulse per '1' bit of the level."""
        s = datc_stream([1.0, 2.0], [0b1111, 0b0000])
        train = ook_modulate(s, symbol_period_s=1e-5)
        assert train.n_pulses == (1 + 4) + (1 + 0)

    def test_atc_event_is_single_pulse(self):
        s = atc_stream([1.0, 2.0, 3.0])
        train = ook_modulate(s, symbol_period_s=1e-5)
        assert train.n_pulses == 3
        assert train.n_symbols == 3

    def test_overlapping_bursts_rejected(self):
        s = datc_stream([1.0, 1.00001], [1, 1])
        with pytest.raises(ValueError):
            ook_modulate(s, symbol_period_s=1e-5)

    def test_level_exceeding_bits_rejected(self):
        s = datc_stream([1.0], [16])
        with pytest.raises(ValueError):
            ook_modulate(s, symbol_period_s=1e-5, bits_per_event=4)

    def test_empty_stream(self):
        s = atc_stream([])
        train = ook_modulate(s)
        assert train.n_pulses == 0
        assert train.n_symbols == 0


class TestOokRoundtrip:
    def test_ideal_channel_roundtrip(self, rng):
        times = np.sort(rng.uniform(0.1, 9.9, 200))
        times = times[np.concatenate([[True], np.diff(times) > 1e-3])]
        levels = rng.integers(0, 16, times.size)
        s = datc_stream(times, levels)
        train = ook_modulate(s, symbol_period_s=1e-5)
        rx = ook_demodulate(train.pulse_times, 10.0, 1e-5, bits_per_event=4)
        assert rx.n_events == s.n_events
        assert np.allclose(rx.times, s.times)
        assert np.array_equal(rx.levels, levels)

    def test_erased_payload_bit_reads_zero(self):
        s = datc_stream([1.0], [0b1000])
        train = ook_modulate(s, symbol_period_s=1e-5)
        # Drop the payload pulse (keep the marker): level decodes as 0.
        rx = ook_demodulate(train.pulse_times[:1], 10.0, 1e-5, 4)
        assert rx.n_events == 1
        assert rx.levels[0] == 0

    def test_erased_marker_shifts_burst(self):
        """Losing the marker promotes a payload pulse to a fake marker —
        the realistic OOK failure mode the robustness bench quantifies."""
        s = datc_stream([1.0], [0b1111])
        train = ook_modulate(s, symbol_period_s=1e-5)
        rx = ook_demodulate(train.pulse_times[1:], 10.0, 1e-5, 4)
        assert rx.n_events == 1
        assert rx.times[0] != pytest.approx(1.0)


class TestPpm:
    def test_every_symbol_costs_a_pulse(self):
        s = datc_stream([1.0, 2.0], [0b0000, 0b1111])
        train = ppm_modulate(s, symbol_period_s=1e-5)
        assert train.n_pulses == 10
        assert train.n_symbols == 10

    def test_roundtrip(self, rng):
        times = np.sort(rng.uniform(0.1, 9.9, 100))
        times = times[np.concatenate([[True], np.diff(times) > 1e-3])]
        levels = rng.integers(0, 16, times.size)
        s = datc_stream(times, levels)
        train = ppm_modulate(s, symbol_period_s=1e-5)
        rx = ppm_demodulate(train.pulse_times, 10.0, 1e-5, 4)
        assert rx.n_events == s.n_events
        assert np.array_equal(rx.levels, levels)

    def test_overlap_rejected(self):
        s = datc_stream([1.0, 1.00002], [1, 2])
        with pytest.raises(ValueError):
            ppm_modulate(s, symbol_period_s=1e-5)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            ppm_modulate(atc_stream([1.0]), symbol_period_s=0.0)
        with pytest.raises(ValueError):
            ook_modulate(atc_stream([1.0]), symbol_period_s=-1.0)
