"""Tests for the UWB channel model."""

import numpy as np
import pytest

from repro.core.events import EventStream
from repro.uwb.channel import UWBChannel, friis_path_loss_db, received_energy_j
from repro.uwb.modulation import ook_modulate


def make_train(n=500, duration=10.0, rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    times = np.sort(rng.uniform(0.1, duration - 0.1, n))
    times = times[np.concatenate([[True], np.diff(times) > 1e-4])]
    stream = EventStream(times=times, duration_s=duration, symbols_per_event=1)
    return ook_modulate(stream, symbol_period_s=1e-5)


class TestPathLoss:
    def test_increases_with_distance(self):
        assert friis_path_loss_db(2.0) > friis_path_loss_db(1.0)

    def test_exponent_slope(self):
        """n=2: +6 dB per distance doubling beyond 1 m."""
        d1 = friis_path_loss_db(2.0, path_loss_exp=2.0)
        d2 = friis_path_loss_db(4.0, path_loss_exp=2.0)
        assert d2 - d1 == pytest.approx(20 * np.log10(2), abs=1e-9)

    def test_body_exponent_loses_more(self):
        assert friis_path_loss_db(3.0, path_loss_exp=3.5) > friis_path_loss_db(
            3.0, path_loss_exp=2.0
        )

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            friis_path_loss_db(0.0)
        with pytest.raises(ValueError):
            friis_path_loss_db(1.0, centre_freq_hz=0.0)


class TestReceivedEnergy:
    def test_attenuation(self):
        rx = received_energy_j(30e-12, distance_m=1.0)
        assert 0 < rx < 30e-12

    def test_monotone_in_distance(self):
        near = received_energy_j(30e-12, 0.5)
        far = received_energy_j(30e-12, 5.0)
        assert near > far

    def test_antenna_gain_helps(self):
        base = received_energy_j(30e-12, 1.0)
        gained = received_energy_j(30e-12, 1.0, antenna_gains_db=6.0)
        assert gained == pytest.approx(base * 10 ** 0.6)


class TestUWBChannel:
    def test_ideal_channel_is_transparent(self):
        train = make_train()
        out = UWBChannel().transmit(train)
        assert np.array_equal(out, train.pulse_times)

    def test_erasures_drop_expected_fraction(self, rng):
        train = make_train(2000)
        ch = UWBChannel(erasure_prob=0.3)
        out = ch.transmit(train, rng=rng)
        frac = out.size / train.n_pulses
        assert 0.6 < frac < 0.8

    def test_full_erasure(self, rng):
        ch = UWBChannel(erasure_prob=1.0)
        assert ch.transmit(make_train(), rng=rng).size == 0

    def test_jitter_perturbs_but_keeps_count(self, rng):
        train = make_train()
        ch = UWBChannel(jitter_rms_s=1e-7)
        out = ch.transmit(train, rng=rng)
        assert out.size == train.n_pulses
        assert not np.array_equal(out, train.pulse_times)
        assert np.max(np.abs(np.sort(out) - train.pulse_times)) < 1e-6

    def test_false_pulses_added(self, rng):
        train = make_train(100)
        ch = UWBChannel(false_pulse_rate_hz=100.0)
        out = ch.transmit(train, rng=rng)
        assert out.size > train.n_pulses

    def test_output_sorted_and_bounded(self, rng):
        train = make_train()
        ch = UWBChannel(erasure_prob=0.2, jitter_rms_s=1e-6, false_pulse_rate_hz=10.0)
        out = ch.transmit(train, rng=rng)
        assert np.all(np.diff(out) >= 0)
        assert out.min() >= 0.0 and out.max() <= train.duration_s

    def test_nonideal_requires_rng(self):
        with pytest.raises(ValueError):
            UWBChannel(erasure_prob=0.1).transmit(make_train())

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"erasure_prob": -0.1},
            {"erasure_prob": 1.1},
            {"jitter_rms_s": -1.0},
            {"false_pulse_rate_hz": -1.0},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            UWBChannel(**kwargs)


class TestTransmitBatch:
    def test_ideal_batch_passthrough(self):
        trains = [make_train(n=50), make_train(n=80)]
        out = UWBChannel().transmit_batch(trains)
        for received, train in zip(out, trains):
            assert np.array_equal(received, train.pulse_times)

    def test_method_matches_module_function(self, rng):
        from repro.uwb.channel import transmit_batch

        trains = [make_train(n=200), make_train(n=300)]
        ch = UWBChannel(erasure_prob=0.2, jitter_rms_s=1e-6)
        method = ch.transmit_batch(trains, rng=np.random.default_rng(3))
        function = transmit_batch(trains, [ch, ch], rng=np.random.default_rng(3))
        for a, b in zip(method, function):
            assert np.array_equal(a, b)

    def test_per_train_channels(self, rng):
        trains = [make_train(n=400), make_train(n=400)]
        from repro.uwb.channel import transmit_batch

        clean, lossy = transmit_batch(
            trains, [UWBChannel(), UWBChannel(erasure_prob=0.5)], rng=rng
        )
        assert np.array_equal(clean, trains[0].pulse_times)
        assert lossy.size < trains[1].pulse_times.size

    def test_count_mismatch_rejected(self):
        from repro.uwb.channel import transmit_batch

        with pytest.raises(ValueError):
            transmit_batch([make_train()], [UWBChannel(), UWBChannel()])

    def test_empty_batch(self):
        assert UWBChannel().transmit_batch([]) == []

    def test_noisy_requires_rng(self):
        with pytest.raises(ValueError):
            UWBChannel(erasure_prob=0.1).transmit_batch([make_train()])

    def test_output_sorted_and_noisy_rows_bounded(self, rng):
        trains = [make_train(n=300)]
        ch = UWBChannel(erasure_prob=0.1, jitter_rms_s=1e-6, false_pulse_rate_hz=10.0)
        (out,) = ch.transmit_batch(trains, rng=rng)
        assert np.all(np.diff(out) >= 0)
        assert out.min() >= 0.0 and out.max() <= trains[0].duration_s
