"""Tests for the end-to-end link simulation and accounting."""

import numpy as np
import pytest

from repro.core.events import EventStream
from repro.uwb.channel import UWBChannel
from repro.uwb.link import (
    LinkConfig,
    _match_levels,
    packet_baseline_accounting,
    simulate_link,
    simulate_link_batch,
)
from repro.uwb.receiver import EnergyDetector


def datc_stream(n=300, duration=20.0, seed=0):
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0.1, duration - 0.1, n))
    times = times[np.concatenate([[True], np.diff(times) > 1e-3])]
    return EventStream(
        times=times,
        duration_s=duration,
        levels=rng.integers(1, 16, times.size),
        symbols_per_event=5,
    )


class TestLinkConfig:
    def test_defaults(self):
        c = LinkConfig()
        assert c.modulation == "ook"
        assert c.pulse_energy_pj == 30.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"symbol_period_s": 0.0},
            {"pulse_energy_pj": -1.0},
            {"modulation": "fsk"},
            {"distance_m": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            LinkConfig(**kwargs)

    def test_channel_from_budget_short_range(self):
        """At 1 m with 30 pJ pulses the derived erasure probability is
        negligible."""
        ch = LinkConfig().channel_from_budget(EnergyDetector())
        assert ch.erasure_prob < 1e-3


class TestSimulateLink:
    def test_ideal_link_preserves_everything(self):
        s = datc_stream()
        r = simulate_link(s)
        assert r.rx_stream.n_events == s.n_events
        assert np.array_equal(r.rx_stream.levels, s.levels)
        assert r.event_delivery_ratio == pytest.approx(1.0)
        assert r.level_error_ratio == 0.0

    def test_symbol_and_pulse_accounting(self):
        s = datc_stream()
        r = simulate_link(s)
        assert r.n_symbols == 5 * s.n_events
        # OOK pulses: marker + popcount(level) per event.
        expected_pulses = s.n_events + sum(bin(l).count("1") for l in s.levels)
        assert r.n_pulses == expected_pulses

    def test_energy_accounting(self):
        s = datc_stream()
        cfg = LinkConfig(pulse_energy_pj=30.0)
        r = simulate_link(s, cfg)
        assert r.tx_energy_j == pytest.approx(r.n_pulses * 30e-12)

    def test_lossy_channel_drops_events(self, rng):
        s = datc_stream(500)
        ch = UWBChannel(erasure_prob=0.4)
        r = simulate_link(s, channel=ch, rng=rng)
        assert r.rx_stream.n_events < s.n_events
        assert r.event_delivery_ratio < 1.0

    def test_moderate_loss_corrupts_some_levels(self, rng):
        s = datc_stream(500)
        ch = UWBChannel(erasure_prob=0.15)
        r = simulate_link(s, channel=ch, rng=rng)
        assert r.level_error_ratio > 0.0

    def test_ppm_modulation_roundtrip(self):
        s = datc_stream()
        r = simulate_link(s, LinkConfig(modulation="ppm"))
        assert np.array_equal(r.rx_stream.levels, s.levels)
        assert r.n_pulses == 5 * s.n_events  # PPM: every symbol is a pulse

    def test_detector_derived_channel(self, rng):
        s = datc_stream()
        r = simulate_link(s, detector=EnergyDetector(), rng=rng)
        assert r.event_delivery_ratio > 0.99


class TestMatchLevels:
    def stream(self, times, levels, duration=10.0):
        return EventStream(
            times=np.asarray(times, dtype=float),
            duration_s=duration,
            levels=np.asarray(levels, dtype=np.int64),
            symbols_per_event=5,
        )

    def test_exact_match(self):
        tx = self.stream([1.0, 2.0], [3, 7])
        delivered, errors = _match_levels(tx, tx, tol_s=1e-5)
        assert (delivered, errors) == (2, 0)

    def test_level_error_counted(self):
        tx = self.stream([1.0, 2.0], [3, 7])
        rx = self.stream([1.0, 2.0], [3, 8])
        assert _match_levels(tx, rx, tol_s=1e-5) == (2, 1)

    def test_out_of_tolerance_not_delivered(self):
        tx = self.stream([1.0], [3])
        rx = self.stream([1.1], [3])
        assert _match_levels(tx, rx, tol_s=1e-3) == (0, 0)

    def test_one_to_one_no_double_counting(self):
        """Regression: two RX events near one TX event used to both count
        as delivered; matching is now one-to-one (first claimant wins)."""
        tx = self.stream([1.0], [3])
        rx = self.stream([1.000001, 1.000004], [3, 0])
        delivered, errors = _match_levels(tx, rx, tol_s=1e-5)
        assert delivered == 1
        assert errors == 0  # the earlier (correct-level) claimant won

    def test_one_to_one_later_claimant_unmatched(self):
        """The losing claimant does not steal a farther TX event either."""
        tx = self.stream([1.0, 5.0], [3, 9])
        rx = self.stream([1.000001, 1.000004, 5.0], [3, 9, 9])
        delivered, errors = _match_levels(tx, rx, tol_s=1e-5)
        assert delivered == 2
        assert errors == 0

    def test_empty_streams(self):
        tx = self.stream([1.0], [3])
        empty = EventStream(
            times=np.zeros(0), duration_s=10.0,
            levels=np.zeros(0, dtype=np.int64), symbols_per_event=5,
        )
        assert _match_levels(tx, empty, 1e-5) == (0, 0)
        assert _match_levels(empty, tx, 1e-5) == (0, 0)


class TestSimulateLinkBatch:
    def test_ideal_batch_matches_per_stream_exactly(self):
        streams = [datc_stream(seed=s) for s in range(4)]
        cfg = LinkConfig()
        batch = simulate_link_batch(streams, cfg)
        for result, stream in zip(batch, streams):
            one = simulate_link(stream, cfg)
            assert np.array_equal(result.rx_stream.times, one.rx_stream.times)
            assert np.array_equal(result.rx_stream.levels, one.rx_stream.levels)
            assert result.n_pulses == one.n_pulses
            assert result.n_symbols == one.n_symbols
            assert result.tx_energy_j == one.tx_energy_j
            assert result.event_delivery_ratio == 1.0
            assert result.level_error_ratio == 0.0

    def test_ppm_batch(self):
        streams = [datc_stream(seed=s) for s in range(3)]
        batch = simulate_link_batch(streams, LinkConfig(modulation="ppm"))
        for result, stream in zip(batch, streams):
            assert np.array_equal(result.rx_stream.levels, stream.levels)

    def test_heterogeneous_symbols_per_event(self):
        """ATC (1 slot) and D-ATC (5 slots) streams share one batch call."""
        datc = datc_stream(seed=0)
        atc = EventStream(
            times=datc.times, duration_s=datc.duration_s, symbols_per_event=1
        )
        datc_link, atc_link = simulate_link_batch([datc, atc], LinkConfig())
        assert datc_link.n_symbols == 5 * datc.n_events
        assert atc_link.n_symbols == atc.n_events
        assert atc_link.rx_stream.levels is None

    def test_ideal_row_exact_in_mixed_batch(self, rng):
        """Regression: an ideal stream batched next to a noisy one must
        still match the per-stream ideal path bit for bit — its trailing
        payload pulses (past duration_s) must not get clipped."""
        stream = EventStream(
            times=np.array([0.5, 0.99999]),
            duration_s=1.0,
            levels=np.array([7, 15]),
            symbols_per_event=5,
        )
        one = simulate_link(stream, LinkConfig())
        clean, _ = simulate_link_batch(
            [stream, stream],
            channel=[UWBChannel(), UWBChannel(erasure_prob=0.5)],
            rng=rng,
        )
        assert np.array_equal(clean.rx_stream.times, one.rx_stream.times)
        assert np.array_equal(clean.rx_stream.levels, one.rx_stream.levels)
        assert clean.level_error_ratio == 0.0

    def test_per_stream_channels(self, rng):
        stream = datc_stream(500)
        channels = [UWBChannel(), UWBChannel(erasure_prob=0.4)]
        clean, lossy = simulate_link_batch(
            [stream, stream], channel=channels, rng=rng
        )
        assert clean.event_delivery_ratio == 1.0
        assert lossy.event_delivery_ratio < 1.0

    def test_channel_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            simulate_link_batch([datc_stream()], channel=[UWBChannel()] * 2)

    def test_noisy_batch_requires_rng(self):
        with pytest.raises(ValueError):
            simulate_link_batch(
                [datc_stream()], channel=UWBChannel(erasure_prob=0.1)
            )

    def test_empty_batch(self):
        assert simulate_link_batch([]) == []

    def test_detector_derived_channel(self, rng):
        results = simulate_link_batch(
            [datc_stream(seed=s) for s in range(2)],
            detector=EnergyDetector(),
            rng=rng,
        )
        assert all(r.event_delivery_ratio > 0.99 for r in results)


class TestPacketBaseline:
    def test_paper_payload_count(self):
        acc = packet_baseline_accounting(50_000, adc_bits=12)
        assert acc["payload_symbols"] == 600_000

    def test_overhead_inclusive_larger(self):
        acc = packet_baseline_accounting(50_000)
        assert acc["total_symbols"] > acc["payload_symbols"]

    def test_energy_scales_with_mean_bit(self):
        lo = packet_baseline_accounting(1000, mean_bit=0.25)
        hi = packet_baseline_accounting(1000, mean_bit=0.75)
        assert hi["tx_energy_j"] == pytest.approx(3 * lo["tx_energy_j"])

    def test_mismatched_fmt_rejected(self):
        from repro.uwb.packets import PacketFormat

        with pytest.raises(ValueError):
            packet_baseline_accounting(100, adc_bits=12, fmt=PacketFormat(adc_bits=8))

    def test_invalid_mean_bit(self):
        with pytest.raises(ValueError):
            packet_baseline_accounting(100, mean_bit=1.5)
