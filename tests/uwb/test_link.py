"""Tests for the end-to-end link simulation and accounting."""

import numpy as np
import pytest

from repro.core.events import EventStream
from repro.uwb.channel import UWBChannel
from repro.uwb.link import (
    LinkConfig,
    packet_baseline_accounting,
    simulate_link,
)
from repro.uwb.receiver import EnergyDetector


def datc_stream(n=300, duration=20.0, seed=0):
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0.1, duration - 0.1, n))
    times = times[np.concatenate([[True], np.diff(times) > 1e-3])]
    return EventStream(
        times=times,
        duration_s=duration,
        levels=rng.integers(1, 16, times.size),
        symbols_per_event=5,
    )


class TestLinkConfig:
    def test_defaults(self):
        c = LinkConfig()
        assert c.modulation == "ook"
        assert c.pulse_energy_pj == 30.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"symbol_period_s": 0.0},
            {"pulse_energy_pj": -1.0},
            {"modulation": "fsk"},
            {"distance_m": 0.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            LinkConfig(**kwargs)

    def test_channel_from_budget_short_range(self):
        """At 1 m with 30 pJ pulses the derived erasure probability is
        negligible."""
        ch = LinkConfig().channel_from_budget(EnergyDetector())
        assert ch.erasure_prob < 1e-3


class TestSimulateLink:
    def test_ideal_link_preserves_everything(self):
        s = datc_stream()
        r = simulate_link(s)
        assert r.rx_stream.n_events == s.n_events
        assert np.array_equal(r.rx_stream.levels, s.levels)
        assert r.event_delivery_ratio == pytest.approx(1.0)
        assert r.level_error_ratio == 0.0

    def test_symbol_and_pulse_accounting(self):
        s = datc_stream()
        r = simulate_link(s)
        assert r.n_symbols == 5 * s.n_events
        # OOK pulses: marker + popcount(level) per event.
        expected_pulses = s.n_events + sum(bin(l).count("1") for l in s.levels)
        assert r.n_pulses == expected_pulses

    def test_energy_accounting(self):
        s = datc_stream()
        cfg = LinkConfig(pulse_energy_pj=30.0)
        r = simulate_link(s, cfg)
        assert r.tx_energy_j == pytest.approx(r.n_pulses * 30e-12)

    def test_lossy_channel_drops_events(self, rng):
        s = datc_stream(500)
        ch = UWBChannel(erasure_prob=0.4)
        r = simulate_link(s, channel=ch, rng=rng)
        assert r.rx_stream.n_events < s.n_events
        assert r.event_delivery_ratio < 1.0

    def test_moderate_loss_corrupts_some_levels(self, rng):
        s = datc_stream(500)
        ch = UWBChannel(erasure_prob=0.15)
        r = simulate_link(s, channel=ch, rng=rng)
        assert r.level_error_ratio > 0.0

    def test_ppm_modulation_roundtrip(self):
        s = datc_stream()
        r = simulate_link(s, LinkConfig(modulation="ppm"))
        assert np.array_equal(r.rx_stream.levels, s.levels)
        assert r.n_pulses == 5 * s.n_events  # PPM: every symbol is a pulse

    def test_detector_derived_channel(self, rng):
        s = datc_stream()
        r = simulate_link(s, detector=EnergyDetector(), rng=rng)
        assert r.event_delivery_ratio > 0.99


class TestPacketBaseline:
    def test_paper_payload_count(self):
        acc = packet_baseline_accounting(50_000, adc_bits=12)
        assert acc["payload_symbols"] == 600_000

    def test_overhead_inclusive_larger(self):
        acc = packet_baseline_accounting(50_000)
        assert acc["total_symbols"] > acc["payload_symbols"]

    def test_energy_scales_with_mean_bit(self):
        lo = packet_baseline_accounting(1000, mean_bit=0.25)
        hi = packet_baseline_accounting(1000, mean_bit=0.75)
        assert hi["tx_energy_j"] == pytest.approx(3 * lo["tx_energy_j"])

    def test_mismatched_fmt_rejected(self):
        from repro.uwb.packets import PacketFormat

        with pytest.raises(ValueError):
            packet_baseline_accounting(100, adc_bits=12, fmt=PacketFormat(adc_bits=8))

    def test_invalid_mean_bit(self):
        with pytest.raises(ValueError):
            packet_baseline_accounting(100, mean_bit=1.5)
