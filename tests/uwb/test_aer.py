"""Tests for Address-Event Representation framing."""

import numpy as np
import pytest

from repro.core.events import EventStream
from repro.uwb.aer import AERConfig, aer_decode, aer_encode


def channel_stream(times, levels=None, duration=10.0):
    return EventStream(
        times=np.asarray(times, dtype=float),
        duration_s=duration,
        levels=None if levels is None else np.asarray(levels, dtype=np.int64),
        symbols_per_event=5 if levels is not None else 1,
    )


class TestAERConfig:
    def test_address_bits(self):
        assert AERConfig(n_channels=1).address_bits == 0
        assert AERConfig(n_channels=2).address_bits == 1
        assert AERConfig(n_channels=4).address_bits == 2
        assert AERConfig(n_channels=5).address_bits == 3

    def test_symbols_per_event(self):
        """4 channels x 4-bit levels: 1 marker + 2 address + 4 level = 7."""
        assert AERConfig(n_channels=4, level_bits=4).symbols_per_event == 7
        assert AERConfig(n_channels=1, level_bits=0).symbols_per_event == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            AERConfig(n_channels=0)
        with pytest.raises(ValueError):
            AERConfig(level_bits=-1)


class TestEncodeDecode:
    def test_roundtrip(self, rng):
        config = AERConfig(n_channels=4, level_bits=4)
        streams = []
        for _ in range(4):
            times = np.sort(rng.uniform(0, 10, 50))
            streams.append(channel_stream(times, rng.integers(0, 16, 50)))
        merged = aer_encode(streams, config)
        assert merged.n_events == 200
        decoded = aer_decode(merged, config)
        for original, recovered in zip(streams, decoded):
            assert np.allclose(recovered.times, original.times)
            assert np.array_equal(recovered.levels, original.levels)

    def test_merged_times_sorted(self, rng):
        config = AERConfig(n_channels=2, level_bits=4)
        a = channel_stream(np.sort(rng.uniform(0, 10, 30)), rng.integers(0, 16, 30))
        b = channel_stream(np.sort(rng.uniform(0, 10, 30)), rng.integers(0, 16, 30))
        merged = aer_encode([a, b], config)
        assert np.all(np.diff(merged.times) >= 0)

    def test_tie_break_by_address(self):
        config = AERConfig(n_channels=2, level_bits=4)
        a = channel_stream([5.0], [1])
        b = channel_stream([5.0], [2])
        merged = aer_encode([b, a][::-1], config)  # order [a, b]
        addresses = merged.levels >> 4
        assert addresses.tolist() == [0, 1]

    def test_wrong_channel_count_rejected(self):
        config = AERConfig(n_channels=3, level_bits=0)
        with pytest.raises(ValueError):
            aer_encode([channel_stream([1.0])], config)

    def test_levels_required_when_level_bits(self):
        config = AERConfig(n_channels=1, level_bits=4)
        with pytest.raises(ValueError):
            aer_encode([channel_stream([1.0])], config)

    def test_level_range_checked(self):
        config = AERConfig(n_channels=1, level_bits=2)
        with pytest.raises(ValueError):
            aer_encode([channel_stream([1.0], [4])], config)

    def test_decode_requires_levels(self):
        config = AERConfig(n_channels=2, level_bits=0)
        with pytest.raises(ValueError):
            aer_decode(channel_stream([1.0]), config)

    def test_arbiter_serialises_collisions(self):
        """Colliding events are queued at least min_spacing_s apart."""
        config = AERConfig(n_channels=2, level_bits=4)
        a = channel_stream([5.0, 5.0 + 1e-6], [1, 2])
        b = channel_stream([5.0], [3])
        merged = aer_encode([a, b], config, min_spacing_s=1e-4)
        assert merged.n_events == 3
        assert np.all(np.diff(merged.times) >= 1e-4 - 1e-12)

    def test_arbiter_overflow_drops_tail(self):
        """Events the queue cannot place before the window end are lost."""
        config = AERConfig(n_channels=1, level_bits=4)
        times = np.full(10, 9.9999)
        times = np.cumsum(np.full(10, 1e-7)) + 9.9998
        s = channel_stream(times, np.arange(10) % 16)
        merged = aer_encode([s], config, min_spacing_s=1e-3)
        assert merged.n_events < 10

    def test_serialisation_matches_reference_loop(self, rng):
        """The closed-form arbiter (running max) == the sequential queue."""
        config = AERConfig(n_channels=1, level_bits=4)
        # Dyadic times/spacing keep both forms exact in float64, so the
        # comparison is bit-level, not toleranced.
        times = np.sort(rng.integers(0, 1 << 14, 60)).astype(float) / 1024.0
        spacing = 1.0 / 64.0
        s = channel_stream(times, rng.integers(0, 16, 60), duration=17.0)
        merged = aer_encode([s], config, min_spacing_s=spacing)

        last = -np.inf
        expected = []
        for t in times:
            last = max(t, last + spacing)
            if last <= 17.0:
                expected.append(last)
        assert np.array_equal(merged.times, np.asarray(expected))

    def test_negative_spacing_rejected(self):
        config = AERConfig(n_channels=1, level_bits=4)
        with pytest.raises(ValueError):
            aer_encode([channel_stream([1.0], [1])], config, min_spacing_s=-1.0)

    def test_zero_level_bits_atc_mode(self):
        """Plain multi-channel ATC: address only, no level payload."""
        config = AERConfig(n_channels=2, level_bits=0)
        a = channel_stream([1.0, 3.0])
        b = channel_stream([2.0])
        merged = aer_encode([a, b], config)
        decoded = aer_decode(merged, config)
        assert decoded[0].n_events == 2
        assert decoded[1].n_events == 1
        assert decoded[0].levels is None
