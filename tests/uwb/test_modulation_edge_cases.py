"""Demodulator edge cases: spurious pulses, jitter at slot boundaries."""

import numpy as np
import pytest

from repro.core.events import EventStream
from repro.uwb.modulation import (
    _ook_demodulate_loop,
    _ppm_demodulate_loop,
    ook_demodulate,
    ook_modulate,
    ppm_demodulate,
    ppm_modulate,
)


def stream(times, levels, duration=10.0):
    return EventStream(
        times=np.asarray(times, dtype=float),
        duration_s=duration,
        levels=np.asarray(levels, dtype=np.int64),
        symbols_per_event=5,
    )


class TestOokDemodEdgeCases:
    def test_no_pulses(self):
        rx = ook_demodulate(np.zeros(0), 10.0, 1e-5, 4)
        assert rx.n_events == 0

    def test_lone_spurious_pulse_becomes_level_zero_event(self):
        rx = ook_demodulate(np.array([3.0]), 10.0, 1e-5, 4)
        assert rx.n_events == 1
        assert rx.levels[0] == 0

    def test_small_jitter_within_half_slot_tolerated(self):
        s = stream([1.0], [0b1010])
        train = ook_modulate(s, symbol_period_s=1e-5)
        jitter = np.full(train.n_pulses, 0.3e-5)
        jitter[0] = 0.0  # keep the marker on time; payload pulses run late
        rx = ook_demodulate(train.pulse_times + jitter, 10.0, 1e-5, 4)
        assert rx.n_events == 1
        assert rx.levels[0] == 0b1010

    def test_pulse_beyond_half_slot_misreads(self):
        """A payload pulse displaced past half a slot lands in the wrong
        bit position — quantifying the jitter tolerance boundary."""
        s = stream([1.0], [0b1000])
        train = ook_modulate(s, symbol_period_s=1e-5)
        shifted = train.pulse_times.copy()
        shifted[1] += 0.9e-5  # almost a full slot late: bit 3 -> bit 2
        rx = ook_demodulate(shifted, 10.0, 1e-5, 4)
        assert rx.levels[0] == 0b0100

    def test_back_to_back_bursts_separate(self):
        # Two events exactly one burst span apart.
        span = 5e-5
        s = stream([1.0, 1.0 + span], [0b1111, 0b0001])
        train = ook_modulate(s, symbol_period_s=1e-5)
        rx = ook_demodulate(train.pulse_times, 10.0, 1e-5, 4)
        assert rx.n_events == 2
        assert rx.levels.tolist() == [0b1111, 0b0001]

    def test_duplicate_pulses_harmless(self):
        """A doubled detection (multipath) inside a slot does not create a
        new event or change the level."""
        s = stream([1.0], [0b0110])
        train = ook_modulate(s, symbol_period_s=1e-5)
        doubled = np.sort(np.concatenate([train.pulse_times, [train.pulse_times[1] + 1e-7]]))
        rx = ook_demodulate(doubled, 10.0, 1e-5, 4)
        assert rx.n_events == 1
        assert rx.levels[0] == 0b0110


def _assert_same(vectorised, loop):
    assert np.array_equal(vectorised.times, loop.times)
    assert (vectorised.levels is None) == (loop.levels is None)
    if vectorised.levels is not None:
        assert np.array_equal(vectorised.levels, loop.levels)
    assert vectorised.symbols_per_event == loop.symbols_per_event


class TestVectorisedMatchesLoop:
    """The vectorised demodulators are bit-identical to the reference
    per-pulse loops — the tentpole invariant of the link engine."""

    def test_clean_train(self, rng):
        times = np.sort(rng.uniform(0.1, 9.9, 100))
        times = times[np.concatenate([[True], np.diff(times) > 1e-3])]
        levels = rng.integers(0, 16, times.size)
        s = stream(times, levels)
        for modulate, vec, loop in (
            (ook_modulate, ook_demodulate, _ook_demodulate_loop),
            (ppm_modulate, ppm_demodulate, _ppm_demodulate_loop),
        ):
            train = modulate(s, symbol_period_s=1e-5)
            _assert_same(
                vec(train.pulse_times, 10.0, 1e-5, 4),
                loop(train.pulse_times, 10.0, 1e-5, 4),
            )

    def test_arbitrary_pulse_soup(self, rng):
        """Pure noise input (no burst structure at all)."""
        times = np.sort(rng.uniform(0, 10.0, 500))
        for bits in (0, 1, 4, 8):
            _assert_same(
                ook_demodulate(times, 10.0, 1e-5, bits),
                _ook_demodulate_loop(times, 10.0, 1e-5, bits),
            )
            _assert_same(
                ppm_demodulate(times, 10.0, 1e-5, bits),
                _ppm_demodulate_loop(times, 10.0, 1e-5, bits),
            )

    def test_erased_jittered_spurious(self, rng):
        times = np.sort(rng.uniform(0.1, 9.9, 200))
        times = times[np.concatenate([[True], np.diff(times) > 1e-3])]
        s = stream(times, rng.integers(0, 16, times.size))
        train = ook_modulate(s, symbol_period_s=1e-5)
        corrupted = train.pulse_times[rng.random(train.n_pulses) >= 0.25]
        corrupted = corrupted + 2e-6 * rng.standard_normal(corrupted.size)
        spurious = rng.uniform(0, 10.0, 40)
        corrupted = np.sort(np.clip(np.concatenate([corrupted, spurious]), 0, 10.0))
        _assert_same(
            ook_demodulate(corrupted, 10.0, 1e-5, 4),
            _ook_demodulate_loop(corrupted, 10.0, 1e-5, 4),
        )

    def test_empty_and_single_pulse(self):
        for bits in (0, 4):
            _assert_same(
                ook_demodulate(np.zeros(0), 10.0, 1e-5, bits),
                _ook_demodulate_loop(np.zeros(0), 10.0, 1e-5, bits),
            )
            _assert_same(
                ppm_demodulate(np.array([3.0]), 10.0, 1e-5, bits),
                _ppm_demodulate_loop(np.array([3.0]), 10.0, 1e-5, bits),
            )
