"""Tests for the energy-detection receiver model."""

import pytest

from repro.uwb.receiver import EnergyDetector, detection_probability, noise_psd_w_per_hz


class TestNoisePsd:
    def test_ktf_magnitude(self):
        """kT at 290 K is -174 dBm/Hz; a 6 dB NF doubles it twice."""
        n0 = noise_psd_w_per_hz(noise_figure_db=0.0)
        assert n0 == pytest.approx(4.0e-21, rel=0.01)
        assert noise_psd_w_per_hz(6.0) == pytest.approx(n0 * 10 ** 0.6, rel=1e-9)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            noise_psd_w_per_hz(temperature_k=0.0)


class TestDetectionProbability:
    def test_zero_energy_gives_pfa(self):
        """With no signal, Pd collapses to the false-alarm rate."""
        assert detection_probability(0.0, pfa=1e-3) == pytest.approx(1e-3, rel=0.01)

    def test_monotone_in_snr(self):
        pds = [detection_probability(snr) for snr in (0.0, 1.0, 5.0, 20.0, 100.0)]
        assert pds == sorted(pds)

    def test_high_snr_saturates(self):
        assert detection_probability(200.0) > 0.999

    def test_wider_window_needs_more_energy(self):
        """More degrees of freedom collect more noise: Pd drops at fixed
        Es/N0 when TW grows."""
        tight = detection_probability(10.0, time_bandwidth=2.0)
        wide = detection_probability(10.0, time_bandwidth=50.0)
        assert tight > wide

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"es_over_n0": -1.0},
            {"es_over_n0": 1.0, "time_bandwidth": 0.0},
            {"es_over_n0": 1.0, "pfa": 0.0},
            {"es_over_n0": 1.0, "pfa": 1.0},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            detection_probability(**kwargs)


class TestEnergyDetector:
    def test_short_link_is_reliable(self):
        """30 pJ pulses over ~1 m must be detected essentially always —
        the paper's wearable use case."""
        from repro.uwb.channel import received_energy_j

        det = EnergyDetector()
        rx = received_energy_j(30e-12, distance_m=1.0)
        assert det.pd_for_energy(rx) > 0.999

    def test_erasure_prob_complement(self):
        det = EnergyDetector()
        assert det.erasure_prob_for_energy(1e-18) == pytest.approx(
            1.0 - det.pd_for_energy(1e-18)
        )

    def test_false_pulse_rate(self):
        det = EnergyDetector(pfa=1e-3)
        assert det.false_pulse_rate_hz(1e-5) == pytest.approx(100.0)

    def test_invalid_symbol_period(self):
        with pytest.raises(ValueError):
            EnergyDetector().false_pulse_rate_hz(0.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            EnergyDetector(time_bandwidth=0.0)
        with pytest.raises(ValueError):
            EnergyDetector(pfa=2.0)
