"""Tests for UWB pulse shapes and FCC compliance."""

import numpy as np
import pytest

from repro.uwb.pulse import (
    check_fcc_compliance,
    fcc_indoor_mask_dbm_per_mhz,
    gaussian_derivative,
    pulse_spectrum_dbm_per_mhz,
    pulse_waveform,
)


class TestGaussianDerivative:
    def test_peak_normalised(self):
        t = np.linspace(-1e-9, 1e-9, 1001)
        for order in (0, 1, 2, 5, 7):
            w = gaussian_derivative(t, 100e-12, order)
            assert np.max(np.abs(w)) == pytest.approx(1.0)

    def test_order_zero_is_gaussian(self):
        t = np.linspace(-1e-9, 1e-9, 1001)
        w = gaussian_derivative(t, 100e-12, 0)
        assert w[500] == pytest.approx(1.0)  # peak at centre
        assert np.all(w > 0)

    def test_odd_orders_antisymmetric(self):
        t = np.linspace(-1e-9, 1e-9, 1001)
        w = gaussian_derivative(t, 100e-12, 1)
        assert np.allclose(w, -w[::-1], atol=1e-12)

    def test_even_orders_symmetric(self):
        t = np.linspace(-1e-9, 1e-9, 1001)
        w = gaussian_derivative(t, 100e-12, 2)
        assert np.allclose(w, w[::-1], atol=1e-12)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            gaussian_derivative(np.zeros(3), 0.0, 1)
        with pytest.raises(ValueError):
            gaussian_derivative(np.zeros(3), 1e-10, -1)


class TestPulseWaveform:
    def test_duration_and_rate(self):
        shape = pulse_waveform(order=5, tau_s=51e-12, fs_hz=50e9)
        assert shape.fs_hz == 50e9
        assert shape.duration_s == pytest.approx(2 * 10 * 51e-12, rel=0.01)

    def test_higher_order_shifts_peak_frequency_up(self):
        low = pulse_waveform(order=1, tau_s=51e-12)
        high = pulse_waveform(order=5, tau_s=51e-12)
        assert high.peak_frequency_hz() > low.peak_frequency_hz()

    def test_fifth_derivative_peak_in_fcc_band(self):
        """The classic 5th-derivative / 51 ps pulse peaks inside
        3.1-10.6 GHz."""
        shape = pulse_waveform(order=5, tau_s=51e-12)
        assert 3.1e9 < shape.peak_frequency_hz() < 10.6e9

    def test_energy_positive(self):
        assert pulse_waveform().energy_norm > 0


class TestFccMask:
    def test_mask_values(self):
        f = np.array([0.5e9, 1.0e9, 1.8e9, 2.5e9, 5.0e9, 11.0e9])
        m = fcc_indoor_mask_dbm_per_mhz(f)
        assert m.tolist() == [-41.3, -75.3, -53.3, -51.3, -41.3, -51.3]

    def test_gps_band_is_strictest(self):
        f = np.linspace(0.1e9, 12e9, 1000)
        m = fcc_indoor_mask_dbm_per_mhz(f)
        assert m.min() == -75.3


class TestCompliance:
    def test_event_rate_prf_compliant(self):
        """At biomedical event rates (<= a few kHz PRF) the 5th-derivative
        pulse sits far below the mask."""
        shape = pulse_waveform(order=5, tau_s=51e-12)
        ok, margin = check_fcc_compliance(shape, prf_hz=2000.0, peak_amplitude_v=0.5)
        assert ok
        assert margin > 20.0

    def test_absurd_prf_violates(self):
        """Cranking the PRF by ~9 orders of magnitude must break the mask —
        the check is not vacuous."""
        shape = pulse_waveform(order=5, tau_s=51e-12)
        ok_low, margin_low = check_fcc_compliance(shape, 2000.0)
        ok_high, margin_high = check_fcc_compliance(
            shape, 5e12, peak_amplitude_v=5.0
        )
        assert ok_low
        assert not ok_high
        assert margin_high < margin_low

    def test_psd_scales_with_prf(self):
        shape = pulse_waveform(order=5)
        _, psd1k = pulse_spectrum_dbm_per_mhz(shape, prf_hz=1000.0)
        _, psd2k = pulse_spectrum_dbm_per_mhz(shape, prf_hz=2000.0)
        band = np.isfinite(psd1k) & np.isfinite(psd2k)
        assert np.allclose(psd2k[band] - psd1k[band], 10 * np.log10(2), atol=1e-6)

    def test_invalid_prf(self):
        with pytest.raises(ValueError):
            pulse_spectrum_dbm_per_mhz(pulse_waveform(), prf_hz=0.0)
