"""Tests for pattern / event-stream persistence."""

import numpy as np
import pytest

from repro.core.datc import datc_encode
from repro.core.events import EventStream
from repro.signals.io import (
    export_events_csv,
    load_event_stream,
    load_pattern,
    save_event_stream,
    save_pattern,
)


class TestPatternRoundtrip:
    def test_roundtrip_exact(self, tmp_path, mid_pattern):
        path = str(tmp_path / "pattern.npz")
        save_pattern(path, mid_pattern)
        loaded = load_pattern(path)
        assert loaded.pattern_id == mid_pattern.pattern_id
        assert loaded.subject.subject_id == mid_pattern.subject.subject_id
        assert loaded.fs == mid_pattern.fs
        assert np.array_equal(loaded.emg, mid_pattern.emg)
        assert np.array_equal(loaded.force, mid_pattern.force)

    def test_model_parameters_preserved(self, tmp_path, mid_pattern):
        path = str(tmp_path / "pattern.npz")
        save_pattern(path, mid_pattern)
        loaded = load_pattern(path)
        original = mid_pattern.subject.model
        assert loaded.subject.model.gain_v == pytest.approx(original.gain_v)
        assert loaded.subject.model.f_high == pytest.approx(original.f_high)

    def test_loaded_pattern_encodes_identically(self, tmp_path, mid_pattern):
        path = str(tmp_path / "pattern.npz")
        save_pattern(path, mid_pattern)
        loaded = load_pattern(path)
        a, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        b, _ = datc_encode(loaded.emg, loaded.fs)
        assert np.array_equal(a.times, b.times)

    def test_wrong_kind_rejected(self, tmp_path, mid_pattern):
        path = str(tmp_path / "x.npz")
        stream = EventStream(times=np.array([1.0]), duration_s=2.0)
        save_event_stream(path, stream)
        with pytest.raises(ValueError, match="pattern"):
            load_pattern(path)

    def test_not_an_archive_rejected(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, whatever=np.zeros(3))
        with pytest.raises(ValueError, match="repro archive"):
            load_pattern(path)


class TestEventStreamRoundtrip:
    def test_roundtrip_with_levels(self, tmp_path):
        path = str(tmp_path / "events.npz")
        stream = EventStream(
            times=np.array([0.5, 1.5, 2.5]),
            duration_s=5.0,
            levels=np.array([3, 8, 15]),
            clock_hz=2000.0,
            symbols_per_event=5,
        )
        save_event_stream(path, stream)
        loaded = load_event_stream(path)
        assert np.array_equal(loaded.times, stream.times)
        assert np.array_equal(loaded.levels, stream.levels)
        assert loaded.clock_hz == 2000.0
        assert loaded.symbols_per_event == 5

    def test_roundtrip_without_levels(self, tmp_path):
        path = str(tmp_path / "events.npz")
        stream = EventStream(times=np.array([0.25]), duration_s=1.0)
        save_event_stream(path, stream)
        loaded = load_event_stream(path)
        assert loaded.levels is None
        assert loaded.n_events == 1

    def test_empty_stream(self, tmp_path):
        path = str(tmp_path / "events.npz")
        stream = EventStream(times=np.zeros(0), duration_s=1.0)
        save_event_stream(path, stream)
        assert load_event_stream(path).n_events == 0


class TestCsvExport:
    def test_csv_with_levels(self, tmp_path):
        path = str(tmp_path / "events.csv")
        stream = EventStream(
            times=np.array([0.5, 1.5]),
            duration_s=5.0,
            levels=np.array([8, 15]),
            symbols_per_event=5,
        )
        export_events_csv(path, stream)
        lines = open(path).read().strip().splitlines()
        assert lines[0] == "time_s,level,vth_v"
        assert lines[1].startswith("0.500000,8,0.5")
        assert len(lines) == 3

    def test_csv_without_levels(self, tmp_path):
        path = str(tmp_path / "events.csv")
        stream = EventStream(times=np.array([0.125]), duration_s=1.0)
        export_events_csv(path, stream)
        lines = open(path).read().strip().splitlines()
        assert lines == ["time_s", "0.125000"]
