"""Tests for force-profile generators."""

import numpy as np
import pytest

from repro.signals.force import (
    concatenate_profiles,
    constant_profile,
    mvc_grip_protocol,
    ramp_profile,
    random_grip_protocol,
    rest_profile,
    sinusoidal_profile,
    smooth_profile,
    staircase_profile,
    trapezoid_profile,
)

FS = 1000.0


class TestConstantProfile:
    def test_length_and_value(self):
        p = constant_profile(2.0, FS, 0.5)
        assert p.size == 2000
        assert np.all(p == 0.5)

    def test_zero_duration(self):
        assert constant_profile(0.0, FS, 0.5).size == 0

    def test_level_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            constant_profile(1.0, FS, 1.5)
        with pytest.raises(ValueError):
            constant_profile(1.0, FS, -0.1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            constant_profile(-1.0, FS, 0.5)

    def test_bad_fs_rejected(self):
        with pytest.raises(ValueError):
            constant_profile(1.0, 0.0, 0.5)


class TestRampProfile:
    def test_endpoints(self):
        p = ramp_profile(1.0, FS, 0.1, 0.9)
        assert p[0] == pytest.approx(0.1)
        assert p[-1] == pytest.approx(0.9)

    def test_monotone_increasing(self):
        p = ramp_profile(1.0, FS, 0.0, 1.0)
        assert np.all(np.diff(p) >= 0)

    def test_descending_ramp(self):
        p = ramp_profile(1.0, FS, 0.8, 0.2)
        assert np.all(np.diff(p) <= 0)

    def test_empty(self):
        assert ramp_profile(0.0, FS, 0.0, 1.0).size == 0


class TestTrapezoidProfile:
    def test_reaches_level_and_returns(self):
        p = trapezoid_profile(0.2, 0.6, 0.2, FS, 0.7)
        assert p.max() == pytest.approx(0.7)
        assert p[0] == pytest.approx(0.0)
        assert p[-1] == pytest.approx(0.0)

    def test_hold_segment_is_flat(self):
        p = trapezoid_profile(0.1, 0.5, 0.1, FS, 0.6)
        hold = p[150:550]
        assert np.allclose(hold, 0.6)

    def test_total_length(self):
        p = trapezoid_profile(0.1, 0.2, 0.3, FS, 0.5)
        assert p.size == 100 + 200 + 300


class TestStaircaseProfile:
    def test_levels_in_order(self):
        p = staircase_profile([0.1, 0.5, 0.9], 0.1, FS)
        assert p.size == 300
        assert np.allclose(p[:100], 0.1)
        assert np.allclose(p[100:200], 0.5)
        assert np.allclose(p[200:], 0.9)

    def test_empty_levels(self):
        assert staircase_profile([], 1.0, FS).size == 0


class TestSinusoidalProfile:
    def test_clipped_to_unit_interval(self):
        p = sinusoidal_profile(2.0, FS, mean=0.5, amplitude=0.8, frequency_hz=1.0)
        assert p.min() >= 0.0
        assert p.max() <= 1.0

    def test_mean_without_clipping(self):
        p = sinusoidal_profile(5.0, FS, mean=0.5, amplitude=0.2, frequency_hz=2.0)
        assert p.mean() == pytest.approx(0.5, abs=0.01)


class TestSmoothProfile:
    def test_preserves_constant(self):
        p = constant_profile(1.0, FS, 0.4)
        assert np.allclose(smooth_profile(p, FS), 0.4, atol=1e-6)

    def test_removes_discontinuity(self):
        p = concatenate_profiles(rest_profile(0.5, FS), constant_profile(0.5, FS, 1.0))
        s = smooth_profile(p, FS, cutoff_hz=2.0)
        assert np.max(np.abs(np.diff(s))) < np.max(np.abs(np.diff(p)))

    def test_zero_phase(self):
        # A symmetric bump must stay centred after smoothing.
        p = trapezoid_profile(0.3, 0.4, 0.3, FS, 0.8)
        s = smooth_profile(p, FS)
        centre = p.size // 2
        assert abs(int(np.argmax(s)) - centre) < int(0.1 * FS)

    def test_empty_input(self):
        assert smooth_profile(np.zeros(0), FS).size == 0

    def test_bad_cutoff_rejected(self):
        with pytest.raises(ValueError):
            smooth_profile(np.zeros(10), FS, cutoff_hz=0.0)


class TestMvcGripProtocol:
    def test_exact_sample_count(self):
        p = mvc_grip_protocol(20.0, 2500.0)
        assert p.size == 50_000

    def test_within_unit_interval(self):
        p = mvc_grip_protocol(20.0, 2500.0)
        assert p.min() >= 0.0
        assert p.max() <= 1.0

    def test_peak_near_max_level(self):
        p = mvc_grip_protocol(20.0, 2500.0, max_level=0.7)
        assert 0.55 <= p.max() <= 0.7

    def test_decreasing_contraction_peaks(self):
        """The protocol sweeps 70% MVC down towards 0."""
        p = mvc_grip_protocol(20.0, 2500.0, n_contractions=6)
        thirds = np.array_split(p, 3)
        maxima = [seg.max() for seg in thirds]
        assert maxima[0] > maxima[1] > maxima[2]

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            mvc_grip_protocol(20.0, FS, n_contractions=0)
        with pytest.raises(ValueError):
            mvc_grip_protocol(20.0, FS, rest_fraction=1.0)


class TestRandomGripProtocol:
    def test_reproducible_for_same_seed(self):
        a = random_grip_protocol(10.0, FS, np.random.default_rng(7))
        b = random_grip_protocol(10.0, FS, np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = random_grip_protocol(10.0, FS, np.random.default_rng(7))
        b = random_grip_protocol(10.0, FS, np.random.default_rng(8))
        assert not np.array_equal(a, b)

    def test_sample_count_and_bounds(self):
        p = random_grip_protocol(10.0, FS, np.random.default_rng(3))
        assert p.size == 10_000
        assert p.min() >= 0.0
        assert p.max() <= 1.0


class TestConcatenateProfiles:
    def test_orders_segments(self):
        p = concatenate_profiles(
            constant_profile(0.1, FS, 0.2), constant_profile(0.1, FS, 0.8)
        )
        assert np.allclose(p[:100], 0.2)
        assert np.allclose(p[100:], 0.8)

    def test_no_args(self):
        assert concatenate_profiles().size == 0
