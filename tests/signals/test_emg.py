"""Tests for the synthetic sEMG generator."""

import numpy as np
import pytest

from repro.signals.emg import EMGModel, shaped_noise, shwedyk_psd, synthesize_emg
from repro.signals.force import constant_profile, mvc_grip_protocol

FS = 2500.0


class TestShwedykPsd:
    def test_zero_at_dc(self):
        assert shwedyk_psd(np.array([0.0]))[0] == 0.0

    def test_peak_location_between_flow_fhigh(self):
        f = np.linspace(0.0, 1000.0, 20001)
        psd = shwedyk_psd(f, f_low=80.0, f_high=200.0)
        peak = f[np.argmax(psd)]
        assert 80.0 <= peak <= 200.0

    def test_high_frequency_rolloff(self):
        psd = shwedyk_psd(np.array([200.0, 400.0, 800.0]))
        assert psd[0] > psd[1] > psd[2]

    def test_non_negative(self):
        f = np.linspace(0, 1250, 1000)
        assert np.all(shwedyk_psd(f) >= 0)


class TestShapedNoise:
    def test_unit_variance(self, rng):
        x = shaped_noise(50_000, FS, rng)
        assert x.std() == pytest.approx(1.0, rel=1e-6)

    def test_zero_mean_no_dc(self, rng):
        x = shaped_noise(50_000, FS, rng)
        assert abs(x.mean()) < 0.05

    def test_empty(self, rng):
        assert shaped_noise(0, FS, rng).size == 0

    def test_spectrum_is_bandlimited(self, rng):
        """Most energy must sit in the 20-450 Hz sEMG band."""
        x = shaped_noise(100_000, FS, rng)
        spectrum = np.abs(np.fft.rfft(x)) ** 2
        freqs = np.fft.rfftfreq(x.size, 1.0 / FS)
        in_band = spectrum[(freqs >= 20) & (freqs <= 450)].sum()
        assert in_band / spectrum.sum() > 0.85

    def test_deterministic_given_seed(self):
        a = shaped_noise(1000, FS, np.random.default_rng(5))
        b = shaped_noise(1000, FS, np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestEMGModel:
    def test_defaults_valid(self):
        EMGModel()  # must not raise

    def test_amplitude_monotone_in_force(self):
        m = EMGModel(gain_v=0.5, alpha=1.1)
        forces = np.linspace(0, 1, 11)
        amps = m.amplitude(forces)
        assert np.all(np.diff(amps) > 0)

    def test_amplitude_at_extremes(self):
        m = EMGModel(gain_v=0.5)
        assert m.amplitude(np.array([0.0]))[0] == 0.0
        assert m.amplitude(np.array([1.0]))[0] == pytest.approx(0.5)

    def test_amplitude_clips_force(self):
        m = EMGModel(gain_v=0.5)
        assert m.amplitude(np.array([2.0]))[0] == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gain_v": 0.0},
            {"gain_v": -1.0},
            {"alpha": 0.0},
            {"noise_floor_v": -0.1},
            {"f_low": 0.0},
            {"f_low": 300.0, "f_high": 200.0},
        ],
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EMGModel(**kwargs)


class TestSynthesizeEmg:
    def test_output_length_matches_force(self, rng):
        force = mvc_grip_protocol(4.0, FS)
        emg = synthesize_emg(force, FS, EMGModel(), rng)
        assert emg.shape == force.shape

    def test_amplitude_tracks_force(self, rng):
        """Stronger force segments must have larger rectified amplitude."""
        force = np.concatenate(
            [constant_profile(2.0, FS, 0.1), constant_profile(2.0, FS, 0.8)]
        )
        emg = synthesize_emg(force, FS, EMGModel(gain_v=0.5, noise_floor_v=0.0), rng)
        weak = np.abs(emg[: emg.size // 2]).mean()
        strong = np.abs(emg[emg.size // 2 :]).mean()
        assert strong > 4 * weak

    def test_rest_leaves_only_noise_floor(self, rng):
        force = constant_profile(2.0, FS, 0.0)
        m = EMGModel(gain_v=0.5, noise_floor_v=0.01)
        emg = synthesize_emg(force, FS, m, rng)
        assert np.abs(emg).mean() < 3 * m.noise_floor_v

    def test_deterministic_given_seed(self):
        force = constant_profile(1.0, FS, 0.5)
        a = synthesize_emg(force, FS, EMGModel(), np.random.default_rng(9))
        b = synthesize_emg(force, FS, EMGModel(), np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_signed_output(self, rng):
        force = constant_profile(2.0, FS, 0.7)
        emg = synthesize_emg(force, FS, EMGModel(), rng)
        assert (emg > 0).any() and (emg < 0).any()
