"""Tests for the synthetic subject population."""

import numpy as np
import pytest

from repro.signals.subjects import DEFAULT_N_SUBJECTS, Subject, sample_subjects
from repro.signals.emg import EMGModel


class TestSampleSubjects:
    def test_default_count(self):
        assert len(sample_subjects()) == DEFAULT_N_SUBJECTS

    def test_deterministic(self):
        a = sample_subjects(seed=2015)
        b = sample_subjects(seed=2015)
        assert [s.model.gain_v for s in a] == [s.model.gain_v for s in b]

    def test_different_seed_differs(self):
        a = sample_subjects(seed=1)
        b = sample_subjects(seed=2)
        assert [s.model.gain_v for s in a] != [s.model.gain_v for s in b]

    def test_ids_sequential(self):
        subs = sample_subjects(5)
        assert [s.subject_id for s in subs] == list(range(5))

    def test_population_spans_amplitude_range(self):
        """The weakest subject must sit well below the 0.3 V fixed
        threshold and the strongest close to the 1 V DAC reference —
        that spread is what Fig. 5 exercises."""
        subs = sample_subjects()
        gains = [s.model.gain_v for s in subs]
        assert min(gains) < 0.2
        assert max(gains) > 0.8

    def test_single_subject(self):
        subs = sample_subjects(1)
        assert len(subs) == 1

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            sample_subjects(0)

    def test_models_valid(self):
        for s in sample_subjects():
            assert isinstance(s.model, EMGModel)
            assert s.model.f_low < s.model.f_high


class TestSubject:
    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Subject(subject_id=-1, model=EMGModel())

    def test_description_mentions_gain(self):
        s = sample_subjects()[0]
        assert f"{s.model.gain_v:.3f}" in s.description
