"""Tests for the 190-pattern dataset specification."""

import numpy as np
import pytest

from repro.signals.dataset import (
    PAPER_DURATION_S,
    PAPER_N_PATTERNS,
    PAPER_N_SAMPLES,
    PAPER_N_SUBJECTS,
    PAPER_SAMPLE_RATE_HZ,
    DatasetSpec,
    Pattern,
    default_dataset,
)
from repro.signals.subjects import sample_subjects


class TestPaperConstants:
    def test_dimensions_match_paper(self):
        """190 patterns, 8 subjects, 50000 samples / 20 s."""
        assert PAPER_N_PATTERNS == 190
        assert PAPER_N_SUBJECTS == 8
        assert PAPER_N_SAMPLES == 50_000
        assert PAPER_DURATION_S == 20.0
        assert PAPER_SAMPLE_RATE_HZ == 2500.0


class TestDatasetSpec:
    def test_default_matches_paper(self):
        ds = default_dataset()
        assert len(ds) == 190
        assert len(ds.subjects) == 8

    def test_pattern_sample_count(self, small_dataset):
        p = small_dataset.pattern(0)
        assert p.n_samples == int(4.0 * 2500)

    def test_full_size_pattern_sample_count(self):
        p = default_dataset().pattern(0)
        assert p.n_samples == PAPER_N_SAMPLES
        assert p.duration_s == pytest.approx(20.0)

    def test_patterns_deterministic(self, small_dataset):
        a = small_dataset.pattern(3)
        b = small_dataset.pattern(3)
        assert np.array_equal(a.emg, b.emg)
        assert np.array_equal(a.force, b.force)

    def test_patterns_distinct(self, small_dataset):
        a = small_dataset.pattern(0)
        b = small_dataset.pattern(1)
        assert not np.array_equal(a.emg, b.emg)

    def test_same_subject_different_patterns_differ(self, small_dataset):
        """Two recordings of the same subject use different realisations."""
        n_sub = small_dataset.n_subjects
        # patterns 0 and n_sub share subject 0 by round-robin assignment
        ds = DatasetSpec(n_patterns=n_sub + 1, duration_s=2.0)
        a, b = ds.pattern(0), ds.pattern(n_sub)
        assert a.subject.subject_id == b.subject.subject_id
        assert not np.array_equal(a.emg, b.emg)

    def test_round_robin_subjects(self, small_dataset):
        for i in range(len(small_dataset)):
            assert small_dataset.pattern(i).subject.subject_id == i % small_dataset.n_subjects

    def test_out_of_range_pattern_rejected(self, small_dataset):
        with pytest.raises(IndexError):
            small_dataset.pattern(len(small_dataset))
        with pytest.raises(IndexError):
            small_dataset.pattern(-1)

    def test_patterns_iterator_order(self, small_dataset):
        ids = [p.pattern_id for p in small_dataset.patterns()]
        assert ids == list(range(len(small_dataset)))

    def test_explicit_subjects_length_checked(self):
        subs = tuple(sample_subjects(3))
        with pytest.raises(ValueError):
            DatasetSpec(n_patterns=5, n_subjects=4, subjects=subs)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            DatasetSpec(n_patterns=0)
        with pytest.raises(ValueError):
            DatasetSpec(n_subjects=0)

    def test_model_for_matches_subject(self, small_dataset):
        assert small_dataset.model_for(2) is small_dataset.subject_for(2).model


class TestPattern:
    def test_rectified_non_negative(self, mid_pattern):
        assert np.all(mid_pattern.rectified() >= 0)

    def test_ground_truth_envelope_tracks_force(self, mid_pattern):
        """The ARV envelope must correlate strongly with the force profile
        that modulated the signal (the premise of the whole paper)."""
        env = mid_pattern.ground_truth_envelope()
        force = mid_pattern.force
        r = np.corrcoef(env, force)[0, 1]
        assert r > 0.95

    def test_misaligned_arrays_rejected(self, small_dataset):
        p = small_dataset.pattern(0)
        with pytest.raises(ValueError):
            Pattern(
                pattern_id=0,
                subject=p.subject,
                fs=p.fs,
                emg=p.emg,
                force=p.force[:-1],
            )

    def test_bad_fs_rejected(self, small_dataset):
        p = small_dataset.pattern(0)
        with pytest.raises(ValueError):
            Pattern(pattern_id=0, subject=p.subject, fs=0.0, emg=p.emg, force=p.force)

    def test_amplitude_scales_with_subject_gain(self, small_dataset):
        weak = small_dataset.pattern(0)   # subject 0: pinned low gain
        strong = small_dataset.pattern(3)  # subject 3: high gain
        assert (
            np.abs(strong.emg).mean()
            > 2 * np.abs(weak.emg).mean()
        )
