"""Tests for artifact injection."""

import numpy as np
import pytest

from repro.signals.artifacts import (
    add_motion_artifacts,
    add_powerline,
    add_spike_artifacts,
)

FS = 2000.0


class TestMotionArtifacts:
    def test_returns_new_array(self, rng):
        x = np.zeros(4000)
        y = add_motion_artifacts(x, FS, rng)
        assert y is not x
        assert np.all(x == 0)  # input untouched

    def test_adds_energy(self, rng):
        x = np.zeros(4000)
        y = add_motion_artifacts(x, FS, rng, n_bursts=3, amplitude_v=0.3)
        assert np.abs(y).max() > 0.1

    def test_low_frequency_content(self, rng):
        x = np.zeros(8000)
        y = add_motion_artifacts(x, FS, rng, n_bursts=5)
        spectrum = np.abs(np.fft.rfft(y)) ** 2
        freqs = np.fft.rfftfreq(y.size, 1 / FS)
        low = spectrum[freqs <= 15].sum()
        assert low / spectrum.sum() > 0.9

    def test_zero_bursts_noop(self, rng):
        x = np.ones(100)
        assert np.array_equal(add_motion_artifacts(x, FS, rng, n_bursts=0), x)

    def test_empty_signal(self, rng):
        assert add_motion_artifacts(np.zeros(0), FS, rng).size == 0


class TestSpikeArtifacts:
    def test_spikes_are_positive(self, rng):
        x = np.zeros(8000)
        y = add_spike_artifacts(x, FS, rng, rate_hz=5.0, amplitude_v=0.5)
        assert y.min() >= 0.0
        assert y.max() > 0.3

    def test_rate_controls_count(self):
        x = np.zeros(40_000)
        lo = add_spike_artifacts(x, FS, np.random.default_rng(1), rate_hz=0.5)
        hi = add_spike_artifacts(x, FS, np.random.default_rng(1), rate_hz=20.0)
        assert (hi > 0.25).sum() > (lo > 0.25).sum()

    def test_zero_rate_noop(self, rng):
        x = np.ones(100)
        assert np.array_equal(add_spike_artifacts(x, FS, rng, rate_hz=0.0), x)


class TestPowerline:
    def test_adds_tone_at_frequency(self):
        x = np.zeros(4000)
        y = add_powerline(x, FS, amplitude_v=0.1, frequency_hz=50.0)
        spectrum = np.abs(np.fft.rfft(y))
        freqs = np.fft.rfftfreq(y.size, 1 / FS)
        peak_freq = freqs[np.argmax(spectrum)]
        assert peak_freq == pytest.approx(50.0, abs=1.0)

    def test_amplitude(self):
        y = add_powerline(np.zeros(4000), FS, amplitude_v=0.25)
        assert y.max() == pytest.approx(0.25, abs=0.01)

    def test_superposition(self):
        x = np.ones(100)
        y = add_powerline(x, FS, amplitude_v=0.0)
        assert np.array_equal(y, x)
