"""Tests for rectification and envelope estimation."""

import numpy as np
import pytest

from repro.signals.envelope import (
    arv,
    arv_envelope,
    lowpass_envelope,
    moving_average,
    rectify,
    rms_envelope,
)

FS = 1000.0


class TestRectify:
    def test_absolute_value(self):
        x = np.array([-1.0, 0.0, 2.0, -3.0])
        assert np.array_equal(rectify(x), [1.0, 0.0, 2.0, 3.0])

    def test_idempotent(self):
        x = np.random.default_rng(0).standard_normal(100)
        assert np.array_equal(rectify(rectify(x)), rectify(x))


class TestMovingAverage:
    def test_window_one_is_identity(self):
        x = np.arange(10.0)
        assert np.array_equal(moving_average(x, 1), x)

    def test_constant_preserved(self):
        x = np.full(50, 3.3)
        assert np.allclose(moving_average(x, 7), 3.3)

    def test_mean_preserving_for_flat_interior(self):
        x = np.concatenate([np.zeros(50), np.ones(100), np.zeros(50)])
        avg = moving_average(x, 10)
        assert np.allclose(avg[60:140], 1.0)

    def test_no_edge_droop(self):
        """Edge windows must normalise by their true (shorter) length."""
        x = np.full(20, 2.0)
        avg = moving_average(x, 15)
        assert np.allclose(avg, 2.0)

    def test_window_larger_than_signal(self):
        """The window clips to the signal length; edges normalise by their
        true (shorter) span."""
        x = np.array([1.0, 2.0, 3.0])
        avg = moving_average(x, 100)
        assert np.allclose(avg, [1.5, 2.0, 2.5])

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            moving_average(np.zeros(5), 0)

    def test_empty_signal(self):
        assert moving_average(np.zeros(0), 3).size == 0

    def test_matches_naive_implementation(self):
        rng = np.random.default_rng(4)
        x = rng.standard_normal(97)
        w = 9
        fast = moving_average(x, w)
        half_lo, half_hi = w // 2, w - w // 2
        naive = np.array(
            [x[max(0, i - half_lo) : min(x.size, i + half_hi)].mean() for i in range(x.size)]
        )
        assert np.allclose(fast, naive)

    def test_axis_rows_match_1d(self):
        """The batched receiver's axis-aware smoothing: every row of a 2-D
        call is bit-identical to smoothing that row alone."""
        rng = np.random.default_rng(5)
        for n, w in [(3, 2), (40, 7), (200, 25), (5, 100)]:
            x = rng.standard_normal((4, n))
            smoothed = moving_average(x, w, axis=-1)
            for r in range(4):
                assert np.array_equal(smoothed[r], moving_average(x[r], w))

    def test_axis_zero(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((30, 4))
        smoothed = moving_average(x, 5, axis=0)
        for c in range(4):
            assert np.array_equal(smoothed[:, c], moving_average(x[:, c], 5))

    def test_empty_rows(self):
        assert moving_average(np.zeros((3, 0)), 5, axis=-1).shape == (3, 0)


class TestArvEnvelope:
    def test_constant_sine_envelope(self):
        t = np.arange(0, 2.0, 1 / FS)
        x = np.sin(2 * np.pi * 50 * t)
        env = arv_envelope(x, FS, window_s=0.2)
        # ARV of a unit sine is 2/pi.
        interior = env[200:-200]
        assert np.allclose(interior, 2 / np.pi, atol=0.02)

    def test_tracks_amplitude_steps(self):
        t = np.arange(0, 1.0, 1 / FS)
        x = np.concatenate(
            [0.2 * np.sin(2 * np.pi * 80 * t), 1.0 * np.sin(2 * np.pi * 80 * t)]
        )
        env = arv_envelope(x, FS, window_s=0.1)
        assert env[1500:].mean() > 4 * env[:500].mean()

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            arv_envelope(np.zeros(10), FS, window_s=0.0)


class TestRmsEnvelope:
    def test_rms_of_unit_sine(self):
        t = np.arange(0, 2.0, 1 / FS)
        x = np.sin(2 * np.pi * 50 * t)
        env = rms_envelope(x, FS, window_s=0.2)
        interior = env[200:-200]
        assert np.allclose(interior, 1 / np.sqrt(2), atol=0.02)

    def test_rms_geq_arv(self):
        """RMS >= ARV pointwise for the same window (Jensen)."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal(2000)
        assert np.all(rms_envelope(x, FS, 0.1) >= arv_envelope(x, FS, 0.1) - 1e-12)


class TestLowpassEnvelope:
    def test_non_negative(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal(1000)
        assert np.all(lowpass_envelope(x, FS) >= 0)

    def test_tracks_mean_level(self):
        x = np.full(2000, -0.5)
        env = lowpass_envelope(x, FS, cutoff_hz=5.0)
        assert np.allclose(env, 0.5, atol=1e-3)

    def test_bad_cutoff_rejected(self):
        with pytest.raises(ValueError):
            lowpass_envelope(np.zeros(10), FS, cutoff_hz=-1.0)

    def test_empty(self):
        assert lowpass_envelope(np.zeros(0), FS).size == 0


class TestArvScalar:
    def test_known_value(self):
        assert arv(np.array([1.0, -1.0, 2.0, -2.0])) == pytest.approx(1.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            arv(np.zeros(0))
