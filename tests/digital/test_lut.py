"""Tests for the Intervals LUT (paper Eqn. 2)."""

import numpy as np
import pytest

from repro.digital.lut import (
    FRAME_SIZES,
    N_INTERVALS,
    IntervalLUT,
    interval_fractions,
    interval_levels,
)


class TestIntervalFractions:
    def test_paper_ladder(self):
        """0.03, 0.06, ..., 0.45, 0.48 — Eqn. (2)."""
        f = interval_fractions()
        assert f[0] == pytest.approx(0.03)
        assert f[1] == pytest.approx(0.06)
        assert f[14] == pytest.approx(0.45)
        assert f[15] == pytest.approx(0.48)

    def test_uniform_spacing(self):
        f = interval_fractions()
        assert np.allclose(np.diff(f), 0.03)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            interval_fractions(1)
        with pytest.raises(ValueError):
            interval_fractions(16, step=0.0)


class TestIntervalLevels:
    def test_scales_with_frame_size(self):
        lv100 = interval_levels(100)
        lv800 = interval_levels(800)
        assert np.allclose(lv800, 8 * lv100)

    def test_paper_example_values(self):
        lv = interval_levels(100)
        assert lv[15] == pytest.approx(48.0)  # 0.48 * 100
        assert lv[0] == pytest.approx(3.0)    # 0.03 * 100

    def test_invalid_frame_size(self):
        with pytest.raises(ValueError):
            interval_levels(0)


class TestIntervalLUT:
    def test_paper_frame_sizes(self):
        assert FRAME_SIZES == (100, 200, 400, 800)
        assert N_INTERVALS == 16

    def test_entries_are_exact_integers(self):
        """0.03*(i+1)*frame_size is an exact integer for all four legal
        frame sizes — the LUT is lossless."""
        lut = IntervalLUT()
        for sel, size in enumerate(FRAME_SIZES):
            ints = lut.entry(sel)
            floats = interval_levels(size)
            assert list(ints) == [int(round(v)) for v in floats]
            assert np.allclose(ints, floats)

    def test_entry_monotone(self):
        lut = IntervalLUT()
        for sel in range(4):
            e = lut.entry(sel)
            assert all(a < b for a, b in zip(e, e[1:]))

    def test_level_accessor(self):
        lut = IntervalLUT()
        assert lut.level(0, 15) == 48
        assert lut.level(3, 0) == 24

    def test_frame_size_accessor(self):
        lut = IntervalLUT()
        assert lut.frame_size(2) == 400

    def test_out_of_range_selector(self):
        lut = IntervalLUT()
        with pytest.raises(ValueError):
            lut.entry(4)
        with pytest.raises(ValueError):
            lut.frame_size(-1)
        with pytest.raises(ValueError):
            lut.level(0, 16)

    def test_rom_geometry(self):
        lut = IntervalLUT()
        assert lut.n_words == 64  # 4 frame sizes x 16 levels
        assert lut.word_width_bits == 9  # max entry 384 = 0.48*800

    def test_custom_frame_sizes(self):
        lut = IntervalLUT(frame_sizes=(50,))
        assert lut.entry(0)[0] == 2  # round(1.5)

    def test_empty_frame_sizes_rejected(self):
        with pytest.raises(ValueError):
            IntervalLUT(frame_sizes=())
