"""Tests for the RTL primitives."""

import pytest

from repro.digital.primitives import Counter, Mux, Register, ShiftRegister, mask_for_width


class TestMaskForWidth:
    def test_values(self):
        assert mask_for_width(1) == 1
        assert mask_for_width(4) == 15
        assert mask_for_width(10) == 1023

    def test_invalid(self):
        with pytest.raises(ValueError):
            mask_for_width(0)


class TestRegister:
    def test_reset_value(self):
        r = Register(4, reset_value=8)
        assert r.q == 8

    def test_load_truncates_to_width(self):
        r = Register(4)
        r.load(0x1F)
        assert r.q == 0xF

    def test_reset_restores(self):
        r = Register(4, reset_value=3)
        r.load(9)
        r.reset()
        assert r.q == 3

    def test_reset_value_must_fit(self):
        with pytest.raises(ValueError):
            Register(2, reset_value=4)

    def test_flip_flop_count(self):
        assert Register(10).n_flip_flops == 10


class TestCounter:
    def test_counts_when_enabled(self):
        c = Counter(4)
        for expected in range(1, 6):
            assert c.tick() == expected

    def test_holds_when_disabled(self):
        c = Counter(4)
        c.tick()
        assert c.tick(enable=False) == 1

    def test_wraps_by_default(self):
        c = Counter(2)
        for _ in range(4):
            c.tick()
        assert c.q == 0

    def test_saturates_when_requested(self):
        c = Counter(2, saturate=True)
        for _ in range(10):
            c.tick()
        assert c.q == 3

    def test_clear(self):
        c = Counter(8)
        c.tick()
        c.clear()
        assert c.q == 0

    def test_ten_bit_counter_covers_max_frame(self):
        """Paper: 10-bit wiring suffices for the 800-cycle frame."""
        c = Counter(10)
        for _ in range(800):
            c.tick()
        assert c.q == 800  # no wrap


class TestShiftRegister:
    def test_initially_zero(self):
        s = ShiftRegister(10, 3)
        assert s.taps() == (0, 0, 0)

    def test_shift_order_oldest_first(self):
        """shift_in models N_one1 <- N_one2 <- N_one3 <- new."""
        s = ShiftRegister(10, 3)
        s.shift_in(5)
        assert s.taps() == (0, 0, 5)
        s.shift_in(7)
        assert s.taps() == (0, 5, 7)
        s.shift_in(9)
        assert s.taps() == (5, 7, 9)
        s.shift_in(11)
        assert s.taps() == (7, 9, 11)

    def test_getitem(self):
        s = ShiftRegister(8, 3)
        s.shift_in(42)
        assert s[2] == 42

    def test_width_truncation(self):
        s = ShiftRegister(4, 2)
        s.shift_in(0x3F)
        assert s[1] == 0xF

    def test_reset(self):
        s = ShiftRegister(4, 3)
        s.shift_in(3)
        s.reset()
        assert s.taps() == (0, 0, 0)

    def test_flip_flop_count(self):
        assert ShiftRegister(10, 3).n_flip_flops == 30

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            ShiftRegister(4, 0)


class TestMux:
    def test_selects(self):
        m = Mux(4, 10)
        assert m.select((100, 200, 400, 800), 2) == 400

    def test_select_out_of_range(self):
        m = Mux(2, 4)
        with pytest.raises(ValueError):
            m.select((1, 2), 2)

    def test_wrong_input_count(self):
        m = Mux(4, 4)
        with pytest.raises(ValueError):
            m.select((1, 2), 0)

    def test_width_truncation(self):
        m = Mux(2, 4)
        assert m.select((0xFF, 0), 0) == 0xF

    def test_needs_two_inputs(self):
        with pytest.raises(ValueError):
            Mux(1, 4)
