"""Tests for the cycle-accurate Dynamic Threshold Controller."""

import numpy as np
import pytest

from repro.digital.dtc_rtl import DTC_PORT_LIST, DTCPorts, DTCRtl
from repro.digital.lut import FRAME_SIZES


class TestPorts:
    def test_twelve_ports_as_in_table1(self):
        assert DTCPorts().n_ports == 12

    def test_port_names_include_paper_signals(self):
        names = {p[0] for p in DTC_PORT_LIST}
        for required in ("CLK", "RST", "EN", "D_in", "Set_Vth", "VDD", "GND"):
            assert required in names

    def test_set_vth_is_four_bits(self):
        widths = {name: width for name, width, _ in DTC_PORT_LIST}
        assert widths["Set_Vth"] == 4


class TestDTCRtlBasics:
    def test_initial_level(self):
        dtc = DTCRtl(initial_level=8)
        assert dtc.set_vth_reg.q == 8

    def test_level_constant_within_frame(self):
        dtc = DTCRtl(frame_selector=0, initial_level=8)
        levels = [dtc.step(1).set_vth for _ in range(100)]
        assert all(lv == 8 for lv in levels)

    def test_end_of_frame_every_frame_size_cycles(self):
        dtc = DTCRtl(frame_selector=0)
        flags = [dtc.step(0).end_of_frame for _ in range(250)]
        assert [i for i, f in enumerate(flags) if f] == [99, 199]

    @pytest.mark.parametrize("sel,size", list(enumerate(FRAME_SIZES)))
    def test_all_frame_sizes(self, sel, size):
        dtc = DTCRtl(frame_selector=sel)
        flags = [dtc.step(1).end_of_frame for _ in range(size)]
        assert flags[-1] and not any(flags[:-1])

    def test_all_ones_saturates_to_top_level(self):
        """A 100% duty input exceeds interval_level_15 = 0.48*frame."""
        dtc = DTCRtl(frame_selector=0)
        out = dtc.run(np.ones(300, dtype=np.uint8))
        assert out["frame_levels"][-1] == 15

    def test_all_zeros_falls_to_min_level(self):
        dtc = DTCRtl(frame_selector=0, initial_level=8)
        out = dtc.run(np.zeros(300, dtype=np.uint8))
        assert out["frame_levels"][-1] == 1  # Listing 1's else-branch floor

    def test_level_never_reaches_zero(self):
        rng = np.random.default_rng(0)
        dtc = DTCRtl(frame_selector=0)
        out = dtc.run((rng.random(2000) < 0.02).astype(np.uint8))
        assert out["set_vth"].min() >= 1

    def test_frame_ones_counts_input(self):
        dtc = DTCRtl(frame_selector=0)
        d_in = np.zeros(100, dtype=np.uint8)
        d_in[:37] = 1
        out = dtc.run(d_in)
        assert out["frame_ones"][0] == 37

    def test_enable_low_freezes_state(self):
        dtc = DTCRtl(frame_selector=0)
        for _ in range(50):
            dtc.step(1)
        count = dtc.ones_counter.q
        out = dtc.step(1, enable=False)
        assert dtc.ones_counter.q == count
        assert not out.end_of_frame

    def test_reset_restores_initial_state(self):
        dtc = DTCRtl(frame_selector=0, initial_level=8)
        dtc.run(np.ones(250, dtype=np.uint8))
        dtc.reset()
        assert dtc.set_vth_reg.q == 8
        assert dtc.ones_counter.q == 0
        assert dtc.frame_counter.q == 0
        assert dtc.history.taps() == (0, 0, 0)
        assert dtc.cycles_elapsed == 0

    def test_flip_flop_budget(self):
        """1 + 10 + 10 + 30 + 4 = 55 architectural flops (In_reg, two
        counters, 3x10 history, Set_Vth)."""
        assert DTCRtl().n_flip_flops == 55

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            DTCRtl(frame_selector=4)
        with pytest.raises(ValueError):
            DTCRtl(initial_level=16)
        with pytest.raises(ValueError):
            DTCRtl(min_level=16)
        with pytest.raises(ValueError):
            DTCRtl(initial_level=0, min_level=1)


class TestDTCRtlDynamics:
    def test_duty_cycle_steers_level(self):
        """Higher input duty must settle at a higher Set_Vth."""

        def settle(duty: float) -> int:
            rng = np.random.default_rng(42)
            dtc = DTCRtl(frame_selector=0)
            d_in = (rng.random(2000) < duty).astype(np.uint8)
            return int(dtc.run(d_in)["frame_levels"][-1])

        levels = [settle(d) for d in (0.05, 0.2, 0.4, 0.6)]
        assert levels == sorted(levels)
        assert levels[0] <= 2
        assert levels[-1] == 15

    def test_constant_duty_matches_interval_ladder(self):
        """For a deterministic duty d the settled level is the Eqn. (2)
        lookup of d*frame_size (the weighted mean of equal counts is the
        count itself)."""
        frame = 100
        duty_ones = 25  # 25% duty -> between 0.24 (level 7) and 0.27 (8)
        d_in = np.tile(
            np.concatenate([np.ones(duty_ones), np.zeros(frame - duty_ones)]),
            6,
        ).astype(np.uint8)
        dtc = DTCRtl(frame_selector=0)
        out = dtc.run(d_in)
        assert out["frame_levels"][-1] == 7  # 25 >= 24 (level 7), < 27 (8)

    def test_step_response_converges_within_three_frames(self):
        """After an input duty step the level settles once the 3-frame
        history has flushed."""
        frame = 100
        quiet = np.zeros(5 * frame, dtype=np.uint8)
        rng = np.random.default_rng(3)
        loud = (rng.random(6 * frame) < 0.45).astype(np.uint8)
        dtc = DTCRtl(frame_selector=0)
        out = dtc.run(np.concatenate([quiet, loud]))
        settled = out["frame_levels"][-2:]
        assert np.all(settled >= 13)

    def test_avr_reported_at_end_of_frame(self):
        dtc = DTCRtl(frame_selector=0)
        avr = None
        for i in range(100):
            avr = dtc.step(1).avr
        assert avr is not None and avr > 0

    def test_d_out_follows_d_in(self):
        dtc = DTCRtl()
        pattern = [1, 0, 1, 1, 0]
        outs = [dtc.step(b).d_out for b in pattern]
        assert outs == pattern
