"""Tests for the In_reg clock-domain-crossing model."""

import numpy as np
import pytest

from repro.digital.synchronizer import Synchronizer, sample_at_clock


class TestSampleAtClock:
    def test_length(self):
        dense = np.zeros(2500, dtype=np.uint8)  # 1 s at 2500 Hz
        out = sample_at_clock(dense, 2500.0, 2000.0)
        assert out.size == 2000

    def test_samples_most_recent_value(self):
        # Dense stream at 4 Hz: 0 0 1 1; clock at 2 Hz samples idx 1 and 3.
        dense = np.array([0, 0, 1, 1], dtype=np.uint8)
        out = sample_at_clock(dense, 4.0, 2.0)
        assert out.tolist() == [0, 1]

    def test_identity_when_rates_match(self):
        dense = np.array([0, 1, 0, 1, 1], dtype=np.uint8)
        out = sample_at_clock(dense, 1000.0, 1000.0)
        assert np.array_equal(out, dense)

    def test_explicit_n_clocks(self):
        dense = np.ones(1000, dtype=np.uint8)
        out = sample_at_clock(dense, 1000.0, 500.0, n_clocks=100)
        assert out.size == 100

    def test_too_many_clocks_rejected(self):
        dense = np.ones(10, dtype=np.uint8)
        with pytest.raises(ValueError):
            sample_at_clock(dense, 10.0, 10.0, n_clocks=11)

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            sample_at_clock(np.zeros(4), 0.0, 1.0)
        with pytest.raises(ValueError):
            sample_at_clock(np.zeros(4), 1.0, -1.0)


class TestSynchronizer:
    def test_single_stage_is_transparent(self):
        dense = np.tile([0, 0, 1, 1], 100).astype(np.uint8)
        sync = Synchronizer(n_stages=1)
        out = sync.synchronize(dense, 400.0, 400.0)
        assert np.array_equal(out, dense)

    def test_double_flop_delays_one_clock(self):
        dense = np.array([1, 1, 1, 1], dtype=np.uint8)
        sync = Synchronizer(n_stages=2)
        out = sync.synchronize(dense, 4.0, 4.0)
        assert out.tolist() == [0, 1, 1, 1]

    def test_latency_property(self):
        assert Synchronizer(n_stages=3).latency_clocks == 3
        assert Synchronizer(n_stages=3).n_flip_flops == 3

    def test_metastability_requires_rng(self):
        sync = Synchronizer(metastability_window_s=1e-4)
        with pytest.raises(ValueError):
            sync.synchronize(np.zeros(100, dtype=np.uint8), 1000.0, 1000.0)

    def test_metastability_only_near_transitions(self, rng):
        """A constant input has no transitions, so even a huge aperture
        must not corrupt any sample."""
        dense = np.ones(1000, dtype=np.uint8)
        sync = Synchronizer(metastability_window_s=1.0)
        out = sync.synchronize(dense, 1000.0, 1000.0, rng=rng)
        assert np.all(out == 1)

    def test_metastability_randomises_edge_samples(self):
        """With an aperture spanning every sample and an alternating
        input, some samples must flip relative to the ideal ones."""
        dense = np.tile([0, 1], 2000).astype(np.uint8)
        ideal = sample_at_clock(dense, 4000.0, 4000.0)
        sync = Synchronizer(metastability_window_s=1.0)
        out = sync.synchronize(dense, 4000.0, 4000.0, rng=np.random.default_rng(0))
        assert not np.array_equal(out, ideal)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Synchronizer(n_stages=0)
        with pytest.raises(ValueError):
            Synchronizer(metastability_window_s=-1.0)
