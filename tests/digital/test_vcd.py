"""Tests for the VCD waveform dumper."""

import numpy as np
import pytest

from repro.digital.dtc_rtl import DTCRtl
from repro.digital.vcd import VCDSignal, dump_vcd, vcd_from_dtc_run


def parse_vcd(path):
    """Minimal VCD parser: returns (var declarations, change records)."""
    variables = {}
    changes = []
    time = None
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line.startswith("$var"):
                parts = line.split()
                # $var wire <width> <ident> <name> [...] $end
                variables[parts[3]] = (parts[4], int(parts[2]))
            elif line.startswith("#"):
                time = int(line[1:])
            elif line and time is not None and not line.startswith("$"):
                changes.append((time, line))
    return variables, changes


class TestDumpVcd:
    def test_header_and_vars(self, tmp_path):
        path = str(tmp_path / "w.vcd")
        dump_vcd(path, [VCDSignal("SIG", 4, np.array([1, 2, 3]))])
        text = open(path).read()
        assert "$timescale 1 ns $end" in text
        assert "$enddefinitions $end" in text
        variables, _ = parse_vcd(path)
        names = {name for name, _ in variables.values()}
        assert "CLK" in names and "SIG" in names

    def test_only_changes_emitted(self, tmp_path):
        path = str(tmp_path / "w.vcd")
        dump_vcd(path, [VCDSignal("S", 1, np.array([1, 1, 1, 0]))])
        text = open(path).read()
        # The signal value appears once initially and once at the 1->0 edge.
        variables, changes = parse_vcd(path)
        sig_ident = next(i for i, (n, _) in variables.items() if n == "S")
        sig_changes = [c for _, c in changes if c.endswith(sig_ident) and not c.startswith("b")]
        assert len([c for c in sig_changes if c[0] in "01"]) >= 2

    def test_clock_period_matches(self, tmp_path):
        path = str(tmp_path / "w.vcd")
        dump_vcd(path, [VCDSignal("S", 1, np.array([0, 1]))], clock_hz=2000.0)
        text = open(path).read()
        assert "#500000" in text  # 0.5 ms period at 2 kHz, in ns

    def test_value_width_checked(self):
        with pytest.raises(ValueError):
            VCDSignal("S", 2, np.array([4]))

    def test_mismatched_lengths_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            dump_vcd(
                str(tmp_path / "w.vcd"),
                [
                    VCDSignal("A", 1, np.array([0, 1])),
                    VCDSignal("B", 1, np.array([0])),
                ],
            )

    def test_empty_signals_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            dump_vcd(str(tmp_path / "w.vcd"), [])


class TestVcdFromDtcRun:
    def test_traces_match_direct_run(self, tmp_path, rng):
        d_in = (rng.random(500) < 0.3).astype(np.uint8)
        traces = vcd_from_dtc_run(str(tmp_path / "dtc.vcd"), d_in)
        reference = DTCRtl().run(d_in)
        assert np.array_equal(traces["set_vth"], reference["set_vth"])
        assert np.array_equal(traces["end_of_frame"], reference["end_of_frame"])

    def test_file_contains_all_dtc_signals(self, tmp_path, rng):
        path = str(tmp_path / "dtc.vcd")
        d_in = (rng.random(200) < 0.5).astype(np.uint8)
        vcd_from_dtc_run(path, d_in)
        variables, _ = parse_vcd(path)
        names = {name for name, _ in variables.values()}
        for expected in ("D_in", "D_out", "End_of_frame", "Set_Vth", "N_one", "Frame_count"):
            assert expected in names

    def test_empty_input_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            vcd_from_dtc_run(str(tmp_path / "x.vcd"), np.zeros(0, dtype=np.uint8))
