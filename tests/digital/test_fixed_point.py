"""Tests for fixed-point helpers and the quantised predictor weights."""

import pytest

from repro.digital.fixed_point import (
    DEFAULT_WEIGHT_FRAC_BITS,
    FixedWeights,
    from_fixed,
    quantize_weights,
    to_fixed,
)


class TestToFromFixed:
    def test_roundtrip_exact_values(self):
        assert to_fixed(0.5, 8) == 128
        assert from_fixed(128, 8) == 0.5

    def test_rounding(self):
        assert to_fixed(0.65, 8) == 166  # 166.4 rounds down
        assert to_fixed(0.35, 8) == 90   # 89.6 rounds up

    def test_zero_frac_bits(self):
        assert to_fixed(3.0, 0) == 3

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            to_fixed(-0.1, 8)

    def test_negative_frac_bits_rejected(self):
        with pytest.raises(ValueError):
            to_fixed(0.5, -1)
        with pytest.raises(ValueError):
            from_fixed(1, -1)


class TestQuantizeWeights:
    def test_paper_weights_in_q8(self):
        assert quantize_weights((0.35, 0.65, 1.0), 8) == (90, 166, 256)

    def test_weights_sum_to_power_of_two(self):
        """The lucky identity 90 + 166 + 256 = 512 = 2 * 256 makes the
        paper's /2 denominator an exact 9-bit shift."""
        w = quantize_weights((0.35, 0.65, 1.0), 8)
        assert sum(w) == 512


class TestFixedWeights:
    def test_from_floats_defaults(self):
        w = FixedWeights.from_floats()
        assert (w.w1, w.w2, w.w3) == (90, 166, 256)
        assert w.frac_bits == DEFAULT_WEIGHT_FRAC_BITS
        assert w.shift == 9

    def test_average_equal_counts_is_identity(self):
        """With all three counts equal the weighted mean equals the count
        (weights sum to exactly 2^(shift))."""
        w = FixedWeights.from_floats()
        for n in (0, 1, 17, 100, 800):
            assert w.average(n, n, n) == n

    def test_average_weights_newest_most(self):
        w = FixedWeights.from_floats()
        newer_heavy = w.average(0, 0, 100)
        older_heavy = w.average(100, 0, 0)
        assert newer_heavy > older_heavy

    def test_average_matches_float_within_bound(self):
        w = FixedWeights.from_floats()
        bound = w.max_error_vs((0.35, 0.65, 1.0), frame_size=800)
        for n1, n2, n3 in [(800, 0, 0), (0, 800, 0), (123, 456, 789), (1, 2, 3)]:
            ideal = (1.0 * n3 + 0.65 * n2 + 0.35 * n1) / 2.0
            assert abs(w.average(n1, n2, n3) - ideal) <= bound

    def test_error_bound_small_for_q8(self):
        """8 fractional bits keep the worst-case error below ~2 counts for
        the largest frame — far below the 24-count interval step."""
        w = FixedWeights.from_floats()
        assert w.max_error_vs((0.35, 0.65, 1.0), 800) < 2.5

    def test_average_float_no_truncation(self):
        w = FixedWeights.from_floats()
        assert w.average_float(1, 1, 1) == pytest.approx(1.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            FixedWeights(w1=-1, w2=0, w3=0)

    def test_custom_frac_bits(self):
        w = FixedWeights.from_floats((0.35, 0.65, 1.0), frac_bits=4)
        assert w.shift == 5
        assert (w.w1, w.w2, w.w3) == (6, 10, 16)
