"""Executing the emitted Verilog and checking it against the RTL model."""

import numpy as np
import pytest

from repro.core.config import DATCConfig
from repro.digital.dtc_rtl import DTCRtl
from repro.hardware.verilog import generate_dtc_verilog
from repro.hardware.verilog_sim import (
    parse_dtc_verilog,
    simulate_dtc_verilog,
)


@pytest.fixture(scope="module")
def rtl_text():
    return generate_dtc_verilog()


class TestParse:
    def test_constants_recovered(self, rtl_text):
        parsed = parse_dtc_verilog(rtl_text)
        assert parsed.frame_sizes == (100, 200, 400, 800)
        assert (parsed.w1, parsed.w2, parsed.w3) == (90, 166, 256)
        assert parsed.shift == 9
        assert parsed.reset_level == 8
        assert parsed.floor_level == 1
        assert parsed.n_levels == 16

    def test_interval_tables_scale(self, rtl_text):
        parsed = parse_dtc_verilog(rtl_text)
        t100 = parsed.interval_tables[0]
        t800 = parsed.interval_tables[3]
        assert all(8 * a == b for a, b in zip(t100, t800))
        assert t100[15] == 48

    def test_priority_chain_descending(self, rtl_text):
        parsed = parse_dtc_verilog(rtl_text)
        assert list(parsed.priority_levels) == list(range(15, 1, -1))

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_dtc_verilog("module nothing(); endmodule")


class TestSimulateAgainstRtl:
    """The generated text, executed, must match the cycle-accurate Python
    model driven with the one-cycle In_reg delay the Verilog documents."""

    @pytest.mark.parametrize("duty", [0.05, 0.2, 0.45, 0.8])
    @pytest.mark.parametrize("frame_selector", [0, 1])
    def test_set_vth_equivalence(self, rtl_text, duty, frame_selector):
        rng = np.random.default_rng(int(duty * 100) + frame_selector)
        frame = (100, 200)[frame_selector]
        d_in = (rng.random(frame * 6) < duty).astype(np.uint8)

        sim = simulate_dtc_verilog(rtl_text, d_in, frame_selector=frame_selector)

        delayed = np.concatenate([[0], d_in[:-1]]).astype(np.uint8)
        reference = DTCRtl(frame_selector=frame_selector).run(delayed)

        assert np.array_equal(sim["set_vth"], reference["set_vth"])

    def test_d_out_is_delayed_input(self, rtl_text):
        rng = np.random.default_rng(0)
        d_in = (rng.random(300) < 0.5).astype(np.uint8)
        sim = simulate_dtc_verilog(rtl_text, d_in)
        assert np.array_equal(sim["d_out"][1:], d_in[:-1])
        assert sim["d_out"][0] == 0  # reset value

    def test_real_pattern_equivalence(self, rtl_text, mid_pattern):
        from repro.core.datc import datc_encode

        _, trace = datc_encode(
            mid_pattern.emg, mid_pattern.fs, DATCConfig(quantized=True)
        )
        d_in = trace.d_in[:2000]
        sim = simulate_dtc_verilog(rtl_text, d_in)
        delayed = np.concatenate([[0], d_in[:-1]]).astype(np.uint8)
        reference = DTCRtl().run(delayed)
        assert np.array_equal(sim["set_vth"], reference["set_vth"])

    def test_nondefault_config_roundtrip(self):
        """The generator+interpreter loop also closes for a 3-bit DAC."""
        config = DATCConfig(
            dac_bits=3, n_levels=8, interval_step=0.48 / 8, initial_level=4
        )
        text = generate_dtc_verilog(config)
        parsed = parse_dtc_verilog(text)
        assert parsed.n_levels == 8
        assert parsed.reset_level == 4
        rng = np.random.default_rng(1)
        d_in = (rng.random(600) < 0.3).astype(np.uint8)
        sim = simulate_dtc_verilog(text, d_in)
        assert sim["set_vth"].max() <= 7
        assert sim["set_vth"].min() >= 1

    def test_bad_frame_selector(self, rtl_text):
        with pytest.raises(ValueError):
            simulate_dtc_verilog(rtl_text, np.zeros(10, dtype=np.uint8), frame_selector=4)
