"""Tests for synthesis reporting and Table I generation."""

import pytest

from repro.core.config import DATCConfig
from repro.hardware.cells import hv180_library
from repro.hardware.netlist import build_dtc_netlist
from repro.hardware.report import PAPER_TABLE1, generate_table1
from repro.hardware.synthesis import synthesize


class TestSynthesize:
    def test_area_near_table1(self):
        """Paper Table I: 11700 um^2 core area; model within 15%."""
        report = synthesize(build_dtc_netlist())
        assert abs(report.core_area_um2 - 11_700) / 11_700 < 0.15

    def test_utilization_inflates_core(self):
        nl = build_dtc_netlist()
        tight = synthesize(nl, utilization=1.0)
        loose = synthesize(nl, utilization=0.7)
        assert loose.core_area_um2 == pytest.approx(tight.cell_area_um2 / 0.7)

    def test_invalid_utilization(self):
        with pytest.raises(ValueError):
            synthesize(build_dtc_netlist(), utilization=0.0)
        with pytest.raises(ValueError):
            synthesize(build_dtc_netlist(), utilization=1.5)

    def test_area_by_block_sums_to_total(self):
        report = synthesize(build_dtc_netlist())
        assert sum(report.area_by_block().values()) == pytest.approx(
            report.cell_area_um2, rel=1e-9
        )

    def test_cells_and_ports_passthrough(self):
        nl = build_dtc_netlist()
        report = synthesize(nl)
        assert report.n_cells == nl.n_cells
        assert report.n_ports == 12


class TestTableOne:
    def test_all_rows_present(self):
        t1 = generate_table1()
        d = t1.as_dict()
        assert set(d) == set(PAPER_TABLE1)

    def test_matches_paper_within_tolerance(self):
        """The calibrated model reproduces every Table I row closely:
        exact supply/clock/ports, cells and area within 15%, power within
        30% of the ~70 nW figure."""
        t1 = generate_table1()
        assert t1.power_supply_v == PAPER_TABLE1["power_supply_v"]
        assert t1.clock_hz == PAPER_TABLE1["clock_hz"]
        assert t1.n_ports == PAPER_TABLE1["n_ports"]
        assert abs(t1.n_cells - 512) / 512 < 0.15
        assert abs(t1.core_area_um2 - 11_700) / 11_700 < 0.15
        assert abs(t1.dynamic_power_nw - 70.0) / 70.0 < 0.30

    def test_format_table_mentions_all_quantities(self):
        text = generate_table1().format_table()
        for needle in ("Power supply", "cells", "ports", "Core area", "Dynamic power"):
            assert needle in text

    def test_bigger_dac_costs_more(self):
        base = generate_table1()
        big = generate_table1(DATCConfig(dac_bits=6, n_levels=64, initial_level=32))
        assert big.n_cells > base.n_cells
        assert big.core_area_um2 > base.core_area_um2
        assert big.dynamic_power_nw > base.dynamic_power_nw

    def test_custom_library(self):
        t1 = generate_table1(library=hv180_library().scaled(1.2))
        assert t1.power_supply_v == pytest.approx(1.2)
