"""Tests for the static timing model."""

import pytest

from repro.core.config import DATCConfig
from repro.hardware.timing import TimingParameters, TimingReport, estimate_timing


class TestEstimateTiming:
    def test_default_report_structure(self):
        report = estimate_timing()
        assert report.critical_path_ns > 0
        assert len(report.stages) >= 5

    def test_two_khz_slack_is_enormous(self):
        """The whole point of the operating point: timing closes with
        orders of magnitude to spare at 2 kHz."""
        report = estimate_timing()
        assert report.slack_ratio > 1000.0
        assert report.slack_at_clock_s > 0

    def test_f_max_in_plausible_band(self):
        """An HV 0.18 um ripple-carry datapath lands in the 10-100 MHz
        decade, not GHz and not kHz."""
        report = estimate_timing()
        assert 5e6 < report.f_max_hz < 200e6

    def test_critical_path_sums_stages(self):
        report = estimate_timing()
        assert report.critical_path_ns == pytest.approx(sum(report.stages.values()))

    def test_wider_counters_are_slower(self):
        fast = estimate_timing(DATCConfig(frame_sizes=(100,)))
        slow = estimate_timing(DATCConfig(frame_sizes=(100, 200, 400, 800, 1600, 3200)))
        assert slow.critical_path_ns > fast.critical_path_ns

    def test_slower_cells_slower_path(self):
        slow_params = TimingParameters(
            clk_to_q_ns=1.3, setup_ns=0.7, full_adder_ns=0.96,
            mux_ns=0.6, gate_ns=0.36, comparator_bit_ns=0.5,
        )
        assert (
            estimate_timing(params=slow_params).critical_path_ns
            > estimate_timing().critical_path_ns
        )

    def test_format_table(self):
        text = estimate_timing().format_table()
        assert "critical path" in text
        assert "f_max" in text

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            estimate_timing(clock_hz=0.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TimingParameters(clk_to_q_ns=0.0)

    def test_report_clock_override(self):
        report = estimate_timing(clock_hz=4000.0)
        assert report.slack_ratio == pytest.approx(report.f_max_hz / 4000.0)


class TestTimingReport:
    def test_empty_report(self):
        report = TimingReport(stages={"only": 10.0})
        assert report.critical_path_ns == 10.0
        assert report.f_max_hz == pytest.approx(1e8)
