"""Tests for the standard-cell library model."""

import pytest

from repro.hardware.cells import CellLibrary, StdCell, hv180_library


class TestStdCell:
    def test_valid_cell(self):
        c = StdCell("X", area_um2=10.0, switch_energy_fj=50.0)
        assert c.clock_energy_fj == 0.0

    def test_invalid_area(self):
        with pytest.raises(ValueError):
            StdCell("X", area_um2=0.0, switch_energy_fj=1.0)

    def test_invalid_energy(self):
        with pytest.raises(ValueError):
            StdCell("X", area_um2=1.0, switch_energy_fj=-1.0)


class TestHv180Library:
    def test_process_metadata(self):
        lib = hv180_library()
        assert lib.vdd_v == 1.8
        assert "0.18" in lib.process

    def test_contains_required_cells(self):
        lib = hv180_library()
        for name in ("INV", "NAND2", "XOR2", "MUX2", "HA", "FA", "DFFR", "BUF"):
            assert lib.cell(name).name == name

    def test_unknown_cell_raises_with_names(self):
        lib = hv180_library()
        with pytest.raises(KeyError, match="NAND2"):
            lib.cell("NAND99")

    def test_only_sequential_cells_have_clock_energy(self):
        lib = hv180_library()
        for name, cell in lib.cells.items():
            if name == "DFFR":
                assert cell.clock_energy_fj > 0
            else:
                assert cell.clock_energy_fj == 0

    def test_area_ordering_sensible(self):
        """Flip-flops are the biggest cells; inverters the smallest."""
        lib = hv180_library()
        assert lib.cell("DFFR").area_um2 > lib.cell("FA").area_um2 > lib.cell("INV").area_um2


class TestVoltageScaling:
    def test_energy_scales_quadratically(self):
        lib = hv180_library()
        lv = lib.scaled(0.9)  # half the supply
        for name in lib.cells:
            assert lv.cell(name).switch_energy_fj == pytest.approx(
                lib.cell(name).switch_energy_fj / 4.0
            )

    def test_leakage_scales_linearly(self):
        lib = hv180_library()
        lv = lib.scaled(0.9)
        assert lv.cell("INV").leakage_pw == pytest.approx(
            lib.cell("INV").leakage_pw / 2.0
        )

    def test_area_unchanged(self):
        lib = hv180_library()
        lv = lib.scaled(1.2)
        assert lv.cell("DFFR").area_um2 == lib.cell("DFFR").area_um2

    def test_invalid_vdd(self):
        with pytest.raises(ValueError):
            hv180_library().scaled(0.0)
