"""Tests for the power model."""

import numpy as np
import pytest

from repro.digital.dtc_rtl import DTCRtl
from repro.hardware.cells import hv180_library
from repro.hardware.netlist import build_dtc_netlist
from repro.hardware.power import (
    ActivityProfile,
    activity_from_rtl,
    estimate_power,
)


class TestEstimatePower:
    def test_table1_magnitude(self):
        """Paper Table I: ~70 nW dynamic at 2 kHz / 1.8 V."""
        report = estimate_power(build_dtc_netlist(), hv180_library())
        assert 50.0 <= report.dynamic_nw <= 90.0

    def test_power_scales_linearly_with_clock(self):
        nl, lib = build_dtc_netlist(), hv180_library()
        p2k = estimate_power(nl, lib, clock_hz=2000.0)
        p4k = estimate_power(nl, lib, clock_hz=4000.0)
        assert p4k.dynamic_nw == pytest.approx(2 * p2k.dynamic_nw)

    def test_leakage_independent_of_clock(self):
        nl, lib = build_dtc_netlist(), hv180_library()
        assert estimate_power(nl, lib, 2000.0).leakage_nw == pytest.approx(
            estimate_power(nl, lib, 4000.0).leakage_nw
        )

    def test_voltage_scaling_quadratic(self):
        nl, lib = build_dtc_netlist(), hv180_library()
        base = estimate_power(nl, lib)
        low = estimate_power(nl, lib.scaled(0.9))
        assert low.dynamic_nw == pytest.approx(base.dynamic_nw / 4.0, rel=1e-6)

    def test_zero_activity_leaves_clock_power(self):
        nl, lib = build_dtc_netlist(), hv180_library()
        quiet = estimate_power(
            nl, lib, activity=ActivityProfile(ff_activity=0.0, comb_activity=0.0)
        )
        assert quiet.sequential_nw == 0.0
        assert quiet.combinational_nw == 0.0
        assert quiet.clock_nw > 0.0

    def test_breakdown_sums(self):
        report = estimate_power(build_dtc_netlist(), hv180_library())
        assert report.dynamic_nw == pytest.approx(
            report.clock_nw + report.sequential_nw + report.combinational_nw
        )
        assert report.total_nw == pytest.approx(report.dynamic_nw + report.leakage_nw)

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            estimate_power(build_dtc_netlist(), hv180_library(), clock_hz=0.0)

    def test_invalid_activity(self):
        with pytest.raises(ValueError):
            ActivityProfile(ff_activity=-0.1)


class TestActivityFromRtl:
    def test_busy_input_more_active_than_quiet(self):
        rng = np.random.default_rng(0)
        busy_bits = (rng.random(2000) < 0.4).astype(np.uint8)
        quiet_bits = np.zeros(2000, dtype=np.uint8)
        busy = activity_from_rtl(DTCRtl(), busy_bits)
        quiet = activity_from_rtl(DTCRtl(), quiet_bits)
        assert busy.ff_activity > quiet.ff_activity

    def test_source_tag(self):
        act = activity_from_rtl(DTCRtl(), np.ones(200, dtype=np.uint8))
        assert act.source == "rtl-simulation"

    def test_comb_tracks_ff(self):
        act = activity_from_rtl(DTCRtl(), np.ones(500, dtype=np.uint8))
        assert act.comb_activity == pytest.approx(1.6 * act.ff_activity)

    def test_power_from_measured_activity_reasonable(self):
        """Power with simulated activity stays the same order of magnitude
        as the default-assumption figure."""
        rng = np.random.default_rng(1)
        bits = (rng.random(4000) < 0.25).astype(np.uint8)
        act = activity_from_rtl(DTCRtl(), bits)
        report = estimate_power(build_dtc_netlist(), hv180_library(), activity=act)
        assert 20.0 <= report.dynamic_nw <= 150.0

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            activity_from_rtl(DTCRtl(), np.zeros(0, dtype=np.uint8))
