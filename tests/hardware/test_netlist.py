"""Tests for the structural DTC netlist."""

import pytest

from repro.core.config import DATCConfig
from repro.hardware.netlist import Netlist, build_dtc_netlist


class TestDefaultNetlist:
    def test_cell_count_near_table1(self):
        """Paper Table I: 512 cells.  The structural estimate must land
        within 10%."""
        nl = build_dtc_netlist()
        assert abs(nl.n_cells - 512) / 512 < 0.10

    def test_twelve_ports(self):
        assert build_dtc_netlist().n_ports == 12

    def test_flip_flop_budget(self):
        """55 architectural flops + the End_of_frame flag = 56 DFFR."""
        nl = build_dtc_netlist()
        assert nl.n_sequential == 56

    def test_combinational_remainder(self):
        nl = build_dtc_netlist()
        assert nl.n_combinational == nl.n_cells - nl.n_sequential

    def test_blocks_cover_all_instances(self):
        nl = build_dtc_netlist()
        assert sum(nl.blocks.values()) == nl.n_cells

    def test_expected_blocks_present(self):
        nl = build_dtc_netlist()
        for block in (
            "registers",
            "counters",
            "eof_compare",
            "frame_mux",
            "predictor_avg",
            "interval_compare",
            "priority_encoder",
            "interval_lut",
            "control",
            "buffers",
        ):
            assert block in nl.blocks, block


class TestNetlistScaling:
    def test_more_dac_bits_more_cells(self):
        small = build_dtc_netlist(
            DATCConfig(dac_bits=3, n_levels=8, initial_level=4)
        )
        big = build_dtc_netlist(
            DATCConfig(dac_bits=6, n_levels=64, initial_level=32)
        )
        assert big.n_cells > small.n_cells

    def test_wider_frames_cost_flops(self):
        """Larger maximum frame sizes widen every counter and register."""
        narrow = build_dtc_netlist(DATCConfig(frame_sizes=(100,), frame_selector=0))
        wide = build_dtc_netlist(
            DATCConfig(frame_sizes=(100, 200, 400, 800, 1600, 3200))
        )
        assert wide.n_sequential > narrow.n_sequential

    def test_single_frame_size_drops_mux(self):
        nl = build_dtc_netlist(DATCConfig(frame_sizes=(100,)))
        assert nl.blocks.get("frame_mux", 0) == 0


class TestNetlistObject:
    def test_empty_netlist(self):
        nl = Netlist(name="empty", instances={}, ports=())
        assert nl.n_cells == 0
        assert nl.n_sequential == 0
        assert nl.n_ports == 0
