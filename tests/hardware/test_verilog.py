"""Tests for the Verilog emitter (structural checks — no simulator here)."""

import re

import pytest

from repro.core.config import DATCConfig
from repro.digital.lut import IntervalLUT
from repro.hardware.verilog import generate_dtc_verilog


@pytest.fixture(scope="module")
def rtl():
    return generate_dtc_verilog()


class TestModuleStructure:
    def test_module_declaration(self, rtl):
        assert rtl.startswith("// ")
        assert "module dtc_top (" in rtl
        assert rtl.rstrip().endswith("endmodule")

    def test_all_table1_signal_ports_present(self, rtl):
        for port in ("CLK", "RST", "EN", "D_in", "Frame_selector", "Set_Vth",
                     "D_out", "End_of_frame", "Dbg_state"):
            assert re.search(rf"\b{port}\b", rtl), port

    def test_balanced_begin_end(self, rtl):
        # Count code tokens only (comments may legitimately say "end-of-frame").
        code = "\n".join(line.split("//")[0] for line in rtl.splitlines())
        begins = len(re.findall(r"\bbegin\b", code))
        ends = len(re.findall(r"\bend\b", code))
        assert begins == ends

    def test_balanced_case(self, rtl):
        assert rtl.count("case (") == rtl.count("endcase")

    def test_custom_module_name(self):
        text = generate_dtc_verilog(module_name="my_dtc")
        assert "module my_dtc (" in text


class TestGeneratedConstants:
    def test_q8_weights_emitted(self, rtl):
        """The weighted sum must use the exact Q8 constants 256/166/90."""
        assert "256 * " in rtl
        assert "166 * " in rtl
        assert "90 * " in rtl
        assert ">> 9" in rtl

    def test_frame_sizes_in_mux(self, rtl):
        for size in (100, 200, 400, 800):
            assert f"10'd{size};" in rtl

    def test_interval_lut_values_match_python(self, rtl):
        """Every Intervals LUT entry baked into the RTL equals the Python
        LUT's value."""
        lut = IntervalLUT()
        for sel in range(4):
            for i, level in enumerate(lut.entry(sel)):
                assert f"interval_level[{i}] = 9'd{level};" in rtl

    def test_reset_level_emitted(self, rtl):
        assert "Set_Vth       <= 4'd8;" in rtl  # mid-scale reset

    def test_floor_level_in_priority_chain(self, rtl):
        assert "next_level = 4'd1;" in rtl  # Listing 1's else branch

    def test_priority_chain_covers_levels_2_to_15(self, rtl):
        for level in range(2, 16):
            assert f"(avr >= interval_level[{level}])" in rtl
        assert "(avr >= interval_level[1])" not in rtl


class TestConfigurability:
    def test_three_bit_dac_variant(self):
        config = DATCConfig(
            dac_bits=3, n_levels=8, interval_step=0.48 / 8, initial_level=4
        )
        text = generate_dtc_verilog(config)
        assert "output reg  [2:0]           Set_Vth," in text
        assert "next_level = 3'd7;" in text  # top level of the 8-level ladder

    def test_single_frame_size_variant(self):
        """One legal frame size shrinks the counters to 7 bits and drops
        the other sizes from the mux."""
        config = DATCConfig(frame_sizes=(100,), frame_selector=0)
        text = generate_dtc_verilog(config)
        assert "7'd100;" in text
        assert "'d800" not in text

    def test_rtl_is_deterministic(self):
        assert generate_dtc_verilog() == generate_dtc_verilog()
