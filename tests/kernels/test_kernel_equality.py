"""The compiled kernel tier against its numpy reference.

The D-ATC frame scan must match ``_datc_frames_numpy`` *bit for bit*
(both predictor flavours, ragged final frames, duplicate quantized
ladders, ``min_level`` clamping); the fused correlation kernel must stay
within its documented ``TOLERANCE_PCT``.  The kernel bodies are plain
Python when numba is absent, so these tests run everywhere — jitting
only changes speed, not semantics.
"""

import warnings

import numpy as np
import pytest

from repro.core.config import DATCConfig
from repro.core.encoders import _datc_frames_numpy, datc_encode_batch
from repro.kernels import dispatch
from repro.kernels.correlation import TOLERANCE_PCT, fused_aligned_correlation
from repro.kernels.datc import datc_frames
from repro.rx.correlation import aligned_correlation_percent_batch


@pytest.fixture(autouse=True)
def clean_dispatch(monkeypatch):
    monkeypatch.delenv(dispatch.ENV_VAR, raising=False)
    dispatch._reset_for_tests()
    yield
    dispatch._reset_for_tests()


def _signals(n_signals: int, n_clocks: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.linspace(0.0, 4.0, n_clocks, endpoint=False)
    base = np.abs(np.sin(2 * np.pi * 3.0 * t))[None, :]
    return np.abs(
        base * rng.uniform(0.2, 1.0, (n_signals, 1))
        + 0.05 * rng.standard_normal((n_signals, n_clocks))
    )


def _assert_frames_equal(ref, out):
    names = (
        "d_in", "levels", "vth", "frame_levels", "frame_ones", "frame_avr"
    )
    for name, a, b in zip(names, ref, out):
        assert a.dtype == b.dtype, f"{name} dtype {b.dtype} != {a.dtype}"
        assert a.shape == b.shape, f"{name} shape {b.shape} != {a.shape}"
        np.testing.assert_array_equal(b, a, err_msg=f"{name} diverged")


class TestDATCFrameScanExact:
    @pytest.mark.parametrize("quantized", [False, True])
    @pytest.mark.parametrize("frame_size", [5, 7, 100])
    @pytest.mark.parametrize("min_level", [0, 1])
    def test_bit_exact_across_operating_points(
        self, quantized, frame_size, min_level
    ):
        config = DATCConfig(
            quantized=quantized,
            frame_sizes=(frame_size,),
            frame_selector=0,
            min_level=min_level,
        )
        # n_clocks sweeps zero frames, exact multiples and ragged tails.
        for n_clocks in (3, frame_size, 3 * frame_size + 2, 257):
            x = _signals(4, n_clocks)
            _assert_frames_equal(
                _datc_frames_numpy(x, config), datc_frames(x, config)
            )

    def test_duplicate_quantized_ladder_entries(self):
        # frame_size=5 rounds Eqn. (2)'s levels to repeated integers; the
        # kernel's ladder scan must pick the same (last) duplicate as
        # searchsorted side="right".
        config = DATCConfig(quantized=True, frame_sizes=(5,), frame_selector=0)
        from repro.core.predictor import ThresholdPredictor

        ladder = ThresholdPredictor(config).interval_ladder
        assert len(set(ladder)) < len(ladder), "fixture lost its duplicates"
        x = _signals(6, 251, seed=11)
        _assert_frames_equal(
            _datc_frames_numpy(x, config), datc_frames(x, config)
        )

    def test_paper_defaults_on_real_patterns(self, small_dataset):
        patterns = [small_dataset.pattern(i) for i in range(4)]
        fs = patterns[0].fs
        signals = np.stack([p.emg for p in patterns])
        for config in (DATCConfig(), DATCConfig(quantized=True)):
            ref = datc_encode_batch(signals, fs, config)
            with warnings.catch_warnings():
                warnings.simplefilter(
                    "ignore", dispatch.KernelFallbackWarning
                )
                with dispatch.use_backend("compiled"):
                    out = datc_encode_batch(signals, fs, config)
            for (s_ref, t_ref), (s_out, t_out) in zip(ref, out):
                np.testing.assert_array_equal(s_out.times, s_ref.times)
                np.testing.assert_array_equal(s_out.levels, s_ref.levels)
                np.testing.assert_array_equal(t_out.d_in, t_ref.d_in)
                np.testing.assert_array_equal(t_out.vth, t_ref.vth)
                np.testing.assert_array_equal(
                    t_out.frame_avr, t_ref.frame_avr
                )

    def test_forced_compiled_dispatch_routes_to_kernel(self, monkeypatch):
        """With numba 'present', dispatch serves the jitted-module kernel."""
        monkeypatch.setattr(dispatch, "_numba_ok", True)
        x = _signals(3, 200)
        config = DATCConfig()
        with dispatch.use_backend("compiled"):
            assert dispatch.get_kernel("datc_frames") is datc_frames
            out = dispatch.get_kernel("datc_frames")(x, config)
        _assert_frames_equal(_datc_frames_numpy(x, config), out)


class TestFusedCorrelationTolerance:
    def test_within_documented_tolerance(self):
        rng = np.random.default_rng(3)
        recons = rng.standard_normal((5, 813))
        refs = rng.standard_normal((5, 5000))
        ref = aligned_correlation_percent_batch(recons, refs)
        out = fused_aligned_correlation(recons, refs)
        assert np.max(np.abs(out - ref)) <= TOLERANCE_PCT

    def test_identity_and_constant_modes(self):
        rng = np.random.default_rng(4)
        refs = rng.standard_normal((3, 64))
        same_grid = rng.standard_normal((3, 64))  # m == n_ref: copy mode
        np.testing.assert_allclose(
            fused_aligned_correlation(same_grid, refs),
            aligned_correlation_percent_batch(same_grid, refs),
            rtol=0,
            atol=TOLERANCE_PCT,
        )
        # m == 1: constant rows score ~0 on both paths (neither mean is
        # exactly the repeated value in floating point, so neither hits
        # the exact denom == 0 branch; both land within the tolerance).
        flat = rng.standard_normal((3, 1))
        ref_flat = aligned_correlation_percent_batch(flat, refs)
        out_flat = fused_aligned_correlation(flat, refs)
        assert np.max(np.abs(ref_flat)) <= TOLERANCE_PCT
        assert np.max(np.abs(out_flat - ref_flat)) <= TOLERANCE_PCT

    def test_validation_is_shared_across_backends(self, monkeypatch):
        refs = np.zeros((2, 16))
        bad = np.zeros((3, 8))
        with pytest.raises(ValueError, match="shape mismatch"):
            aligned_correlation_percent_batch(bad, refs)
        monkeypatch.setattr(dispatch, "_numba_ok", True)
        with dispatch.use_backend("compiled"):
            with pytest.raises(ValueError, match="shape mismatch"):
                aligned_correlation_percent_batch(bad, refs)


class TestBackendInvariance:
    """The backend is an execution detail: specs, keys and cached results
    are identical whichever tier computed them."""

    def _evaluate(self, store=None):
        from repro.api import Experiment, ExperimentSpec
        from repro.signals.dataset import DatasetSpec

        dataset = DatasetSpec(n_patterns=2, duration_s=2.0, seed=2015)
        spec = ExperimentSpec.for_scheme("datc")
        experiment = Experiment(spec, store=store)
        return spec, [
            experiment.evaluate(dataset.pattern(i)) for i in range(2)
        ]

    def test_spec_key_ignores_backend(self, monkeypatch):
        from repro.api import ExperimentSpec

        key_numpy = ExperimentSpec.for_scheme("datc").key()
        monkeypatch.setattr(dispatch, "_numba_ok", True)
        with dispatch.use_backend("compiled"):
            assert ExperimentSpec.for_scheme("datc").key() == key_numpy

    def test_experiment_results_identical(self, monkeypatch):
        _, ref = self._evaluate()
        monkeypatch.setattr(dispatch, "_numba_ok", True)
        with dispatch.use_backend("compiled"):
            _, out = self._evaluate()
        for a, b in zip(ref, out):
            # encode is bit-exact; scoring is the one toleranced op
            assert abs(b.correlation_pct - a.correlation_pct) <= TOLERANCE_PCT
            assert b.n_events == a.n_events
            assert b.n_symbols == a.n_symbols

    def test_store_hits_across_backends(self, tmp_path, monkeypatch):
        from repro.runtime.store import ResultStore

        store = ResultStore(tmp_path / "store")
        _, ref = self._evaluate(store)
        assert store.stats()["stores"] == 2
        monkeypatch.setattr(dispatch, "_numba_ok", True)
        with dispatch.use_backend("compiled"):
            warm = ResultStore(tmp_path / "store")
            _, out = self._evaluate(warm)
        assert warm.stats()["hits"] == 2
        assert warm.stats()["misses"] == 0
        for a, b in zip(ref, out):
            assert b.correlation_pct == a.correlation_pct
