"""Backend registry behaviour: selection, fallback, per-op resolution."""

import warnings

import pytest

from repro.kernels import dispatch


@pytest.fixture(autouse=True)
def clean_dispatch(monkeypatch):
    """Each test starts from an unselected backend and a fresh warn flag."""
    monkeypatch.delenv(dispatch.ENV_VAR, raising=False)
    dispatch._reset_for_tests()
    yield
    dispatch._reset_for_tests()


class TestSelection:
    def test_default_backend_is_numpy(self):
        assert dispatch.requested_backend() == "numpy"
        assert dispatch.active_backend() == "numpy"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(dispatch.ENV_VAR, "compiled")
        dispatch._reset_for_tests()
        assert dispatch.requested_backend() == "compiled"

    def test_invalid_env_var_raises(self, monkeypatch):
        monkeypatch.setenv(dispatch.ENV_VAR, "gpu")
        dispatch._reset_for_tests()
        with pytest.raises(ValueError, match="unknown kernel backend"):
            dispatch.requested_backend()

    def test_use_backend_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            dispatch.use_backend("fortran")
        assert dispatch.requested_backend() == "numpy"

    def test_use_backend_is_a_plain_setter(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", dispatch.KernelFallbackWarning)
            dispatch.use_backend("compiled")
        assert dispatch.requested_backend() == "compiled"

    def test_use_backend_context_restores_previous(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", dispatch.KernelFallbackWarning)
            with dispatch.use_backend("compiled"):
                assert dispatch.requested_backend() == "compiled"
        assert dispatch.requested_backend() == "numpy"

    def test_context_restores_on_exception(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", dispatch.KernelFallbackWarning)
            with pytest.raises(RuntimeError):
                with dispatch.use_backend("compiled"):
                    raise RuntimeError("boom")
        assert dispatch.requested_backend() == "numpy"

    def test_available_backends_tracks_numba(self):
        expected = (
            ("numpy", "compiled") if dispatch.numba_available() else ("numpy",)
        )
        assert dispatch.available_backends() == expected


class TestFallback:
    @pytest.mark.skipif(
        dispatch.numba_available(), reason="fallback only happens without numba"
    )
    def test_fallback_warns_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            dispatch.use_backend("compiled")
            assert dispatch.active_backend() == "numpy"
            assert dispatch.active_backend() == "numpy"
        ours = [
            w
            for w in caught
            if issubclass(w.category, dispatch.KernelFallbackWarning)
        ]
        assert len(ours) == 1
        assert "numba" in str(ours[0].message)

    @pytest.mark.skipif(
        dispatch.numba_available(), reason="fallback only happens without numba"
    )
    def test_fallback_still_dispatches_numpy_kernels(self):
        import numpy as np

        from repro.core.config import DATCConfig
        from repro.core.encoders import _datc_frames_numpy

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", dispatch.KernelFallbackWarning)
            dispatch.use_backend("compiled")
            fn = dispatch.get_kernel("datc_frames")
        assert fn is _datc_frames_numpy
        x = np.abs(np.sin(np.arange(40.0))).reshape(2, 20)
        d_in, *_ = fn(x, DATCConfig())
        assert d_in.shape == x.shape


class TestRegistry:
    def test_unknown_op_raises(self):
        with pytest.raises(KeyError, match="no kernel registered"):
            dispatch.get_kernel("does-not-exist")

    def test_compiled_backend_serves_numpy_only_ops(self, monkeypatch):
        """An op with no compiled flavour silently uses its numpy one."""
        monkeypatch.setattr(dispatch, "_numba_ok", True)

        @dispatch.register_kernel("only-numpy-op", "numpy")
        def ref():
            return "numpy result"

        try:
            with dispatch.use_backend("compiled"):
                assert dispatch.active_backend() == "compiled"
                assert dispatch.get_kernel("only-numpy-op") is ref
        finally:
            dispatch._registry.pop("only-numpy-op", None)

    def test_compiled_dispatch_lazy_imports_the_jitted_module(
        self, monkeypatch
    ):
        """Forcing the compiled path resolves repro.kernels.datc's kernel."""
        monkeypatch.setattr(dispatch, "_numba_ok", True)
        from repro.kernels.datc import datc_frames

        with dispatch.use_backend("compiled"):
            assert dispatch.get_kernel("datc_frames") is datc_frames

    def test_numpy_backend_never_touches_compiled_impls(self):
        from repro.core.encoders import _datc_frames_numpy

        assert dispatch.get_kernel("datc_frames") is _datc_frames_numpy
