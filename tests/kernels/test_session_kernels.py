"""Exactness tests for the ``"session_frames"`` kernel flavours.

The compiled multi-session frame scan must be *bit-exact* against the
numpy flavour — same events, same order, same in-place register updates
— for every predictor flavour (float and quantized) and frame size.
Without numba the compiled body still runs as pure Python, so the
semantic equality holds on any environment; the dispatch tests pin down
the fallback contract.
"""

import warnings

import numpy as np
import pytest

from repro.core.config import DATCConfig
from repro.kernels import dispatch
from repro.kernels.sessions import session_frames
from repro.runtime.sessions import (
    SessionBatch,
    SessionSpec,
    _session_frames_numpy,
)


@pytest.fixture(autouse=True)
def clean_dispatch(monkeypatch):
    monkeypatch.delenv(dispatch.ENV_VAR, raising=False)
    dispatch._reset_for_tests()
    yield
    dispatch._reset_for_tests()


def random_state(rng, config, k=9):
    """A random packed push: frame matrix + registers, scalar-reachable."""
    frame_size = config.frame_size
    k_max = 3 * frame_size + 7
    P = np.abs(rng.normal(0, 0.3, size=(k, frame_size + k_max)))
    navail = rng.integers(0, frame_size + k_max, size=k).astype(np.int64)
    emitted = rng.integers(0, 100_000, size=k).astype(np.int64)
    regs = (
        rng.integers(0, 2, size=k).astype(np.int64),  # last_bit
        rng.integers(0, frame_size + 1, size=k).astype(np.int64),  # n_one1
        rng.integers(0, frame_size + 1, size=k).astype(np.int64),  # n_one2
        rng.integers(
            config.min_level, config.n_levels, size=k
        ).astype(np.int64),  # level
    )
    return P, navail, emitted, regs


@pytest.mark.parametrize(
    "config",
    [
        DATCConfig(),
        DATCConfig(quantized=True),
        DATCConfig(frame_selector=2),
        DATCConfig(frame_selector=3, quantized=True),
    ],
)
def test_compiled_flavour_bit_exact(config):
    rng = np.random.default_rng(42)
    for _ in range(5):
        P, navail, emitted, regs = random_state(rng, config)
        regs_np = tuple(r.copy() for r in regs)
        regs_cc = tuple(r.copy() for r in regs)
        out_np = _session_frames_numpy(
            P, navail, emitted.copy(), *regs_np, config
        )
        out_cc = session_frames(P, navail, emitted.copy(), *regs_cc, config)
        for a, b in zip(out_np, out_cc):
            assert a.dtype == b.dtype
            assert np.array_equal(a, b)
        for a, b in zip(regs_np, regs_cc):  # in-place register updates
            assert np.array_equal(a, b)


def test_events_are_row_major_sorted():
    rng = np.random.default_rng(7)
    config = DATCConfig()
    P, navail, emitted, regs = random_state(rng, config)
    ev_row, ev_clk, _ = _session_frames_numpy(
        P, navail, emitted, *regs, config
    )
    assert np.all(np.diff(ev_row) >= 0)
    same_row = np.diff(ev_row) == 0
    assert np.all(np.diff(ev_clk)[same_row] > 0)


def test_dispatch_routes_session_frames():
    assert "session_frames" in dispatch._COMPILED_MODULES
    assert dispatch.get_kernel("session_frames") is _session_frames_numpy
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", dispatch.KernelFallbackWarning)
        with dispatch.use_backend("compiled"):
            impl = dispatch.get_kernel("session_frames")
    if dispatch.numba_available():
        assert impl is session_frames
    else:
        assert impl is _session_frames_numpy  # graceful fallback


def test_session_batch_identical_under_compiled_backend():
    """The whole engine, compiled tier vs numpy tier: same bytes out."""
    rng = np.random.default_rng(3)
    fs = 2500.0
    spec = SessionSpec(scheme="datc", fs=fs)
    sigs = [rng.normal(0, 0.3, size=2750) for _ in range(4)]

    def run():
        batch = SessionBatch()
        sids = [batch.create(spec) for _ in sigs]
        for s in range(0, 2750, 700):
            batch.push_many(
                {sid: sig[s : s + 700] for sid, sig in zip(sids, sigs)}
            )
        return [batch.finalize(sid) for sid in sids]

    ref = run()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", dispatch.KernelFallbackWarning)
        with dispatch.use_backend("compiled"):
            out = run()
    for a, b in zip(ref, out):
        assert np.array_equal(a.stream.times, b.stream.times)
        assert np.array_equal(a.stream.levels, b.stream.levels)
        assert np.array_equal(a.envelope, b.envelope)
