"""Every legacy sweep/run wrapper: warns exactly once, bit-identical to spec path.

The API redesign kept the pre-spec entry points as thin deprecated
wrappers over :mod:`repro.api`.  Contract (satellite of the redesign):
each wrapper emits exactly one :class:`DeprecationWarning` per call and
returns results bit-identical to the equivalent ``Experiment`` call.
"""

import warnings

import numpy as np
import pytest

from repro.analysis.sweeps import (
    atc_threshold_sweep,
    dac_resolution_config,
    dac_resolution_sweep,
    dataset_sweep,
    frame_size_sweep,
    link_erasure_sweep,
    pulse_loss_sweep,
    snr_sweep,
    weight_sweep,
)
from repro.api import Experiment, ExperimentSpec
from repro.core.config import ATCConfig, DATCConfig
from repro.core.pipeline import run_batch, run_datc
from repro.uwb.link import LinkConfig


def call_warns_once(fn, *args, **kwargs):
    """Run ``fn``, assert exactly one DeprecationWarning, return its output."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        out = fn(*args, **kwargs)
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1, (
        f"{fn.__name__} emitted {len(deprecations)} DeprecationWarnings, "
        f"expected exactly 1: {[str(w.message) for w in deprecations]}"
    )
    assert fn.__name__ in str(deprecations[0].message)
    return out


class TestRunBatchWrapper:
    def test_warns_once_and_bit_identical(self, small_dataset):
        patterns = [small_dataset.pattern(i) for i in range(3)]
        legacy = call_warns_once(run_batch, patterns, "datc")
        spec = Experiment(ExperimentSpec()).run(patterns)
        for a, b in zip(legacy, spec):
            assert a.correlation_pct == b.correlation_pct
            assert np.array_equal(a.stream.times, b.stream.times)
            assert np.array_equal(a.reconstruction, b.reconstruction)

    def test_error_behaviour_preserved(self, small_dataset):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(ValueError):
                run_batch([], scheme="adc")
            with pytest.raises(TypeError):
                run_batch([], scheme="atc", config=DATCConfig())


class TestSweepWrappers:
    def test_atc_threshold(self, mid_pattern):
        vths = [0.1, 0.3]
        legacy = call_warns_once(atc_threshold_sweep, mid_pattern, vths)
        spec = Experiment(ExperimentSpec.for_scheme("atc")).sweep(
            mid_pattern, "encoder.config.vth", vths
        )
        assert legacy == spec

    def test_dataset(self, small_dataset):
        legacy = call_warns_once(dataset_sweep, small_dataset, "datc", limit=3)
        spec = Experiment(ExperimentSpec()).dataset_sweep(
            small_dataset, limit=3
        )
        assert np.array_equal(legacy.correlations_pct, spec.correlations_pct)
        assert np.array_equal(legacy.n_events, spec.n_events)

    def test_frame_size(self, mid_pattern):
        legacy = call_warns_once(frame_size_sweep, mid_pattern, (0, 1))
        configs = [DATCConfig(frame_selector=s) for s in (0, 1)]
        spec = Experiment(ExperimentSpec()).sweep(
            mid_pattern,
            "encoder.config",
            configs,
            parameter=lambda c: c.frame_size,
        )
        assert legacy == spec

    def test_dac_resolution(self, mid_pattern):
        legacy = call_warns_once(dac_resolution_sweep, mid_pattern, (2, 4))
        configs = [dac_resolution_config(b) for b in (2, 4)]
        spec = Experiment(ExperimentSpec()).sweep(
            mid_pattern,
            "encoder.config",
            configs,
            parameter=lambda c: c.dac_bits,
        )
        assert legacy == spec

    def test_dac_resolution_matches_per_stream_path(self, mid_pattern):
        """The per-row batched decode reproduces the old per-stream sweep."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            points = dac_resolution_sweep(mid_pattern, (2, 5))
        for bits, point in zip((2, 5), points):
            result = run_datc(mid_pattern, dac_resolution_config(bits))
            assert point.correlation_pct == result.correlation_pct
            assert point.n_events == result.n_events
            assert point.n_symbols == result.n_symbols

    def test_pulse_loss(self, mid_pattern):
        probs = (0.0, 0.3)
        legacy = call_warns_once(pulse_loss_sweep, mid_pattern, probs, seed=7)
        spec = Experiment(ExperimentSpec()).sweep(
            mid_pattern, "stream.drop_prob", probs, seed=7
        )
        assert legacy == spec

    def test_snr(self, mid_pattern):
        legacy = call_warns_once(snr_sweep, mid_pattern, (20.0,), seed=11)
        spec = Experiment(ExperimentSpec()).sweep(
            mid_pattern, "input.snr_db", (20.0,), seed=11
        )
        assert legacy == spec

    def test_weight(self, mid_pattern):
        sets = ((0.35, 0.65, 1.0), (1.0, 1.0, 1.0))
        legacy = call_warns_once(weight_sweep, mid_pattern, sets)
        configs = [
            DATCConfig(weights=tuple(2.0 * w / sum(ws) for w in ws))
            for ws in sets
        ]
        spec = Experiment(ExperimentSpec()).sweep(
            mid_pattern,
            "encoder.config",
            configs,
            parameter=lambda c: c.weights[2],
        )
        assert [p for _, p in legacy] == spec
        assert [w for w, _ in legacy] == list(sets)

    def test_link_erasure(self, mid_pattern):
        stream = run_datc(mid_pattern).stream
        legacy = call_warns_once(link_erasure_sweep, stream, (0.0, 0.3), seed=13)
        spec = Experiment(
            ExperimentSpec.for_scheme("datc", link=LinkConfig())
        ).link_sweep(stream, (0.0, 0.3), seed=13)
        assert legacy == spec

    def test_wrapper_validation_still_first_class(self, small_dataset, mid_pattern):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with pytest.raises(ValueError):
                dataset_sweep(small_dataset, "adc")
            with pytest.raises(ValueError):
                pulse_loss_sweep(mid_pattern, (1.0,))
            with pytest.raises(ValueError):
                snr_sweep(mid_pattern, (10.0,), scheme="x")
            with pytest.raises(ValueError):
                weight_sweep(mid_pattern, ((0.0, 0.0, 0.0),))


class TestFiguresRideTheSpecPath:
    def test_fig_drivers_do_not_warn(self, small_dataset):
        """The figure entry points were migrated off the deprecated
        wrappers: regenerating them must raise no DeprecationWarning."""
        from repro.analysis.experiments import run_fig3, run_fig5, run_fig7

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_fig3(pattern_id=2, dataset=small_dataset)
            run_fig5(n_patterns=3, dataset=small_dataset)
            run_fig7(pattern_ids=(1,), vths=(0.2, 0.4), dataset=small_dataset)
