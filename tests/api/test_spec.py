"""Tests for the declarative spec tree (construction, round-trip, hashing)."""

import json

import pytest

from repro.api import (
    DecoderSpec,
    EncoderSpec,
    ExperimentSpec,
    LinkSpec,
    ScoreSpec,
)
from repro.core.config import ATCConfig, DATCConfig
from repro.uwb.link import LinkConfig


class TestEncoderSpec:
    def test_defaults_by_scheme(self):
        assert EncoderSpec("atc").config == ATCConfig()
        assert EncoderSpec("datc").config == DATCConfig()
        assert EncoderSpec().scheme == "datc"

    def test_invalid_scheme(self):
        with pytest.raises(ValueError):
            EncoderSpec("adc")

    def test_mismatched_config_rejected(self):
        with pytest.raises(TypeError):
            EncoderSpec("atc", DATCConfig())
        with pytest.raises(TypeError):
            EncoderSpec("datc", ATCConfig())


class TestDecoderSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            DecoderSpec(fs_out=0.0)
        with pytest.raises(ValueError):
            DecoderSpec(window_s=-1.0)
        with pytest.raises(ValueError):
            DecoderSpec(dac_bits=0)

    def test_dac_bits_override(self):
        spec = ExperimentSpec(decoder=DecoderSpec(dac_bits=6))
        assert spec.decode_dac_bits == 6
        assert ExperimentSpec().decode_dac_bits == 4  # encoder's default


class TestScoreSpec:
    def test_only_correlation_supported(self):
        with pytest.raises(ValueError):
            ScoreSpec(metric="rmse")


class TestRoundTrip:
    SPECS = [
        ExperimentSpec(),
        ExperimentSpec(encoder=EncoderSpec("atc", ATCConfig(vth=0.2))),
        ExperimentSpec(
            encoder=EncoderSpec(
                "datc", DATCConfig(frame_selector=2, quantized=True)
            ),
            link=LinkSpec(LinkConfig(modulation="ppm")),
            decoder=DecoderSpec(fs_out=200.0, window_s=0.5, dac_bits=6),
        ),
    ]

    @pytest.mark.parametrize("spec", SPECS)
    def test_to_dict_from_dict(self, spec):
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.key() == spec.key()

    @pytest.mark.parametrize("spec", SPECS)
    def test_json_round_trip(self, spec):
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_dict_is_plain_json(self):
        text = json.dumps(self.SPECS[2].to_dict())
        assert ExperimentSpec.from_dict(json.loads(text)) == self.SPECS[2]

    def test_tuples_survive(self):
        spec = ExperimentSpec(
            encoder=EncoderSpec("datc", DATCConfig(weights=(0.2, 0.8, 1.0)))
        )
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt.encoder.config.weights == (0.2, 0.8, 1.0)
        assert isinstance(rebuilt.encoder.config.weights, tuple)

    def test_unknown_version_rejected(self):
        data = ExperimentSpec().to_dict()
        data["version"] = 99
        with pytest.raises(ValueError):
            ExperimentSpec.from_dict(data)


class TestKey:
    def test_key_is_sha256_hex(self):
        key = ExperimentSpec().key()
        assert len(key) == 64
        int(key, 16)  # parses as hex

    def test_equal_specs_equal_keys(self):
        assert ExperimentSpec().key() == ExperimentSpec().key()

    def test_any_field_changes_the_key(self):
        base = ExperimentSpec()
        variants = [
            base.replace_at(
                "encoder.config", DATCConfig(dac_bits=5, n_levels=32)
            ),
            base.replace_at("decoder.fs_out", 50.0),
            base.replace_at("decoder.dac_bits", 6),
            base.replace(link=LinkSpec()),
            base.replace(encoder=EncoderSpec("atc")),
        ]
        keys = {base.key(), *(v.key() for v in variants)}
        assert len(keys) == len(variants) + 1

    def test_int_and_float_field_values_share_a_key(self):
        """Equal specs must hash equal even when a numeric field arrived
        as an int (CLI json.loads) vs a float (library callers)."""
        a = ExperimentSpec(decoder=DecoderSpec(fs_out=100))
        b = ExperimentSpec(decoder=DecoderSpec(fs_out=100.0))
        assert a == b
        assert a.key() == b.key()

    def test_key_independent_of_hash_seed(self):
        """The key must come from content hashing, not Python's hash()."""
        import subprocess
        import sys

        code = (
            "from repro.api import ExperimentSpec;"
            "print(ExperimentSpec().key())"
        )
        keys = set()
        for seed in ("0", "1", "random"):
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed},
                check=True,
            )
            keys.add(out.stdout.strip())
        assert len(keys) == 1


class TestReplace:
    def test_replace_top_level(self):
        spec = ExperimentSpec().replace(decoder=DecoderSpec(fs_out=50.0))
        assert spec.decoder.fs_out == 50.0
        assert ExperimentSpec().decoder.fs_out == 100.0  # original untouched

    def test_replace_at_nested(self):
        spec = ExperimentSpec(encoder=EncoderSpec("atc"))
        out = spec.replace_at("encoder.config.vth", 0.15)
        assert out.encoder.config.vth == 0.15
        assert spec.encoder.config.vth == 0.3

    def test_replace_at_whole_config(self):
        config = DATCConfig(frame_selector=3)
        out = ExperimentSpec().replace_at("encoder.config", config)
        assert out.encoder.config is config

    def test_replace_at_bad_path(self):
        with pytest.raises(ValueError, match="no field"):
            ExperimentSpec().replace_at("encoder.config.nope", 1)
        with pytest.raises(ValueError):
            ExperimentSpec().replace_at("", 1)

    def test_noop_replace_preserves_key(self):
        spec = ExperimentSpec(encoder=EncoderSpec("atc"))
        assert spec.replace().key() == spec.key()
        assert (
            spec.replace_at("encoder.config.vth", 0.3).key() == spec.key()
        )  # same value -> same key


class TestForScheme:
    def test_matches_legacy_run_signature(self):
        spec = ExperimentSpec.for_scheme(
            "atc", ATCConfig(vth=0.2), fs_out=50.0, window_s=0.1
        )
        assert spec.scheme == "atc"
        assert spec.encoder.config.vth == 0.2
        assert spec.decoder.fs_out == 50.0
        assert spec.decoder.window_s == 0.1
        assert spec.link is None

    def test_link_attached(self):
        spec = ExperimentSpec.for_scheme("datc", link=LinkConfig())
        assert spec.link is not None
        assert spec.link.config == LinkConfig()
