"""Tests for the Experiment facade: execution, sweeps, caching, spawn keys."""

import numpy as np
import pytest

from repro.api import (
    DATA_AXES,
    DecoderSpec,
    EncoderSpec,
    Experiment,
    ExperimentSpec,
    LinkSpec,
    SweepPoint,
    _spec_key_worker,
    dataset_point_fingerprint,
    pattern_fingerprint,
)
from repro.core.config import ATCConfig, DATCConfig
from repro.runtime.store import ResultStore
from repro.rx.reconstruction import reconstruct_hybrid
from repro.signals.dataset import DatasetSpec


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "cache")


class TestRun:
    def test_matches_one_shot_per_pattern(self, small_dataset):
        patterns = [small_dataset.pattern(i) for i in range(3)]
        experiment = Experiment(ExperimentSpec())
        batch = experiment.run(patterns)
        for pattern, result in zip(patterns, batch):
            single = experiment.run_one(pattern)
            assert result.correlation_pct == single.correlation_pct
            assert np.array_equal(result.stream.times, single.stream.times)
            assert np.array_equal(result.reconstruction, single.reconstruction)

    def test_empty(self):
        assert Experiment(ExperimentSpec()).run([]) == []

    def test_spec_type_checked(self):
        with pytest.raises(TypeError):
            Experiment("datc")

    def test_decoder_dac_bits_override_changes_decode(self, mid_pattern):
        base = Experiment(ExperimentSpec()).run_one(mid_pattern)
        coarse_spec = ExperimentSpec(decoder=DecoderSpec(dac_bits=2))
        coarse = Experiment(coarse_spec).run([mid_pattern])[0]
        # Same events (encoder untouched), different reconstruction.
        assert np.array_equal(coarse.stream.times, base.stream.times)
        assert not np.array_equal(coarse.reconstruction, base.reconstruction)
        # And it matches the per-stream decoder at the override resolution.
        expected = reconstruct_hybrid(
            coarse.stream, fs_out=100.0, vref=1.0, dac_bits=2,
            smooth_window_s=0.25,
        )
        assert np.array_equal(coarse.reconstruction, expected)
        # run_one honours the same override (batched == one-shot).
        one = Experiment(coarse_spec).run_one(mid_pattern)
        assert np.array_equal(one.reconstruction, coarse.reconstruction)
        assert one.correlation_pct == coarse.correlation_pct


class TestGenericSweep:
    def test_spec_axis_values_substituted(self, mid_pattern):
        experiment = Experiment(ExperimentSpec.for_scheme("atc"))
        points = experiment.sweep(
            mid_pattern, "encoder.config.vth", [0.1, 0.3]
        )
        assert [p.parameter for p in points] == [0.1, 0.3]
        assert points[0].n_events > points[1].n_events

    def test_non_numeric_values_need_parameter(self, mid_pattern):
        experiment = Experiment(ExperimentSpec())
        with pytest.raises(TypeError, match="parameter"):
            experiment.sweep(
                mid_pattern, "encoder.config", [DATCConfig()]
            )

    def test_empty_grid(self, mid_pattern):
        assert Experiment(ExperimentSpec()).sweep(
            mid_pattern, "encoder.config.vref", []
        ) == []

    def test_drop_prob_validation(self, mid_pattern):
        with pytest.raises(ValueError):
            Experiment(ExperimentSpec()).sweep(
                mid_pattern, "stream.drop_prob", [1.0]
            )

    def test_data_axes_registered(self):
        assert set(DATA_AXES) == {"input.snr_db", "stream.drop_prob"}

    def test_decoder_axis_sweeps_decode_per_point(self, mid_pattern):
        """Sweeping a decoder field must apply each point's decoder —
        one batched decode per distinct (fs_out, window_s) group."""
        from repro.core.pipeline import run_datc

        experiment = Experiment(ExperimentSpec())
        points = experiment.sweep(
            mid_pattern, "decoder.window_s", [0.1, 0.25, 0.5]
        )
        corrs = [p.correlation_pct for p in points]
        assert len(set(corrs)) == 3  # genuinely different operating points
        for window_s, point in zip([0.1, 0.25, 0.5], points):
            expected = run_datc(mid_pattern, window_s=window_s)
            assert point.correlation_pct == expected.correlation_pct

    def test_decoder_dac_bits_sweep_matches_override_runs(self, mid_pattern):
        experiment = Experiment(ExperimentSpec())
        points = experiment.sweep(mid_pattern, "decoder.dac_bits", [2, 4])
        for bits, point in zip([2, 4], points):
            spec = ExperimentSpec(decoder=DecoderSpec(dac_bits=bits))
            expected = Experiment(spec).run_one(mid_pattern)
            assert point.correlation_pct == expected.correlation_pct

    def test_jobs_identical_to_serial(self, mid_pattern):
        experiment = Experiment(ExperimentSpec.for_scheme("atc"))
        grid = [0.1, 0.2, 0.3, 0.4]
        serial = experiment.sweep(mid_pattern, "encoder.config.vth", grid)
        threaded = experiment.sweep(
            mid_pattern, "encoder.config.vth", grid, jobs=4, backend="thread"
        )
        assert serial == threaded


class TestSweepCaching:
    def test_warm_sweep_is_bit_identical_and_hits(self, mid_pattern, store):
        experiment = Experiment(ExperimentSpec.for_scheme("atc"), store=store)
        grid = [0.1, 0.2, 0.3]
        cold = experiment.sweep(mid_pattern, "encoder.config.vth", grid)
        assert store.stats()["stores"] == len(grid)
        warm = experiment.sweep(mid_pattern, "encoder.config.vth", grid)
        assert warm == cold  # dataclass equality == bit identity here
        assert store.hits == len(grid)

    def test_partial_warm_only_evaluates_missing(self, mid_pattern, store):
        experiment = Experiment(ExperimentSpec.for_scheme("atc"), store=store)
        first = experiment.sweep(mid_pattern, "encoder.config.vth", [0.2])
        mixed = experiment.sweep(
            mid_pattern, "encoder.config.vth", [0.1, 0.2, 0.3]
        )
        assert mixed[1] == first[0]
        assert store.hits == 1
        assert store.stats()["stores"] == 3  # 0.2 once, 0.1/0.3 on 2nd call
        # And a fully-cold reference ordering is preserved.
        cold = Experiment(ExperimentSpec.for_scheme("atc")).sweep(
            mid_pattern, "encoder.config.vth", [0.1, 0.2, 0.3]
        )
        assert mixed == cold

    def test_data_axis_cache_respects_grid_position(self, mid_pattern, store):
        """The per-point RNG seeds with (seed, grid index), so a cached
        value at one position must not answer for the same value at
        another — the warm result must equal the cold re-run exactly."""
        experiment = Experiment(ExperimentSpec(), store=store)
        experiment.sweep(mid_pattern, "stream.drop_prob", [0.0, 0.3], seed=7)
        warm = experiment.sweep(mid_pattern, "stream.drop_prob", [0.3], seed=7)
        assert store.hits == 0  # 0.3 moved from index 1 to index 0
        cold = Experiment(ExperimentSpec()).sweep(
            mid_pattern, "stream.drop_prob", [0.3], seed=7
        )
        assert warm == cold

    def test_data_axis_points_keyed_by_transform(self, mid_pattern, store):
        experiment = Experiment(ExperimentSpec(), store=store)
        a = experiment.sweep(mid_pattern, "stream.drop_prob", [0.2], seed=1)
        b = experiment.sweep(mid_pattern, "stream.drop_prob", [0.2], seed=2)
        assert store.hits == 0  # different seed -> different fingerprint
        c = experiment.sweep(mid_pattern, "stream.drop_prob", [0.2], seed=1)
        assert store.hits == 1
        assert c == a
        assert a != b  # different erasure realisation

    def test_evaluate_cached(self, mid_pattern, store):
        experiment = Experiment(ExperimentSpec(), store=store)
        cold = experiment.evaluate(mid_pattern)
        warm = experiment.evaluate(mid_pattern)
        assert warm == cold
        assert store.hits == 1 and store.stats()["stores"] == 1


class TestDatasetSweepCaching:
    def test_warm_run_zero_reevaluations(self, small_dataset, store):
        """The acceptance contract: a repeated dataset sweep re-evaluates
        nothing — every pattern is served from the store."""
        experiment = Experiment(ExperimentSpec(), store=store)
        cold = experiment.dataset_sweep(small_dataset, limit=4)
        assert store.stats() == {
            "hits": 0, "misses": 4, "stores": 4, "corrupt": 0,
        }
        warm = experiment.dataset_sweep(small_dataset, limit=4)
        assert store.stats() == {
            "hits": 4, "misses": 4, "stores": 4, "corrupt": 0,
        }
        assert np.array_equal(warm.correlations_pct, cold.correlations_pct)
        assert np.array_equal(warm.n_events, cold.n_events)
        assert warm.correlations_pct.dtype == cold.correlations_pct.dtype

    def test_cached_matches_uncached(self, small_dataset, store):
        cached = Experiment(ExperimentSpec(), store=store).dataset_sweep(
            small_dataset, limit=4
        )
        plain = Experiment(ExperimentSpec()).dataset_sweep(
            small_dataset, limit=4
        )
        assert np.array_equal(cached.correlations_pct, plain.correlations_pct)
        assert np.array_equal(cached.n_events, plain.n_events)

    def test_growing_limit_reuses_prefix(self, small_dataset, store):
        experiment = Experiment(ExperimentSpec(), store=store)
        experiment.dataset_sweep(small_dataset, limit=2)
        out = experiment.dataset_sweep(small_dataset, limit=4)
        assert store.hits == 2  # patterns 0-1 cached, 2-3 evaluated
        assert out.pattern_ids.tolist() == [0, 1, 2, 3]

    def test_different_spec_does_not_collide(self, small_dataset, store):
        Experiment(ExperimentSpec(), store=store).dataset_sweep(
            small_dataset, limit=2
        )
        atc = Experiment(
            ExperimentSpec.for_scheme("atc"), store=store
        ).dataset_sweep(small_dataset, limit=2)
        assert store.hits == 0
        assert atc.scheme == "atc"


class TestFingerprints:
    def test_pattern_fingerprint_content_based(self, small_dataset):
        a = small_dataset.pattern(0)
        b = small_dataset.pattern(0)
        c = small_dataset.pattern(1)
        assert pattern_fingerprint(a) == pattern_fingerprint(b)
        assert pattern_fingerprint(a) != pattern_fingerprint(c)

    def test_dataset_point_fingerprint_no_synthesis(self, small_dataset):
        """Fingerprinting a dataset point must not synthesise the pattern
        (that is the whole point of the warm fast path)."""
        fp1 = dataset_point_fingerprint(small_dataset, 3)
        fp2 = dataset_point_fingerprint(small_dataset, 3)
        other = dataset_point_fingerprint(small_dataset, 4)
        assert fp1 == fp2 != other
        different = DatasetSpec(
            n_patterns=small_dataset.n_patterns,
            duration_s=small_dataset.duration_s,
            seed=small_dataset.seed + 1,
        )
        assert dataset_point_fingerprint(different, 3) != fp1


class TestSpawnKeyStability:
    def test_spec_key_stable_across_spawn_workers(self):
        """The acceptance contract: spec.key() computed in a spawn-started
        worker process equals the parent's."""
        from repro.runtime.executors import map_jobs

        specs = [
            ExperimentSpec(),
            ExperimentSpec(
                encoder=EncoderSpec("atc", ATCConfig(vth=0.2)),
                link=LinkSpec(),
                decoder=DecoderSpec(fs_out=50.0),
            ),
        ]
        parent_keys = [s.key() for s in specs]
        worker_keys = map_jobs(
            _spec_key_worker,
            [s.to_dict() for s in specs],
            jobs=2,
            backend="process",
            mp_context="spawn",
        )
        assert worker_keys == parent_keys


class TestLinkStage:
    def test_link_spec_transports_in_run_one(self, mid_pattern, monkeypatch):
        """A link-bearing spec must actually exercise the transport stage."""
        import repro.api as api
        from repro.uwb.link import LinkConfig, simulate_link

        calls = []

        def counting_link(stream, config, **kwargs):
            calls.append(config)
            return simulate_link(stream, config, **kwargs)

        monkeypatch.setattr(api, "simulate_link", counting_link)
        spec = ExperimentSpec.for_scheme("datc", link=LinkConfig())
        linked = Experiment(spec).run_one(mid_pattern)
        assert len(calls) == 1
        # Ideal channel: the received events equal the transmitted ones,
        # so the result matches the link-free spec bit-for-bit.
        direct = Experiment(ExperimentSpec()).run_one(mid_pattern)
        assert np.array_equal(linked.stream.times, direct.stream.times)
        assert linked.correlation_pct == direct.correlation_pct

    def test_link_spec_transports_in_batched_run(self, mid_pattern, monkeypatch):
        import repro.api as api
        from repro.uwb.link import LinkConfig, simulate_link_batch

        calls = []

        def counting_batch(streams, config, **kwargs):
            calls.append(len(list(streams)))
            return simulate_link_batch(streams, config, **kwargs)

        monkeypatch.setattr(api, "simulate_link_batch", counting_batch)
        spec = ExperimentSpec.for_scheme("datc", link=LinkConfig())
        results = Experiment(spec).run([mid_pattern, mid_pattern])
        assert calls == [2]  # one batched transport for the whole run
        direct = Experiment(ExperimentSpec()).run([mid_pattern])[0]
        assert results[0].correlation_pct == direct.correlation_pct

    def test_scheme_axis_sweep_decodes_each_point_correctly(self, mid_pattern):
        """Sweeping whole encoder specs across schemes must decode each
        stream with its own scheme's decoder."""
        from repro.api import EncoderSpec as ES

        points = Experiment(ExperimentSpec()).sweep(
            mid_pattern,
            "encoder",
            [ES("atc"), ES("datc")],
            parameter=lambda e: 0.0 if e.scheme == "atc" else 1.0,
        )
        atc = Experiment(ExperimentSpec.for_scheme("atc")).run_one(mid_pattern)
        datc = Experiment(ExperimentSpec()).run_one(mid_pattern)
        assert points[0].correlation_pct == atc.correlation_pct
        assert points[1].correlation_pct == datc.correlation_pct


class TestLinkSweep:
    def test_rides_spec_link(self, mid_pattern):
        experiment = Experiment(ExperimentSpec())
        stream = experiment.run_one(mid_pattern).stream
        points = Experiment(
            ExperimentSpec.for_scheme("datc", link=None)
        ).link_sweep(stream, (0.0, 0.4))
        assert points[0].event_delivery_ratio == 1.0
        assert points[1].event_delivery_ratio < 1.0

    def test_invalid_probability(self, mid_pattern):
        experiment = Experiment(ExperimentSpec())
        stream = experiment.run_one(mid_pattern).stream
        with pytest.raises(ValueError):
            experiment.link_sweep(stream, (1.5,))


class TestStreaming:
    def test_pipeline_from_spec_matches_one_shot(self, mid_pattern):
        import asyncio

        spec = ExperimentSpec()
        experiment = Experiment(spec)
        one_shot = experiment.run_one(mid_pattern)
        pipe = experiment.pipeline(mid_pattern.fs)
        chunk = int(0.25 * mid_pattern.fs)
        source = [
            mid_pattern.emg[i : i + chunk]
            for i in range(0, mid_pattern.n_samples, chunk)
        ]
        envelope = asyncio.run(pipe.run(source))
        assert np.array_equal(envelope, one_shot.reconstruction)

    def test_stream_yields_envelope_chunks(self, mid_pattern):
        import asyncio

        experiment = Experiment(ExperimentSpec.for_scheme("atc"))
        chunk = int(0.5 * mid_pattern.fs)
        source = [
            mid_pattern.emg[i : i + chunk]
            for i in range(0, mid_pattern.n_samples, chunk)
        ]

        async def collect():
            chunks = []
            async for out in experiment.stream(source, mid_pattern.fs):
                chunks.append(out)
            return chunks

        chunks = asyncio.run(collect())
        merged = np.concatenate(chunks)
        assert np.array_equal(
            merged, experiment.run_one(mid_pattern).reconstruction
        )


class TestPointStore:
    def test_point_arrays_round_trip(self):
        point = SweepPoint(
            parameter=0.3, correlation_pct=96.414243, n_events=3724,
            n_symbols=18620,
        )
        arrays = Experiment._point_arrays(point)
        rebuilt = Experiment._point_from_arrays(0.3, arrays)
        assert rebuilt == point
