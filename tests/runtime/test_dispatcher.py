"""Dispatcher-level protocol tests: raw frames against the server.

The conformance suites drive the dispatcher through ``RemoteBackend``;
this file speaks the wire directly to pin the server's handling of
protocol *violations* (malformed JSON, oversized frames, unknown verbs),
upload integrity (a checksum-corrupted ``store_put`` must not poison the
store), the fencing-token echo on ``complete``, and restart durability.
"""

import json
import socket

import numpy as np
import pytest

from repro.runtime.dispatcher import DispatcherThread
from repro.runtime.transport import (
    MAX_FRAME_BYTES,
    RemoteBackend,
    encode_payload,
)


@pytest.fixture
def dispatcher(tmp_path):
    with DispatcherThread(":memory:", str(tmp_path / "store")) as d:
        yield d


def raw_conn(dispatcher):
    """A plain blocking socket + buffered file to the dispatcher."""
    sock = socket.create_connection(dispatcher.address, timeout=30.0)
    return sock, sock.makefile("rwb")


def send_line(fh, line: bytes) -> None:
    fh.write(line + b"\n")
    fh.flush()


def rpc(fh, **frame) -> dict:
    send_line(fh, json.dumps(frame).encode())
    return json.loads(fh.readline())


class TestProtocolViolations:
    def test_malformed_json_gets_one_error_reply_then_drop(self, dispatcher):
        sock, fh = raw_conn(dispatcher)
        try:
            send_line(fh, b"{this is not json")
            reply = json.loads(fh.readline())
            assert reply["ok"] is False
            assert reply["error"] == "MalformedFrame"
            # Framing is unrecoverable: the server hangs up after the
            # reply instead of guessing where the next frame starts.
            assert fh.readline() == b""
        finally:
            fh.close()
            sock.close()

    def test_non_object_frame_is_malformed(self, dispatcher):
        sock, fh = raw_conn(dispatcher)
        try:
            send_line(fh, b"[1, 2, 3]")
            reply = json.loads(fh.readline())
            assert reply["ok"] is False
            assert reply["error"] == "MalformedFrame"
            assert "object" in reply["detail"]
            assert fh.readline() == b""
        finally:
            fh.close()
            sock.close()

    def test_oversized_frame_gets_frame_too_large_then_drop(self, dispatcher):
        sock, fh = raw_conn(dispatcher)
        try:
            send_line(fh, b"x" * (MAX_FRAME_BYTES + 1))
            reply = json.loads(fh.readline())
            assert reply["ok"] is False
            assert reply["error"] == "FrameTooLarge"
            assert fh.readline() == b""
        finally:
            fh.close()
            sock.close()

    def test_unknown_op_keeps_the_connection_usable(self, dispatcher):
        sock, fh = raw_conn(dispatcher)
        try:
            reply = rpc(fh, op="no_such_verb")
            assert reply["ok"] is False
            assert reply["error"] == "UnknownOp"
            # A typed error is NOT a framing failure: the very same
            # connection serves the next request.
            hello = rpc(fh, op="hello")
            assert hello["ok"] is True
            assert "protocol" in hello
        finally:
            fh.close()
            sock.close()

    def test_missing_op_field_is_unknown_op(self, dispatcher):
        sock, fh = raw_conn(dispatcher)
        try:
            reply = rpc(fh, noise=1)
            assert reply["ok"] is False
            assert reply["error"] == "UnknownOp"
        finally:
            fh.close()
            sock.close()


class TestStorePutIntegrity:
    def test_corrupt_upload_is_rejected_and_store_stays_clean(
        self, dispatcher
    ):
        blob = encode_payload({"x": np.arange(4.0)})
        blob["checksum"] = "0" * 64  # in-flight corruption
        sock, fh = raw_conn(dispatcher)
        try:
            reply = rpc(
                fh, op="store_put", spec_key="k", fingerprint="f",
                payload=blob,
            )
            assert reply["ok"] is False
            assert reply["error"] == "ValueError"
            assert "checksum" in reply["detail"]
            # The verify ran BEFORE the store write: no poisoned entry.
            assert rpc(
                fh, op="store_has", spec_key="k", fingerprint="f"
            )["has"] is False
            assert dispatcher.server.store.get("k", "f") is None
        finally:
            fh.close()
            sock.close()

    def test_structurally_broken_upload_is_a_typed_error(self, dispatcher):
        sock, fh = raw_conn(dispatcher)
        try:
            reply = rpc(
                fh, op="store_put", spec_key="k", fingerprint="f",
                payload={"not": "a payload"},
            )
            assert reply["ok"] is False
            assert reply["error"] == "ValueError"
            assert dispatcher.server.store.get("k", "f") is None
        finally:
            fh.close()
            sock.close()


class TestFencingOnTheWire:
    def test_late_complete_with_a_stale_token_is_refused(self, dispatcher):
        # The fencing token is (status='leased', worker_id): a complete
        # frame replaying a reclaimed lease must come back applied=false
        # while the live holder's frame lands.
        sock, fh = raw_conn(dispatcher)
        try:
            assert rpc(
                fh, op="submit", spec_key="s", fingerprint="f",
                spec={}, payload={"kind": "noop"}, max_attempts=3, now=0.0,
            )["inserted"] is True
            stale = rpc(
                fh, op="claim", worker_id="w1", lease_s=5.0, now=0.0
            )["job"]
            assert stale is not None
            # Lease expires; the reap requeues, a peer reclaims later
            # (past the retry backoff written by the reap).
            assert rpc(fh, op="reap", now=10.0)["reaped"] == 1
            live = rpc(
                fh, op="claim", worker_id="w2", lease_s=5.0, now=20.0
            )["job"]
            assert live is not None
            assert live["worker_id"] == "w2"
            # w1's late frame echoes its stale token: fenced off.
            assert rpc(fh, op="complete", job=stale, now=21.0)[
                "applied"
            ] is False
            assert rpc(fh, op="complete", job=live, now=21.0)[
                "applied"
            ] is True
            counts = rpc(fh, op="counts")["counts"]
            assert counts["done"] == 1
            assert counts["leased"] == 0
        finally:
            fh.close()
            sock.close()

    def test_stale_heartbeat_is_refused_too(self, dispatcher):
        sock, fh = raw_conn(dispatcher)
        try:
            rpc(
                fh, op="submit", spec_key="s", fingerprint="f",
                spec={}, payload={"kind": "noop"}, now=0.0,
            )
            stale = rpc(
                fh, op="claim", worker_id="w1", lease_s=5.0, now=0.0
            )["job"]
            rpc(fh, op="reap", now=10.0)
            assert rpc(fh, op="heartbeat", job=stale, now=10.5)[
                "applied"
            ] is False
        finally:
            fh.close()
            sock.close()


class TestRestartDurability:
    def test_rows_survive_a_dispatcher_restart(self, tmp_path):
        # The dispatcher is disposable: all durable state is the sqlite
        # file + store dir.  Stop it, start a fresh one on the same
        # paths, and the jobs table is exactly where it was.
        db = str(tmp_path / "q.db")
        store = str(tmp_path / "store")
        with DispatcherThread(db, store) as d:
            backend = RemoteBackend(d.address)
            try:
                for i in range(3):
                    backend.submit("s", f"fp{i}", {}, {"kind": "noop"}, now=0.0)
                job = backend.claim("w1", lease_s=30.0, now=0.0)
                assert backend.complete(job, now=1.0)
            finally:
                backend.close()

        with DispatcherThread(db, store) as d:
            backend = RemoteBackend(d.address)
            try:
                counts = backend.counts()
                assert counts["done"] == 1
                assert counts["open"] == 2
                fps = {r["fingerprint"] for r in backend.rows()}
                assert fps == {"fp0", "fp1", "fp2"}
            finally:
                backend.close()
