"""Tests for the vectorized multi-session runtime (``SessionBatch``).

The load-bearing contract: every session's event stream and decoded
envelope is **bit-identical** to a scalar
``StreamingEncoder``/``StreamingDecoder`` pair fed the same chunk
sequence, for any interleaving of pushes across sessions.  The random
interleavings live in ``tests/properties/test_sessions_properties.py``;
here are the deterministic lifecycle, grouping, and error cases.
"""

import asyncio

import numpy as np
import pytest

from repro.core.config import ATCConfig, DATCConfig
from repro.core.encoders import ATCEncoder, DATCEncoder
from repro.runtime.ingest import AsyncStreamingPipeline, run_sessions
from repro.runtime.sessions import SessionBatch, SessionResult, SessionSpec
from repro.rx.decoders import StreamingDecoder

FS = 2500.0


def scalar_reference(scheme, config, chunks, fs=FS, **rx):
    """The scalar streaming pipeline the batch must match bit-for-bit."""
    encoder_cls = ATCEncoder if scheme == "atc" else DATCEncoder
    enc = encoder_cls(fs, config, rectify=True)
    dec = StreamingDecoder(
        scheme=scheme,
        config=config,
        fs_out=rx.get("fs_out", 100.0),
        window_s=rx.get("window_s", 0.25),
    )
    for c in chunks:
        dec.push(enc.push(c))
    enc.finalize()
    dec.push(enc.drain())
    dec.finalize()
    return enc.stream, dec.envelope


def chunked(x, sizes):
    out, i, s = [], 0, 0
    while i < x.size:
        n = sizes[s % len(sizes)]
        s += 1
        out.append(x[i : i + n])
        i += n
    return out


def assert_session_matches(result, stream, envelope):
    assert np.array_equal(result.stream.times, stream.times)
    if stream.levels is None:
        assert result.stream.levels is None
    else:
        assert np.array_equal(result.stream.levels, stream.levels)
    assert result.stream.duration_s == stream.duration_s
    assert result.stream.symbols_per_event == stream.symbols_per_event
    assert np.array_equal(result.envelope, envelope)


class TestSessionSpec:
    def test_default_config_follows_scheme(self):
        assert isinstance(SessionSpec(scheme="atc").config, ATCConfig)
        assert isinstance(SessionSpec(scheme="datc").config, DATCConfig)

    def test_key_stable_and_content_addressed(self):
        a = SessionSpec(scheme="datc", fs=FS)
        b = SessionSpec(scheme="datc", fs=FS)
        c = SessionSpec(scheme="datc", fs=FS, fs_out=200.0)
        assert a.key() == b.key()
        assert a.key() == a.key()  # memoised path returns the same hash
        assert a.key() != c.key()

    def test_config_scheme_mismatch_rejected(self):
        with pytest.raises(TypeError):
            SessionSpec(scheme="atc", config=DATCConfig())

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            SessionSpec(scheme="xtc")
        with pytest.raises(ValueError):
            SessionSpec(fs=-1.0)
        with pytest.raises(ValueError):
            SessionSpec(rate_weight=1.5)

    @pytest.mark.parametrize("field", ["silence_timeout_s", "decay_tau_s"])
    @pytest.mark.parametrize("value", [0.0, -0.5])
    def test_non_positive_receiver_times_rejected(self, field, value):
        # Zero or negative timeouts used to slip through and only blow
        # up (or silently misbehave) deep inside the batched decoder.
        with pytest.raises(ValueError, match=field):
            SessionSpec(**{field: value})


class TestBitIdentity:
    @pytest.mark.parametrize(
        "scheme,config",
        [
            ("atc", ATCConfig()),
            ("datc", DATCConfig()),
            ("datc", DATCConfig(quantized=True)),
            ("datc", DATCConfig(frame_selector=2)),
        ],
    )
    def test_ragged_multi_session_matches_scalar(self, scheme, config, rng):
        spec = SessionSpec(scheme=scheme, fs=FS, config=config)
        durations = (2.0, 1.3, 2.7, 0.9)
        sigs = [rng.normal(0, 0.3, size=int(FS * d)) for d in durations]
        size_cycles = [[1000], [333, 0, 777], [129], [999, 1]]
        chunklists = [
            chunked(s, sizes) for s, sizes in zip(sigs, size_cycles)
        ]
        batch = SessionBatch()
        sids = [batch.create(spec) for _ in sigs]
        for k in range(max(len(c) for c in chunklists)):
            push = {
                sid: chunklists[j][k]
                for j, sid in enumerate(sids)
                if k < len(chunklists[j])
            }
            batch.push_many(push)
        for j, sid in enumerate(sids):
            result = batch.finalize(sid)
            stream, envelope = scalar_reference(scheme, config, chunklists[j])
            assert_session_matches(result, stream, envelope)

    def test_empty_chunks_and_single_samples(self, rng):
        spec = SessionSpec(scheme="datc", fs=FS)
        sig = rng.normal(0, 0.3, size=2000)
        chunks = [np.zeros(0), sig[:1], np.zeros(0), sig[1:1500], sig[1500:]]
        batch = SessionBatch()
        sid = batch.create(spec)
        for c in chunks:
            batch.push_many({sid: c})
        result = batch.finalize(sid)
        stream, envelope = scalar_reference("datc", DATCConfig(), chunks)
        assert_session_matches(result, stream, envelope)

    def test_mid_run_join(self, rng):
        spec = SessionSpec(scheme="datc", fs=FS)
        a_sig = rng.normal(0, 0.3, size=4000)
        b_sig = rng.normal(0, 0.3, size=2500)
        batch = SessionBatch()
        a = batch.create(spec)
        batch.push_many({a: a_sig[:1500]})
        b = batch.create(spec)  # joins mid-run
        batch.push_many({a: a_sig[1500:2600], b: b_sig[:700]})
        batch.push_many({b: b_sig[700:]})
        batch.push_many({a: a_sig[2600:]})
        ra, rb = batch.finalize(a), batch.finalize(b)
        sa, ea = scalar_reference(
            "datc", DATCConfig(),
            [a_sig[:1500], a_sig[1500:2600], a_sig[2600:]],
        )
        sb, eb = scalar_reference(
            "datc", DATCConfig(), [b_sig[:700], b_sig[700:]]
        )
        assert_session_matches(ra, sa, ea)
        assert_session_matches(rb, sb, eb)

    def test_push_many_returns_new_event_count(self, rng):
        spec = SessionSpec(scheme="atc", fs=FS)
        sig = np.abs(rng.normal(0, 0.5, size=5000))
        batch = SessionBatch()
        sid = batch.create(spec)
        total = 0
        for c in chunked(sig, [800]):
            total += batch.push_many({sid: c})
        result = batch.finalize(sid)
        # Finalize can only add the D-ATC partial-frame flush; for ATC
        # the per-push counts already cover the whole stream.
        assert total == result.stream.n_events


class TestDrainContract:
    def test_incremental_drains_concatenate_to_full_stream(self, rng):
        spec = SessionSpec(scheme="datc", fs=FS)
        sig = rng.normal(0, 0.3, size=5000)
        batch = SessionBatch()
        sid = batch.create(spec)
        parts = []
        for c in chunked(sig, [777]):
            batch.push_many({sid: c})
            parts.append(batch.drain(sid))
        result = batch.finalize(sid)
        parts.append(batch.drain(sid))  # the partial-frame flush
        times = np.concatenate([p.times for p in parts])
        levels = np.concatenate([p.levels for p in parts])
        assert np.array_equal(times, result.stream.times)
        assert np.array_equal(levels, result.stream.levels)

    def test_drain_many_returns_only_undrained(self, rng):
        spec = SessionSpec(scheme="atc", fs=FS)
        batch = SessionBatch()
        a, b = batch.create(spec), batch.create(spec)
        loud = np.abs(rng.normal(0, 0.5, size=2000)) + 0.5
        batch.push_many({a: loud, b: np.zeros(2000)})
        out = batch.drain_many()
        assert a in out and out[a].n_events > 0
        assert b not in out  # silent session has nothing undrained
        assert batch.drain_many() == {}  # nothing new since


class TestLifecycle:
    def test_slot_reuse_after_leave(self, rng):
        spec = SessionSpec(scheme="datc", fs=FS)
        sig = rng.normal(0, 0.3, size=3000)
        batch = SessionBatch()
        first = batch.create(spec)
        batch.push_many({first: sig})
        batch.finalize(first)
        batch.leave(first)
        # The reused slot must start from pristine state.
        second = batch.create(spec)
        batch.push_many({second: sig[:2500]})
        result = batch.finalize(second)
        stream, envelope = scalar_reference("datc", DATCConfig(), [sig[:2500]])
        assert_session_matches(result, stream, envelope)

    def test_churn_with_compaction(self, rng):
        """Heavy join/leave churn (forcing grow + compact) stays exact."""
        spec = SessionSpec(scheme="datc", fs=FS)
        sigs = [rng.normal(0, 0.3, size=2500) for _ in range(40)]
        batch = SessionBatch()
        sids = [batch.create(spec) for _ in range(40)]  # forces row growth
        for s in range(0, 2500, 500):
            batch.push_many({sid: sigs[j][s : s + 500] for j, sid in enumerate(sids)})
        # Retire most sessions -> the sub-batch compacts under the hood.
        keep = sids[::8]
        for sid in sids:
            if sid not in keep:
                batch.finalize(sid)
                batch.leave(sid)
        fresh = batch.create(spec)
        fresh_sig = rng.normal(0, 0.3, size=2500)
        batch.push_many({fresh: fresh_sig})
        for j, sid in enumerate(sids):
            if sid in keep:
                result = batch.finalize(sid)
                stream, envelope = scalar_reference(
                    "datc", DATCConfig(), chunked(sigs[j], [500])
                )
                assert_session_matches(result, stream, envelope)
        result = batch.finalize(fresh)
        stream, envelope = scalar_reference("datc", DATCConfig(), [fresh_sig])
        assert_session_matches(result, stream, envelope)

    def test_heterogeneous_specs_group_into_sub_batches(self, rng):
        batch = SessionBatch()
        datc_spec = SessionSpec(scheme="datc", fs=FS)
        atc_spec = SessionSpec(scheme="atc", fs=2000.0)
        a = batch.create(datc_spec)
        b = batch.create(atc_spec)
        c = batch.create(datc_spec)  # same key as a -> same sub-batch
        assert batch.n_groups == 2
        assert batch.n_sessions == 3
        sig_a = rng.normal(0, 0.3, size=3000)
        sig_b = rng.normal(0, 0.4, size=2400)
        sig_c = rng.normal(0, 0.2, size=3000)
        batch.push_many({a: sig_a, b: sig_b, c: sig_c})  # one heterogeneous call
        for sid, scheme, config, fs, sig in (
            (a, "datc", DATCConfig(), FS, sig_a),
            (b, "atc", ATCConfig(), 2000.0, sig_b),
            (c, "datc", DATCConfig(), FS, sig_c),
        ):
            result = batch.finalize(sid)
            stream, envelope = scalar_reference(scheme, config, [sig], fs=fs)
            assert_session_matches(result, stream, envelope)

    def test_session_ids_and_spec_lookup(self):
        batch = SessionBatch()
        spec = SessionSpec(scheme="datc", fs=FS)
        a = batch.create(spec)
        b = batch.create(spec)
        assert batch.session_ids() == [a, b]
        assert batch.spec(a) is spec
        batch.leave(a)
        assert batch.session_ids() == [b]


class TestErrors:
    def test_unknown_sid_rejected(self):
        batch = SessionBatch()
        with pytest.raises(KeyError):
            batch.push_many({7: np.zeros(10)})
        with pytest.raises(KeyError):
            batch.drain(7)
        with pytest.raises(KeyError):
            batch.finalize(7)
        with pytest.raises(KeyError):
            batch.leave(7)

    def test_push_after_finalize_rejected(self, rng):
        batch = SessionBatch()
        sid = batch.create(SessionSpec(scheme="datc", fs=FS))
        batch.push_many({sid: rng.normal(0, 0.3, size=2000)})
        batch.finalize(sid)
        with pytest.raises(RuntimeError, match="finalize"):
            batch.push_many({sid: np.zeros(10)})

    def test_finalize_twice_rejected(self, rng):
        batch = SessionBatch()
        sid = batch.create(SessionSpec(scheme="datc", fs=FS))
        batch.push_many({sid: rng.normal(0, 0.3, size=2000)})
        batch.finalize(sid)
        with pytest.raises(RuntimeError, match="twice"):
            batch.finalize(sid)

    def test_non_1d_chunk_rejected(self):
        batch = SessionBatch()
        sid = batch.create(SessionSpec(scheme="datc", fs=FS))
        with pytest.raises(ValueError, match="1-D"):
            batch.push_many({sid: np.zeros((2, 3))})

    def test_too_short_session_raises_like_scalar(self):
        batch = SessionBatch()
        sid = batch.create(SessionSpec(scheme="datc", fs=FS))
        batch.push_many({sid: np.zeros(1)})  # under one clock period
        with pytest.raises(ValueError, match="signal too short"):
            batch.finalize(sid)

    def test_non_spec_rejected(self):
        with pytest.raises(TypeError):
            SessionBatch().create(DATCConfig())


class TestRunSessionsDriver:
    def test_run_sessions_matches_scalar(self, rng):
        sigs = {
            f"wearer-{j}": rng.normal(0, 0.3, size=int(FS * d))
            for j, d in enumerate((1.5, 2.0, 0.8))
        }
        spec = SessionSpec(scheme="datc", fs=FS)
        sources = {
            name: iter(chunked(sig, [617])) for name, sig in sigs.items()
        }
        results = asyncio.run(run_sessions(sources, spec))
        assert set(results) == set(sigs)
        for name, sig in sigs.items():
            stream, envelope = scalar_reference(
                "datc", DATCConfig(), chunked(sig, [617])
            )
            assert isinstance(results[name], SessionResult)
            assert_session_matches(results[name], stream, envelope)

    def test_run_many_accepts_async_sources_and_per_name_specs(self, rng):
        sig_a = rng.normal(0, 0.3, size=3000)
        sig_b = rng.normal(0, 0.4, size=2400)

        async def agen(sig):
            for i in range(0, sig.size, 500):
                yield sig[i : i + 500]

        specs = {
            "a": SessionSpec(scheme="datc", fs=FS),
            "b": SessionSpec(scheme="atc", fs=2000.0),
        }
        results = asyncio.run(
            AsyncStreamingPipeline.run_many(
                {"a": agen(sig_a), "b": agen(sig_b)}, specs
            )
        )
        sa, ea = scalar_reference("datc", DATCConfig(), chunked(sig_a, [500]))
        sb, eb = scalar_reference(
            "atc", ATCConfig(), chunked(sig_b, [500]), fs=2000.0
        )
        assert_session_matches(results["a"], sa, ea)
        assert_session_matches(results["b"], sb, eb)

    def test_missing_spec_rejected(self):
        with pytest.raises(KeyError, match="no SessionSpec"):
            asyncio.run(
                run_sessions({"x": iter([np.zeros(10)])}, {"y": SessionSpec()})
            )
