"""Tests for the deterministic fault-injection layer."""

import pytest

from repro.runtime.faults import (
    ENV_FAULTS,
    FaultPlan,
    FaultSpec,
    InjectedFault,
)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultSpec(kind="explode")

    def test_rejects_bad_prob(self):
        with pytest.raises(ValueError, match="prob"):
            FaultSpec(kind="error", prob=1.5)

    def test_rejects_bad_stall(self):
        with pytest.raises(ValueError, match="stall_s"):
            FaultSpec(kind="stall", stall_s=0.0)

    def test_rejects_zero_based_attempts(self):
        with pytest.raises(ValueError, match="attempts"):
            FaultSpec(kind="error", attempts=(0,))

    def test_attempts_coerced_to_int_tuple(self):
        spec = FaultSpec(kind="error", attempts=[1, 3])
        assert spec.attempts == (1, 3)

    def test_dict_round_trip(self):
        spec = FaultSpec(kind="stall", match="abc", attempts=(2,), stall_s=1.5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_disconnect_is_a_first_class_kind(self):
        # The streaming client's injector: must construct, serialise and
        # match like the queue kinds (queue workers simply ignore it).
        spec = FaultSpec(kind="disconnect", match="client:7", attempts=(2,))
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        plan = FaultPlan(faults=(spec,))
        assert FaultPlan.from_json(plan.to_json()) == plan
        assert plan.match("client:7", 2) is spec
        assert plan.match("client:7", 1) is None  # wrong attempt
        assert plan.match("client:8", 2) is None  # wrong session


class TestFaultPlan:
    def test_rejects_non_spec_faults(self):
        with pytest.raises(TypeError, match="FaultSpec"):
            FaultPlan(faults=({"kind": "error"},))

    def test_match_on_fingerprint_substring(self):
        plan = FaultPlan(faults=(FaultSpec(kind="error", match="abc"),))
        assert plan.match("xxabcxx", 1) is plan.faults[0]
        assert plan.match("nope", 1) is None

    def test_match_scoped_to_attempts(self):
        plan = FaultPlan(faults=(FaultSpec(kind="error", attempts=(1,)),))
        assert plan.match("fp", 1) is not None
        assert plan.match("fp", 2) is None

    def test_first_firing_injector_wins(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="crash", match="abc"),
                FaultSpec(kind="error"),
            )
        )
        assert plan.match("abc", 1).kind == "crash"
        assert plan.match("other", 1).kind == "error"

    def test_prob_draws_are_deterministic(self):
        plan = FaultPlan(faults=(FaultSpec(kind="error", prob=0.5),), seed=7)
        outcomes = [
            plan.match(f"fp{i}", 1) is not None for i in range(64)
        ]
        # Same plan, same decisions — and a 0.5 prob actually splits.
        assert outcomes == [
            plan.match(f"fp{i}", 1) is not None for i in range(64)
        ]
        assert any(outcomes) and not all(outcomes)

    def test_prob_depends_on_seed(self):
        a = FaultPlan(faults=(FaultSpec(kind="error", prob=0.5),), seed=0)
        b = FaultPlan(faults=(FaultSpec(kind="error", prob=0.5),), seed=1)
        draws_a = [a.match(f"fp{i}", 1) is not None for i in range(64)]
        draws_b = [b.match(f"fp{i}", 1) is not None for i in range(64)]
        assert draws_a != draws_b

    def test_json_round_trip(self):
        plan = FaultPlan(
            faults=(
                FaultSpec(kind="error", attempts=(1, 2)),
                FaultSpec(kind="stall", stall_s=3.0, prob=0.25),
            ),
            seed=42,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_env_round_trip(self):
        plan = FaultPlan(faults=(FaultSpec(kind="crash"),), seed=3)
        env = plan.to_env({})
        assert ENV_FAULTS in env
        assert FaultPlan.from_env(env) == plan

    def test_from_env_absent_is_none(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({ENV_FAULTS: ""}) is None

    def test_injected_fault_is_an_ordinary_error(self):
        # Workers treat it like any exception: retry then quarantine.
        assert issubclass(InjectedFault, RuntimeError)
