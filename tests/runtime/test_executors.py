"""Tests for the pluggable execution backends (`repro.runtime.executors`).

The regression suite behind the runtime contract: order determinism,
exception transparency (first failing item in item order, original
traceback preserved across the process boundary), shard planning, and
spawn safety.
"""

import operator
from functools import partial

import pytest

from repro.runtime.executors import (
    BACKENDS,
    RemoteTraceback,
    map_jobs,
    plan_shards,
    resolve_backend,
)

ADD_SEVEN = partial(operator.add, 7)  # importable under any start method


def record_order(item, log):
    log.append(item)
    return item


def boom_on_multiples_of_three(item):
    if item % 3 == 0:
        raise ValueError(f"boom at item {item}")
    return item * 10


class TestResolveBackend:
    def test_historical_default(self):
        assert resolve_backend(None, None) == "serial"
        assert resolve_backend(None, 1) == "serial"
        assert resolve_backend(None, 4) == "thread"

    def test_explicit_backends(self):
        for backend in BACKENDS:
            assert resolve_backend(backend, 2) == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("mpi", 2)


class TestPlanShards:
    def test_partitions_in_order(self):
        shards = plan_shards(10, 2, shard_size=3)
        covered = [i for s in shards for i in range(s.start, s.stop)]
        assert covered == list(range(10))

    def test_default_targets_four_shards_per_worker(self):
        shards = plan_shards(100, 2)
        assert len(shards) == 8
        assert all(s.stop - s.start <= 13 for s in shards)

    def test_empty_grid(self):
        assert plan_shards(0, 4) == []

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            plan_shards(-1, 2)
        with pytest.raises(ValueError):
            plan_shards(5, 0)
        with pytest.raises(ValueError):
            plan_shards(5, 2, shard_size=0)


class TestOrderDeterminism:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_results_in_item_order(self, backend):
        items = list(range(23))
        expected = [7 + x for x in items]
        assert map_jobs(ADD_SEVEN, items, 2, backend=backend) == expected

    @pytest.mark.parametrize("shard_size", [None, 1, 2, 7, 100])
    def test_process_shard_size_invariant(self, shard_size):
        items = list(range(17))
        got = map_jobs(
            ADD_SEVEN, items, 2, backend="process", shard_size=shard_size
        )
        assert got == [7 + x for x in items]

    def test_serial_is_a_plain_in_process_loop(self):
        log = []
        out = map_jobs(partial(record_order, log=log), [3, 1, 2], None)
        assert out == [3, 1, 2]
        assert log == [3, 1, 2]

    def test_jobs_one_degenerates_to_serial(self):
        log = []
        out = map_jobs(
            partial(record_order, log=log), [5, 4], 1, backend="process"
        )
        assert out == [5, 4]
        assert log == [5, 4]  # ran in-process: the parent saw the appends

    def test_empty_items(self):
        for backend in BACKENDS:
            assert map_jobs(ADD_SEVEN, [], 4, backend=backend) == []


class TestExceptionTransparency:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_first_item_error_wins(self, backend):
        # Items 3, 6, 9 all raise; the *first in item order* must surface,
        # whatever the completion order.
        with pytest.raises(ValueError, match="boom at item 3"):
            map_jobs(
                boom_on_multiples_of_three,
                list(range(1, 12)),
                2,
                backend=backend,
                shard_size=2,
            )

    def test_process_error_carries_worker_traceback(self):
        with pytest.raises(ValueError, match="boom at item 3") as excinfo:
            map_jobs(boom_on_multiples_of_three, [1, 3], 2, backend="process",
                     shard_size=1)
        cause = excinfo.value.__cause__
        assert isinstance(cause, RemoteTraceback)
        assert "boom_on_multiples_of_three" in str(cause)
        assert "ValueError: boom at item 3" in str(cause)

    def test_thread_error_keeps_genuine_traceback(self):
        with pytest.raises(ValueError, match="boom at item 3") as excinfo:
            map_jobs(boom_on_multiples_of_three, [1, 3, 5], 2, backend="thread")
        assert any(
            entry.name == "boom_on_multiples_of_three"
            for entry in excinfo.traceback
        )

    def test_process_rejects_unpicklable_callables(self):
        with pytest.raises(TypeError, match="picklable"):
            map_jobs(lambda x: x, [1, 2, 3], 2, backend="process")

    @pytest.mark.parametrize("items, jobs", [([1], 4), ([1, 2, 3], 1)])
    def test_process_rejects_closures_even_when_degenerate(self, items, jobs):
        # The serial shortcut (one item / one worker) must not let a
        # closure *appear* process-safe on a small smoke input.
        with pytest.raises(TypeError, match="picklable"):
            map_jobs(lambda x: x, items, jobs, backend="process")


class TestSpawnSafety:
    def test_spawn_start_method(self):
        # The slow path nothing may rely on fork-inherited state for: the
        # callable and items must round-trip by pickle alone.
        got = map_jobs(
            ADD_SEVEN, [1, 2, 3, 4], 2, backend="process", mp_context="spawn"
        )
        assert got == [8, 9, 10, 11]
