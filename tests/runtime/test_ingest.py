"""Tests for the async streaming ingestion driver (`repro.runtime.ingest`)."""

import asyncio

import numpy as np
import pytest

from repro.core.atc import atc_encode
from repro.core.config import ATCConfig, DATCConfig
from repro.core.datc import datc_encode
from repro.runtime.ingest import AsyncStreamingPipeline
from repro.rx.reconstruction import reconstruct_hybrid, reconstruct_rate
from repro.uwb.channel import UWBChannel
from repro.uwb.link import LinkConfig

FS = 2500.0


@pytest.fixture(scope="module")
def signal():
    return np.random.default_rng(42).normal(0.0, 0.4, size=5000)


def chunked(signal, size):
    return [signal[i : i + size] for i in range(0, signal.size, size)]


def one_shot_datc(signal, config):
    stream, _ = datc_encode(signal, FS, config)
    return reconstruct_hybrid(
        stream, fs_out=100.0, vref=config.vref, dac_bits=config.dac_bits,
        smooth_window_s=0.25,
    )


class TestSyncCore:
    def test_datc_matches_one_shot(self, signal):
        config = DATCConfig()
        pipe = AsyncStreamingPipeline(FS, "datc", config)
        for chunk in chunked(signal, 333):
            pipe.push(chunk)
        pipe.finish()
        assert np.array_equal(pipe.envelope, one_shot_datc(signal, config))

    def test_atc_emits_eagerly(self, signal):
        config = ATCConfig()
        pipe = AsyncStreamingPipeline(FS, "atc", config)
        emitted = [pipe.push(chunk) for chunk in chunked(signal, 250)]
        tail = pipe.finish()
        assert sum(e.size for e in emitted) > 0  # eager mid-stream output
        stream, _ = atc_encode(signal, FS, config)
        expected = reconstruct_rate(stream, fs_out=100.0, window_s=0.25)
        assert np.array_equal(
            np.concatenate(emitted + [tail]), expected
        )
        assert np.array_equal(pipe.envelope, expected)

    def test_tx_accounting(self, signal):
        config = DATCConfig()
        pipe = AsyncStreamingPipeline(FS, "datc", config)
        for chunk in chunked(signal, 500):
            pipe.push(chunk)
        pipe.finish()
        stream, _ = datc_encode(signal, FS, config)
        assert pipe.n_samples == signal.size
        assert pipe.duration_s == signal.size / FS
        assert pipe.n_tx_events == stream.n_events
        assert np.array_equal(pipe.tx_stream.times, stream.times)
        assert pipe.trace is not None and pipe.finished

    def test_finish_twice_rejected(self, signal):
        pipe = AsyncStreamingPipeline(FS, "datc")
        pipe.push(signal)
        pipe.finish()
        with pytest.raises(RuntimeError, match="finish"):
            pipe.finish()

    def test_bad_scheme_rejected(self):
        with pytest.raises(ValueError, match="scheme"):
            AsyncStreamingPipeline(FS, "adc")


class TestIdealLink:
    def test_ideal_link_is_bit_identical_to_linkless(self, signal):
        config = DATCConfig()
        pipe = AsyncStreamingPipeline(FS, "datc", config, link=LinkConfig())
        for chunk in chunked(signal, 400):
            pipe.push(chunk)
        pipe.finish()
        assert np.array_equal(pipe.envelope, one_shot_datc(signal, config))
        assert pipe.n_rx_events == pipe.n_tx_events
        assert pipe.n_dropped_out_of_order == 0
        # OOK radiates marker + popcount(level) pulses per event.
        stream, _ = datc_encode(signal, FS, config)
        expected_pulses = stream.n_events + sum(
            int(level).bit_count() for level in stream.levels
        )
        assert pipe.n_pulses == expected_pulses
        assert pipe.tx_energy_j == pytest.approx(
            expected_pulses * LinkConfig().pulse_energy_pj * 1e-12
        )

    def test_lossy_link_drops_events(self, signal):
        config = DATCConfig()
        pipe = AsyncStreamingPipeline(
            FS, "datc", config,
            link=LinkConfig(),
            channel=UWBChannel(erasure_prob=0.4),
            rng=np.random.default_rng(7),
        )
        for chunk in chunked(signal, 1000):
            pipe.push(chunk)
        pipe.finish()
        assert 0 < pipe.n_rx_events < pipe.n_tx_events
        assert pipe.envelope.size == one_shot_datc(signal, config).size


class TestAsyncDrivers:
    def test_run_with_sync_iterable(self, signal):
        config = DATCConfig()
        pipe = AsyncStreamingPipeline(FS, "datc", config)
        envelope = asyncio.run(pipe.run(chunked(signal, 777)))
        assert np.array_equal(envelope, one_shot_datc(signal, config))

    def test_stream_with_async_source(self, signal):
        config = ATCConfig()

        async def source():
            for chunk in chunked(signal, 600):
                await asyncio.sleep(0)
                yield chunk

        async def consume():
            pipe = AsyncStreamingPipeline(FS, "atc", config)
            return [c async for c in pipe.stream(source())], pipe

        emitted, pipe = asyncio.run(consume())
        stream, _ = atc_encode(signal, FS, config)
        expected = reconstruct_rate(stream, fs_out=100.0, window_s=0.25)
        assert np.array_equal(np.concatenate(emitted), expected)
        assert np.array_equal(pipe.envelope, expected)

    def test_ready_async_source_does_not_starve_the_loop(self, signal):
        # Regression: the async-source branch of ``stream`` had no
        # explicit ``sleep(0)``, so a source whose ``__anext__`` returns
        # already-buffered chunks without awaiting (file tail, warm
        # queue) monopolised the event loop for the whole recording.

        class ReadySource:
            """Async iterator that never actually awaits."""

            def __init__(self, chunks):
                self._it = iter(chunks)

            def __aiter__(self):
                return self

            async def __anext__(self):
                try:
                    return next(self._it)  # ready immediately: no await
                except StopIteration:
                    raise StopAsyncIteration

        config = DATCConfig()
        chunks = chunked(signal, 100)

        async def consume():
            ticks = 0
            streaming = True

            async def ticker():
                nonlocal ticks
                while streaming:
                    ticks += 1
                    await asyncio.sleep(0)

            task = asyncio.create_task(ticker())
            pipe = AsyncStreamingPipeline(FS, "datc", config)
            emitted = [c async for c in pipe.stream(ReadySource(chunks))]
            streaming = False
            await task
            return ticks, emitted, pipe

        ticks, emitted, pipe = asyncio.run(consume())
        # The ticker must have run *between* chunks, not only before and
        # after the stream: one loop turn per chunk.
        assert ticks >= len(chunks) // 2
        assert np.array_equal(pipe.envelope, one_shot_datc(signal, config))

    def test_stream_yields_only_nonempty_chunks(self, signal):
        async def consume():
            pipe = AsyncStreamingPipeline(FS, "atc")
            return [c async for c in pipe.stream(chunked(signal, 100))]

        emitted = asyncio.run(consume())
        assert emitted  # something was produced...
        assert all(chunk.size for chunk in emitted)  # ...nothing vacuous
