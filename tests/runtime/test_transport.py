"""Tests for the dispatch transport layer (codec, channel, remote client).

The backend *semantics* are covered by the parametrized conformance
suites (tests/runtime/test_queue.py, tests/properties/
test_queue_properties.py); this file covers what is specific to the
wire: the result-blob codec and its damage detection, address parsing,
reconnect-with-backoff through injected disconnects, the retry-window
give-up, protocol-version negotiation, and remote error typing.
"""

import json
import socket
import threading

import numpy as np
import pytest

from repro.runtime.dispatcher import DispatcherThread
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.queue import ExperimentQueue
from repro.runtime.transport import (
    DISPATCH_PROTOCOL_VERSION,
    MAX_FRAME_BYTES,
    DispatchChannel,
    DispatchError,
    RemoteBackend,
    RemoteStore,
    TransportError,
    _backoff_jitter,
    decode_payload,
    encode_payload,
    parse_address,
)


@pytest.fixture
def dispatcher(tmp_path):
    with DispatcherThread(":memory:", str(tmp_path / "store")) as d:
        yield d


class TestPayloadCodec:
    def test_roundtrip_preserves_dtype_shape_and_bytes(self):
        arrays = {
            "f": np.linspace(0.0, 1.0, 7),
            "i": np.arange(12, dtype=np.int32).reshape(3, 4),
            "scalar": np.float64(3.25),  # 0-dim must survive (not (1,))
            "n": np.int64(42),
        }
        back = decode_payload(encode_payload(arrays))
        assert set(back) == set(arrays)
        for name, arr in arrays.items():
            arr = np.asarray(arr)
            assert back[name].dtype == arr.dtype
            assert back[name].shape == arr.shape
            assert np.array_equal(back[name], arr)

    def test_rejects_missing_arrays_key(self):
        with pytest.raises(ValueError, match="arrays"):
            decode_payload({"checksum": "x"})

    def test_rejects_base64_garbage(self):
        blob = encode_payload({"a": np.arange(3.0)})
        blob["arrays"]["a"]["data"] = "@@@not base64@@@"
        with pytest.raises(ValueError, match="malformed array"):
            decode_payload(blob)

    def test_rejects_bytes_that_do_not_tile_the_dtype(self):
        blob = encode_payload({"a": np.arange(3.0)})
        import base64

        blob["arrays"]["a"]["data"] = base64.b64encode(b"xyz").decode()
        with pytest.raises(ValueError, match="tile"):
            decode_payload(blob)

    def test_rejects_shape_mismatch(self):
        blob = encode_payload({"a": np.arange(6.0)})
        blob["arrays"]["a"]["shape"] = [7]
        with pytest.raises(ValueError, match="shape"):
            decode_payload(blob)

    def test_rejects_checksum_mismatch(self):
        blob = encode_payload({"a": np.arange(3.0)})
        import base64

        flipped = np.arange(3.0) + 1.0
        blob["arrays"]["a"]["data"] = base64.b64encode(
            flipped.tobytes()
        ).decode()
        with pytest.raises(ValueError, match="checksum"):
            decode_payload(blob)

    def test_rejects_absent_checksum(self):
        blob = encode_payload({"a": np.arange(3.0)})
        del blob["checksum"]
        with pytest.raises(ValueError, match="checksum"):
            decode_payload(blob)


class TestParseAddress:
    def test_host_port_string(self):
        assert parse_address("localhost:7416") == ("localhost", 7416)

    def test_tuple_passthrough(self):
        assert parse_address(("127.0.0.1", 99)) == ("127.0.0.1", 99)

    def test_rejects_portless_string(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_address("just-a-host")


class TestBackoffJitter:
    def test_deterministic_and_uniform_range(self):
        values = [_backoff_jitter("k", "f", a) for a in range(32)]
        assert values == [_backoff_jitter("k", "f", a) for a in range(32)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert len(set(values)) == len(values)  # keyed by attempt


class TestDispatchChannel:
    def test_oversized_request_rejected_before_send(self, dispatcher):
        channel = DispatchChannel(dispatcher.address)
        try:
            with pytest.raises(ValueError, match="frame cap"):
                channel.rpc("submit", blob="x" * (MAX_FRAME_BYTES + 1))
        finally:
            channel.close()

    def test_closed_channel_refuses_rpc(self, dispatcher):
        channel = DispatchChannel(dispatcher.address)
        channel.close()
        with pytest.raises(TransportError, match="closed"):
            channel.rpc("hello")

    def test_unreachable_dispatcher_gives_up_after_window(self):
        # A bound-but-never-accepting port: connect succeeds and the
        # read side starves, or connect is refused — either way the
        # channel must give up within its retry window.
        victim = socket.socket()
        victim.bind(("127.0.0.1", 0))
        port = victim.getsockname()[1]
        victim.close()  # nothing listens here any more
        channel = DispatchChannel(
            ("127.0.0.1", port), timeout_s=0.2, retry_window_s=0.5
        )
        try:
            with pytest.raises(TransportError, match="unreachable"):
                channel.rpc("hello")
        finally:
            channel.close()

    def test_disconnect_injector_forces_reconnect(self, dispatcher):
        # Drop the socket before the 2nd and 4th counts call: both
        # requests must still succeed, through a re-dial each time.
        faults = FaultPlan(
            faults=(
                FaultSpec(kind="disconnect", match="chan:counts", attempts=(2, 4)),
            )
        )
        backend = RemoteBackend(dispatcher.address, name="chan", faults=faults)
        try:
            for _ in range(5):
                assert backend.counts()["open"] == 0
            assert backend.reconnects == 2
        finally:
            backend.close()

    def test_worker_kinds_are_ignored_by_the_channel(self, dispatcher):
        # error/crash/stall injectors belong to the worker loop; the
        # channel must not fire them even on a fingerprint match.
        faults = FaultPlan(
            faults=(
                FaultSpec(kind="error", match="chan:"),
                FaultSpec(kind="crash", match="chan:"),
                FaultSpec(kind="stall", match="chan:", stall_s=30.0),
            )
        )
        backend = RemoteBackend(dispatcher.address, name="chan", faults=faults)
        try:
            assert backend.counts()["open"] == 0
            assert backend.reconnects == 0
        finally:
            backend.close()


class TestRemoteBackend:
    def test_protocol_version_mismatch_refused(self):
        # A fake dispatcher speaking a future protocol: the client must
        # refuse the handshake, not limp along mis-framed.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def serve_once():
            conn, _ = listener.accept()
            fh = conn.makefile("rwb")
            fh.readline()
            fh.write(
                json.dumps(
                    {
                        "ok": True,
                        "protocol": DISPATCH_PROTOCOL_VERSION + 1,
                        "backoff_base_s": 0.5,
                        "backoff_cap_s": 30.0,
                        "backoff_jitter": 0.25,
                    }
                ).encode()
                + b"\n"
            )
            fh.flush()
            conn.close()

        thread = threading.Thread(target=serve_once, daemon=True)
        thread.start()
        try:
            with pytest.raises(TransportError, match="protocol"):
                RemoteBackend(("127.0.0.1", port), retry_window_s=2.0)
        finally:
            listener.close()
            thread.join(timeout=5.0)

    def test_hello_copies_server_backoff_schedule(self, dispatcher):
        backend = RemoteBackend(dispatcher.address)
        try:
            server_backend = dispatcher.server.backend
            assert backend.backoff_base_s == server_backend.backoff_base_s
            assert backend.backoff_cap_s == server_backend.backoff_cap_s
            assert backend.backoff_jitter == server_backend.backoff_jitter
            # ... so local backoff predictions match server not_before.
            assert backend._backoff_s("k", "f", 3) == server_backend._backoff_s(
                "k", "f", 3
            )
        finally:
            backend.close()

    def test_path_is_a_dispatch_url(self, dispatcher):
        with ExperimentQueue(RemoteBackend(dispatcher.address)) as queue:
            assert queue.path.startswith("dispatch://127.0.0.1:")

    def test_spawn_opens_an_independent_connection(self, dispatcher):
        backend = RemoteBackend(dispatcher.address)
        clone = backend.spawn()
        try:
            backend.submit("k", "f", {}, {}, now=0.0)
            assert clone.counts()["open"] == 1
            backend.close()
            # The clone's own socket survives the original's close.
            assert clone.counts()["open"] == 1
        finally:
            clone.close()

    def test_non_builtin_remote_error_surfaces_as_dispatch_error(
        self, dispatcher
    ):
        backend = RemoteBackend(dispatcher.address)
        try:
            with pytest.raises(DispatchError, match="UnknownOp"):
                backend._channel.rpc("no_such_verb")
        finally:
            backend.close()


class TestRemoteStore:
    def test_put_get_has_roundtrip_with_counters(self, dispatcher):
        store = RemoteStore(dispatcher.address)
        try:
            assert store.get("k", "f") is None
            assert not store.has("k", "f")
            payload = {"x": np.arange(4.0), "n": np.int64(3)}
            store.put("k", "f", payload)
            assert store.has("k", "f")
            back = store.get("k", "f")
            assert np.array_equal(back["x"], payload["x"])
            assert back["n"] == 3
            assert store.stats() == {
                "hits": 1, "misses": 1, "stores": 1, "corrupt": 0,
            }
        finally:
            store.close()

    def test_put_validates_locally_before_any_network_io(self, dispatcher):
        store = RemoteStore(dispatcher.address)
        try:
            with pytest.raises(ValueError, match="empty"):
                store.put("k", "f", {})
            with pytest.raises(ValueError, match="reserved"):
                store.put("k", "f", {"__checksum__": np.arange(2.0)})
            assert store.stats()["stores"] == 0
        finally:
            store.close()

    def test_corrupt_download_counts_and_reads_as_miss(
        self, dispatcher, monkeypatch
    ):
        store = RemoteStore(dispatcher.address)
        try:
            store.put("k", "f", {"x": np.arange(4.0)})
            damaged = {
                "ok": True,
                "payload": {"arrays": {}, "checksum": "not-the-hash"},
            }
            monkeypatch.setattr(
                store._channel, "rpc", lambda op, **kw: damaged
            )
            assert store.get("k", "f") is None
            assert store.stats()["corrupt"] == 1
            assert store.stats()["misses"] == 1
        finally:
            store.close()

    def test_writes_land_in_the_dispatchers_disk_store(
        self, dispatcher
    ):
        remote = RemoteStore(dispatcher.address)
        try:
            remote.put("k", "f", {"x": np.arange(4.0)})
            local = dispatcher.server.store
            entry = local.get("k", "f")
            assert entry is not None
            assert np.array_equal(entry["x"], np.arange(4.0))
        finally:
            remote.close()
