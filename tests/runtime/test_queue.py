"""Tests for the fault-tolerant experiment queue (jobs table + workers).

Lifecycle tests drive the lease clock *logically* through the ``now``
parameter, so lease expiry and backoff are exact — no sleeps, no races.
Worker-loop tests run real (in-process) workers against tiny datasets.

The ``queue`` fixture is parametrized over both backends — ``sqlite``
(the classic shared-mount jobs table) and ``remote`` (the same verbs
spoken to an in-process dispatcher over a real loopback socket) — so
every lifecycle/fencing/backoff/quarantine assertion in this file is
the conformance suite for the :class:`QueueBackend` contract.
"""

import threading

import numpy as np
import pytest

from repro.api import (
    Experiment,
    ExperimentSpec,
    dataset_fingerprint,
    dataset_point_fingerprint,
)
from repro.runtime.dispatcher import DispatcherThread
from repro.runtime.executors import RemoteTraceback
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.queue import (
    DEFAULT_MAX_ATTEMPTS,
    ExperimentQueue,
    Job,
    execute_job,
    run_worker,
)
from repro.runtime.store import ResultStore
from repro.runtime.transport import RemoteBackend
from repro.signals.dataset import DatasetSpec


@pytest.fixture(params=["sqlite", "remote"])
def queue(request, tmp_path):
    if request.param == "sqlite":
        with ExperimentQueue(tmp_path / "q.db") as q:
            yield q
        return
    with DispatcherThread(
        str(tmp_path / "q.db"), str(tmp_path / "dispatch-store")
    ) as dispatcher:
        with ExperimentQueue(RemoteBackend(dispatcher.address)) as q:
            yield q


def submit_n(queue, n, max_attempts=DEFAULT_MAX_ATTEMPTS, now=0.0):
    for i in range(n):
        assert queue.submit(
            "spec", f"fp{i}", {"s": 1}, {"kind": "x", "i": i},
            max_attempts=max_attempts, now=now,
        )


class TestSubmission:
    def test_submit_is_idempotent(self, queue):
        assert queue.submit("spec", "fp", {}, {}, now=0.0)
        assert not queue.submit("spec", "fp", {}, {}, now=1.0)
        assert queue.total() == 1

    def test_submit_rejects_bad_max_attempts(self, queue):
        with pytest.raises(ValueError, match="max_attempts"):
            queue.submit("spec", "fp", {}, {}, max_attempts=0)

    def test_submit_dataset_shards_and_idempotency(self, queue):
        spec = ExperimentSpec.for_scheme("datc")
        dataset = DatasetSpec(n_patterns=8, duration_s=2.0, seed=2015)
        n = queue.submit_dataset(spec, dataset, workers_hint=2, now=0.0)
        assert n == queue.total() > 1
        ids = set()
        for row in queue.rows():
            import json

            payload = json.loads(row["payload"])
            assert payload["kind"] == "dataset_shard"
            assert payload["dataset"]["n_patterns"] == 8
            ids.update(payload["ids"])
        assert ids == set(range(8))
        # Resubmitting the same sweep adds nothing.
        assert queue.submit_dataset(spec, dataset, workers_hint=2) == 0

    def test_submit_dataset_respects_limit(self, queue):
        spec = ExperimentSpec.for_scheme("datc")
        dataset = DatasetSpec(n_patterns=8, duration_s=2.0, seed=2015)
        queue.submit_dataset(spec, dataset, limit=3, shard_size=1)
        assert queue.total() == 3

    def test_submit_dataset_rejects_explicit_subjects(self, queue):
        import dataclasses

        spec = ExperimentSpec.for_scheme("datc")
        base = DatasetSpec(n_patterns=4, duration_s=2.0, seed=2015)
        rotated = base.subjects[1:] + base.subjects[:1]
        dataset = dataclasses.replace(base, subjects=rotated)
        assert dataset != base
        with pytest.raises(ValueError, match="generating fields"):
            queue.submit_dataset(spec, dataset)

    def test_submit_dataset_requires_spec(self, queue):
        with pytest.raises(TypeError, match="ExperimentSpec"):
            queue.submit_dataset(
                {"not": "a spec"},
                DatasetSpec(n_patterns=2, duration_s=2.0, seed=1),
            )


class TestLeaseLifecycle:
    def test_claim_leases_oldest_and_counts_attempt(self, queue):
        submit_n(queue, 2)
        job = queue.claim("w1", lease_s=10.0, now=1.0)
        assert job.fingerprint == "fp0"
        assert job.attempt == 1
        assert queue.counts() == {
            "open": 1, "leased": 1, "done": 0, "error": 0,
        }

    def test_claim_empty_returns_none(self, queue):
        assert queue.claim("w1", now=0.0) is None

    def test_claim_rejects_bad_lease(self, queue):
        with pytest.raises(ValueError, match="lease_s"):
            queue.claim("w1", lease_s=0.0)

    def test_complete_marks_done(self, queue):
        submit_n(queue, 1)
        job = queue.claim("w1", lease_s=10.0, now=0.0)
        assert queue.complete(job, now=1.0)
        assert queue.counts()["done"] == 1
        assert queue.unfinished() == 0

    def test_heartbeat_extends_the_lease(self, queue):
        submit_n(queue, 1)
        job = queue.claim("w1", lease_s=10.0, now=0.0)
        assert queue.heartbeat(job, now=8.0)
        # Without the heartbeat the lease would have expired at t=10.
        assert queue.reap(now=15.0) == 0
        assert queue.reap(now=18.1) == 1

    def test_expired_lease_reopens_with_message(self, queue):
        submit_n(queue, 1)
        queue.claim("w1", lease_s=10.0, now=0.0)
        assert queue.reap(now=10.0) == 1  # heartbeat + lease_s <= now
        row = queue.rows("open")[0]
        assert "lease expired" in row["error"]
        assert row["worker_id"] is None
        assert row["not_before"] > 10.0  # backoff applies to retries

    def test_expired_lease_with_exhausted_attempts_quarantines(self, queue):
        submit_n(queue, 1, max_attempts=1)
        queue.claim("w1", lease_s=10.0, now=0.0)
        queue.reap(now=20.0)
        row = queue.errors()[0]
        assert "quarantined" in row["error"]

    def test_claim_reaps_expired_peers(self, queue):
        submit_n(queue, 1)
        stale = queue.claim("w1", lease_s=10.0, now=0.0)
        # w2's claim at t=50 reaps w1's expired lease; the re-opened row
        # carries a backoff window, after which w2 can pick it up.
        assert queue.claim("w2", lease_s=10.0, now=50.0) is None
        not_before = queue.rows("open")[0]["not_before"]
        job = queue.claim("w2", lease_s=10.0, now=not_before)
        assert job is not None
        assert job.attempt == 2
        # ... and every transition of the stale holder is fenced off.
        late = not_before + 1.0
        assert not queue.heartbeat(stale, now=late)
        assert not queue.complete(stale, now=late)
        assert queue.fail(stale, "late", now=late) is None
        assert not queue.release(stale, now=late)

    def test_fenced_complete_does_not_clobber_peer(self, queue):
        submit_n(queue, 1)
        stale = queue.claim("w1", lease_s=10.0, now=0.0)
        assert queue.reap(now=50.0) == 1
        not_before = queue.rows("open")[0]["not_before"]
        fresh = queue.claim("w2", lease_s=10.0, now=not_before)
        assert not queue.complete(stale, now=not_before + 1.0)
        assert queue.counts()["leased"] == 1  # w2 still owns the row
        assert queue.complete(fresh, now=not_before + 2.0)


class TestRetriesAndQuarantine:
    def test_fail_reopens_with_backoff_until_exhausted(self, queue):
        submit_n(queue, 1, max_attempts=3)
        last_not_before = 0.0
        for attempt in (1, 2):
            now = last_not_before + 1.0
            job = queue.claim("w1", lease_s=10.0, now=now)
            assert job.attempt == attempt
            assert queue.fail(job, "boom", tb="tb text", now=now) == "open"
            row = queue.rows("open")[0]
            assert row["error"] == "boom"
            assert row["traceback"] == "tb text"
            assert row["not_before"] > now
            last_not_before = row["not_before"]
        job = queue.claim("w1", lease_s=10.0, now=last_not_before + 1.0)
        assert job.attempt == 3
        assert queue.fail(job, "boom", tb="tb text") == "error"
        assert queue.counts()["error"] == 1

    def test_backoff_is_deterministic_and_capped(self, queue):
        delays = [queue._backoff_s("spec", "fp", a) for a in (1, 2, 3, 50)]
        assert delays == [
            queue._backoff_s("spec", "fp", a) for a in (1, 2, 3, 50)
        ]
        assert delays[0] < delays[1] < delays[2]  # exponential growth
        cap = queue.backoff_cap_s * (1.0 + queue.backoff_jitter)
        assert delays[3] <= cap  # capped, jitter included

    def test_backoff_respected_by_claim(self, queue):
        submit_n(queue, 1)
        job = queue.claim("w1", lease_s=10.0, now=0.0)
        queue.fail(job, "boom", now=0.0)
        not_before = queue.rows("open")[0]["not_before"]
        assert queue.claim("w1", now=not_before - 0.01) is None
        assert queue.claim("w1", now=not_before) is not None

    def test_non_retryable_failure_quarantines_immediately(self, queue):
        submit_n(queue, 1, max_attempts=5)
        job = queue.claim("w1", lease_s=10.0, now=0.0)
        assert queue.fail(job, "bad spec", retryable=False) == "error"

    def test_complete_keeps_the_audit_trail(self, queue):
        submit_n(queue, 1)
        job = queue.claim("w1", lease_s=10.0, now=0.0)
        queue.fail(job, "first try failed", tb="tb", now=0.0)
        job = queue.claim("w1", lease_s=10.0, now=100.0)
        assert queue.complete(job, now=101.0)
        row = queue.rows("done")[0]
        assert row["error"] == "first try failed"  # logged failure survives

    def test_reset_reopens_quarantined_rows(self, queue):
        submit_n(queue, 2, max_attempts=1)
        for _ in range(2):
            job = queue.claim("w1", lease_s=10.0, now=0.0)
            queue.fail(job, "boom")
        assert queue.counts()["error"] == 2
        assert queue.reset() == 2
        assert queue.counts()["open"] == 2
        assert all(r["attempt"] == 0 for r in queue.rows("open"))

    def test_release_returns_the_attempt(self, queue):
        submit_n(queue, 1)
        job = queue.claim("w1", lease_s=10.0, now=0.0)
        assert queue.release(job, now=1.0)
        fresh = queue.claim("w2", lease_s=10.0, now=2.0)
        assert fresh.attempt == 1  # the released claim was uncounted

    def test_raise_first_error_chains_remote_traceback(self, queue):
        submit_n(queue, 1, max_attempts=1)
        job = queue.claim("w1", lease_s=10.0, now=0.0)
        queue.fail(job, "ValueError: boom", tb="Traceback ...\nValueError: boom")
        with pytest.raises(RuntimeError, match="quarantined") as excinfo:
            queue.raise_first_error()
        assert isinstance(excinfo.value.__cause__, RemoteTraceback)
        assert "ValueError: boom" in str(excinfo.value.__cause__)

    def test_raise_first_error_noop_when_clean(self, queue):
        queue.raise_first_error()  # nothing quarantined, nothing raised


class TestIntrospection:
    def test_counts_zero_filled(self, queue):
        assert queue.counts() == {
            "open": 0, "leased": 0, "done": 0, "error": 0,
        }

    def test_rows_rejects_unknown_status(self, queue):
        with pytest.raises(ValueError, match="status"):
            queue.rows("bogus")

    def test_repr_mentions_counts(self, queue):
        submit_n(queue, 1)
        assert "open=1" in repr(queue)

    def test_thread_safe_counters(self, queue):
        submit_n(queue, 32)

        def hammer():
            while True:
                job = queue.claim("w", lease_s=60.0)
                if job is None:
                    return
                queue.complete(job)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert queue.counts()["done"] == 32


class TestExecuteJob:
    def test_rejects_unknown_kind(self, tmp_path):
        job = Job(
            spec_key="k", fingerprint="f", spec={}, payload={"kind": "?"},
            attempt=1, max_attempts=3, lease_s=10.0, worker_id="w",
        )
        with pytest.raises(ValueError, match="job kind"):
            execute_job(job, ResultStore(tmp_path / "store"))

    def test_dataset_shard_matches_dataset_sweep_addresses(self, tmp_path):
        spec = ExperimentSpec.for_scheme("datc")
        dataset = DatasetSpec(n_patterns=3, duration_s=2.0, seed=2015)
        store = ResultStore(tmp_path / "store")
        with ExperimentQueue(tmp_path / "q.db") as queue:
            queue.submit_dataset(spec, dataset, shard_size=3)
            job = queue.claim("w1", lease_s=60.0)
            assert execute_job(job, store) == 3
            # Re-running the shard (a reclaimed lease) evaluates nothing.
            assert execute_job(job, store) == 0
        base = dataset_fingerprint(dataset)
        serial = Experiment(spec).dataset_sweep(dataset)
        for i in range(3):
            entry = store.get(spec.key(), dataset_point_fingerprint(base, i))
            assert entry is not None
            assert entry["correlation_pct"] == serial.correlations_pct[i]
            assert entry["n_events"] == serial.n_events[i]


class TestRunWorker:
    def run_and_collect(self, tmp_path, spec, dataset, **kwargs):
        stats = run_worker(
            tmp_path / "q.db", tmp_path / "store",
            lease_s=10.0, poll_s=0.02, **kwargs,
        )
        store = ResultStore(tmp_path / "store")
        result = Experiment(spec, store=store).dataset_sweep(dataset)
        return stats, result, store

    def test_drains_queue_bit_identically(self, tmp_path):
        spec = ExperimentSpec.for_scheme("datc")
        dataset = DatasetSpec(n_patterns=4, duration_s=2.0, seed=2015)
        with ExperimentQueue(tmp_path / "q.db") as queue:
            queue.submit_dataset(spec, dataset, workers_hint=2)
        stats, result, store = self.run_and_collect(tmp_path, spec, dataset)
        assert stats.completed == stats.claimed > 0
        assert stats.evaluated == 4
        assert store.stats()["hits"] == 4  # warm collection: zero re-evals
        serial = Experiment(spec).dataset_sweep(dataset)
        assert np.array_equal(result.correlations_pct, serial.correlations_pct)
        assert np.array_equal(result.n_events, serial.n_events)

    def test_empty_queue_exits_immediately(self, tmp_path):
        stats = run_worker(
            tmp_path / "q.db", tmp_path / "store", max_idle_s=0.0
        )
        assert stats.claimed == 0

    def test_idle_polls_back_off_exponentially_to_a_cap(self, tmp_path):
        # An idle worker must probe at a decaying rate, not a fixed
        # 1/poll_s hammer: delays double from poll_s up to idle_cap_s
        # (plus bounded deterministic jitter), driven here by an
        # injectable clock/sleep so the test takes zero wall time.
        delays = []
        t = [0.0]

        def fake_sleep(s):
            delays.append(s)
            t[0] += s

        stats = run_worker(
            tmp_path / "q.db", tmp_path / "store",
            worker_id="idler", poll_s=0.1, idle_cap_s=2.0,
            max_idle_s=30.0, sleep=fake_sleep, clock=lambda: t[0],
        )
        assert stats.claimed == 0
        assert len(delays) >= 6
        bare = [min(2.0, 0.1 * 2.0**k) for k in range(len(delays))]
        for delay, base in zip(delays, bare):
            assert base <= delay <= base * 1.25  # jitter in [0, 25%)
        # Strictly increasing until the cap region, then flat-ish.
        assert delays[0] < delays[1] < delays[2] < delays[3]
        assert max(delays) <= 2.0 * 1.25
        # Deterministic: the same worker re-run sees the same schedule.
        rerun = []
        t[0] = 0.0
        run_worker(
            tmp_path / "q.db", tmp_path / "store",
            worker_id="idler", poll_s=0.1, idle_cap_s=2.0,
            max_idle_s=30.0, sleep=lambda s: (rerun.append(s), t.__setitem__(0, t[0] + s)),
            clock=lambda: t[0],
        )
        assert rerun == delays

    def test_idle_backoff_resets_after_a_successful_claim(self, tmp_path):
        # Submit nothing at first; during the third idle sleep a job
        # appears.  Its first attempt hits an injected transient error
        # (requeued with a retry not_before in the future), so the very
        # next poll is empty again — and having just claimed, it must
        # restart the backoff ladder at poll_s, not continue from the
        # pre-claim rung.
        spec = ExperimentSpec.for_scheme("datc")
        dataset = DatasetSpec(n_patterns=1, duration_s=2.0, seed=2015)
        delays = []
        t = [0.0]

        def fake_sleep(s):
            delays.append(s)
            t[0] += s
            if len(delays) == 3:
                with ExperimentQueue(tmp_path / "q.db") as queue:
                    queue.submit_dataset(spec, dataset)

        stats = run_worker(
            tmp_path / "q.db", tmp_path / "store",
            worker_id="idler", poll_s=0.1, idle_cap_s=2.0,
            max_idle_s=1000.0, sleep=fake_sleep, clock=lambda: t[0],
            faults=FaultPlan(
                faults=(FaultSpec(kind="error", match="", attempts=(1,)),)
            ),
        )
        assert stats.requeued == 1
        assert stats.completed == 1  # attempt 2 drains the queue
        # Ladder climbed for 3 rungs pre-claim; the claim reset it, so
        # the first post-claim idle poll is back at the base rung.
        assert delays[1] > delays[0]
        assert delays[2] > delays[1]
        assert delays[3] <= 0.1 * 1.25

    def test_transient_fault_retries_to_success(self, tmp_path):
        spec = ExperimentSpec.for_scheme("datc")
        dataset = DatasetSpec(n_patterns=2, duration_s=2.0, seed=2015)
        with ExperimentQueue(tmp_path / "q.db") as queue:
            queue.submit_dataset(spec, dataset, shard_size=1)
        faults = FaultPlan(faults=(FaultSpec(kind="error", attempts=(1,)),))
        stats, result, _ = self.run_and_collect(
            tmp_path, spec, dataset, faults=faults
        )
        assert stats.requeued == 2  # every shard failed once...
        assert stats.completed == 2  # ...and succeeded on retry
        assert stats.quarantined == 0
        with ExperimentQueue(tmp_path / "q.db") as queue:
            assert queue.counts()["done"] == 2
            # The eventually-done rows keep their first failure logged.
            assert all(
                "InjectedFault" in row["error"]
                for row in queue.rows("done")
            )
        serial = Experiment(spec).dataset_sweep(dataset)
        assert np.array_equal(result.correlations_pct, serial.correlations_pct)

    def test_deterministic_fault_quarantines_with_traceback(self, tmp_path):
        spec = ExperimentSpec.for_scheme("datc")
        dataset = DatasetSpec(n_patterns=1, duration_s=2.0, seed=2015)
        with ExperimentQueue(tmp_path / "q.db") as queue:
            queue.submit_dataset(spec, dataset, max_attempts=2)
        faults = FaultPlan(faults=(FaultSpec(kind="error"),))  # every attempt
        stats = run_worker(
            tmp_path / "q.db", tmp_path / "store",
            lease_s=10.0, poll_s=0.02, faults=faults,
        )
        assert stats.quarantined == 1
        assert stats.requeued == 1  # max_attempts=2: one retry, then give up
        with ExperimentQueue(tmp_path / "q.db") as queue:
            row = queue.errors()[0]
            assert row["attempt"] == 2
            assert "InjectedFault" in row["error"]
            assert "InjectedFault" in row["traceback"]  # full worker tb
            with pytest.raises(RuntimeError) as excinfo:
                queue.raise_first_error()
            assert isinstance(excinfo.value.__cause__, RemoteTraceback)

    def test_should_stop_drains_gracefully(self, tmp_path):
        spec = ExperimentSpec.for_scheme("datc")
        dataset = DatasetSpec(n_patterns=4, duration_s=2.0, seed=2015)
        with ExperimentQueue(tmp_path / "q.db") as queue:
            queue.submit_dataset(spec, dataset, shard_size=1)
        done = []

        def stop_after_first():
            return len(done) >= 1

        real_execute = execute_job

        def counting_execute(job, store):
            out = real_execute(job, store)
            done.append(job)
            return out

        import repro.runtime.queue as queue_mod

        original = queue_mod.execute_job
        queue_mod.execute_job = counting_execute
        try:
            stats = run_worker(
                tmp_path / "q.db", tmp_path / "store",
                lease_s=10.0, poll_s=0.02, prefetch=2,
                should_stop=stop_after_first,
            )
        finally:
            queue_mod.execute_job = original
        # Finished the in-flight shard, handed back the prefetched one.
        assert stats.completed == 1
        assert stats.released >= 1
        with ExperimentQueue(tmp_path / "q.db") as queue:
            counts = queue.counts()
            assert counts["leased"] == 0  # nothing left dangling
            assert counts["done"] == 1

    def test_stalled_worker_is_fenced_by_a_peer(self, tmp_path):
        """The stall injector: lease expires mid-job, a peer re-runs the
        shard, and the stalled worker's late completion is rejected."""
        spec = ExperimentSpec.for_scheme("datc")
        dataset = DatasetSpec(n_patterns=1, duration_s=2.0, seed=2015)
        with ExperimentQueue(tmp_path / "q.db") as queue:
            queue.submit_dataset(spec, dataset)
        faults = FaultPlan(
            faults=(FaultSpec(kind="stall", attempts=(1,), stall_s=1.2),)
        )
        results = {}

        def stalled():
            # max_jobs=1: after the fenced attempt the stalled worker
            # exits instead of racing the peer for the reopened row
            # (idle backoff makes the peer's re-claim cadence variable).
            results["stalled"] = run_worker(
                tmp_path / "q.db", tmp_path / "store",
                worker_id="stalled", lease_s=0.3, poll_s=0.02,
                heartbeat_s=0.05, faults=faults, max_jobs=1,
            )

        thread = threading.Thread(target=stalled)
        thread.start()
        # The peer waits out the stalled worker's lease, reclaims, runs.
        peer = run_worker(
            tmp_path / "q.db", tmp_path / "store",
            worker_id="peer", lease_s=0.3, poll_s=0.05, max_idle_s=10.0,
        )
        thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert peer.completed == 1
        # The stalled worker's outcome was fenced off (attempt 1 ended as
        # a loss, or it lost the race entirely and never completed).
        assert results["stalled"].lost >= 1 or results["stalled"].completed == 0
        with ExperimentQueue(tmp_path / "q.db") as queue:
            assert queue.counts()["done"] == 1
        store = ResultStore(tmp_path / "store")
        result = Experiment(spec, store=store).dataset_sweep(dataset)
        serial = Experiment(spec).dataset_sweep(dataset)
        assert np.array_equal(result.correlations_pct, serial.correlations_pct)
