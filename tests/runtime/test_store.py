"""Tests for the content-addressed on-disk result store."""

import numpy as np
import pytest

from repro.runtime.store import ResultStore, fingerprint_arrays, fingerprint_value


@pytest.fixture
def store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "cache")


class TestFingerprints:
    def test_array_fingerprint_is_content_based(self):
        a = np.arange(10.0)
        assert fingerprint_arrays(a) == fingerprint_arrays(a.copy())
        assert fingerprint_arrays(a) != fingerprint_arrays(a + 1)

    def test_dtype_and_shape_matter(self):
        a = np.zeros(4, dtype=np.float64)
        assert fingerprint_arrays(a) != fingerprint_arrays(a.astype(np.float32))
        assert fingerprint_arrays(a) != fingerprint_arrays(a.reshape(2, 2))

    def test_value_fingerprint_handles_dataclasses(self):
        from repro.signals.dataset import DatasetSpec

        a = DatasetSpec(n_patterns=4, duration_s=3.0, seed=1)
        b = DatasetSpec(n_patterns=4, duration_s=3.0, seed=1)
        c = DatasetSpec(n_patterns=4, duration_s=3.0, seed=2)
        assert fingerprint_value(a) == fingerprint_value(b)
        assert fingerprint_value(a) != fingerprint_value(c)

    def test_value_fingerprint_key_order_invariant(self):
        assert fingerprint_value({"a": 1, "b": 2}) == fingerprint_value(
            {"b": 2, "a": 1}
        )

    def test_unfingerprintable_value_rejected(self):
        with pytest.raises(TypeError):
            fingerprint_value({"fn": len})


class TestResultStore:
    def test_miss_then_hit_round_trip(self, store):
        arrays = {"corr": np.float64(96.5), "events": np.int64(3724)}
        assert store.get("spec", "data") is None
        store.put("spec", "data", arrays)
        got = store.get("spec", "data")
        assert got is not None
        # Bit-identical round trip: float64/int64 survive npz exactly.
        assert float(got["corr"]) == 96.5
        assert int(got["events"]) == 3724
        assert store.stats() == {
            "hits": 1, "misses": 1, "stores": 1, "corrupt": 0,
        }

    def test_keys_are_independent(self, store):
        store.put("spec-a", "data", {"x": np.float64(1.0)})
        assert store.get("spec-b", "data") is None
        assert store.get("spec-a", "other-data") is None
        assert store.get("spec-a", "data") is not None

    def test_len_counts_entries(self, store):
        assert len(store) == 0
        store.put("a", "1", {"x": np.float64(0.0)})
        store.put("a", "2", {"x": np.float64(0.0)})
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0

    def test_corruption_recovery(self, store):
        """A truncated/garbage entry is deleted and treated as a miss."""
        store.put("spec", "data", {"x": np.float64(42.0)})
        path = store.path_for("spec", "data")
        path.write_bytes(b"this is not an npz archive")
        assert store.get("spec", "data") is None
        assert store.corrupt == 1
        assert not path.exists()  # self-healed
        # A fresh put works and reads back cleanly afterwards.
        store.put("spec", "data", {"x": np.float64(43.0)})
        got = store.get("spec", "data")
        assert float(got["x"]) == 43.0

    def test_empty_result_rejected(self, store):
        with pytest.raises(ValueError):
            store.put("spec", "data", {})

    def test_entry_id_stable(self):
        a = ResultStore.entry_id("spec", "data")
        assert a == ResultStore.entry_id("spec", "data")
        assert a != ResultStore.entry_id("data", "spec")  # order matters

    def test_warm_results_bit_identical_to_cold(self, store):
        """The satellite contract: a warm fetch returns the cold bytes."""
        rng = np.random.default_rng(7)
        cold = {
            "corr": rng.random(16),
            "events": rng.integers(0, 1000, 16),
        }
        store.put("spec", "data", cold)
        warm = store.get("spec", "data")
        assert np.array_equal(warm["corr"], cold["corr"])
        assert warm["corr"].dtype == cold["corr"].dtype
        assert np.array_equal(warm["events"], cold["events"])


class TestThreadSafety:
    def test_concurrent_counters_exact(self, store):
        """N threads hammering get/put never lose a counter increment.

        One store instance may back every thread of a multi-session
        server; hits + misses must equal the number of get() calls
        exactly (a lost update would make the warm-run zero-miss
        assertion flaky).
        """
        import threading

        n_threads, n_ops = 8, 60
        store.put("spec", "warm", {"x": np.float64(1.0)})
        barrier = threading.Barrier(n_threads)
        errors = []

        def worker(tid):
            barrier.wait()
            try:
                for i in range(n_ops):
                    store.get("spec", "warm")          # hit
                    store.get("spec", f"cold-{tid}-{i}")  # miss
                    store.put(
                        f"spec-{tid}", f"data-{i}", {"x": np.float64(i)}
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = store.stats()
        assert stats["hits"] == n_threads * n_ops
        assert stats["misses"] == n_threads * n_ops
        assert stats["stores"] == 1 + n_threads * n_ops
        assert stats["corrupt"] == 0

    def test_concurrent_corrupt_recovery_single_count(self, store, tmp_path):
        """Racing readers of one corrupt entry never double-unlink or crash."""
        import threading

        store.put("spec", "data", {"x": np.float64(1.0)})
        path = store.path_for("spec", "data")
        path.write_bytes(b"garbage")
        barrier = threading.Barrier(4)
        results = []

        def reader():
            barrier.wait()
            results.append(store.get("spec", "data"))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(r is None for r in results)
        assert not path.exists()
        stats = store.stats()
        # Every reader counted exactly one miss (corrupt or already
        # unlinked); at least the first one recorded the corruption.
        assert stats["corrupt"] >= 1
        assert stats["hits"] == 0
        assert stats["misses"] == 4


def _tamper_payload(path):
    """Rewrite an entry with a flipped payload but the original checksum:
    a readable archive whose contents silently changed on disk."""
    with np.load(path, allow_pickle=False) as archive:
        arrays = {name: archive[name] for name in archive.files}
    arrays["x"] = np.asarray(arrays["x"]) + 1.0  # silent bit damage
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)


class TestChecksums:
    def test_checksum_rides_along_in_the_entry(self, store):
        from repro.runtime.store import CHECKSUM_KEY, checksum_arrays

        store.put("spec", "data", {"x": np.float64(1.0)})
        with np.load(store.path_for("spec", "data")) as archive:
            arrays = {name: archive[name] for name in archive.files}
        assert CHECKSUM_KEY in arrays
        payload = {k: v for k, v in arrays.items() if k != CHECKSUM_KEY}
        assert arrays[CHECKSUM_KEY].item() == checksum_arrays(payload)

    def test_checksum_key_is_reserved(self, store):
        from repro.runtime.store import CHECKSUM_KEY

        with pytest.raises(ValueError, match="reserved"):
            store.put("spec", "data", {CHECKSUM_KEY: np.float64(1.0)})

    def test_get_rejects_tampered_payload(self, store):
        """Readable-but-wrong entries (valid zip, silently altered
        payload) fail checksum verification, not just BadZipFile."""
        store.put("spec", "data", {"x": np.float64(1.0)})
        path = store.path_for("spec", "data")
        _tamper_payload(path)
        assert store.get("spec", "data") is None
        assert store.corrupt == 1
        assert not path.exists()  # self-healed

    def test_checksum_is_order_independent(self):
        from repro.runtime.store import checksum_arrays

        a = {"x": np.arange(3.0), "y": np.arange(4)}
        b = {"y": np.arange(4), "x": np.arange(3.0)}
        assert checksum_arrays(a) == checksum_arrays(b)


class TestFsck:
    def test_clean_store(self, store):
        store.put("a", "1", {"x": np.float64(1.0)})
        store.put("a", "2", {"x": np.float64(2.0)})
        report = store.fsck()
        assert report.clean
        assert report.scanned == report.intact == 2
        assert report.damaged == 0
        assert "2 entries scanned; clean" in report.summary()

    def test_unreadable_entry_is_flagged_and_repaired(self, store):
        store.put("a", "1", {"x": np.float64(1.0)})
        path = store.path_for("a", "1")
        path.write_bytes(b"garbage, not a zip")
        report = store.fsck()
        assert not report.clean
        assert report.damaged == 1
        (entry, reason), = report.corrupt
        assert entry == str(path)
        assert "unreadable archive" in reason
        assert not path.exists()  # repaired: deleted
        assert store.corrupt == 1
        assert store.fsck().clean  # second pass finds nothing

    def test_tampered_entry_fails_checksum(self, store):
        store.put("a", "1", {"x": np.float64(1.0)})
        path = store.path_for("a", "1")
        _tamper_payload(path)
        report = store.fsck(repair=False)
        (_, reason), = report.corrupt
        assert "does not match" in reason

    def test_no_repair_reports_but_keeps_files(self, store):
        store.put("a", "1", {"x": np.float64(1.0)})
        path = store.path_for("a", "1")
        path.write_bytes(b"garbage")
        report = store.fsck(repair=False)
        assert report.damaged == 1
        assert not report.repaired
        assert path.exists()  # only reported
        assert store.corrupt == 0  # nothing was quarantined

    def test_pre_checksum_entries_are_unverified_not_deleted(self, store):
        store.put("a", "1", {"x": np.float64(1.0)})
        legacy = store.root / "ab" / ("c" * 64 + ".npz")
        legacy.parent.mkdir(parents=True, exist_ok=True)
        with open(legacy, "wb") as fh:
            np.savez(fh, x=np.float64(9.0))  # written before checksums
        report = store.fsck()
        assert report.clean
        assert report.unverified == 1
        assert report.intact == 1
        assert legacy.exists()  # never deleted
        assert "pre-checksum" in report.summary()

    def test_stray_tmp_files_are_swept(self, store):
        store.put("a", "1", {"x": np.float64(1.0)})
        shard = next(p for p in store.root.iterdir() if p.is_dir())
        stray = shard / ".tmp-deadbeef.npz"
        stray.write_bytes(b"half-written")
        assert len(store) == 1  # strays never masquerade as entries
        report = store.fsck(repair=False)
        assert report.stray_tmp == 1
        assert report.clean  # strays are not damage
        assert stray.exists()
        report = store.fsck(repair=True)
        assert report.stray_tmp == 1
        assert not stray.exists()
        assert "stray tmp" in report.summary()

    def test_fsck_after_real_worker_writes(self, tmp_path):
        """A store produced by execute_job passes fsck end to end."""
        from repro.api import ExperimentSpec
        from repro.runtime.queue import ExperimentQueue, execute_job
        from repro.signals.dataset import DatasetSpec

        store = ResultStore(tmp_path / "cache")
        spec = ExperimentSpec.for_scheme("datc")
        dataset = DatasetSpec(n_patterns=2, duration_s=2.0, seed=2015)
        with ExperimentQueue(tmp_path / "q.db") as queue:
            queue.submit_dataset(spec, dataset, shard_size=2)
            job = queue.claim("w", lease_s=60.0)
            execute_job(job, store)
        report = store.fsck()
        assert report.clean
        assert report.scanned == report.intact == 2
