"""Tests for the streaming session server and its client.

The load-bearing contract is inherited from ``SessionBatch`` and must
survive the socket boundary: every session's finalized stream/envelope
is bit-identical to the scalar streaming pipeline fed the same chunks.
On top of that sit the operational semantics only a long-running server
has: backpressure (``busy``), load-shedding (newest-joined first), idle
reaping, fault paths (malformed frames, disconnects, push-after-
finalize) and the graceful drain contract (in-process here; the honest
subprocess SIGTERM leg is ``TestSigtermDrain``).
"""

import asyncio
import json
import os
import signal

import numpy as np
import pytest

from repro.core.config import ATCConfig, DATCConfig
from repro.core.encoders import ATCEncoder, DATCEncoder
from repro.runtime.client import ServerBusy, ServerReplyError, StreamingClient
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.server import (
    SessionServer,
    pack_array,
    unpack_floats,
    unpack_ints,
)
from repro.runtime.sessions import SessionSpec
from repro.rx.decoders import StreamingDecoder

FS = 2500.0


def scalar_reference(scheme, config, chunks, fs=FS, **rx):
    """The scalar streaming pipeline the server must match bit-for-bit."""
    encoder_cls = ATCEncoder if scheme == "atc" else DATCEncoder
    enc = encoder_cls(fs, config, rectify=True)
    dec = StreamingDecoder(
        scheme=scheme,
        config=config,
        fs_out=rx.get("fs_out", 100.0),
        window_s=rx.get("window_s", 0.25),
    )
    for c in chunks:
        dec.push(enc.push(c))
    enc.finalize()
    dec.push(enc.drain())
    dec.finalize()
    return enc.stream, dec.envelope


def chunked(x, size):
    return [x[i : i + size] for i in range(0, x.size, size)]


def serve(coro_fn, **server_kwargs):
    """Run ``coro_fn(server)`` against a live loopback server."""

    async def main():
        server = SessionServer(port=0, **server_kwargs)
        await server.start()
        try:
            return await coro_fn(server)
        finally:
            await server.aclose()

    return asyncio.run(main())


async def connect(server, **kwargs):
    host, port = server.address
    return await StreamingClient.connect(host, port, **kwargs)


class TestWireFormat:
    def test_pack_unpack_floats_bit_exact(self, rng):
        x = rng.normal(size=257)
        out = unpack_floats(pack_array(x))
        assert np.array_equal(out, x)
        assert out.dtype == np.float64

    def test_pack_unpack_ints(self):
        levels = np.array([1, -2, 3], dtype=np.int64)
        assert np.array_equal(unpack_ints(pack_array(levels)), levels)

    def test_none_passes_through(self):
        assert pack_array(None) is None
        assert unpack_floats(None) is None

    def test_bad_payloads_rejected(self):
        with pytest.raises(ValueError):
            unpack_floats("@@@not base64@@@")
        with pytest.raises(ValueError):
            unpack_floats(pack_array(np.arange(3.0))[:-4])  # truncated


class TestSpecWire:
    def test_from_dict_round_trips(self):
        for spec in (
            SessionSpec(scheme="atc", fs=FS, config=ATCConfig(vth=0.2)),
            SessionSpec(
                scheme="datc", fs=2000.0, config=DATCConfig(quantized=True),
                fs_out=200.0, window_s=0.5, rectify=False,
            ),
        ):
            clone = SessionSpec.from_dict(spec.to_dict())
            assert clone == spec
            assert clone.key() == spec.key()

    def test_from_dict_survives_json(self):
        spec = SessionSpec(scheme="datc", fs=FS)
        clone = SessionSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.key() == spec.key()

    def test_version_and_unknown_fields_rejected(self):
        data = SessionSpec(fs=FS).to_dict()
        with pytest.raises(ValueError, match="version"):
            SessionSpec.from_dict({**data, "version": 999})
        with pytest.raises(ValueError, match="unknown"):
            SessionSpec.from_dict({**data, "bogus": 1})

    def test_bad_config_type_rejected(self):
        data = SessionSpec(fs=FS).to_dict()
        data["config_type"] = "Nonsense"
        with pytest.raises(ValueError, match="config_type"):
            SessionSpec.from_dict(data)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "scheme,config",
        [("atc", ATCConfig()), ("datc", DATCConfig(quantized=True))],
    )
    def test_envelope_bit_identical_through_socket(self, scheme, config, rng):
        sig = rng.normal(0, 0.3, size=int(FS * 1.2))
        chunks = chunked(sig, 700)
        spec = SessionSpec(scheme=scheme, fs=FS, config=config)
        stream_ref, env_ref = scalar_reference(scheme, config, chunks)

        async def scenario(server):
            client = await connect(server)
            sid = await client.create(spec)
            for c in chunks:
                await client.push(sid, c)
            result = await client.finalize(sid)
            await client.close()
            return result

        result = serve(scenario)
        assert np.array_equal(result.envelope, env_ref)
        assert np.array_equal(result.stream.times, stream_ref.times)
        if stream_ref.levels is not None:
            assert np.array_equal(result.stream.levels, stream_ref.levels)
        assert result.stream.duration_s == stream_ref.duration_s

    def test_many_sessions_mixed_specs_push_all(self, rng):
        specs = [
            SessionSpec(scheme="atc", fs=FS),
            SessionSpec(scheme="datc", fs=FS),
        ]
        sigs = [rng.normal(0, 0.3, size=int(FS * 0.9)) for _ in range(6)]
        refs = [
            scalar_reference(
                specs[i % 2].scheme, specs[i % 2].config, chunked(s, 500)
            )
            for i, s in enumerate(sigs)
        ]

        async def scenario(server):
            client = await connect(server)
            sids = [await client.create(specs[i % 2]) for i in range(6)]
            for k in range(0, sigs[0].size, 500):
                await client.push_all(
                    {sid: sigs[i][k : k + 500] for i, sid in enumerate(sids)}
                )
            stats = await client.stats()
            assert stats["groups"] == 2  # spec-keyed grouping
            out = [await client.finalize(sid) for sid in sids]
            await client.close()
            return out

        results = serve(scenario)
        for result, (stream_ref, env_ref) in zip(results, refs):
            assert np.array_equal(result.envelope, env_ref)
            assert np.array_equal(result.stream.times, stream_ref.times)

    def test_create_many_and_drain_prefix(self, rng):
        sig = rng.normal(0, 0.3, size=int(FS * 1.0))
        spec = SessionSpec(scheme="datc", fs=FS)

        async def scenario(server):
            client = await connect(server)
            sids = await client.create_many(spec, 3)
            assert len(set(sids)) == 3
            for c in chunked(sig, 600):
                await client.push_all({sid: c for sid in sids})
            mid = await client.drain(sids[0])
            result = await client.finalize(sids[0])
            await client.close()
            return mid, result

        mid, result = serve(scenario)
        n = mid.times.size
        assert np.array_equal(mid.times, result.stream.times[:n])

    def test_request_id_echoed(self):
        async def scenario(server):
            client = await connect(server)
            client._send({"op": "stats", "id": 41})
            await client._writer.drain()
            reply = await client._read_reply()
            await client.close()
            return reply

        reply = serve(scenario)
        assert reply["id"] == 41 and reply["ok"]


class TestBackpressure:
    def test_busy_when_queue_full_then_recovers(self, rng):
        sig = rng.normal(0, 0.3, size=int(FS * 0.8))
        chunks = chunked(sig, 500)
        spec = SessionSpec(scheme="datc", fs=FS)
        _, env_ref = scalar_reference("datc", spec.config, chunks)

        async def scenario(server):
            client = await connect(server)
            sid = await client.create(spec)
            server.pause_pump()
            for c in chunks[:2]:
                await client.push(sid, c)
            with pytest.raises(ServerBusy):
                await client.push(sid, chunks[2], retry_busy=False)
            stats = await client.stats()
            assert stats["n_busy"] == 1
            assert stats["pending_chunks"] == 2
            server.resume_pump()
            for c in chunks[2:]:
                await client.push(sid, c)
            result = await client.finalize(sid)
            await client.close()
            return result

        result = serve(scenario, max_pending=2)
        assert np.array_equal(result.envelope, env_ref)


class TestLoadShedding:
    def test_sheds_newest_joined_first(self, rng):
        spec = SessionSpec(scheme="datc", fs=FS)
        sig = rng.normal(0, 0.3, size=int(FS * 0.8))
        chunks = chunked(sig, 500)
        _, env_ref = scalar_reference("datc", spec.config, chunks)

        async def scenario(server):
            client = await connect(server)
            old = await client.create(spec)
            new = await client.create(spec)
            server.pause_pump()
            await client.push(old, chunks[0])
            await client.push(old, chunks[1])
            await client.push(new, chunks[0])
            # This push tips the global budget: the newest-joined
            # session (its owner included) is shed, not the oldest.
            with pytest.raises(ServerReplyError, match="shed"):
                await client.push(new, chunks[1], retry_busy=False)
            with pytest.raises(ServerReplyError, match="shed"):
                await client.push(new, chunks[1], retry_busy=False)
            stats = await client.stats()
            assert stats["n_shed"] == 1
            assert stats["active_sessions"] == 1
            server.resume_pump()
            for c in chunks[2:]:
                await client.push(old, c)
            result = await client.finalize(old)
            await client.close()
            return result

        result = serve(scenario, max_pending=10, max_total_pending=3)
        assert np.array_equal(result.envelope, env_ref)


class TestReaping:
    def test_idle_session_reaped(self, rng):
        spec = SessionSpec(scheme="datc", fs=FS)

        async def scenario(server):
            client = await connect(server)
            sid = await client.create(spec)
            await client.push(sid, rng.normal(size=500))
            await asyncio.sleep(0.3)
            with pytest.raises(ServerReplyError, match="reaped"):
                await client.push(sid, np.zeros(10), retry_busy=False)
            stats = await client.stats()
            await client.close()
            return stats

        stats = serve(scenario, silence_timeout_s=0.05, tick_s=0.01)
        assert stats["n_reaped"] == 1
        assert stats["active_sessions"] == 0


class TestFaultPaths:
    def test_malformed_frame_drops_connection_only(self):
        async def scenario(server):
            host, port = server.address
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"this is not json\n")
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["error"] == "malformed"
            assert await reader.readline() == b""  # connection dropped
            writer.close()
            # The server survives and keeps serving new clients.
            client = await connect(server)
            sid = await client.create(SessionSpec(fs=FS))
            stats = await client.stats()
            await client.close()
            return sid, stats

        sid, stats = serve(scenario)
        assert sid >= 0
        assert stats["n_malformed"] == 1

    def test_push_after_finalize_rejected(self, rng):
        async def scenario(server):
            client = await connect(server)
            sid = await client.create(SessionSpec(scheme="datc", fs=FS))
            await client.push(sid, rng.normal(size=int(FS * 0.6)))
            await client.finalize(sid)
            with pytest.raises(ServerReplyError, match="finalized"):
                await client.push(sid, np.zeros(5), retry_busy=False)
            with pytest.raises(ServerReplyError, match="finalized"):
                await client.finalize(sid)
            await client.close()

        serve(scenario)

    def test_unknown_and_bad_sid(self):
        async def scenario(server):
            client = await connect(server)
            with pytest.raises(ServerReplyError, match="unknown-session"):
                await client.push(12345, np.zeros(5), retry_busy=False)
            client._send({"op": "push", "sid": "nope", "data": None})
            await client._writer.drain()
            reply = await client._read_reply()
            assert reply["error"] in ("bad-sid", "bad-chunk")
            await client.close()

        serve(scenario)

    def test_bad_chunk_and_bad_spec(self):
        async def scenario(server):
            client = await connect(server)
            sid = await client.create(SessionSpec(fs=FS))
            for frame in (
                {"op": "push", "sid": sid, "data": "%%%"},
                {"op": "push", "sid": sid},
                {"op": "pushm", "sids": [sid], "lens": [7],
                 "data": pack_array(np.zeros(3))},
                {"op": "pushm", "sids": [sid], "lens": "x", "data": None},
            ):
                client._send(frame)
                await client._writer.drain()
                reply = await client._read_reply()
                assert reply["ok"] is False
                assert reply["error"] == "bad-chunk"
            client._send({"op": "create", "spec": {"fs": -3.0}})
            await client._writer.drain()
            reply = await client._read_reply()
            assert reply["error"] == "bad-spec"
            client._send({"op": "frobnicate"})
            await client._writer.drain()
            assert (await client._read_reply())["error"] == "unknown-op"
            await client.close()

        serve(scenario)

    def test_samples_list_accepted(self):
        async def scenario(server):
            client = await connect(server)
            sid = await client.create(SessionSpec(fs=FS))
            client._send({"op": "push", "sid": sid, "samples": [0.1, -0.2]})
            await client._writer.drain()
            reply = await client._read_reply()
            await client.close()
            return reply

        assert serve(scenario)["ok"] is True

    def test_server_full(self):
        async def scenario(server):
            client = await connect(server)
            await client.create(SessionSpec(fs=FS))
            with pytest.raises(ServerReplyError, match="server-full"):
                await client.create(SessionSpec(fs=FS))
            with pytest.raises(ServerReplyError, match="server-full"):
                await client.create_many(SessionSpec(fs=FS), 5)
            await client.close()

        serve(scenario, max_sessions=1)

    def test_disconnect_orphans_sessions_server_survives(self, rng):
        sig = rng.normal(0, 0.3, size=int(FS * 0.8))
        spec = SessionSpec(scheme="datc", fs=FS)
        _, env_ref = scalar_reference("datc", spec.config, chunked(sig, 500))

        async def scenario(server):
            victim = await connect(server)
            vsid = await victim.create(spec)
            await victim.push(vsid, sig[:500])
            survivor = await connect(server)
            ssid = await survivor.create(spec)
            victim.abort()  # cable pull: no close verb, no FIN dance
            for c in chunked(sig, 500):
                await survivor.push(ssid, c)
            # Wait for the server to notice the dead transport.
            for _ in range(200):
                stats = await survivor.stats()
                if stats["n_orphaned"]:
                    break
                await asyncio.sleep(0.01)
            assert stats["n_orphaned"] == 1
            result = await survivor.finalize(ssid)
            await survivor.close()
            return result

        result = serve(scenario)
        assert np.array_equal(result.envelope, env_ref)

    def test_fault_plan_disconnect_injector_replays(self, rng):
        """The chaos rig's ``disconnect`` kind fires deterministically."""
        spec = SessionSpec(scheme="datc", fs=FS)
        sig = rng.normal(0, 0.3, size=1500)

        async def scenario(server):
            client = await connect(server, name="chaos")
            sid = await client.create(spec)
            plan = FaultPlan(
                faults=(
                    FaultSpec(
                        kind="disconnect",
                        match=f"chaos:{sid}",
                        attempts=(2,),
                    ),
                )
            )
            client.faults = plan
            await client.push(sid, sig[:500])  # attempt 1: delivered
            with pytest.raises(ConnectionResetError):
                await client.push(sid, sig[500:1000])  # attempt 2: cut
            # Transport is gone: even unmatched pushes now fail.
            with pytest.raises(ConnectionError):
                await client.push(sid, sig[1000:])
            other = await connect(server)
            for _ in range(200):
                stats = await other.stats()
                if stats["n_orphaned"]:
                    break
                await asyncio.sleep(0.01)
            await other.close()
            return stats

        stats = serve(scenario)
        assert stats["n_orphaned"] == 1
        assert stats["n_pushed_chunks"] == 1


class TestDrain:
    def test_in_process_drain_finalizes_and_notifies(self, rng):
        spec = SessionSpec(scheme="datc", fs=FS)
        sigs = [rng.normal(0, 0.3, size=int(FS * 0.8)) for _ in range(3)]
        refs = [
            scalar_reference("datc", spec.config, chunked(s, 500))
            for s in sigs
        ]

        async def scenario(server):
            client = await connect(server)
            sids = [await client.create(spec) for _ in sigs]
            for sid, sig in zip(sids, sigs):
                for c in chunked(sig, 500):
                    await client.push(sid, c)
            server.request_drain()
            # Verbs are refused while the drain completes.
            assert server._op_create(None, {"op": "create"}) == {
                "ok": False,
                "error": "draining",
            }
            notices = {}
            while len(notices) < len(sids):
                notice = await client.wait_event(timeout=10.0)
                if notice.get("event") == "drained":
                    notices[notice["sid"]] = notice
            stats = await server.serve_forever()
            return sids, notices, stats, server.n_sessions

        sids, notices, stats, left = serve(scenario)
        assert left == 0
        assert stats.n_drain_finalized == 3
        for sid, (stream_ref, env_ref) in zip(sids, refs):
            notice = notices[sid]
            assert notice["ok"] is True
            assert np.array_equal(unpack_floats(notice["envelope"]), env_ref)
            assert notice["n_events"] == stream_ref.n_events

    def test_drain_counts_too_short_sessions_aborted(self):
        async def scenario(server):
            client = await connect(server)
            await client.create(SessionSpec(scheme="datc", fs=FS))
            server.request_drain()
            notice = await client.wait_event(timeout=10.0)
            stats = await server.serve_forever()
            return notice, stats, server.n_sessions

        notice, stats, left = serve(scenario)
        assert left == 0
        assert notice["ok"] is False and notice["error"] == "too-short"
        assert stats.n_aborted == 1


class TestSigtermDrain:
    def test_subprocess_sigterm_exits_zero_unfinalized_zero(self, tmp_path, rng):
        from repro.cli import _spawn_serve, _wait_serve_ready

        spec = SessionSpec(scheme="datc", fs=FS)
        sig = rng.normal(0, 0.3, size=int(FS * 0.8))
        _, env_ref = scalar_reference("datc", spec.config, chunked(sig, 500))
        ready = os.fspath(tmp_path / "ready")
        proc = _spawn_serve(ready)
        try:
            _pid, host, port = _wait_serve_ready(proc, ready)

            async def drive():
                client = await StreamingClient.connect(host, port)
                sid = await client.create(spec)
                for c in chunked(sig, 500):
                    await client.push(sid, c)
                proc.send_signal(signal.SIGTERM)
                while True:
                    notice = await client.wait_event(timeout=30.0)
                    if notice.get("event") == "drained":
                        client.abort()
                        return notice

            notice = asyncio.run(drive())
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "unfinalized 0" in out
        assert notice["ok"] is True
        assert np.array_equal(unpack_floats(notice["envelope"]), env_ref)


class TestServerConstruction:
    def test_bad_parameters_rejected(self):
        for kwargs in (
            {"max_sessions": 0},
            {"max_pending": 0},
            {"max_total_pending": 0},
            {"silence_timeout_s": 0.0},
            {"tick_s": 0.0},
        ):
            with pytest.raises(ValueError):
                SessionServer(**kwargs)

    def test_address_requires_start(self):
        with pytest.raises(RuntimeError):
            SessionServer().address
