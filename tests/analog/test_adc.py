"""Tests for the baseline ADC model."""

import numpy as np
import pytest

from repro.analog.adc import ADC


class TestADC:
    def test_code_range(self, rng):
        adc = ADC(n_bits=12, vref=1.0)
        codes = adc.sample(rng.uniform(-0.5, 1.5, 1000))
        assert codes.min() >= 0
        assert codes.max() <= 4095

    def test_quantisation_error_bounded(self, rng):
        adc = ADC(n_bits=12, vref=1.0)
        x = rng.uniform(0, 1.0 - 1e-9, 1000)
        recon = adc.reconstruct(adc.sample(x))
        assert np.max(np.abs(recon - x)) <= adc.lsb_v / 2 + 1e-12

    def test_clipping(self):
        adc = ADC(n_bits=8, vref=1.0)
        assert adc.sample(np.array([2.0]))[0] == 255
        assert adc.sample(np.array([-1.0]))[0] == 0

    def test_monotone(self):
        adc = ADC(n_bits=8)
        x = np.linspace(0, 1, 1000)
        codes = adc.sample(x)
        assert np.all(np.diff(codes) >= 0)

    def test_reconstruct_rejects_bad_codes(self):
        adc = ADC(n_bits=8)
        with pytest.raises(ValueError):
            adc.reconstruct(np.array([256]))
        with pytest.raises(ValueError):
            adc.reconstruct(np.array([-1]))

    def test_twelve_bit_default_matches_paper_baseline(self):
        assert ADC().n_bits == 12

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ADC(n_bits=0)
        with pytest.raises(ValueError):
            ADC(vref=-1.0)
