"""Tests for the threshold DAC (paper Eqn. 3)."""

import numpy as np
import pytest

from repro.analog.dac import DAC


class TestPaperEquation3:
    def test_eqn3_values(self):
        """Vth = Vref * Set_Vth / 2^Nb with Vref=1 V, Nb=4."""
        dac = DAC(n_bits=4, vref=1.0)
        for code in range(16):
            assert dac.to_voltage(code) == pytest.approx(code / 16.0)

    def test_sixteen_steps_up_to_fifteen_sixteenths(self):
        dac = DAC()
        assert dac.n_levels == 16
        assert dac.lsb_v == pytest.approx(1.0 / 16.0)
        assert dac.to_voltage(15) == pytest.approx(0.9375)


class TestDAC:
    def test_code_range_checked(self):
        dac = DAC(n_bits=4)
        with pytest.raises(ValueError):
            dac.to_voltage(16)
        with pytest.raises(ValueError):
            dac.to_voltage(-1)

    def test_array_codes(self):
        dac = DAC(n_bits=2, vref=1.0)
        out = dac.to_voltage(np.array([0, 1, 2, 3]))
        assert np.allclose(out, [0.0, 0.25, 0.5, 0.75])

    def test_transfer_curve_monotone(self):
        curve = DAC(n_bits=4).transfer_curve()
        assert np.all(np.diff(curve) > 0)

    def test_nearest_code_roundtrip(self):
        dac = DAC(n_bits=4)
        for code in range(16):
            assert dac.nearest_code(dac.to_voltage(code)) == code

    def test_nearest_code_clips(self):
        dac = DAC(n_bits=4)
        assert dac.nearest_code(2.0) == 15
        assert dac.nearest_code(-1.0) == 0

    def test_inl_shifts_output(self):
        inl = tuple([0.0] * 15 + [0.5])
        dac = DAC(n_bits=4, inl_lsb=inl)
        assert dac.to_voltage(15) == pytest.approx((15 + 0.5) / 16.0)
        assert dac.to_voltage(0) == pytest.approx(0.0)

    def test_inl_length_checked(self):
        with pytest.raises(ValueError):
            DAC(n_bits=4, inl_lsb=(0.1, 0.2))

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            DAC(n_bits=0)
        with pytest.raises(ValueError):
            DAC(vref=0.0)

    @pytest.mark.parametrize("bits", [1, 2, 3, 4, 6, 8])
    def test_resolution_scaling(self, bits):
        dac = DAC(n_bits=bits, vref=1.0)
        assert dac.n_levels == 2 ** bits
        assert dac.to_voltage(dac.n_levels - 1) == pytest.approx(1.0 - dac.lsb_v)
