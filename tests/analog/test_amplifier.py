"""Tests for the pre-amplifier model."""

import numpy as np
import pytest

from repro.analog.amplifier import Amplifier


class TestAmplifier:
    def test_gain_applied(self):
        amp = Amplifier(gain=10.0, saturation_v=100.0)
        out = amp.apply(np.array([0.1, -0.2]))
        assert np.allclose(out, [1.0, -2.0])

    def test_offset_applied(self):
        amp = Amplifier(offset_v=0.5, saturation_v=10.0)
        assert amp.apply(np.zeros(3)).tolist() == [0.5, 0.5, 0.5]

    def test_saturation_clips(self):
        amp = Amplifier(gain=100.0, saturation_v=1.8)
        out = amp.apply(np.array([1.0, -1.0]))
        assert out.tolist() == [1.8, -1.8]

    def test_noise_requires_rng(self):
        amp = Amplifier(noise_rms_v=0.01)
        with pytest.raises(ValueError):
            amp.apply(np.zeros(4))

    def test_noise_magnitude(self, rng):
        amp = Amplifier(noise_rms_v=0.05, saturation_v=10.0)
        out = amp.apply(np.zeros(50_000), rng=rng)
        assert out.std() == pytest.approx(0.05, rel=0.05)

    def test_identity_default(self):
        x = np.linspace(-1, 1, 11)
        assert np.allclose(Amplifier().apply(x), x)

    @pytest.mark.parametrize(
        "kwargs", [{"gain": 0.0}, {"saturation_v": 0.0}, {"noise_rms_v": -1.0}]
    )
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Amplifier(**kwargs)
