"""Tests for the comparator model."""

import numpy as np
import pytest

from repro.analog.comparator import Comparator, ideal_compare


class TestIdealCompare:
    def test_scalar_threshold(self):
        x = np.array([0.1, 0.5, 0.3])
        assert ideal_compare(x, 0.3).tolist() == [0, 1, 0]

    def test_strict_inequality(self):
        assert ideal_compare(np.array([0.3]), 0.3)[0] == 0

    def test_array_threshold(self):
        x = np.array([0.5, 0.5, 0.5])
        th = np.array([0.4, 0.5, 0.6])
        assert ideal_compare(x, th).tolist() == [1, 0, 0]

    def test_dtype_uint8(self):
        assert ideal_compare(np.array([1.0]), 0.0).dtype == np.uint8


class TestComparatorIdeal:
    def test_matches_ideal_without_hysteresis(self, rng):
        x = rng.uniform(0, 1, 1000)
        c = Comparator()
        assert np.array_equal(c.compare(x, 0.5), ideal_compare(x, 0.5))


class TestComparatorHysteresis:
    def test_suppresses_chatter(self):
        """Noise within the hysteresis window must not toggle the output."""
        t = np.arange(2000)
        x = 0.5 + 0.01 * np.sin(2 * np.pi * t / 20)  # tiny wiggle around 0.5
        ideal = ideal_compare(x, 0.5)
        hyst = Comparator(hysteresis_v=0.05).compare(x, 0.5)
        assert np.count_nonzero(np.diff(ideal)) > 0
        assert np.count_nonzero(np.diff(hyst)) == 0

    def test_large_swings_still_detected(self):
        x = np.concatenate([np.zeros(10), np.ones(10), np.zeros(10)])
        out = Comparator(hysteresis_v=0.1).compare(x, 0.5)
        assert out[:10].sum() == 0
        assert out[10:20].sum() == 10
        assert out[20:].sum() == 0

    def test_initial_state_respected(self):
        x = np.full(5, 0.5)  # inside the window: state must hold
        c = Comparator(hysteresis_v=0.2)
        assert np.all(c.compare(x, 0.5, initial_state=1) == 1)
        assert np.all(c.compare(x, 0.5, initial_state=0) == 0)

    def test_rising_point_above_threshold(self):
        c = Comparator(hysteresis_v=0.2)
        # 0.55 is above vth=0.5 but below the 0.6 rising point.
        assert c.compare(np.array([0.55]), 0.5)[0] == 0
        assert c.compare(np.array([0.65]), 0.5)[0] == 1

    def test_array_threshold_with_hysteresis(self):
        x = np.array([0.3, 0.3, 0.3])
        th = np.array([0.1, 0.3, 0.5])
        out = Comparator(hysteresis_v=0.1).compare(x, th)
        assert out.tolist() == [1, 1, 0]  # holds state inside the window


class TestComparatorNoise:
    def test_noise_requires_rng(self):
        c = Comparator(noise_rms_v=0.01)
        with pytest.raises(ValueError):
            c.compare(np.zeros(5), 0.5)

    def test_noise_flips_marginal_decisions(self, rng):
        x = np.full(10_000, 0.5)  # exactly at threshold
        out = Comparator(noise_rms_v=0.05).compare(x, 0.5, rng=rng)
        frac = out.mean()
        assert 0.4 < frac < 0.6  # ~50/50 with noise

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            Comparator(hysteresis_v=-0.1)
        with pytest.raises(ValueError):
            Comparator(noise_rms_v=-0.1)
