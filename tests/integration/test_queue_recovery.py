"""Crash-recovery integration tests for the distributed experiment queue.

Real ``repro worker`` subprocesses against a shared sqlite queue and
result store, exercising the failure modes the queue exists for:

* a worker SIGKILLed mid-shard is reclaimed by a peer via lease expiry,
  with the loss logged and the final results bit-identical to serial;
* the deterministic ``crash`` injector (``os._exit`` inside the shard)
  recovers the same way without an external kill;
* SIGTERM drains gracefully — the in-flight shard finishes, prefetched
  leases are handed back, the exit code is 0;
* N workers (N in {1, 2, 4}) produce bit-identical sweeps.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api import Experiment, ExperimentSpec
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.queue import ExperimentQueue
from repro.runtime.store import ResultStore
from repro.signals.dataset import DatasetSpec

SPEC = ExperimentSpec.for_scheme("datc")
DATASET = DatasetSpec(n_patterns=4, duration_s=2.0, seed=2015)
DEADLINE_S = 180.0


@pytest.fixture(scope="module")
def serial_result():
    return Experiment(SPEC).dataset_sweep(DATASET)


def spawn_worker(db, store, *extra, faults=None):
    src = str(Path(repro.__file__).resolve().parent.parent)
    env = os.environ.copy()
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [
        sys.executable, "-m", "repro", "worker",
        "--db", str(db), "--store", str(store), "--poll", "0.05",
    ]
    cmd += [str(a) for a in extra]
    if faults is not None:
        cmd += ["--faults", faults.to_json()]
    return subprocess.Popen(
        cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )


def wait_for(predicate, what, deadline_s=DEADLINE_S):
    start = time.monotonic()
    while time.monotonic() - start < deadline_s:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {what}")


def finish(proc, what, deadline_s=DEADLINE_S):
    try:
        out, _ = proc.communicate(timeout=deadline_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, _ = proc.communicate()
        raise AssertionError(f"{what} did not exit in time:\n{out}")
    return out


def assert_bit_identical(store_root, serial_result):
    store = ResultStore(store_root)
    result = Experiment(SPEC, store=store).dataset_sweep(DATASET)
    assert store.stats()["misses"] == 0, "collection re-evaluated a shard"
    assert np.array_equal(
        result.correlations_pct, serial_result.correlations_pct
    )
    assert np.array_equal(result.n_events, serial_result.n_events)


class TestSigkillRecovery:
    def test_sigkilled_worker_is_reclaimed_by_peer(
        self, tmp_path, serial_result
    ):
        db, store = tmp_path / "q.db", tmp_path / "store"
        with ExperimentQueue(db) as queue:
            n = queue.submit_dataset(SPEC, DATASET, shard_size=2)
            assert n == 2

        # The victim stalls (heartbeat off, long sleep) on its first
        # attempt of every shard — a wide, deterministic kill window.
        stall = FaultPlan(
            faults=(FaultSpec(kind="stall", attempts=(1,), stall_s=60.0),)
        )
        victim = spawn_worker(
            db, store, "--lease", "0.5", "--heartbeat", "0.1",
            "--worker-id", "victim", faults=stall,
        )
        try:
            with ExperimentQueue(db) as queue:
                wait_for(
                    lambda: any(
                        r["worker_id"] == "victim"
                        for r in queue.rows("leased")
                    ),
                    "the victim to lease a shard",
                )
            os.kill(victim.pid, signal.SIGKILL)
            out = finish(victim, "SIGKILLed victim")
            assert victim.returncode == -signal.SIGKILL
        finally:
            if victim.poll() is None:
                victim.kill()

        # Any honest peer reclaims the orphaned lease once it expires.
        peer = spawn_worker(db, store, "--lease", "0.5", "--worker-id", "peer")
        out = finish(peer, "recovery peer")
        assert peer.returncode == 0, out

        with ExperimentQueue(db) as queue:
            assert queue.unfinished() == 0
            assert queue.counts()["done"] == 2
            # The reclaimed shard carries the failure in its audit trail.
            assert any(
                "lease expired" in (r["error"] or "")
                for r in queue.rows("done")
            ), "worker loss was not logged"
        assert_bit_identical(store, serial_result)

    def test_crash_injector_is_reclaimed(self, tmp_path, serial_result):
        db, store = tmp_path / "q.db", tmp_path / "store"
        with ExperimentQueue(db) as queue:
            queue.submit_dataset(SPEC, DATASET, shard_size=2)

        crash = FaultPlan(faults=(FaultSpec(kind="crash", attempts=(1,)),))
        victim = spawn_worker(
            db, store, "--lease", "0.5", "--worker-id", "victim",
            faults=crash,
        )
        out = finish(victim, "crashing victim")
        assert victim.returncode == 137, out  # died inside the shard

        peer = spawn_worker(db, store, "--lease", "0.5", "--worker-id", "peer")
        out = finish(peer, "recovery peer")
        assert peer.returncode == 0, out
        with ExperimentQueue(db) as queue:
            assert queue.counts()["done"] == 2
        assert_bit_identical(store, serial_result)


class TestSigtermDrain:
    def test_sigterm_exits_clean_mid_queue(self, tmp_path):
        """SIGTERM while the queue is unfinished: exit 0, nothing dangling.

        The test pins one shard under its own long lease so the worker
        cannot self-exit ("drained" needs zero unfinished rows) — the
        SIGTERM deterministically lands while the worker is alive inside
        its loop, with no race against a fast drain on a starved box.
        (Finishing the in-flight shard and releasing the prefetched
        backlog is covered in-process by
        tests/runtime/test_queue.py::TestRunWorker.)
        """
        db, store = tmp_path / "q.db", tmp_path / "store"
        dataset = DatasetSpec(n_patterns=6, duration_s=2.0, seed=2015)
        with ExperimentQueue(db) as queue:
            queue.submit_dataset(SPEC, dataset, shard_size=1)
            pinned = queue.claim("test-holder", lease_s=3600.0)
            assert pinned is not None

            # --max-idle -1: only the SIGTERM can end this worker.
            worker = spawn_worker(db, store, "--max-idle", "-1")
            try:
                wait_for(
                    lambda: queue.counts()["done"] == 5,
                    "the worker to finish every unpinned shard",
                )
                worker.terminate()
                out = finish(worker, "SIGTERMed worker")
            finally:
                if worker.poll() is None:
                    worker.kill()
            assert worker.returncode == 0, out

            counts = queue.counts()
            assert counts["done"] == 5
            assert counts["error"] == 0
            assert counts["leased"] == 1  # only the test's own pin
            assert queue.release(pinned)
        # The completed prefix is valid, reusable store content.
        store_obj = ResultStore(store)
        assert len(store_obj) == 5
        assert store_obj.fsck().clean


class TestNWorkerBitIdentity:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_sweep_matches_serial(self, tmp_path, serial_result, n_workers):
        db, store = tmp_path / "q.db", tmp_path / "store"
        with ExperimentQueue(db) as queue:
            assert queue.submit_dataset(SPEC, DATASET, shard_size=1) == 4

        workers = [
            spawn_worker(db, store, "--worker-id", f"w{i}")
            for i in range(n_workers)
        ]
        outputs = [finish(w, f"worker {i}") for i, w in enumerate(workers)]
        for proc, out in zip(workers, outputs):
            assert proc.returncode == 0, out

        with ExperimentQueue(db) as queue:
            queue.raise_first_error()
            assert queue.unfinished() == 0
            assert queue.counts()["done"] == 4
        assert_bit_identical(store, serial_result)
