"""Crash-recovery integration tests for the network dispatcher.

Real ``repro dispatch`` + ``repro worker --dispatcher`` subprocesses —
no shared mount between the workers and the queue:

* the dispatcher SIGKILLed mid-sweep and restarted on the same port /
  db / store is transparent: workers reconnect through their channel
  backoff, leases that expired during the outage are reclaimed, and the
  finished sweep is bit-identical to serial with zero lost or
  duplicated shards;
* N remote workers (N in {1, 2, 4}) produce bit-identical sweeps.
"""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.api import Experiment, ExperimentSpec
from repro.runtime.faults import FaultPlan, FaultSpec
from repro.runtime.queue import ExperimentQueue
from repro.runtime.store import ResultStore
from repro.runtime.transport import RemoteBackend
from repro.signals.dataset import DatasetSpec

SPEC = ExperimentSpec.for_scheme("datc")
DATASET = DatasetSpec(n_patterns=4, duration_s=2.0, seed=2015)
DEADLINE_S = 180.0


@pytest.fixture(scope="module")
def serial_result():
    return Experiment(SPEC).dataset_sweep(DATASET)


def _env():
    src = str(Path(repro.__file__).resolve().parent.parent)
    env = os.environ.copy()
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def spawn_dispatcher(db, store, ready_file, port=0):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "dispatch",
            "--db", str(db), "--store", str(store),
            "--port", str(port), "--ready-file", str(ready_file),
        ],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )


def wait_ready(proc, ready_file, what, deadline_s=60.0):
    """Block on the pid/address handshake; returns ``(host, port)``."""
    deadline = time.monotonic() + deadline_s
    while True:
        if proc.poll() is not None:
            raise AssertionError(
                f"{what} exited before becoming ready "
                f"(code {proc.returncode}):\n{proc.stdout.read()}"
            )
        if os.path.exists(ready_file):
            lines = Path(ready_file).read_text().splitlines()
            if len(lines) >= 2:
                host, port = lines[1].split()
                return host, int(port)
        if time.monotonic() > deadline:
            raise AssertionError(f"{what} never became ready")
        time.sleep(0.05)


def spawn_remote_worker(address, *extra):
    cmd = [
        sys.executable, "-m", "repro", "worker",
        "--dispatcher", address, "--poll", "0.05",
    ] + [str(a) for a in extra]
    return subprocess.Popen(
        cmd, env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True,
    )


def finish(proc, what, deadline_s=DEADLINE_S):
    try:
        out, _ = proc.communicate(timeout=deadline_s)
    except subprocess.TimeoutExpired:
        proc.kill()
        out, _ = proc.communicate()
        raise AssertionError(f"{what} did not exit in time:\n{out}")
    return out


def assert_bit_identical(store_root, serial_result):
    store = ResultStore(store_root)
    result = Experiment(SPEC, store=store).dataset_sweep(DATASET)
    assert store.stats()["misses"] == 0, "collection re-evaluated a shard"
    assert np.array_equal(
        result.correlations_pct, serial_result.correlations_pct
    )
    assert np.array_equal(result.n_events, serial_result.n_events)


class TestDispatcherKillRecovery:
    def test_sigkilled_dispatcher_restart_is_transparent(
        self, tmp_path, serial_result
    ):
        db = tmp_path / "q.db"
        store = tmp_path / "store"
        dispatcher = spawn_dispatcher(db, store, tmp_path / "ready-1")
        workers = []
        try:
            host, port = wait_ready(
                dispatcher, tmp_path / "ready-1", "dispatcher"
            )
            address = f"{host}:{port}"

            # Submit over the wire; spawn two no-mount workers.  The
            # stall injector paces every first attempt at ~1.5 s (raw
            # shard compute is ~ms), so the kill below reliably lands
            # MID-sweep, with shards still open or leased.
            with ExperimentQueue(RemoteBackend(address)) as queue:
                assert queue.submit_dataset(SPEC, DATASET, shard_size=1) == 4
            pace = FaultPlan(
                faults=(FaultSpec(kind="stall", attempts=(1,), stall_s=1.5),)
            )
            workers = [
                spawn_remote_worker(
                    address, "--worker-id", f"w{i}",
                    "--faults", pace.to_json(),
                )
                for i in range(2)
            ]

            # Kill the dispatcher the moment real progress exists.
            probe = RemoteBackend(address)
            try:
                deadline = time.monotonic() + DEADLINE_S
                while probe.counts()["done"] < 1:
                    assert time.monotonic() < deadline, (
                        "no shard finished before the kill window"
                    )
                    time.sleep(0.05)
                done_at_kill = probe.counts()["done"]
            finally:
                probe.close()
            assert done_at_kill < 4, "sweep drained before the kill landed"
            os.kill(dispatcher.pid, signal.SIGKILL)
            finish(dispatcher, "SIGKILLed dispatcher")
            assert dispatcher.returncode == -signal.SIGKILL

            # Restart on the SAME port / db / store.  Workers are
            # blocked inside their channel's reconnect backoff; nothing
            # was told to restart, nothing needs to be.
            dispatcher = spawn_dispatcher(
                db, store, tmp_path / "ready-2", port=port
            )
            wait_ready(dispatcher, tmp_path / "ready-2", "restarted dispatcher")

            outputs = [finish(w, f"worker {i}") for i, w in enumerate(workers)]
            for proc, out in zip(workers, outputs):
                assert proc.returncode == 0, out
            dispatcher.terminate()
            out = finish(dispatcher, "dispatcher drain")
            assert dispatcher.returncode == 0, out
        finally:
            for proc in [dispatcher] + workers:
                if proc.poll() is None:
                    proc.kill()
                    proc.communicate()

        # Zero lost, zero duplicated, zero dangling: inspect the sqlite
        # file directly now that the dispatcher is gone.
        with ExperimentQueue(db) as queue:
            counts = queue.counts()
            assert counts["done"] == 4
            assert counts["leased"] == 0
            assert counts["open"] == 0
            assert len(queue.rows()) == 4
        assert_bit_identical(store, serial_result)


class TestRemoteNWorkerBitIdentity:
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_remote_sweep_matches_serial(
        self, tmp_path, serial_result, n_workers
    ):
        db = tmp_path / "q.db"
        store = tmp_path / "store"
        dispatcher = spawn_dispatcher(db, store, tmp_path / "ready")
        workers = []
        try:
            host, port = wait_ready(dispatcher, tmp_path / "ready", "dispatcher")
            address = f"{host}:{port}"
            with ExperimentQueue(RemoteBackend(address)) as queue:
                assert queue.submit_dataset(SPEC, DATASET, shard_size=1) == 4
            workers = [
                spawn_remote_worker(address, "--worker-id", f"w{i}")
                for i in range(n_workers)
            ]
            outputs = [finish(w, f"worker {i}") for i, w in enumerate(workers)]
            for proc, out in zip(workers, outputs):
                assert proc.returncode == 0, out

            backend = RemoteBackend(address)
            try:
                backend.raise_first_error()
                assert backend.counts()["done"] == 4
                assert backend.counts()["leased"] == 0
            finally:
                backend.close()
        finally:
            for proc in workers:
                if proc.poll() is None:
                    proc.kill()
                    proc.communicate()
            if dispatcher.poll() is None:
                dispatcher.terminate()
            out = finish(dispatcher, "dispatcher drain")
        assert dispatcher.returncode == 0, out
        # The workers never saw db/store paths; the results are still
        # sitting in the dispatcher's store, identical to serial.
        assert_bit_identical(store, serial_result)
