"""Golden end-to-end regression: the full TX -> link -> RX -> score chain.

A seeded ``encode_batch -> simulate_link_batch -> reconstruct_batch ->
aligned_correlation_percent_batch`` run over a small deterministic
dataset, checked against committed golden summary values.  These numbers
are the repo's fingerprint of the paper's figure chain: any refactor of
the encoders, link, decoders, or scoring that silently drifts the
figures fails here first.

Event/pulse/symbol counts are integers and must match **exactly**.
Correlations are float summaries of BLAS-backed dot products, so they
get a tight-but-not-exact tolerance (1e-5 percentage points — far below
any behavioural change, above cross-library last-ulp noise).
"""

import numpy as np
import pytest

from repro.core.config import ATCConfig, DATCConfig
from repro.core.encoders import encode_batch
from repro.rx.correlation import aligned_correlation_percent_batch
from repro.rx.decoders import reconstruct_batch
from repro.signals.dataset import DatasetSpec
from repro.uwb.channel import UWBChannel
from repro.uwb.link import LinkConfig, simulate_link_batch

N_PATTERNS = 6
CORR_ATOL = 1e-5

# Committed golden summaries (generated at the introduction of this test;
# regenerate CONSCIOUSLY — a diff here is a behaviour change, not noise).
GOLDEN_ATC_IDEAL = {
    # Pattern 0 is the paper's fixed-threshold failure case: the weak
    # subject never crosses 0.3 V, so zero events and zero correlation.
    "corr": [0.0, 75.529468, 97.357503, 98.57391, 75.36607, 67.558846],
    "events": [0, 19, 211, 340, 6, 2],
    "pulses": [0, 19, 211, 340, 6, 2],
    "symbols": [0, 19, 211, 340, 6, 2],
}
GOLDEN_DATC_IDEAL = {
    "corr": [93.277777, 93.180637, 96.75145, 95.215141, 93.883909, 81.335542],
    "events": [272, 254, 372, 462, 239, 213],
    "pulses": [555, 550, 878, 1153, 496, 428],
    "symbols": [1360, 1270, 1860, 2310, 1195, 1065],
}
GOLDEN_DATC_NOISY = {
    "corr": [88.080646, 93.478981, 96.430752, 94.387244, 89.989678, 83.364704],
    "rx_events": [271, 250, 367, 458, 238, 212],
    "delivery": [0.996324, 0.984252, 0.986559, 0.991342, 0.995816, 0.995305],
    "level_errors": [0.089796, 0.126638, 0.098837, 0.152174, 0.088372, 0.08377],
}


@pytest.fixture(scope="module")
def corpus():
    dataset = DatasetSpec(n_patterns=N_PATTERNS, duration_s=4.0, seed=2015)
    patterns = [dataset.pattern(i) for i in range(N_PATTERNS)]
    signals = np.stack([p.emg for p in patterns])
    references = np.stack([p.ground_truth_envelope() for p in patterns])
    return patterns[0].fs, signals, references


def _chain(signals, fs, references, scheme, config, channel=None, rng=None):
    streams = [s for s, _ in encode_batch(signals, fs, config)]
    links = simulate_link_batch(streams, LinkConfig(), channel=channel, rng=rng)
    recons = reconstruct_batch(
        [r.rx_stream for r in links], scheme, config
    )
    corrs = aligned_correlation_percent_batch(recons, references)
    return streams, links, corrs


@pytest.mark.parametrize(
    "scheme, config, golden",
    [
        ("atc", ATCConfig(), GOLDEN_ATC_IDEAL),
        ("datc", DATCConfig(), GOLDEN_DATC_IDEAL),
    ],
    ids=["atc", "datc"],
)
def test_ideal_link_chain_matches_golden(corpus, scheme, config, golden):
    fs, signals, references = corpus
    streams, links, corrs = _chain(signals, fs, references, scheme, config)
    assert [s.n_events for s in streams] == golden["events"]
    assert [r.n_pulses for r in links] == golden["pulses"]
    assert [r.n_symbols for r in links] == golden["symbols"]
    # The ideal channel delivers everything it was given.
    assert all(
        r.event_delivery_ratio == (1.0 if s.n_events else 0.0)
        for r, s in zip(links, streams)
    )
    np.testing.assert_allclose(corrs, golden["corr"], rtol=0, atol=CORR_ATOL)


def test_noisy_link_chain_matches_golden(corpus):
    fs, signals, references = corpus
    channel = UWBChannel(erasure_prob=0.1, jitter_rms_s=1e-6)
    rng = np.random.default_rng(2015)
    _, links, corrs = _chain(
        signals, fs, references, "datc", DATCConfig(), channel=channel, rng=rng
    )
    assert [r.rx_stream.n_events for r in links] == GOLDEN_DATC_NOISY["rx_events"]
    np.testing.assert_allclose(
        [r.event_delivery_ratio for r in links],
        GOLDEN_DATC_NOISY["delivery"],
        rtol=0,
        atol=1e-6,
    )
    np.testing.assert_allclose(
        [r.level_error_ratio for r in links],
        GOLDEN_DATC_NOISY["level_errors"],
        rtol=0,
        atol=1e-6,
    )
    np.testing.assert_allclose(
        corrs, GOLDEN_DATC_NOISY["corr"], rtol=0, atol=CORR_ATOL
    )


def test_chain_is_deterministic(corpus):
    """Two seeded runs of the noisy chain are bit-identical to each other."""
    fs, signals, references = corpus
    runs = []
    for _ in range(2):
        channel = UWBChannel(erasure_prob=0.1, jitter_rms_s=1e-6)
        rng = np.random.default_rng(2015)
        runs.append(
            _chain(
                signals, fs, references, "datc", DATCConfig(),
                channel=channel, rng=rng,
            )[2]
        )
    assert np.array_equal(runs[0], runs[1])
