"""Integration tests: the full TX -> radio -> RX chain across modules."""

import numpy as np
import pytest

from repro.core.config import ATCConfig, DATCConfig
from repro.core.datc import datc_encode
from repro.core.atc import atc_encode
from repro.rx.correlation import aligned_correlation_percent
from repro.rx.reconstruction import reconstruct_hybrid, reconstruct_rate
from repro.signals.artifacts import add_spike_artifacts
from repro.uwb.channel import UWBChannel
from repro.uwb.link import LinkConfig, simulate_link
from repro.uwb.receiver import EnergyDetector


class TestFullChainDatc:
    """Pattern -> D-ATC encoder -> OOK/UWB link -> decoder -> envelope."""

    def test_ideal_radio_end_to_end(self, mid_pattern):
        stream, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        link = simulate_link(stream, LinkConfig())
        recon = reconstruct_hybrid(link.rx_stream)
        ref = mid_pattern.ground_truth_envelope()
        assert aligned_correlation_percent(recon, ref) > 93.0

    def test_budget_derived_radio_end_to_end(self, mid_pattern, rng):
        """With the energy detector and a 1 m link budget the chain is
        transparent in practice."""
        stream, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        link = simulate_link(stream, LinkConfig(), detector=EnergyDetector(), rng=rng)
        assert link.event_delivery_ratio > 0.99
        recon = reconstruct_hybrid(link.rx_stream)
        ref = mid_pattern.ground_truth_envelope()
        assert aligned_correlation_percent(recon, ref) > 92.0

    def test_lossy_radio_degrades_gracefully(self, mid_pattern, rng):
        stream, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        clean = simulate_link(stream, LinkConfig())
        lossy = simulate_link(
            stream, LinkConfig(), channel=UWBChannel(erasure_prob=0.2), rng=rng
        )
        ref = mid_pattern.ground_truth_envelope()
        c_clean = aligned_correlation_percent(reconstruct_hybrid(clean.rx_stream), ref)
        c_lossy = aligned_correlation_percent(reconstruct_hybrid(lossy.rx_stream), ref)
        assert c_lossy > c_clean - 8.0


class TestFullChainAtc:
    def test_atc_end_to_end(self, mid_pattern):
        stream, _ = atc_encode(mid_pattern.emg, mid_pattern.fs, ATCConfig(vth=0.2))
        link = simulate_link(stream, LinkConfig())
        recon = reconstruct_rate(link.rx_stream)
        ref = mid_pattern.ground_truth_envelope()
        assert aligned_correlation_percent(recon, ref) > 85.0


class TestArtifactRobustness:
    def test_spike_artifacts_act_like_extra_events(self, mid_pattern, rng):
        """Paper Sec. III-B: artifact pulses degrade like pulse loss —
        a handful of spikes must not collapse the correlation."""
        dirty = add_spike_artifacts(
            mid_pattern.emg, mid_pattern.fs, rng, rate_hz=1.0, amplitude_v=0.5
        )
        ref = mid_pattern.ground_truth_envelope()
        clean_stream, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        dirty_stream, _ = datc_encode(dirty, mid_pattern.fs)
        c_clean = aligned_correlation_percent(reconstruct_hybrid(clean_stream), ref)
        c_dirty = aligned_correlation_percent(reconstruct_hybrid(dirty_stream), ref)
        assert c_dirty > c_clean - 6.0


class TestCrossSchemeInvariants:
    def test_datc_symbol_cost_is_5x_event_cost(self, small_dataset):
        for pid in range(4):
            p = small_dataset.pattern(pid)
            d, _ = datc_encode(p.emg, p.fs)
            a, _ = atc_encode(p.emg, p.fs)
            assert d.n_symbols == 5 * d.n_events
            assert a.n_symbols == a.n_events

    def test_same_clock_same_grid(self, mid_pattern):
        """ATC and D-ATC share the 2 kHz clock, so all event times live on
        the same grid and are directly comparable."""
        a, _ = atc_encode(mid_pattern.emg, mid_pattern.fs)
        d, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        for stream in (a, d):
            ticks = stream.times * 2000.0
            assert np.allclose(ticks, np.round(ticks))

    def test_rtl_behavioural_hardware_power_chain(self, mid_pattern):
        """The trace that drives the figures also drives the power model:
        encode, replay through the RTL, measure activity, estimate power."""
        from repro.digital.dtc_rtl import DTCRtl
        from repro.hardware import build_dtc_netlist, estimate_power, hv180_library
        from repro.hardware.power import activity_from_rtl

        config = DATCConfig(quantized=True)
        _, trace = datc_encode(mid_pattern.emg, mid_pattern.fs, config)
        activity = activity_from_rtl(DTCRtl(), trace.d_in)
        report = estimate_power(build_dtc_netlist(), hv180_library(), activity=activity)
        assert 10.0 < report.dynamic_nw < 200.0
