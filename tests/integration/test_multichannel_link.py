"""Integration: the multi-channel AER system over a lossy IR-UWB link."""

import numpy as np
import pytest

from repro.core.multichannel import MultiChannelDATC
from repro.rx.correlation import aligned_correlation_percent
from repro.rx.reconstruction import reconstruct_hybrid
from repro.signals.emg import EMGModel, synthesize_emg
from repro.signals.envelope import arv_envelope
from repro.signals.force import mvc_grip_protocol, sinusoidal_profile
from repro.uwb.channel import UWBChannel
from repro.uwb.link import LinkConfig, simulate_link


@pytest.fixture(scope="module")
def glove_setup():
    fs = 2500.0
    duration = 8.0
    rng = np.random.default_rng(42)
    profiles = [
        mvc_grip_protocol(duration, fs),
        sinusoidal_profile(duration, fs, mean=0.4, amplitude=0.25, frequency_hz=0.4),
    ]
    signals = [
        synthesize_emg(p, fs, EMGModel(gain_v=g), rng)
        for p, g in zip(profiles, (0.5, 0.3))
    ]
    symbol_period = 2e-6
    # Bursts span 6 symbols (marker + 1 address bit + 4 level bits); one
    # extra slot of arbiter spacing keeps them strictly separated.
    system = MultiChannelDATC(n_channels=2, min_spacing_s=7 * symbol_period)
    return fs, signals, system, symbol_period


class TestMultiChannelOverLink:
    def test_ideal_link_recovers_both_channels(self, glove_setup):
        fs, signals, system, symbol_period = glove_setup
        result = system.encode(signals, fs)
        link = simulate_link(
            result.merged, LinkConfig(symbol_period_s=symbol_period)
        )
        assert link.event_delivery_ratio == pytest.approx(1.0)
        for signal, recon in zip(signals, system.reconstruct(link.rx_stream)):
            ref = arv_envelope(signal, fs)
            assert aligned_correlation_percent(recon, ref) > 85.0

    def test_lossy_link_still_usable(self, glove_setup):
        fs, signals, system, symbol_period = glove_setup
        result = system.encode(signals, fs)
        rng = np.random.default_rng(9)
        link = simulate_link(
            result.merged,
            LinkConfig(symbol_period_s=symbol_period),
            channel=UWBChannel(erasure_prob=0.1),
            rng=rng,
        )
        assert 0.7 < link.event_delivery_ratio <= 1.05
        # Address corruption can misroute events, but most land correctly:
        # each channel must still track its own envelope.
        for signal, recon in zip(signals, system.reconstruct(link.rx_stream)):
            ref = arv_envelope(signal, fs)
            assert aligned_correlation_percent(recon, ref) > 70.0

    def test_aer_symbol_accounting_through_link(self, glove_setup):
        fs, signals, system, symbol_period = glove_setup
        result = system.encode(signals, fs)
        link = simulate_link(result.merged, LinkConfig(symbol_period_s=symbol_period))
        # 2 channels: 1 marker + 1 address + 4 level = 6 symbols per event.
        assert system.symbols_per_event == 6
        assert link.n_symbols == 6 * result.n_events
