"""Integration: persistence closes the loop around the full pipeline.

A recording saved to disk, reloaded, encoded, with its event stream saved
and reloaded again, must reconstruct identically — the workflow a user
with *real* recordings would follow (see docs/DATASET.md §5).
"""

import numpy as np

from repro.core.datc import datc_encode
from repro.rx.correlation import aligned_correlation_percent
from repro.rx.reconstruction import reconstruct_hybrid
from repro.signals.io import (
    load_event_stream,
    load_pattern,
    save_event_stream,
    save_pattern,
)


class TestPersistencePipeline:
    def test_offline_workflow_identical_to_inline(self, tmp_path, mid_pattern):
        # Inline: encode and reconstruct directly.
        stream_inline, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        recon_inline = reconstruct_hybrid(stream_inline)

        # Offline: recording -> disk -> encoder -> disk -> decoder.
        pattern_path = str(tmp_path / "recording.npz")
        events_path = str(tmp_path / "events.npz")
        save_pattern(pattern_path, mid_pattern)
        reloaded = load_pattern(pattern_path)
        stream_offline, _ = datc_encode(reloaded.emg, reloaded.fs)
        save_event_stream(events_path, stream_offline)
        recon_offline = reconstruct_hybrid(load_event_stream(events_path))

        assert np.array_equal(recon_inline, recon_offline)

    def test_reloaded_ground_truth_scores_identically(self, tmp_path, mid_pattern):
        path = str(tmp_path / "recording.npz")
        save_pattern(path, mid_pattern)
        reloaded = load_pattern(path)

        stream, _ = datc_encode(reloaded.emg, reloaded.fs)
        recon = reconstruct_hybrid(stream)
        corr_reloaded = aligned_correlation_percent(
            recon, reloaded.ground_truth_envelope()
        )
        corr_original = aligned_correlation_percent(
            recon, mid_pattern.ground_truth_envelope()
        )
        assert corr_reloaded == corr_original
