"""Property-based tests (hypothesis) for the core encoders and predictor."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atc import rising_edges
from repro.core.config import DATCConfig
from repro.core.events import EventStream
from repro.core.intervals import interval_levels_float, select_level
from repro.core.predictor import ThresholdPredictor

bits_arrays = st.lists(st.integers(0, 1), min_size=1, max_size=400).map(
    lambda v: np.asarray(v, dtype=np.uint8)
)


class TestRisingEdgesProperties:
    @given(bits=bits_arrays, initial=st.integers(0, 1))
    def test_edges_point_at_ones_preceded_by_zeros(self, bits, initial):
        idx = rising_edges(bits, initial=initial)
        prev = np.concatenate([[initial], bits[:-1]])
        for i in idx:
            assert bits[i] == 1 and prev[i] == 0

    @given(bits=bits_arrays)
    def test_edge_count_equals_block_count(self, bits):
        padded = np.concatenate([[0], bits])
        blocks = int(np.count_nonzero(np.diff(padded) == 1))
        assert rising_edges(bits).size == blocks

    @given(bits=bits_arrays, initial=st.integers(0, 1))
    def test_edges_strictly_increasing(self, bits, initial):
        idx = rising_edges(bits, initial=initial)
        assert np.all(np.diff(idx) > 0)


class TestSelectLevelProperties:
    @given(avr=st.floats(min_value=0.0, max_value=1000.0, allow_nan=False))
    def test_result_in_range(self, avr):
        levels = interval_levels_float(100)
        lv = select_level(avr, levels)
        assert 1 <= lv <= 15

    @given(
        a=st.floats(min_value=0.0, max_value=200.0),
        b=st.floats(min_value=0.0, max_value=200.0),
    )
    def test_monotone(self, a, b):
        levels = interval_levels_float(100)
        if a <= b:
            assert select_level(a, levels) <= select_level(b, levels)

    @given(avr=st.floats(min_value=0.0, max_value=1000.0), frame=st.sampled_from([100, 200, 400, 800]))
    def test_scale_invariance(self, avr, frame):
        """select_level(avr, levels(F)) == select_level(avr/F, levels(1)):
        the ladder is a pure fraction of the frame size."""
        big = select_level(avr, interval_levels_float(frame))
        small = select_level(avr / frame, interval_levels_float(1))
        assert big == small


class TestPredictorProperties:
    @given(counts=st.lists(st.integers(0, 100), min_size=1, max_size=30))
    def test_level_always_legal(self, counts):
        p = ThresholdPredictor(DATCConfig())
        for c in counts:
            lv = p.update(c)
            assert 1 <= lv <= 15

    @given(counts=st.lists(st.integers(0, 100), min_size=3, max_size=30))
    def test_quantized_close_to_float(self, counts):
        pf = ThresholdPredictor(DATCConfig(quantized=False))
        pq = ThresholdPredictor(DATCConfig(quantized=True))
        for c in counts:
            assert abs(pf.update(c) - pq.update(c)) <= 1

    @given(duty=st.floats(min_value=0.0, max_value=1.0))
    def test_steady_state_monotone_in_duty(self, duty):
        p = ThresholdPredictor(DATCConfig())
        lower = p.steady_state_level(duty * 0.5)
        assert p.steady_state_level(duty) >= lower


class TestEventStreamProperties:
    @settings(max_examples=50)
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=9.99, allow_nan=False), max_size=60
        ),
        window=st.floats(min_value=0.05, max_value=5.0),
    )
    def test_window_counts_conserve_events(self, times, window):
        arr = np.sort(np.asarray(times, dtype=float))
        s = EventStream(times=arr, duration_s=10.0)
        assert s.counts_in_windows(window).sum() == arr.size

    @settings(max_examples=50)
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=9.99, allow_nan=False),
            min_size=1,
            max_size=60,
        ),
        data=st.data(),
    )
    def test_drop_then_count(self, times, data):
        arr = np.sort(np.asarray(times, dtype=float))
        s = EventStream(times=arr, duration_s=10.0)
        mask = np.asarray(
            data.draw(st.lists(st.booleans(), min_size=arr.size, max_size=arr.size))
        )
        kept = s.drop_events(mask)
        assert kept.n_events == int(mask.sum())
        assert kept.n_symbols == kept.n_events * s.symbols_per_event
