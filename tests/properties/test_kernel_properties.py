"""Property-based tests (hypothesis) for the compiled kernel tier.

The D-ATC frame-scan kernel must equal the numpy reference *bit for bit*
on arbitrary operating points — both predictor flavours, ragged final
frames, ``min_level`` clamping — and the fused correlation kernel must
stay within its documented tolerance on arbitrary shapes.  The kernel
bodies are plain Python without numba, so the properties hold on any
environment.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DATCConfig
from repro.core.encoders import _datc_frames_numpy
from repro.kernels.correlation import TOLERANCE_PCT, fused_aligned_correlation
from repro.kernels.datc import datc_frames
from repro.rx.correlation import aligned_correlation_percent_batch

# Small-but-irregular operating points: tiny frames maximise predictor
# updates (and quantized-ladder duplicates) per generated sample.
datc_configs = st.builds(
    lambda fsz, quantized, min_level, initial_level: DATCConfig(
        frame_sizes=(fsz,),
        frame_selector=0,
        quantized=quantized,
        min_level=min_level,
        # config validation requires initial_level in [min_level, 16)
        initial_level=max(min_level, initial_level),
    ),
    fsz=st.integers(2, 12),
    quantized=st.booleans(),
    min_level=st.integers(0, 3),
    initial_level=st.integers(1, 15),
)


def _clocked(seed: int, n_signals: int, n_clocks: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.abs(rng.standard_normal((n_signals, n_clocks)))


class TestDATCKernelExactness:
    @given(
        config=datc_configs,
        seed=st.integers(0, 2**16),
        n_signals=st.integers(1, 5),
        n_clocks=st.integers(1, 120),
    )
    @settings(max_examples=60, deadline=None)
    def test_bit_exact_vs_numpy(self, config, seed, n_signals, n_clocks):
        x = _clocked(seed, n_signals, n_clocks)
        ref = _datc_frames_numpy(x, config)
        out = datc_frames(x, config)
        for a, b in zip(ref, out):
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(b, a)

    @given(config=datc_configs, seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_ragged_tail_never_updates_predictor(self, config, seed):
        """A final partial frame changes d_in only — frame outputs match
        the truncated whole-frame input exactly."""
        fsz = config.frame_size
        x = _clocked(seed, 2, 3 * fsz + fsz // 2)  # fsz//2 in [1, fsz)
        whole = x[:, : 3 * fsz]
        out_full = datc_frames(x, config)
        out_whole = datc_frames(whole, config)
        for full, trunc in zip(out_full[3:], out_whole[3:]):
            np.testing.assert_array_equal(full, trunc)

    @given(config=datc_configs, seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_levels_respect_min_level_floor(self, config, seed):
        x = _clocked(seed, 2, 8 * config.frame_size)
        _, levels, _, frame_levels, _, _ = datc_frames(x, config)
        assert np.all(frame_levels >= config.min_level)
        # per-clock levels mix initial_level with predictor outputs
        assert np.all(levels >= min(config.min_level, config.initial_level))


class TestFusedScoringTolerance:
    @given(
        seed=st.integers(0, 2**16),
        n_rows=st.integers(1, 4),
        m=st.integers(2, 90),
        n_ref=st.integers(2, 120),
    )
    @settings(max_examples=60, deadline=None)
    def test_within_documented_tolerance(self, seed, n_rows, m, n_ref):
        rng = np.random.default_rng(seed)
        recons = rng.standard_normal((n_rows, m))
        refs = rng.standard_normal((n_rows, n_ref))
        ref = aligned_correlation_percent_batch(recons, refs)
        out = fused_aligned_correlation(recons, refs)
        assert np.max(np.abs(out - ref)) <= TOLERANCE_PCT

    @given(seed=st.integers(0, 2**16), n_ref=st.integers(2, 80))
    @settings(max_examples=30, deadline=None)
    def test_interpolated_values_bit_identical(self, seed, n_ref):
        """The fused kernel's resample stage is exact; only the reduction
        order differs from numpy.  Checked via the copy mode identity:
        scoring a matrix against itself gives exactly 100 on both paths."""
        rng = np.random.default_rng(seed)
        refs = rng.standard_normal((3, n_ref)) + np.linspace(0, 1, n_ref)
        assert np.all(fused_aligned_correlation(refs, refs) == 100.0)
        assert np.all(
            aligned_correlation_percent_batch(refs, refs) == 100.0
        )
