"""Property-based tests: the batched/streaming receiver engine matches the
per-stream decoders bit for bit, for any stream contents and any chunking."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import EventStream
from repro.rx.correlation import (
    aligned_correlation_percent,
    aligned_correlation_percent_batch,
)
from repro.rx.decoders import (
    StreamingDecoder,
    binned_counts_batch,
    reconstruct_batch,
    stream_chunks,
)
from repro.rx.reconstruction import reconstruct_hybrid, reconstruct_rate
from repro.rx.windowing import binned_counts, exponential_rate


@st.composite
def random_stream(draw, with_levels=True):
    """A random event stream: any density, clustered or sparse, maybe empty."""
    duration = draw(st.floats(min_value=0.05, max_value=8.0))
    n_events = draw(st.integers(min_value=0, max_value=150))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0.0, duration, size=n_events))
    # Snap some events onto exact grid edges to probe the binning ties.
    if n_events and draw(st.booleans()):
        k = min(3, n_events)
        times[:k] = np.round(times[:k] * 100.0) / 100.0
        times = np.sort(np.clip(times, 0.0, duration))
    levels = rng.integers(0, 16, size=n_events) if with_levels else None
    return EventStream(times=times, duration_s=duration, levels=levels)


@st.composite
def stream_and_chunking(draw, with_levels=True):
    """A random stream plus a random partition of its window into chunks."""
    stream = draw(random_stream(with_levels=with_levels))
    cuts = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=stream.duration_s),
            max_size=6,
        ).map(sorted)
    )
    return stream, list(cuts) + [stream.duration_s]


class TestStreamingDecoderEqualsOneShot:
    @settings(max_examples=60, deadline=None)
    @given(data=stream_and_chunking())
    def test_datc(self, data):
        stream, bounds = data
        decoder = StreamingDecoder(scheme="datc")
        parts = [decoder.push(c) for c in stream_chunks(stream, bounds)]
        parts.append(decoder.finalize())
        assert np.array_equal(
            np.concatenate(parts), reconstruct_hybrid(stream)
        )

    @settings(max_examples=60, deadline=None)
    @given(data=stream_and_chunking(with_levels=False))
    def test_atc(self, data):
        stream, bounds = data
        decoder = StreamingDecoder(scheme="atc")
        parts = [decoder.push(c) for c in stream_chunks(stream, bounds)]
        parts.append(decoder.finalize())
        assert np.array_equal(np.concatenate(parts), reconstruct_rate(stream))


class TestBatchEqualsPerStream:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_streams=st.integers(min_value=1, max_value=6),
        duration=st.floats(min_value=0.05, max_value=6.0),
        fs_out=st.sampled_from([100.0, 50.0, 33.0]),
    )
    def test_counts_and_reconstructions(self, seed, n_streams, duration, fs_out):
        rng = np.random.default_rng(seed)
        streams = []
        for _ in range(n_streams):
            n_events = int(rng.integers(0, 120))
            times = np.sort(rng.uniform(0.0, duration, size=n_events))
            streams.append(
                EventStream(
                    times=times,
                    duration_s=duration,
                    levels=rng.integers(0, 16, size=n_events),
                )
            )
        counts = binned_counts_batch(streams, fs_out)
        hybrid = reconstruct_batch(streams, "datc", fs_out=fs_out)
        rate = reconstruct_batch(streams, "atc", fs_out=fs_out)
        for i, stream in enumerate(streams):
            assert np.array_equal(counts[i], binned_counts(stream, fs_out))
            assert np.array_equal(
                hybrid[i], reconstruct_hybrid(stream, fs_out=fs_out)
            )
            assert np.array_equal(
                rate[i], reconstruct_rate(stream, fs_out=fs_out)
            )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_streams=st.integers(min_value=1, max_value=5),
        n_ref=st.integers(min_value=2, max_value=600),
    )
    def test_batched_scoring(self, seed, n_streams, n_ref):
        rng = np.random.default_rng(seed)
        recons = rng.normal(size=(n_streams, int(rng.integers(2, 300))))
        refs = rng.normal(size=(n_streams, n_ref))
        batch = aligned_correlation_percent_batch(recons, refs)
        for i in range(n_streams):
            assert batch[i] == aligned_correlation_percent(recons[i], refs[i])


class TestExponentialRate:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        tau=st.floats(min_value=0.02, max_value=3.0),
        duration=st.floats(min_value=0.05, max_value=20.0),
    )
    def test_scan_matches_sequential_recurrence(self, seed, tau, duration):
        """The vectorised log-scan == the per-sample loop, to 1e-12."""
        rng = np.random.default_rng(seed)
        n_events = int(rng.integers(0, 300))
        times = np.sort(rng.uniform(0.0, duration, size=n_events))
        stream = EventStream(times=times, duration_s=duration)
        fs_out = 100.0
        got = exponential_rate(stream, fs_out, tau_s=tau)
        counts = binned_counts(stream, fs_out).astype(float)
        alpha = 1.0 - np.exp(-1.0 / (tau * fs_out))
        acc, reference = 0.0, np.empty_like(counts)
        for i, c in enumerate(counts):
            acc += alpha * (c - acc)
            reference[i] = acc
        reference *= fs_out
        scale = max(np.max(np.abs(reference)) if reference.size else 0.0, 1e-30)
        assert got.shape == reference.shape
        if reference.size:
            assert np.max(np.abs(got - reference)) / scale < 1e-12
