"""Property-based tests: chunked streaming == one-shot for any chunking."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atc import atc_encode
from repro.core.config import ATCConfig, DATCConfig
from repro.core.datc import datc_encode
from repro.core.encoders import ATCEncoder, DATCEncoder, encode_batch

FS = 2500.0

# Short D-ATC operating point so a few hundred samples span many frames.
SMALL_DATC = DATCConfig(frame_sizes=(8, 16, 32, 64))


@st.composite
def signal_and_chunking(draw):
    """A random signal plus a random partition of it into chunks."""
    n = draw(st.integers(min_value=5, max_value=600))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    signal = rng.normal(0.0, 0.4, size=n)
    cuts = draw(
        st.lists(st.integers(min_value=0, max_value=n), max_size=8).map(sorted)
    )
    bounds = [0] + list(cuts) + [n]
    chunks = [signal[a:b] for a, b in zip(bounds[:-1], bounds[1:])]
    return signal, chunks


class TestChunkedEqualsOneShot:
    @settings(max_examples=60, deadline=None)
    @given(data=signal_and_chunking())
    def test_datc(self, data):
        signal, chunks = data
        stream, trace = datc_encode(signal, FS, SMALL_DATC)
        enc = DATCEncoder(FS, SMALL_DATC)
        for chunk in chunks:
            enc.push(chunk)
        trace2 = enc.finalize()
        assert np.array_equal(stream.times, enc.stream.times)
        assert np.array_equal(stream.levels, enc.stream.levels)
        assert np.array_equal(trace.d_in, trace2.d_in)
        assert np.array_equal(trace.levels, trace2.levels)
        assert np.array_equal(trace.frame_ones, trace2.frame_ones)
        assert np.array_equal(trace.frame_avr, trace2.frame_avr)

    @settings(max_examples=60, deadline=None)
    @given(data=signal_and_chunking())
    def test_atc(self, data):
        signal, chunks = data
        stream, trace = atc_encode(signal, FS, ATCConfig(vth=0.3))
        enc = ATCEncoder(FS, ATCConfig(vth=0.3))
        for chunk in chunks:
            enc.push(chunk)
        trace2 = enc.finalize()
        assert np.array_equal(stream.times, enc.stream.times)
        assert np.array_equal(trace.d_in, trace2.d_in)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_signals=st.integers(min_value=1, max_value=5),
        n=st.integers(min_value=10, max_value=400),
    )
    def test_batched_equals_loop(self, seed, n_signals, n):
        rng = np.random.default_rng(seed)
        batch = rng.normal(0.0, 0.4, size=(n_signals, n))
        for (stream, trace), row in zip(
            encode_batch(batch, FS, SMALL_DATC), batch
        ):
            one_stream, one_trace = datc_encode(row, FS, SMALL_DATC)
            assert np.array_equal(one_stream.times, stream.times)
            assert np.array_equal(one_stream.levels, stream.levels)
            assert np.array_equal(one_trace.d_in, trace.d_in)
            assert np.array_equal(one_trace.frame_avr, trace.frame_avr)
