"""Property-based tests for the UWB link layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import EventStream
from repro.uwb.modulation import (
    ook_demodulate,
    ook_modulate,
    ppm_demodulate,
    ppm_modulate,
)
from repro.uwb.packets import PacketFormat, crc8, depacketize, packetize


def _stream_from(draw_times, draw_levels, duration=10.0):
    times = np.unique(np.asarray(draw_times, dtype=float))
    # Enforce the burst-span separation required by the modulators.
    keep = np.concatenate([[True], np.diff(times) > 6e-5 * 10])
    times = times[keep]
    levels = np.asarray(draw_levels[: times.size], dtype=np.int64)
    if levels.size < times.size:
        times = times[: levels.size]
    return EventStream(
        times=times, duration_s=duration, levels=levels, symbols_per_event=5
    )


event_streams = st.builds(
    _stream_from,
    st.lists(st.floats(min_value=0.01, max_value=9.9), min_size=1, max_size=80),
    st.lists(st.integers(0, 15), min_size=80, max_size=80),
)


class TestModulationRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(stream=event_streams)
    def test_ook_roundtrip_ideal(self, stream):
        train = ook_modulate(stream, symbol_period_s=1e-5)
        rx = ook_demodulate(train.pulse_times, stream.duration_s, 1e-5, 4)
        assert rx.n_events == stream.n_events
        assert np.array_equal(rx.levels, stream.levels)

    @settings(max_examples=40, deadline=None)
    @given(stream=event_streams)
    def test_ppm_roundtrip_ideal(self, stream):
        train = ppm_modulate(stream, symbol_period_s=1e-5)
        rx = ppm_demodulate(train.pulse_times, stream.duration_s, 1e-5, 4)
        assert np.array_equal(rx.levels, stream.levels)

    @settings(max_examples=40, deadline=None)
    @given(stream=event_streams)
    def test_ook_pulse_count_formula(self, stream):
        """pulses = events + total popcount of levels."""
        train = ook_modulate(stream, symbol_period_s=1e-5)
        popcounts = sum(bin(int(l)).count("1") for l in stream.levels)
        assert train.n_pulses == stream.n_events + popcounts

    @settings(max_examples=40, deadline=None)
    @given(stream=event_streams)
    def test_symbol_count_invariant(self, stream):
        ook = ook_modulate(stream, symbol_period_s=1e-5)
        ppm = ppm_modulate(stream, symbol_period_s=1e-5)
        assert ook.n_symbols == ppm.n_symbols == 5 * stream.n_events


class TestPacketProperties:
    @settings(max_examples=40)
    @given(codes=st.lists(st.integers(0, 4095), min_size=1, max_size=64))
    def test_packetize_roundtrip(self, codes):
        fmt = PacketFormat()
        arr = np.asarray(codes, dtype=np.int64)
        decoded, errors = depacketize(packetize(arr, fmt), fmt)
        assert errors == 0
        assert np.array_equal(decoded[: arr.size], arr)

    @settings(max_examples=40)
    @given(
        bits=st.lists(st.integers(0, 1), min_size=8, max_size=64),
        flip=st.data(),
    )
    def test_crc_detects_any_single_flip(self, bits, flip):
        arr = np.asarray(bits, dtype=np.uint8)
        i = flip.draw(st.integers(0, arr.size - 1))
        flipped = arr.copy()
        flipped[i] ^= 1
        assert crc8(arr) != crc8(flipped)

    @settings(max_examples=30)
    @given(n=st.integers(0, 500))
    def test_total_bits_at_least_payload(self, n):
        fmt = PacketFormat()
        assert fmt.total_bits(n) >= n * fmt.adc_bits
