"""Property-based tests for the UWB link layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import EventStream
from repro.uwb.modulation import (
    _ook_demodulate_loop,
    _ppm_demodulate_loop,
    ook_demodulate,
    ook_modulate,
    ppm_demodulate,
    ppm_modulate,
)
from repro.uwb.packets import (
    PacketFormat,
    _crc8_bitwise,
    crc8,
    depacketize,
    packetize,
)


def _stream_from(draw_times, draw_levels, duration=10.0):
    times = np.unique(np.asarray(draw_times, dtype=float))
    # Enforce the burst-span separation required by the modulators.
    keep = np.concatenate([[True], np.diff(times) > 6e-5 * 10])
    times = times[keep]
    levels = np.asarray(draw_levels[: times.size], dtype=np.int64)
    if levels.size < times.size:
        times = times[: levels.size]
    return EventStream(
        times=times, duration_s=duration, levels=levels, symbols_per_event=5
    )


event_streams = st.builds(
    _stream_from,
    st.lists(st.floats(min_value=0.01, max_value=9.9), min_size=1, max_size=80),
    st.lists(st.integers(0, 15), min_size=80, max_size=80),
)


class TestModulationRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(stream=event_streams)
    def test_ook_roundtrip_ideal(self, stream):
        train = ook_modulate(stream, symbol_period_s=1e-5)
        rx = ook_demodulate(train.pulse_times, stream.duration_s, 1e-5, 4)
        assert rx.n_events == stream.n_events
        assert np.array_equal(rx.levels, stream.levels)

    @settings(max_examples=40, deadline=None)
    @given(stream=event_streams)
    def test_ppm_roundtrip_ideal(self, stream):
        train = ppm_modulate(stream, symbol_period_s=1e-5)
        rx = ppm_demodulate(train.pulse_times, stream.duration_s, 1e-5, 4)
        assert np.array_equal(rx.levels, stream.levels)

    @settings(max_examples=40, deadline=None)
    @given(stream=event_streams)
    def test_ook_pulse_count_formula(self, stream):
        """pulses = events + total popcount of levels."""
        train = ook_modulate(stream, symbol_period_s=1e-5)
        popcounts = sum(bin(int(l)).count("1") for l in stream.levels)
        assert train.n_pulses == stream.n_events + popcounts

    @settings(max_examples=40, deadline=None)
    @given(stream=event_streams)
    def test_symbol_count_invariant(self, stream):
        ook = ook_modulate(stream, symbol_period_s=1e-5)
        ppm = ppm_modulate(stream, symbol_period_s=1e-5)
        assert ook.n_symbols == ppm.n_symbols == 5 * stream.n_events


class TestVectorisedDemodulators:
    """The vectorised demodulators == the per-pulse reference loops,
    bit for bit, on *arbitrary* pulse trains — which subsumes erasures,
    jitter, spurious pulses and overlapping fake bursts."""

    @settings(max_examples=60, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=9.999), min_size=0, max_size=150
        ),
        bits=st.integers(0, 8),
        period=st.sampled_from([1e-5, 3.7e-5, 2e-4]),
    )
    def test_ook_vectorised_equals_loop(self, times, bits, period):
        pulses = np.sort(np.asarray(times, dtype=float))
        vec = ook_demodulate(pulses, 10.0, period, bits)
        loop = _ook_demodulate_loop(pulses, 10.0, period, bits)
        assert np.array_equal(vec.times, loop.times)
        assert (vec.levels is None) == (loop.levels is None)
        if vec.levels is not None:
            assert np.array_equal(vec.levels, loop.levels)

    @settings(max_examples=60, deadline=None)
    @given(
        times=st.lists(
            st.floats(min_value=0.0, max_value=9.999), min_size=0, max_size=150
        ),
        bits=st.integers(0, 8),
        period=st.sampled_from([1e-5, 3.7e-5, 2e-4]),
    )
    def test_ppm_vectorised_equals_loop(self, times, bits, period):
        pulses = np.sort(np.asarray(times, dtype=float))
        vec = ppm_demodulate(pulses, 10.0, period, bits)
        loop = _ppm_demodulate_loop(pulses, 10.0, period, bits)
        assert np.array_equal(vec.times, loop.times)
        if vec.levels is not None:
            assert np.array_equal(vec.levels, loop.levels)

    @settings(max_examples=30, deadline=None)
    @given(stream=event_streams, seed=st.integers(0, 2**32 - 1))
    def test_corrupted_train_equivalence(self, stream, seed):
        """Modulate, erase/jitter/inject, then demodulate both ways."""
        rng = np.random.default_rng(seed)
        train = ook_modulate(stream, symbol_period_s=1e-5)
        kept = train.pulse_times[rng.random(train.n_pulses) >= 0.3]
        kept = kept + 3e-6 * rng.standard_normal(kept.size)
        spurious = rng.uniform(0, stream.duration_s, rng.integers(0, 20))
        pulses = np.sort(
            np.clip(np.concatenate([kept, spurious]), 0, stream.duration_s)
        )
        vec = ook_demodulate(pulses, stream.duration_s, 1e-5, 4)
        loop = _ook_demodulate_loop(pulses, stream.duration_s, 1e-5, 4)
        assert np.array_equal(vec.times, loop.times)
        assert np.array_equal(vec.levels, loop.levels)


class TestAerSerialisation:
    @settings(max_examples=50, deadline=None)
    @given(
        raw=st.lists(st.integers(0, 1 << 14), min_size=1, max_size=80),
        spacing_num=st.integers(1, 64),
    )
    def test_arbiter_equals_sequential_queue(self, raw, spacing_num):
        """Closed-form serialisation == the last = max(t, last+s) loop.

        Dyadic inputs keep both forms exact in float64, so equality is
        bit-level.
        """
        from repro.uwb.aer import AERConfig, aer_encode

        times = np.sort(np.asarray(raw, dtype=float)) / 1024.0
        spacing = spacing_num / 1024.0
        duration = 17.0
        stream = EventStream(
            times=times,
            duration_s=duration,
            levels=np.zeros(times.size, dtype=np.int64),
            symbols_per_event=5,
        )
        merged = aer_encode(
            [stream], AERConfig(n_channels=1, level_bits=4), min_spacing_s=spacing
        )
        last = -np.inf
        expected = []
        for t in times:
            last = max(t, last + spacing)
            if last <= duration:
                expected.append(last)
        assert np.array_equal(merged.times, np.asarray(expected))


class TestPacketProperties:
    @settings(max_examples=40)
    @given(codes=st.lists(st.integers(0, 4095), min_size=1, max_size=64))
    def test_packetize_roundtrip(self, codes):
        fmt = PacketFormat()
        arr = np.asarray(codes, dtype=np.int64)
        decoded, errors, truncated = depacketize(packetize(arr, fmt), fmt)
        assert errors == 0
        assert truncated == 0
        assert np.array_equal(decoded[: arr.size], arr)

    @settings(max_examples=40)
    @given(
        codes=st.lists(st.integers(0, 4095), min_size=1, max_size=32),
        flip=st.data(),
    )
    def test_crc_protected_flip_drops_exactly_one_packet(self, codes, flip):
        """Any single flip in a packet's CRC-protected region (ID +
        payload + CRC field) drops that packet and only that packet."""
        fmt = PacketFormat()
        arr = np.asarray(codes, dtype=np.int64)
        bits = packetize(arr, fmt).copy()
        n_packets = fmt.n_packets(arr.size)
        packet = flip.draw(st.integers(0, n_packets - 1))
        offset = flip.draw(
            st.integers(fmt.header_bits + fmt.sfd_bits, fmt.packet_bits - 1)
        )
        bits[packet * fmt.packet_bits + offset] ^= 1
        decoded, errors, truncated = depacketize(bits, fmt)
        assert errors == 1
        assert truncated == 0
        assert decoded.size == (n_packets - 1) * fmt.samples_per_packet
        survivors = np.delete(
            np.pad(arr, (0, n_packets * fmt.samples_per_packet - arr.size))
            .reshape(n_packets, fmt.samples_per_packet),
            packet,
            axis=0,
        )
        assert np.array_equal(decoded, survivors.reshape(-1))

    @settings(max_examples=40)
    @given(
        bits=st.lists(st.integers(0, 1), min_size=0, max_size=80),
        poly=st.integers(1, 255),
        init=st.integers(0, 255),
    )
    def test_table_crc_equals_bit_serial(self, bits, poly, init):
        arr = np.asarray(bits, dtype=np.uint8)
        assert crc8(arr, poly, init) == _crc8_bitwise(arr, poly, init)

    @settings(max_examples=40)
    @given(
        bits=st.lists(st.integers(0, 1), min_size=8, max_size=64),
        flip=st.data(),
    )
    def test_crc_detects_any_single_flip(self, bits, flip):
        arr = np.asarray(bits, dtype=np.uint8)
        i = flip.draw(st.integers(0, arr.size - 1))
        flipped = arr.copy()
        flipped[i] ^= 1
        assert crc8(arr) != crc8(flipped)

    @settings(max_examples=30)
    @given(n=st.integers(0, 500))
    def test_total_bits_at_least_payload(self, n):
        fmt = PacketFormat()
        assert fmt.total_bits(n) >= n * fmt.adc_bits
