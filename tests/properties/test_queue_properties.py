"""Hypothesis fuzz of the experiment-queue lifecycle.

The driver interprets a random program of queue operations — claims by
competing workers, completions, failures, releases, clock advances past
lease expiry, reaps, and resets — against an in-memory jobs table with a
purely logical clock.  After any such program:

* **conservation** — the set of ``(spec_key, fingerprint)`` rows is
  exactly the submitted set: shards are never lost, never duplicated;
* **partition** — every row is in exactly one of the four statuses, and
  the per-status counts sum to the submitted total;
* **fencing** — a lease invalidated by expiry can never complete late;
* **drainability** — after the program, advancing the clock and running
  honest workers to quiescence leaves zero open/leased rows: every shard
  ends ``done`` (or ``error`` only if its attempts were exhausted, in
  which case ``reset`` + another drain finishes the job).

Both tests are parametrized over the sqlite backend and the remote
dispatch transport (an in-process dispatcher on a real loopback
socket), so every random program fuzzes the wire protocol too.
"""

import contextlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.dispatcher import DispatcherThread
from repro.runtime.queue import ExperimentQueue
from repro.runtime.transport import RemoteBackend

LEASE_S = 10.0
WORKERS = ("w0", "w1", "w2")


@pytest.fixture(params=["sqlite", "remote"])
def make_queue(request, tmp_path):
    """A factory building a fresh empty queue per Hypothesis example.

    The remote flavor keeps ONE dispatcher (socket + thread setup is
    too slow per-example) on an in-memory jobs table and resets it
    between examples by deleting every row — each example still starts
    from a blank queue, now reached through the real wire path.
    """
    if request.param == "sqlite":

        @contextlib.contextmanager
        def factory():
            with ExperimentQueue(":memory:") as queue:
                yield queue

        yield factory
        return

    with DispatcherThread(
        ":memory:", str(tmp_path / "dispatch-store")
    ) as dispatcher:

        @contextlib.contextmanager
        def factory():
            backend = dispatcher.server.backend
            with backend._lock:
                backend._conn.execute("DELETE FROM jobs")
            with ExperimentQueue(RemoteBackend(dispatcher.address)) as queue:
                yield queue

        yield factory

# One program step: (op, worker_index, payload)
ops = st.one_of(
    st.tuples(st.just("claim"), st.integers(0, 2), st.none()),
    st.tuples(st.just("complete"), st.integers(0, 2), st.none()),
    st.tuples(st.just("fail"), st.integers(0, 2), st.booleans()),
    st.tuples(st.just("release"), st.integers(0, 2), st.none()),
    st.tuples(st.just("tick"), st.integers(0, 2), st.floats(0.1, 5.0)),
    st.tuples(st.just("expire"), st.integers(0, 2), st.none()),
    st.tuples(st.just("reap"), st.integers(0, 2), st.none()),
    st.tuples(st.just("reset"), st.integers(0, 2), st.none()),
)


def drain(queue, clock, submitted):
    """Run honest workers (with clock jumps past any backoff) to quiescence."""
    for _ in range(10 * len(submitted) + 10):
        if queue.unfinished() == 0:
            break
        clock += LEASE_S + queue.backoff_cap_s * 2.0
        queue.reap(now=clock)
        job = queue.claim("drainer", lease_s=LEASE_S, now=clock)
        if job is not None:
            assert queue.complete(job, now=clock)
    return clock


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    n_jobs=st.integers(min_value=1, max_value=6),
    program=st.lists(ops, max_size=40),
)
def test_lifecycle_never_loses_or_duplicates_a_shard(
    make_queue, n_jobs, program
):
    submitted = {("spec", f"fp{i}") for i in range(n_jobs)}
    clock = 0.0
    held = {w: None for w in WORKERS}  # each worker's live Job, if any

    with make_queue() as queue:
        for i in range(n_jobs):
            assert queue.submit(
                "spec", f"fp{i}", {"s": i}, {"kind": "noop"},
                max_attempts=3, now=clock,
            )

        for op, widx, payload in program:
            worker = WORKERS[widx]
            job = held[worker]
            if op == "claim" and job is None:
                held[worker] = queue.claim(worker, lease_s=LEASE_S, now=clock)
            elif op == "complete" and job is not None:
                queue.complete(job, now=clock)
                held[worker] = None
            elif op == "fail" and job is not None:
                queue.fail(job, "boom", retryable=payload, now=clock)
                held[worker] = None
            elif op == "release" and job is not None:
                queue.release(job, now=clock)
                held[worker] = None
            elif op == "tick":
                clock += payload
            elif op == "expire":
                # Jump the clock past every live lease, then reap: any held
                # job is now stale, and its late transitions must be fenced.
                clock += LEASE_S + 0.1
                queue.reap(now=clock)
                for w, stale in held.items():
                    if stale is not None:
                        assert not queue.complete(stale, now=clock)
                        assert not queue.heartbeat(stale, now=clock)
                        held[w] = None
            elif op == "reap":
                queue.reap(now=clock)
            elif op == "reset":
                queue.reset(now=clock)

            # Invariants hold after EVERY step.
            rows = queue.rows()
            keys = [(r["spec_key"], r["fingerprint"]) for r in rows]
            assert set(keys) == submitted, "shard lost or invented"
            assert len(keys) == len(submitted), "shard duplicated"
            counts = queue.counts()
            assert sum(counts.values()) == len(submitted)
            assert all(v >= 0 for v in counts.values())
            assert queue.counts()["leased"] == len(
                [r for r in rows if r["worker_id"] is not None
                 and r["status"] == "leased"]
            )

        # Whatever the chaos did, the queue drains to fully done:
        # honest workers finish the open rows; reset revives quarantine.
        clock = drain(queue, clock, submitted)
        if queue.counts()["error"]:
            queue.reset(now=clock)
            drain(queue, clock, submitted)
        counts = queue.counts()
        assert counts["done"] == len(submitted)
        assert queue.unfinished() == 0


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(st.data())
def test_two_workers_never_hold_the_same_shard(make_queue, data):
    """Interleaved claims with expiries: at most one live lease per row."""
    clock = 0.0
    holders = {}  # fingerprint -> worker_id of the live lease
    with make_queue() as queue:
        for i in range(3):
            queue.submit("spec", f"fp{i}", {}, {"kind": "noop"}, now=clock)
        for _ in range(30):
            action = data.draw(
                st.sampled_from(["claim0", "claim1", "expire"])
            )
            if action == "expire":
                clock += LEASE_S + 1.0
                queue.reap(now=clock)
                holders.clear()
            else:
                worker = "w" + action[-1]
                job = queue.claim(worker, lease_s=LEASE_S, now=clock)
                if job is not None:
                    assert job.fingerprint not in holders, (
                        "row leased to two live workers"
                    )
                    holders[job.fingerprint] = worker
            leased = queue.rows("leased")
            assert len({r["fingerprint"] for r in leased}) == len(leased)
