"""Property-based tests for the digital substrate (RTL equivalence etc.)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.digital.dtc_rtl import DTCRtl
from repro.digital.fixed_point import FixedWeights
from repro.digital.primitives import Counter, ShiftRegister
from repro.digital.synchronizer import sample_at_clock


class TestFixedWeightsProperties:
    @given(
        n1=st.integers(0, 800),
        n2=st.integers(0, 800),
        n3=st.integers(0, 800),
    )
    def test_quantized_within_bound_of_float(self, n1, n2, n3):
        w = FixedWeights.from_floats()
        ideal = (1.0 * n3 + 0.65 * n2 + 0.35 * n1) / 2.0
        bound = w.max_error_vs((0.35, 0.65, 1.0), 800)
        assert abs(w.average(n1, n2, n3) - ideal) <= bound

    @given(n=st.integers(0, 1023))
    def test_equal_counts_identity(self, n):
        assert FixedWeights.from_floats().average(n, n, n) == n

    @given(
        n1=st.integers(0, 800),
        n2=st.integers(0, 800),
        n3=st.integers(0, 800),
    )
    def test_average_bounded_by_extremes(self, n1, n2, n3):
        w = FixedWeights.from_floats()
        avg = w.average(n1, n2, n3)
        assert min(n1, n2, n3) - 1 <= avg <= max(n1, n2, n3)


class TestPrimitivesProperties:
    @given(values=st.lists(st.integers(0, 1023), min_size=1, max_size=20))
    def test_shift_register_is_fifo(self, values):
        s = ShiftRegister(10, 3)
        for v in values:
            s.shift_in(v)
        expected = ([0, 0, 0] + values)[-3:]
        assert list(s.taps()) == expected

    @given(n=st.integers(1, 300))
    def test_counter_counts_exactly(self, n):
        c = Counter(10)
        for _ in range(n):
            c.tick()
        assert c.q == n % 1024


class TestSampleAtClockProperties:
    @settings(max_examples=40)
    @given(
        bits=st.lists(st.integers(0, 1), min_size=10, max_size=500),
        ratio=st.sampled_from([1.0, 1.25, 2.0, 2.5, 5.0]),
    )
    def test_output_is_subset_of_input_alphabet(self, bits, ratio):
        dense = np.asarray(bits, dtype=np.uint8)
        fs = 1000.0 * ratio
        out = sample_at_clock(dense, fs, 1000.0)
        assert out.size == int(np.floor(dense.size / fs * 1000.0))
        assert set(np.unique(out)).issubset({0, 1})

    @settings(max_examples=40)
    @given(bits=st.lists(st.integers(0, 1), min_size=1, max_size=300))
    def test_equal_rates_transparent(self, bits):
        dense = np.asarray(bits, dtype=np.uint8)
        assert np.array_equal(sample_at_clock(dense, 777.0, 777.0), dense)


class TestRtlEquivalenceProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        duty=st.floats(min_value=0.0, max_value=1.0),
        frame_selector=st.sampled_from([0, 1]),
    )
    def test_rtl_matches_behavioural_quantized(self, seed, duty, frame_selector):
        """For any random input stream, the cycle-accurate DTC and the
        quantised behavioural predictor choose identical levels."""
        from repro.core.config import DATCConfig
        from repro.core.predictor import ThresholdPredictor

        rng = np.random.default_rng(seed)
        config = DATCConfig(frame_selector=frame_selector, quantized=True)
        frame = config.frame_size
        n_frames = 5
        d_in = (rng.random(frame * n_frames) < duty).astype(np.uint8)

        dtc = DTCRtl(frame_selector=frame_selector, initial_level=config.initial_level)
        out = dtc.run(d_in)

        predictor = ThresholdPredictor(config)
        expected_levels = []
        for f in range(n_frames):
            count = int(d_in[f * frame : (f + 1) * frame].sum())
            expected_levels.append(predictor.update(count))
        assert out["frame_levels"].tolist() == expected_levels
