"""Property-based tests for the hardware cost and RTL-generation layer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DATCConfig
from repro.digital.dtc_rtl import DTCRtl
from repro.hardware.cells import hv180_library
from repro.hardware.netlist import build_dtc_netlist
from repro.hardware.power import ActivityProfile, estimate_power
from repro.hardware.verilog import generate_dtc_verilog
from repro.hardware.verilog_sim import simulate_dtc_verilog

_LIB = hv180_library()
_NETLIST = build_dtc_netlist()


def _dac_config(bits: int) -> DATCConfig:
    n = 1 << bits
    return DATCConfig(
        dac_bits=bits, n_levels=n, interval_step=0.48 / n, initial_level=n // 2
    )


class TestNetlistProperties:
    @given(bits=st.integers(2, 8))
    @settings(max_examples=7, deadline=None)
    def test_cells_monotone_in_dac_bits(self, bits):
        smaller = build_dtc_netlist(_dac_config(bits))
        larger = build_dtc_netlist(_dac_config(bits + 1))
        assert larger.n_cells > smaller.n_cells

    @given(bits=st.integers(2, 9))
    @settings(max_examples=8, deadline=None)
    def test_blocks_always_cover_instances(self, bits):
        nl = build_dtc_netlist(_dac_config(bits))
        assert sum(nl.blocks.values()) == nl.n_cells
        assert nl.n_ports == 12


class TestPowerProperties:
    @given(
        ff=st.floats(0.0, 1.0),
        comb=st.floats(0.0, 1.0),
        clock=st.floats(100.0, 1e6),
    )
    @settings(max_examples=30)
    def test_power_positive_and_additive(self, ff, comb, clock):
        report = estimate_power(
            _NETLIST, _LIB, clock_hz=clock,
            activity=ActivityProfile(ff_activity=ff, comb_activity=comb),
        )
        assert report.dynamic_nw >= 0
        assert report.total_nw >= report.dynamic_nw

    @given(ff=st.floats(0.0, 0.5), delta=st.floats(0.01, 0.5))
    @settings(max_examples=20)
    def test_power_monotone_in_activity(self, ff, delta):
        lo = estimate_power(
            _NETLIST, _LIB, activity=ActivityProfile(ff_activity=ff, comb_activity=ff)
        )
        hi = estimate_power(
            _NETLIST,
            _LIB,
            activity=ActivityProfile(ff_activity=ff + delta, comb_activity=ff + delta),
        )
        assert hi.dynamic_nw > lo.dynamic_nw

    @given(vdd=st.floats(0.5, 3.0))
    @settings(max_examples=15)
    def test_voltage_scaling_quadratic(self, vdd):
        base = estimate_power(_NETLIST, _LIB)
        scaled = estimate_power(_NETLIST, _LIB.scaled(vdd))
        ratio = (vdd / _LIB.vdd_v) ** 2
        assert scaled.dynamic_nw == pytest.approx(base.dynamic_nw * ratio, rel=1e-6)



class TestVerilogSimProperty:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), duty=st.floats(0.0, 1.0))
    def test_emitted_rtl_equivalent_for_any_input(self, seed, duty):
        """Property form of the generator-equivalence check: for ANY input
        stream the emitted Verilog (executed) matches the cycle-accurate
        model driven with the documented one-cycle delay."""
        rng = np.random.default_rng(seed)
        d_in = (rng.random(100 * 4) < duty).astype(np.uint8)
        text = generate_dtc_verilog()
        sim = simulate_dtc_verilog(text, d_in)
        delayed = np.concatenate([[0], d_in[:-1]]).astype(np.uint8)
        reference = DTCRtl().run(delayed)
        assert np.array_equal(sim["set_vth"], reference["set_vth"])
