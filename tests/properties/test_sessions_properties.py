"""Property tests: SessionBatch == scalar streaming for any interleaving.

The satellite contract of the multi-session runtime: for *random*
interleavings of ``create`` / ``push_many`` / ``finalize`` / ``leave``
across a :class:`~repro.runtime.sessions.SessionBatch` — including empty
chunks, sessions joining mid-run, and slot reuse after leave — every
session's event stream and decoded envelope is bit-identical to a scalar
``StreamingEncoder``/``StreamingDecoder`` pair fed the same chunks.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ATCConfig, DATCConfig
from repro.core.encoders import ATCEncoder, DATCEncoder
from repro.runtime.sessions import SessionBatch, SessionSpec
from repro.rx.decoders import StreamingDecoder

FS = 2500.0

# Short frames so a few hundred samples span many frames; one quantized
# flavour and one ATC flavour exercise heterogeneous sub-batches.
SPEC_POOL = (
    SessionSpec(scheme="datc", fs=FS, config=DATCConfig(frame_sizes=(8, 16, 32, 64))),
    SessionSpec(
        scheme="datc",
        fs=FS,
        config=DATCConfig(frame_sizes=(8, 16, 32, 64), quantized=True),
    ),
    SessionSpec(scheme="atc", fs=FS, config=ATCConfig(vth=0.25)),
)


def scalar_reference(spec, chunks):
    encoder_cls = ATCEncoder if spec.scheme == "atc" else DATCEncoder
    enc = encoder_cls(spec.fs, spec.config, rectify=spec.rectify)
    dec = StreamingDecoder(
        scheme=spec.scheme,
        config=spec.config,
        fs_out=spec.fs_out,
        window_s=spec.window_s,
    )
    for c in chunks:
        dec.push(enc.push(c))
    enc.finalize()
    dec.push(enc.drain())
    dec.finalize()
    return enc.stream, dec.envelope


def make_session(rng):
    """A random session: spec, signal, and a chunking with empties."""
    spec = SPEC_POOL[int(rng.integers(0, len(SPEC_POOL)))]
    n = int(rng.integers(40, 500))
    signal = rng.normal(0.0, 0.4, size=n)
    cuts = np.sort(rng.integers(0, n + 1, size=int(rng.integers(0, 7))))
    bounds = [0, *cuts.tolist(), n]
    chunks = [signal[a:b] for a, b in zip(bounds[:-1], bounds[1:])]
    return {"spec": spec, "chunks": chunks, "next": 0}


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    n_initial=st.integers(min_value=1, max_value=3),
    n_late=st.integers(min_value=0, max_value=3),
)
def test_random_interleavings_bit_identical(seed, n_initial, n_late):
    rng = np.random.default_rng(seed)
    batch = SessionBatch()
    live = {}
    checked = 0

    def admit():
        sess = make_session(rng)
        live[batch.create(sess["spec"])] = sess

    for _ in range(n_initial):
        admit()
    pending_joins = n_late
    while live or pending_joins:
        if pending_joins and (not live or rng.random() < 0.3):
            pending_joins -= 1
            admit()  # joins mid-run, possibly into a reused slot
        # A random subset of live sessions advances this round; sessions
        # not drawn simply idle (their state must be untouched).
        push = {}
        for sid, sess in live.items():
            if sess["next"] < len(sess["chunks"]) and rng.random() < 0.7:
                push[sid] = sess["chunks"][sess["next"]]
                sess["next"] += 1
        if push:
            batch.push_many(push)
        done = [
            sid
            for sid, sess in live.items()
            if sess["next"] >= len(sess["chunks"])
        ]
        for sid in done:
            sess = live.pop(sid)
            result = batch.finalize(sid)
            stream, envelope = scalar_reference(sess["spec"], sess["chunks"])
            assert np.array_equal(result.stream.times, stream.times)
            if stream.levels is None:
                assert result.stream.levels is None
            else:
                assert np.array_equal(result.stream.levels, stream.levels)
            assert result.stream.duration_s == stream.duration_s
            assert np.array_equal(result.envelope, envelope)
            checked += 1
            if rng.random() < 0.6:
                batch.leave(sid)  # frees the slot for a later join
    assert checked == n_initial + n_late
