"""Property suite for the declarative spec tree and the result store.

Invariants (the satellite contract of the API redesign):

* ``to_dict``/``from_dict`` round-trips every representable spec exactly,
  through real JSON text included;
* ``key()`` is a pure function of spec content — equal specs hash equal,
  and the hash survives serialisation;
* ``replace()``/``replace_at()`` with unchanged values is key-invariant,
  and substituting a fresh value then restoring the original returns to
  the original key;
* the store round-trips arbitrary float64/int64 payloads bit-exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    DecoderSpec,
    EncoderSpec,
    ExperimentSpec,
    LinkSpec,
)
from repro.core.config import ATCConfig, DATCConfig
from repro.runtime.store import ResultStore, fingerprint_value
from repro.uwb.link import LinkConfig

finite = st.floats(
    min_value=1e-3, max_value=1e3, allow_nan=False, allow_infinity=False
)


@st.composite
def atc_configs(draw) -> ATCConfig:
    return ATCConfig(
        vth=draw(st.floats(min_value=0.0, max_value=2.0, allow_nan=False)),
        clock_hz=draw(finite),
        symbols_per_event=draw(st.integers(min_value=1, max_value=8)),
    )


@st.composite
def datc_configs(draw) -> DATCConfig:
    dac_bits = draw(st.integers(min_value=2, max_value=6))
    n_levels = 1 << dac_bits
    weights = tuple(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
                min_size=3,
                max_size=3,
            )
        )
    )
    return DATCConfig(
        frame_selector=draw(st.integers(min_value=0, max_value=3)),
        dac_bits=dac_bits,
        n_levels=n_levels,
        vref=draw(finite),
        weights=weights,
        interval_step=draw(
            st.floats(min_value=1e-4, max_value=0.5, allow_nan=False)
        ),
        min_level=draw(st.integers(min_value=0, max_value=1)),
        initial_level=draw(st.integers(min_value=1, max_value=n_levels - 1)),
        quantized=draw(st.booleans()),
    )


@st.composite
def encoder_specs(draw) -> EncoderSpec:
    if draw(st.booleans()):
        return EncoderSpec("atc", draw(atc_configs()))
    return EncoderSpec("datc", draw(datc_configs()))


@st.composite
def link_specs(draw) -> "LinkSpec | None":
    if draw(st.booleans()):
        return None
    return LinkSpec(
        LinkConfig(
            symbol_period_s=draw(
                st.floats(min_value=1e-6, max_value=1e-3, allow_nan=False)
            ),
            pulse_energy_pj=draw(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
            ),
            modulation=draw(st.sampled_from(["ook", "ppm"])),
        )
    )


@st.composite
def experiment_specs(draw) -> ExperimentSpec:
    return ExperimentSpec(
        encoder=draw(encoder_specs()),
        link=draw(link_specs()),
        decoder=DecoderSpec(
            fs_out=draw(finite),
            window_s=draw(finite),
            dac_bits=draw(
                st.one_of(st.none(), st.integers(min_value=1, max_value=8))
            ),
        ),
    )


class TestSpecProperties:
    @given(spec=experiment_specs())
    @settings(max_examples=60, deadline=None)
    def test_dict_round_trip_exact(self, spec):
        rebuilt = ExperimentSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.key() == spec.key()

    @given(spec=experiment_specs())
    @settings(max_examples=60, deadline=None)
    def test_json_round_trip_exact(self, spec):
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    @given(spec=experiment_specs())
    @settings(max_examples=60, deadline=None)
    def test_key_stable_and_content_derived(self, spec):
        key = spec.key()
        assert key == spec.key()  # deterministic
        assert len(key) == 64
        # A structurally equal spec built from the serialised form shares it.
        assert ExperimentSpec.from_json(spec.to_json()).key() == key

    @given(spec=experiment_specs())
    @settings(max_examples=60, deadline=None)
    def test_replace_invariance(self, spec):
        assert spec.replace() == spec
        assert spec.replace().key() == spec.key()
        # Re-substituting the current values is also key-invariant.
        same = spec.replace_at("decoder.fs_out", spec.decoder.fs_out)
        assert same.key() == spec.key()
        same = spec.replace_at("encoder.config", spec.encoder.config)
        assert same.key() == spec.key()

    @given(spec=experiment_specs(), fs_out=finite)
    @settings(max_examples=60, deadline=None)
    def test_replace_then_restore_returns_to_key(self, spec, fs_out):
        changed = spec.replace_at("decoder.fs_out", fs_out)
        restored = changed.replace_at("decoder.fs_out", spec.decoder.fs_out)
        assert restored.key() == spec.key()
        if fs_out != spec.decoder.fs_out:
            assert changed.key() != spec.key()

    @given(a=experiment_specs(), b=experiment_specs())
    @settings(max_examples=60, deadline=None)
    def test_key_equality_tracks_spec_equality(self, a, b):
        if a == b:
            assert a.key() == b.key()
        else:
            assert a.key() != b.key()

    @given(spec=experiment_specs())
    @settings(max_examples=30, deadline=None)
    def test_fingerprint_value_accepts_spec_dicts(self, spec):
        assert fingerprint_value(spec.to_dict()) == fingerprint_value(
            spec.to_dict()
        )


class TestStoreProperties:
    @given(
        corr=st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=64),
            min_size=1,
            max_size=32,
        ),
        events=st.lists(
            st.integers(min_value=0, max_value=2**40), min_size=1, max_size=32
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_round_trip_bit_exact(self, tmp_path_factory, corr, events):
        store = ResultStore(tmp_path_factory.mktemp("store"))
        payload = {
            "corr": np.array(corr, dtype=np.float64),
            "events": np.array(events, dtype=np.int64),
        }
        store.put("spec", "fp", payload)
        got = store.get("spec", "fp")
        assert np.array_equal(got["corr"], payload["corr"])
        assert got["corr"].dtype == np.float64
        assert np.array_equal(got["events"], payload["events"])
