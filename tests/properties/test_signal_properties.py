"""Property-based tests for the signal substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signals.envelope import moving_average, rectify
from repro.signals.force import ramp_profile, smooth_profile, trapezoid_profile

finite_arrays = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=200,
).map(lambda v: np.asarray(v, dtype=float))


class TestMovingAverageProperties:
    @settings(max_examples=60)
    @given(x=finite_arrays, window=st.integers(1, 50))
    def test_bounded_by_extremes(self, x, window):
        avg = moving_average(x, window)
        assert np.all(avg >= x.min() - 1e-9)
        assert np.all(avg <= x.max() + 1e-9)

    @settings(max_examples=60)
    @given(x=finite_arrays)
    def test_window_one_identity(self, x):
        assert np.allclose(moving_average(x, 1), x)

    @settings(max_examples=60)
    @given(x=finite_arrays, window=st.integers(1, 50), scale=st.floats(0.1, 10.0))
    def test_linearity(self, x, window, scale):
        a = moving_average(scale * x, window)
        b = scale * moving_average(x, window)
        assert np.allclose(a, b, rtol=1e-9, atol=1e-6)


class TestRectifyProperties:
    @given(x=finite_arrays)
    def test_non_negative_and_even(self, x):
        r = rectify(x)
        assert np.all(r >= 0)
        assert np.array_equal(r, rectify(-x))


class TestForceProfileProperties:
    @settings(max_examples=40)
    @given(
        start=st.floats(0.0, 1.0),
        end=st.floats(0.0, 1.0),
        duration=st.floats(0.01, 5.0),
    )
    def test_ramp_within_bounds(self, start, end, duration):
        p = ramp_profile(duration, 500.0, start, end)
        lo, hi = min(start, end), max(start, end)
        assert np.all(p >= lo - 1e-12)
        assert np.all(p <= hi + 1e-12)

    @settings(max_examples=40)
    @given(
        rise=st.floats(0.01, 0.5),
        hold=st.floats(0.01, 0.5),
        fall=st.floats(0.01, 0.5),
        level=st.floats(0.0, 1.0),
    )
    def test_trapezoid_peak_is_level(self, rise, hold, fall, level):
        p = trapezoid_profile(rise, hold, fall, 500.0, level)
        assert p.max() <= level + 1e-12
        assert p.max() >= level - 1e-6 or level == 0.0

    @settings(max_examples=40)
    @given(
        levels=st.lists(st.floats(0.0, 1.0), min_size=2, max_size=10),
        cutoff=st.floats(0.5, 10.0),
    )
    def test_smooth_stays_in_unit_interval(self, levels, cutoff):
        from repro.signals.force import staircase_profile

        p = staircase_profile(levels, 0.2, 500.0)
        s = smooth_profile(p, 500.0, cutoff_hz=cutoff)
        assert np.all(s >= 0.0)
        assert np.all(s <= 1.0)
