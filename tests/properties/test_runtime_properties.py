"""Property-based tests for the sweep runtime + async ingestion.

Two invariants lock the new subsystem down:

* For any grid, shard size, and backend, sharded execution is
  element-wise identical to the serial loop — both at the ``map_jobs``
  level and through a real sweep (threshold grid, dataset shards).
* For any chunking of the input signal — including empty and
  single-sample chunks — :class:`repro.runtime.ingest.AsyncStreamingPipeline`
  produces an envelope bit-identical to the one-shot
  ``encode -> reconstruct`` path.
"""

import asyncio
import operator
from functools import partial

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sweeps import atc_threshold_sweep, dataset_sweep
from repro.core.atc import atc_encode
from repro.core.config import ATCConfig, DATCConfig
from repro.core.datc import datc_encode
from repro.runtime.executors import map_jobs, plan_shards
from repro.runtime.ingest import AsyncStreamingPipeline
from repro.rx.reconstruction import reconstruct_hybrid, reconstruct_rate
from repro.signals.dataset import DatasetSpec

FS = 2500.0

# Short D-ATC operating point so a few hundred samples span many frames.
SMALL_DATC = DATCConfig(frame_sizes=(8, 16, 32, 64))

ADD_SEVEN = partial(operator.add, 7)  # importable in spawned workers

# Tiny shared corpus for the sweep-level invariants (generated once).
_SWEEP_DATASET = DatasetSpec(n_patterns=5, duration_s=2.0, seed=2015)
_SWEEP_PATTERN = _SWEEP_DATASET.pattern(2)


class TestShardedExecutionMatchesSerial:
    @settings(max_examples=25, deadline=None)
    @given(
        items=st.lists(st.integers(-1000, 1000), max_size=30),
        backend=st.sampled_from(["serial", "thread", "process"]),
        jobs=st.integers(min_value=1, max_value=3),
        shard_size=st.one_of(st.none(), st.integers(1, 8)),
    )
    def test_map_jobs(self, items, backend, jobs, shard_size):
        expected = [7 + x for x in items]
        got = map_jobs(
            ADD_SEVEN, items, jobs, backend=backend, shard_size=shard_size
        )
        assert got == expected

    @settings(max_examples=100, deadline=None)
    @given(
        n=st.integers(0, 200),
        jobs=st.integers(1, 8),
        shard_size=st.one_of(st.none(), st.integers(1, 50)),
    )
    def test_plan_shards_partitions_in_order(self, n, jobs, shard_size):
        shards = plan_shards(n, jobs, shard_size)
        assert [i for s in shards for i in range(s.start, s.stop)] == list(
            range(n)
        )

    @settings(max_examples=8, deadline=None)
    @given(
        vths=st.lists(
            st.sampled_from([0.05, 0.1, 0.2, 0.3, 0.45, 0.6]),
            min_size=1,
            max_size=5,
        ),
        backend=st.sampled_from(["thread", "process"]),
        jobs=st.integers(2, 3),
    )
    def test_threshold_sweep_backend_invariant(self, vths, backend, jobs):
        serial = atc_threshold_sweep(_SWEEP_PATTERN, vths)
        sharded = atc_threshold_sweep(
            _SWEEP_PATTERN, vths, jobs=jobs, backend=backend
        )
        assert sharded == serial  # frozen dataclasses: exact float equality

    @settings(max_examples=8, deadline=None)
    @given(
        limit=st.integers(1, 5),
        backend=st.sampled_from(["thread", "process"]),
        jobs=st.integers(2, 3),
        shard_size=st.one_of(st.none(), st.integers(1, 4)),
    )
    def test_dataset_sweep_shard_invariant(self, limit, backend, jobs, shard_size):
        serial = dataset_sweep(_SWEEP_DATASET, "datc", limit=limit)
        sharded = dataset_sweep(
            _SWEEP_DATASET,
            "datc",
            limit=limit,
            jobs=jobs,
            backend=backend,
            shard_size=shard_size,
        )
        assert np.array_equal(serial.pattern_ids, sharded.pattern_ids)
        assert np.array_equal(serial.correlations_pct, sharded.correlations_pct)
        assert np.array_equal(serial.n_events, sharded.n_events)


@st.composite
def signal_and_chunking(draw):
    """A random signal plus a random partition of it into chunks.

    Duplicate cut points produce *empty* chunks; adjacent cut points
    produce single-sample chunks — both are part of the contract.  The
    signal always spans at least one 100 Hz output bin (25 samples at
    2500 Hz): below that the one-shot decoder itself rejects the stream.
    """
    n = draw(st.integers(min_value=30, max_value=600))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    signal = rng.normal(0.0, 0.4, size=n)
    cuts = draw(
        st.lists(st.integers(min_value=0, max_value=n), max_size=8).map(sorted)
    )
    bounds = [0] + list(cuts) + [n]
    chunks = [signal[a:b] for a, b in zip(bounds[:-1], bounds[1:])]
    return signal, chunks


class TestAsyncPipelineBitIdentical:
    @settings(max_examples=40, deadline=None)
    @given(data=signal_and_chunking())
    def test_datc(self, data):
        signal, chunks = data
        stream, _ = datc_encode(signal, FS, SMALL_DATC)
        expected = reconstruct_hybrid(
            stream,
            fs_out=100.0,
            vref=SMALL_DATC.vref,
            dac_bits=SMALL_DATC.dac_bits,
            smooth_window_s=0.25,
        )
        pipe = AsyncStreamingPipeline(FS, "datc", SMALL_DATC)
        envelope = asyncio.run(pipe.run(chunks))
        assert np.array_equal(envelope, expected)
        assert np.array_equal(pipe.envelope, expected)

    @settings(max_examples=40, deadline=None)
    @given(data=signal_and_chunking())
    def test_atc(self, data):
        signal, chunks = data
        stream, _ = atc_encode(signal, FS, ATCConfig(vth=0.3))
        expected = reconstruct_rate(stream, fs_out=100.0, window_s=0.25)
        pipe = AsyncStreamingPipeline(FS, "atc", ATCConfig(vth=0.3))
        envelope = asyncio.run(pipe.run(chunks))
        assert np.array_equal(envelope, expected)

    def test_single_sample_chunks(self):
        signal = np.random.default_rng(3).normal(0.0, 0.4, size=400)
        stream, _ = datc_encode(signal, FS, SMALL_DATC)
        expected = reconstruct_hybrid(
            stream,
            fs_out=100.0,
            vref=SMALL_DATC.vref,
            dac_bits=SMALL_DATC.dac_bits,
            smooth_window_s=0.25,
        )
        pipe = AsyncStreamingPipeline(FS, "datc", SMALL_DATC)
        envelope = asyncio.run(pipe.run([signal[i : i + 1] for i in range(400)]))
        assert np.array_equal(envelope, expected)

    def test_interleaved_empty_chunks(self):
        signal = np.random.default_rng(4).normal(0.0, 0.4, size=300)
        empty = signal[:0]
        chunks = [empty, signal[:150], empty, empty, signal[150:], empty]
        stream, _ = atc_encode(signal, FS, ATCConfig())
        expected = reconstruct_rate(stream, fs_out=100.0, window_s=0.25)
        pipe = AsyncStreamingPipeline(FS, "atc", ATCConfig())
        assert np.array_equal(asyncio.run(pipe.run(chunks)), expected)
