"""Tests for MVC force calibration."""

import numpy as np
import pytest

from repro.rx.calibration import (
    ForceCalibration,
    calibrate_mvc,
    rmse_mvc,
    tracking_report,
)

FS = 100.0


class TestCalibrateMvc:
    def test_explicit_window(self):
        env = np.concatenate([np.full(100, 0.1), np.full(100, 0.8), np.full(100, 0.2)])
        cal = calibrate_mvc(env, FS, window=(1.0, 2.0))
        assert cal.mvc_value == pytest.approx(0.8)
        assert cal.window == (1.0, 2.0)

    def test_auto_window_finds_peak_second(self):
        env = np.concatenate([np.full(150, 0.1), np.full(100, 0.9), np.full(150, 0.3)])
        cal = calibrate_mvc(env, FS, mvc_duration_s=1.0)
        assert cal.mvc_value == pytest.approx(0.9)
        assert 1.5 <= cal.window[0] <= 1.51

    def test_auto_window_shorter_than_duration(self):
        env = np.full(50, 0.4)  # 0.5 s of envelope, 1 s window requested
        cal = calibrate_mvc(env, FS)
        assert cal.mvc_value == pytest.approx(0.4)

    def test_apply_normalises(self):
        cal = ForceCalibration(mvc_value=0.5, window=(0.0, 1.0))
        out = cal.apply(np.array([0.0, 0.25, 0.5, 1.0]))
        assert np.allclose(out, [0.0, 0.5, 1.0, 1.5])  # ceiling at 1.5

    def test_zero_mvc_rejected(self):
        with pytest.raises(ValueError):
            ForceCalibration(mvc_value=0.0, window=(0.0, 1.0))

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            calibrate_mvc(np.ones(100), FS, window=(0.5, 2.0))

    def test_empty_envelope_rejected(self):
        with pytest.raises(ValueError):
            calibrate_mvc(np.zeros(0), FS)

    def test_end_to_end_on_pattern(self, mid_pattern):
        """Calibrating on the reconstructed envelope yields %MVC estimates
        with usable absolute error against the true force."""
        from repro.core.datc import datc_encode
        from repro.rx.correlation import resample_to_length
        from repro.rx.reconstruction import reconstruct_hybrid

        stream, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        env = reconstruct_hybrid(stream, fs_out=100.0)
        # Ground-truth force, resampled to the envelope grid, scaled to the
        # peak contraction of this recording.
        truth = resample_to_length(mid_pattern.force, env.size)
        cal = calibrate_mvc(env, 100.0)
        estimate = cal.apply(env) * truth.max()
        report = tracking_report(estimate, truth)
        assert report["rmse_mvc"] < 0.15


class TestMetrics:
    def test_rmse_known_value(self):
        a = np.array([0.0, 1.0])
        b = np.array([0.0, 0.0])
        assert rmse_mvc(a, b) == pytest.approx(np.sqrt(0.5))

    def test_perfect_tracking(self):
        x = np.linspace(0, 1, 50)
        report = tracking_report(x, x)
        assert report["rmse_mvc"] == 0.0
        assert report["peak_error_mvc"] == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rmse_mvc(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            tracking_report(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse_mvc(np.zeros(0), np.zeros(0))
