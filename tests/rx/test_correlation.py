"""Tests for the correlation metric."""

import numpy as np
import pytest

from repro.rx.correlation import (
    aligned_correlation_percent,
    correlation_percent,
    pearson_r,
    resample_to_length,
)


class TestPearsonR:
    def test_perfect_correlation(self):
        x = np.arange(10.0)
        assert pearson_r(x, 2 * x + 5) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        x = np.arange(10.0)
        assert pearson_r(x, -x) == pytest.approx(-1.0)

    def test_scale_and_offset_invariant(self, rng):
        x = rng.standard_normal(500)
        assert pearson_r(x, 3.7 * x - 2.0) == pytest.approx(1.0)

    def test_constant_input_returns_zero(self):
        assert pearson_r(np.ones(10), np.arange(10.0)) == 0.0
        assert pearson_r(np.arange(10.0), np.zeros(10)) == 0.0

    def test_independent_noise_near_zero(self, rng):
        a = rng.standard_normal(20_000)
        b = rng.standard_normal(20_000)
        assert abs(pearson_r(a, b)) < 0.03

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pearson_r(np.zeros(3), np.zeros(4))

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            pearson_r(np.zeros(1), np.zeros(1))

    def test_clipped_to_unit_range(self, rng):
        x = rng.standard_normal(100)
        assert -1.0 <= pearson_r(x, x) <= 1.0


class TestCorrelationPercent:
    def test_percent_scale(self):
        x = np.arange(100.0)
        assert correlation_percent(x, x) == pytest.approx(100.0)


class TestResample:
    def test_identity_when_lengths_match(self):
        x = np.arange(5.0)
        assert np.array_equal(resample_to_length(x, 5), x)

    def test_upsample_preserves_endpoints(self):
        x = np.array([0.0, 1.0])
        up = resample_to_length(x, 11)
        assert up[0] == 0.0 and up[-1] == 1.0
        assert np.allclose(np.diff(up), 0.1)

    def test_downsample_preserves_endpoints(self):
        x = np.linspace(0, 1, 101)
        down = resample_to_length(x, 11)
        assert down[0] == 0.0 and down[-1] == 1.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            resample_to_length(np.zeros(0), 5)
        with pytest.raises(ValueError):
            resample_to_length(np.zeros(5), 0)


class TestAlignedCorrelation:
    def test_same_signal_different_rates(self):
        """A reconstruction on a coarser grid must still score ~100%
        against the dense reference."""
        t_dense = np.linspace(0, 1, 2000)
        ref = np.sin(2 * np.pi * 2 * t_dense) + 2
        t_coarse = np.linspace(0, 1, 100)
        recon = np.sin(2 * np.pi * 2 * t_coarse) + 2
        assert aligned_correlation_percent(recon, ref) > 99.5
