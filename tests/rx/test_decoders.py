"""Tests for the batched + streaming receiver engine (repro.rx.decoders)."""

import numpy as np
import pytest

from repro.core.atc import atc_encode
from repro.core.config import ATCConfig, DATCConfig
from repro.core.datc import datc_encode
from repro.core.events import EventStream
from repro.rx.correlation import (
    aligned_correlation_percent,
    aligned_correlation_percent_batch,
    pearson_batch,
    pearson_r,
    resample_rows_to_length,
    resample_to_length,
)
from repro.rx.decoders import (
    StreamingDecoder,
    binned_counts_batch,
    event_rate_batch,
    level_zoh_batch,
    reconstruct_batch,
    stream_chunks,
)
from repro.rx.reconstruction import level_zoh, reconstruct_hybrid, reconstruct_rate
from repro.rx.windowing import binned_counts, event_rate


@pytest.fixture(scope="module")
def datc_streams(small_dataset):
    return [
        datc_encode(small_dataset.pattern(i).emg, small_dataset.pattern(i).fs)[0]
        for i in range(4)
    ]


@pytest.fixture(scope="module")
def atc_streams(small_dataset):
    return [
        atc_encode(
            small_dataset.pattern(i).emg,
            small_dataset.pattern(i).fs,
            ATCConfig(vth=0.3),
        )[0]
        for i in range(4)
    ]


def chunked_decode(stream, scheme, n_chunks, rng, **kwargs):
    """Run a StreamingDecoder over random time slices of ``stream``."""
    cuts = np.sort(rng.uniform(0.0, stream.duration_s, size=n_chunks - 1))
    bounds = np.concatenate([cuts, [stream.duration_s]])
    decoder = StreamingDecoder(scheme=scheme, **kwargs)
    parts = [decoder.push(c) for c in stream_chunks(stream, bounds)]
    parts.append(decoder.finalize())
    return decoder, np.concatenate(parts)


class TestBatchedDecoders:
    def test_binned_counts_matches_per_stream(self, datc_streams):
        batch = binned_counts_batch(datc_streams, 100.0)
        for row, stream in zip(batch, datc_streams):
            assert np.array_equal(row, binned_counts(stream, 100.0))

    def test_event_rate_matches_per_stream(self, atc_streams):
        batch = event_rate_batch(atc_streams, 100.0, window_s=0.25)
        for row, stream in zip(batch, atc_streams):
            assert np.array_equal(row, event_rate(stream, 100.0, window_s=0.25))

    def test_level_zoh_matches_per_stream(self, datc_streams):
        batch = level_zoh_batch(datc_streams)
        for row, stream in zip(batch, datc_streams):
            assert np.array_equal(row, level_zoh(stream))

    def test_reconstruct_hybrid_matches_per_stream(self, datc_streams):
        batch = reconstruct_batch(datc_streams, "datc")
        for row, stream in zip(batch, datc_streams):
            assert np.array_equal(row, reconstruct_hybrid(stream))

    def test_reconstruct_rate_matches_per_stream(self, atc_streams):
        batch = reconstruct_batch(atc_streams, "atc")
        for row, stream in zip(batch, atc_streams):
            assert np.array_equal(row, reconstruct_rate(stream))

    def test_exact_edge_times(self):
        """Events on bin edges follow np.histogram's assignment exactly."""
        fs_out = 10.0
        edges = np.arange(21) / fs_out
        times = np.sort(np.concatenate([edges, edges[:-1] + 0.049]))
        stream = EventStream(times=times, duration_s=2.0)
        assert np.array_equal(
            binned_counts_batch([stream], fs_out)[0],
            binned_counts(stream, fs_out),
        )

    def test_empty_rows(self):
        empty = EventStream(
            times=np.zeros(0), duration_s=5.0,
            levels=np.zeros(0, dtype=np.int64),
        )
        busy = EventStream(
            times=np.array([1.0, 2.5]), duration_s=5.0, levels=np.array([4, 9])
        )
        for combo in ([empty, busy], [busy, empty], [empty, empty]):
            batch = reconstruct_batch(combo, "datc")
            for row, stream in zip(batch, combo):
                assert np.array_equal(row, reconstruct_hybrid(stream))

    def test_zero_duration_batch(self):
        empty = EventStream(times=np.zeros(0), duration_s=0.0)
        assert binned_counts_batch([empty, empty], 100.0).shape == (2, 0)
        assert reconstruct_batch([empty], "atc").shape == (1, 0)

    def test_mismatched_durations_rejected(self):
        a = EventStream(times=np.zeros(0), duration_s=5.0)
        b = EventStream(times=np.zeros(0), duration_s=4.0)
        with pytest.raises(ValueError, match="duration"):
            binned_counts_batch([a, b], 100.0)

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            reconstruct_batch([], "atc")

    def test_invalid_scheme_rejected(self, atc_streams):
        with pytest.raises(ValueError, match="scheme"):
            reconstruct_batch(atc_streams, "adc")

    def test_per_row_dac_bits_match_per_stream(self, datc_streams):
        """Heterogeneous decode configs in one batched call: each row at
        its own (vref, dac_bits) must equal the per-stream decoder."""
        bits = [2, 3, 4, 6]
        vrefs = [1.0, 0.8, 1.0, 1.2]
        batch = level_zoh_batch(datc_streams, 100.0, vref=vrefs, dac_bits=bits)
        for row, stream, v, b in zip(batch, datc_streams, vrefs, bits):
            assert np.array_equal(
                row, level_zoh(stream, 100.0, vref=v, dac_bits=b)
            )

    def test_per_row_reconstruct_matches_per_stream(self, datc_streams):
        bits = np.array([2, 3, 4, 6])
        batch = reconstruct_batch(
            datc_streams, "datc", None, dac_bits=bits, vref=1.0
        )
        for row, stream, b in zip(batch, datc_streams, bits):
            assert np.array_equal(
                row, reconstruct_hybrid(stream, dac_bits=int(b))
            )

    def test_per_row_override_scalar_equivalent(self, datc_streams):
        """A scalar override equals the same value broadcast per row."""
        scalar = reconstruct_batch(datc_streams, "datc", None, dac_bits=3)
        broadcast = reconstruct_batch(
            datc_streams, "datc", None, dac_bits=[3] * len(datc_streams)
        )
        assert np.array_equal(scalar, broadcast)

    def test_per_row_length_mismatch_rejected(self, datc_streams):
        with pytest.raises(ValueError, match="per stream"):
            level_zoh_batch(datc_streams, 100.0, dac_bits=[4, 4])

    def test_invalid_rate_weight_rejected(self, datc_streams):
        with pytest.raises(ValueError, match="rate_weight"):
            reconstruct_batch(datc_streams, "datc", rate_weight=1.5)


class TestBatchedScoring:
    def test_pearson_matches_scalar(self, rng):
        a = rng.normal(size=(5, 400))
        b = rng.normal(size=(5, 400))
        batch = pearson_batch(a, b)
        for i in range(5):
            assert batch[i] == pearson_r(a[i], b[i])

    def test_constant_rows_score_zero(self, rng):
        a = np.ones((3, 50))
        b = rng.normal(size=(3, 50))
        assert np.array_equal(pearson_batch(a, b), np.zeros(3))

    def test_pearson_shape_checks(self, rng):
        with pytest.raises(ValueError):
            pearson_batch(rng.normal(size=10), rng.normal(size=10))
        with pytest.raises(ValueError):
            pearson_batch(rng.normal(size=(2, 5)), rng.normal(size=(3, 5)))
        with pytest.raises(ValueError):
            pearson_batch(np.zeros((2, 1)), np.zeros((2, 1)))

    @pytest.mark.parametrize("m,n_out", [(40, 400), (400, 40), (40, 40), (1, 7)])
    def test_resample_rows_matches_scalar(self, rng, m, n_out):
        x = rng.normal(size=(4, m))
        batch = resample_rows_to_length(x, n_out)
        for i in range(4):
            assert np.array_equal(batch[i], resample_to_length(x[i], n_out))

    def test_aligned_correlation_matches_scalar(self, datc_streams, small_dataset):
        recons = reconstruct_batch(datc_streams, "datc")
        refs = np.stack(
            [small_dataset.pattern(i).ground_truth_envelope() for i in range(4)]
        )
        batch = aligned_correlation_percent_batch(recons, refs)
        for i in range(4):
            assert batch[i] == aligned_correlation_percent(recons[i], refs[i])


class TestStreamingDecoder:
    def test_chunked_equals_one_shot_datc(self, datc_streams, rng):
        for stream in datc_streams:
            decoder, envelope = chunked_decode(stream, "datc", 7, rng)
            assert np.array_equal(envelope, reconstruct_hybrid(stream))
            assert np.array_equal(decoder.envelope, envelope)

    def test_chunked_equals_one_shot_atc(self, atc_streams, rng):
        for stream in atc_streams:
            decoder, envelope = chunked_decode(stream, "atc", 7, rng)
            assert np.array_equal(envelope, reconstruct_rate(stream))

    def test_stream_chunks_partition(self, datc_streams):
        """The shared chunker partitions events exactly once, in order."""
        stream = datc_streams[0]
        chunks = stream_chunks(stream, [1.0, 1.0, 2.5, stream.duration_s])
        assert [c.duration_s for c in chunks] == [1.0, 1.0, 2.5, stream.duration_s]
        times = np.concatenate([c.times for c in chunks])
        levels = np.concatenate([c.levels for c in chunks])
        assert np.array_equal(times, stream.times)
        assert np.array_equal(levels, stream.levels)

    def test_stream_chunks_bad_bounds_rejected(self, datc_streams):
        with pytest.raises(ValueError, match="bounds"):
            stream_chunks(datc_streams[0], [1.0])
        with pytest.raises(ValueError, match="bounds"):
            stream_chunks(datc_streams[0], [])

    def test_event_on_youngest_edge_stays_open(self):
        """An event exactly on the grid's youngest edge is pending — it may
        fold back into the last bin via the final grid's right-closed rule,
        so that bin must not be emitted early (regression)."""
        stream = EventStream(
            times=np.array([0.005, 0.03, 0.06, 0.10]), duration_s=0.103
        )
        one_shot = reconstruct_rate(stream, fs_out=100.0, window_s=0.05)
        decoder = StreamingDecoder(scheme="atc", window_s=0.05)
        parts = [
            decoder.push(
                EventStream(times=np.array([0.005, 0.03]), duration_s=0.05)
            ),
            decoder.push(
                EventStream(times=np.array([0.06, 0.10]), duration_s=0.103)
            ),
            decoder.finalize(),
        ]
        assert np.array_equal(np.concatenate(parts), one_shot)

    def test_atc_emits_eagerly(self):
        """Rate decoding streams: most samples arrive before finalize()."""
        stream = EventStream(
            times=np.arange(0.005, 9.95, 0.01), duration_s=10.0
        )
        decoder = StreamingDecoder(scheme="atc")
        emitted = decoder.push(stream).size
        tail = decoder.finalize().size
        assert emitted > 0
        assert emitted > tail

    def test_state_accounting(self, datc_streams):
        stream = datc_streams[0]
        decoder = StreamingDecoder(scheme="datc")
        decoder.push(stream)
        assert decoder.n_events == stream.n_events
        assert decoder.duration_s == stream.duration_s
        assert decoder.n_bins == int(stream.duration_s * 100.0)
        assert not decoder.finalized
        decoder.finalize()
        assert decoder.finalized

    def test_empty_decode(self):
        decoder = StreamingDecoder(scheme="atc")
        assert decoder.push(EventStream(times=np.zeros(0), duration_s=0.0)).size == 0
        assert decoder.finalize().size == 0
        assert decoder.envelope.size == 0

    def test_push_after_finalize_rejected(self):
        decoder = StreamingDecoder()
        decoder.finalize()
        with pytest.raises(RuntimeError):
            decoder.push(EventStream(times=np.zeros(0), duration_s=1.0))
        with pytest.raises(RuntimeError):
            decoder.finalize()

    def test_shrinking_duration_rejected(self):
        decoder = StreamingDecoder()
        decoder.push(EventStream(times=np.zeros(0), duration_s=2.0))
        with pytest.raises(ValueError, match="backwards"):
            decoder.push(EventStream(times=np.zeros(0), duration_s=1.0))

    def test_out_of_order_events_rejected(self):
        decoder = StreamingDecoder(scheme="atc")
        decoder.push(EventStream(times=np.array([1.5]), duration_s=2.0))
        with pytest.raises(ValueError, match="non-decreasing"):
            decoder.push(EventStream(times=np.array([0.5]), duration_s=3.0))

    def test_datc_needs_levels(self):
        decoder = StreamingDecoder(scheme="datc")
        with pytest.raises(ValueError, match="level"):
            decoder.push(EventStream(times=np.array([0.5]), duration_s=1.0))

    def test_too_short_for_grid_raises_at_finalize(self):
        decoder = StreamingDecoder(scheme="atc")
        decoder.push(EventStream(times=np.array([0.001]), duration_s=0.005))
        with pytest.raises(ValueError, match="too short"):
            decoder.finalize()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            StreamingDecoder(scheme="adc")
        with pytest.raises(ValueError):
            StreamingDecoder(fs_out=0.0)
        with pytest.raises(ValueError):
            StreamingDecoder(window_s=0.0)
        with pytest.raises(ValueError):
            StreamingDecoder(rate_weight=-0.1)

    @pytest.mark.parametrize("cut", [None, 5100])
    def test_live_encoder_decoder_pair(self, mid_pattern, cut):
        """StreamingEncoder chunks feed straight into StreamingDecoder.

        ``cut=5100`` stops mid-contraction with the clocked length a
        non-multiple of the frame size: the trailing partial frame then
        fires events inside ``finalize()``, which ``drain()`` must
        deliver to the decoder (regression).
        """
        from repro.core.encoders import DATCEncoder

        emg = mid_pattern.emg[:cut]
        encoder = DATCEncoder(mid_pattern.fs)
        decoder = StreamingDecoder(scheme="datc")
        for chunk in np.array_split(emg, 40):
            decoder.push(encoder.push(chunk))
        encoder.finalize()
        decoder.push(encoder.drain())
        decoder.finalize()
        assert np.array_equal(
            decoder.envelope, reconstruct_hybrid(encoder.stream)
        )
        assert encoder.drain().n_events == 0  # nothing left outstanding
