"""Tests for event-rate windowing."""

import numpy as np
import pytest

from repro.core.events import EventStream
from repro.rx.windowing import binned_counts, event_rate, exponential_rate


def make_stream(times, duration=10.0):
    return EventStream(times=np.asarray(times, dtype=float), duration_s=duration)


class TestBinnedCounts:
    def test_total_preserved(self, rng):
        times = np.sort(rng.uniform(0, 10, 333))
        counts = binned_counts(make_stream(times), fs_out=50.0)
        assert counts.sum() == 333

    def test_length(self):
        counts = binned_counts(make_stream([1.0]), fs_out=100.0)
        assert counts.size == 1000

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            binned_counts(make_stream([1.0]), fs_out=0.0)

    def test_too_short_duration(self):
        s = EventStream(times=np.array([0.001]), duration_s=0.005)
        with pytest.raises(ValueError):
            binned_counts(s, fs_out=100.0)


class TestEventRate:
    def test_uniform_train_rate(self):
        """A 50 Hz regular train must estimate ~50 Hz away from edges."""
        times = np.arange(0.01, 10.0, 0.02)
        rate = event_rate(make_stream(times), fs_out=100.0, window_s=0.5)
        interior = rate[100:-100]
        assert np.allclose(interior, 50.0, rtol=0.05)

    def test_rate_steps_with_density(self):
        times = np.concatenate([np.arange(0.01, 5.0, 0.1), np.arange(5.0, 10.0, 0.01)])
        rate = event_rate(make_stream(times), fs_out=100.0, window_s=0.2)
        assert rate[700:900].mean() > 5 * rate[100:300].mean()

    def test_empty_stream_zero_rate(self):
        rate = event_rate(make_stream([]), fs_out=100.0)
        assert np.all(rate == 0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            event_rate(make_stream([1.0]), 100.0, window_s=0.0)


class TestExponentialRate:
    def test_converges_to_true_rate(self):
        times = np.arange(0.01, 10.0, 0.02)  # 50 Hz
        rate = exponential_rate(make_stream(times), fs_out=100.0, tau_s=0.2)
        assert rate[-200:].mean() == pytest.approx(50.0, rel=0.1)

    def test_causal_startup_from_zero(self):
        times = np.arange(0.01, 10.0, 0.02)
        rate = exponential_rate(make_stream(times), fs_out=100.0, tau_s=1.0)
        assert rate[0] < rate[-1]

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            exponential_rate(make_stream([1.0]), 100.0, tau_s=0.0)
