"""Tests for event-rate windowing."""

import numpy as np
import pytest

from repro.core.events import EventStream
from repro.rx.windowing import (
    binned_counts,
    event_rate,
    exponential_rate,
    grid_centers,
    grid_edges,
    stream_bins,
)


def make_stream(times, duration=10.0):
    return EventStream(times=np.asarray(times, dtype=float), duration_s=duration)


class TestBinnedCounts:
    def test_total_preserved(self, rng):
        times = np.sort(rng.uniform(0, 10, 333))
        counts = binned_counts(make_stream(times), fs_out=50.0)
        assert counts.sum() == 333

    def test_length(self):
        counts = binned_counts(make_stream([1.0]), fs_out=100.0)
        assert counts.size == 1000

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            binned_counts(make_stream([1.0]), fs_out=0.0)

    def test_too_short_duration(self):
        s = EventStream(times=np.array([0.001]), duration_s=0.005)
        with pytest.raises(ValueError):
            binned_counts(s, fs_out=100.0)


class TestEventRate:
    def test_uniform_train_rate(self):
        """A 50 Hz regular train must estimate ~50 Hz away from edges."""
        times = np.arange(0.01, 10.0, 0.02)
        rate = event_rate(make_stream(times), fs_out=100.0, window_s=0.5)
        interior = rate[100:-100]
        assert np.allclose(interior, 50.0, rtol=0.05)

    def test_rate_steps_with_density(self):
        times = np.concatenate([np.arange(0.01, 5.0, 0.1), np.arange(5.0, 10.0, 0.01)])
        rate = event_rate(make_stream(times), fs_out=100.0, window_s=0.2)
        assert rate[700:900].mean() > 5 * rate[100:300].mean()

    def test_empty_stream_zero_rate(self):
        rate = event_rate(make_stream([]), fs_out=100.0)
        assert np.all(rate == 0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            event_rate(make_stream([1.0]), 100.0, window_s=0.0)


class TestOutputGrid:
    """The shared grid helpers every reconstructor (and the batched
    engine) builds on."""

    def test_bin_count(self):
        s = make_stream([1.0], duration=10.0)
        assert stream_bins(s, 100.0) == 1000
        assert stream_bins(s, 7.5) == 75

    def test_edges_and_centers(self):
        assert np.array_equal(grid_edges(4, 2.0), [0.0, 0.5, 1.0, 1.5, 2.0])
        assert np.array_equal(grid_centers(4, 2.0), [0.25, 0.75, 1.25, 1.75])

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            stream_bins(make_stream([1.0]), 0.0)

    def test_zero_duration_empty_stream_is_legal(self):
        """Incremental encoders emit zero-duration empty streams before
        their first whole clock period; the receiver returns empty arrays
        rather than raising."""
        s = EventStream(times=np.zeros(0), duration_s=0.0)
        assert stream_bins(s, 100.0) == 0
        assert binned_counts(s, 100.0).size == 0
        assert event_rate(s, 100.0).size == 0
        assert exponential_rate(s, 100.0).size == 0

    def test_short_empty_stream_is_legal(self):
        s = EventStream(times=np.zeros(0), duration_s=0.005)
        assert binned_counts(s, 100.0).size == 0

    def test_events_without_bins_still_raise(self):
        s = EventStream(times=np.array([0.001]), duration_s=0.005)
        with pytest.raises(ValueError, match="too short"):
            stream_bins(s, 100.0)


class TestExponentialRate:
    def test_converges_to_true_rate(self):
        times = np.arange(0.01, 10.0, 0.02)  # 50 Hz
        rate = exponential_rate(make_stream(times), fs_out=100.0, tau_s=0.2)
        assert rate[-200:].mean() == pytest.approx(50.0, rel=0.1)

    def test_causal_startup_from_zero(self):
        times = np.arange(0.01, 10.0, 0.02)
        rate = exponential_rate(make_stream(times), fs_out=100.0, tau_s=1.0)
        assert rate[0] < rate[-1]

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            exponential_rate(make_stream([1.0]), 100.0, tau_s=0.0)

    def test_matches_sequential_recurrence(self, rng):
        """The vectorised log-scan tracks the per-sample loop to 1e-12."""
        times = np.sort(rng.uniform(0, 10, 500))
        stream = make_stream(times)
        got = exponential_rate(stream, 100.0, tau_s=0.25)
        counts = binned_counts(stream, 100.0).astype(float)
        alpha = 1.0 - np.exp(-1.0 / (0.25 * 100.0))
        acc, ref = 0.0, np.empty_like(counts)
        for i, c in enumerate(counts):
            acc += alpha * (c - acc)
            ref[i] = acc
        ref *= 100.0
        assert np.max(np.abs(got - ref)) / np.max(np.abs(ref)) < 1e-12
