"""Edge cases of the receiver chain: empty, sparse, and degenerate streams."""

import numpy as np
import pytest

from repro.core.events import EventStream
from repro.rx.reconstruction import (
    reconstruct_hybrid,
    reconstruct_levels,
    reconstruct_rate,
)
from repro.rx.windowing import event_rate


def empty_stream(with_levels=True):
    return EventStream(
        times=np.zeros(0),
        duration_s=5.0,
        levels=np.zeros(0, dtype=np.int64) if with_levels else None,
        symbols_per_event=5 if with_levels else 1,
    )


def single_event_stream():
    return EventStream(
        times=np.array([2.5]),
        duration_s=5.0,
        levels=np.array([8]),
        symbols_per_event=5,
    )


class TestEmptyStreams:
    """A silent channel (subject at rest, or a dead link) must produce a
    flat-zero reconstruction everywhere, never an exception."""

    def test_rate_decoder(self):
        assert np.all(reconstruct_rate(empty_stream(False)) == 0.0)

    def test_level_decoder(self):
        assert np.all(reconstruct_levels(empty_stream()) == 0.0)

    def test_hybrid_decoder(self):
        assert np.all(reconstruct_hybrid(empty_stream()) == 0.0)

    def test_event_rate(self):
        assert np.all(event_rate(empty_stream(False), 100.0) == 0.0)


class TestSingleEvent:
    def test_hybrid_is_finite_and_localised(self):
        recon = reconstruct_hybrid(single_event_stream(), fs_out=100.0)
        assert np.all(np.isfinite(recon))
        assert recon.max() > 0
        # The estimate is concentrated around the event, decaying after it.
        peak_t = np.argmax(recon) / 100.0
        assert 2.0 <= peak_t <= 3.6

    def test_level_decoder_holds_then_decays(self):
        recon = reconstruct_levels(
            single_event_stream(), fs_out=100.0, silence_timeout_s=0.2
        )
        assert recon[260] > recon[480]  # decayed near the end


class TestDegenerateLevels:
    def test_all_zero_levels(self):
        """Level 0 is never produced by the DTC (floor is 1) but the
        decoders must not divide by it anyway."""
        stream = EventStream(
            times=np.array([1.0, 2.0]),
            duration_s=5.0,
            levels=np.array([0, 0]),
            symbols_per_event=5,
        )
        recon = reconstruct_hybrid(stream)
        assert np.all(recon == 0.0)

    def test_constant_max_levels(self):
        stream = EventStream(
            times=np.linspace(0.1, 4.9, 50),
            duration_s=5.0,
            levels=np.full(50, 15),
            symbols_per_event=5,
        )
        recon = reconstruct_levels(stream, fs_out=100.0)
        interior = recon[50:-30]
        assert np.all(interior > 0.8)  # ~15/16 V held throughout
