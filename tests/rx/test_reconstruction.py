"""Tests for receiver-side envelope reconstruction."""

import numpy as np
import pytest

from repro.core.datc import datc_encode
from repro.core.events import EventStream
from repro.rx.correlation import aligned_correlation_percent
from repro.rx.reconstruction import (
    level_zoh,
    reconstruct_hybrid,
    reconstruct_levels,
    reconstruct_rate,
)


def level_stream(times, levels, duration=10.0):
    return EventStream(
        times=np.asarray(times, dtype=float),
        duration_s=duration,
        levels=np.asarray(levels, dtype=np.int64),
        symbols_per_event=5,
    )


class TestLevelZoh:
    def test_holds_last_level(self):
        s = level_stream([1.0, 5.0], [4, 8])
        z = level_zoh(s, fs_out=10.0, silence_timeout_s=100.0)
        # Between 1 s and 5 s: level 4 -> 0.25 V; after 5 s: 0.5 V.
        assert z[25] == pytest.approx(4 / 16)
        assert z[75] == pytest.approx(8 / 16)

    def test_zero_before_first_event(self):
        s = level_stream([5.0], [8])
        z = level_zoh(s, fs_out=10.0)
        assert np.all(z[:49] == 0.0)

    def test_silence_decay(self):
        s = level_stream([1.0], [15], duration=20.0)
        z = level_zoh(s, fs_out=10.0, silence_timeout_s=0.5, decay_tau_s=0.5)
        assert z[12] == pytest.approx(15 / 16)      # inside hold window
        assert z[-1] < 0.01                          # decayed long after

    def test_empty_stream_zero(self):
        s = EventStream(
            times=np.zeros(0), duration_s=10.0,
            levels=np.zeros(0, dtype=np.int64), symbols_per_event=5,
        )
        assert np.all(level_zoh(s) == 0.0)


class TestReconstructors:
    def test_rate_reconstruction_positive(self, mid_pattern):
        stream, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        r = reconstruct_rate(stream)
        assert np.all(r >= 0)

    def test_levels_reconstruction_tracks_envelope(self, mid_pattern):
        stream, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        recon = reconstruct_levels(stream)
        ref = mid_pattern.ground_truth_envelope()
        assert aligned_correlation_percent(recon, ref) > 85.0

    def test_hybrid_beats_or_matches_components(self, mid_pattern):
        """The hybrid decoder must not be worse than both of its parts."""
        stream, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        ref = mid_pattern.ground_truth_envelope()
        c_level = aligned_correlation_percent(reconstruct_levels(stream), ref)
        c_rate = aligned_correlation_percent(reconstruct_rate(stream), ref)
        c_hybrid = aligned_correlation_percent(reconstruct_hybrid(stream), ref)
        assert c_hybrid >= min(c_level, c_rate) - 1.0
        assert c_hybrid > 90.0

    def test_hybrid_rate_weight_zero_matches_levels(self, mid_pattern):
        stream, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        a = reconstruct_hybrid(stream, rate_weight=0.0)
        b = reconstruct_levels(stream)
        assert np.allclose(a, b)

    def test_invalid_rate_weight(self, mid_pattern):
        stream, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        with pytest.raises(ValueError):
            reconstruct_hybrid(stream, rate_weight=1.5)

    def test_robust_to_event_loss(self, mid_pattern, rng):
        """Dropping 10% of events must barely dent the correlation — the
        paper's artifact-robustness argument."""
        stream, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        ref = mid_pattern.ground_truth_envelope()
        full = aligned_correlation_percent(reconstruct_hybrid(stream), ref)
        keep = rng.random(stream.n_events) >= 0.1
        degraded = aligned_correlation_percent(
            reconstruct_hybrid(stream.drop_events(keep)), ref
        )
        assert degraded > full - 3.0
