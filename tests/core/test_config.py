"""Tests for ATC / D-ATC configuration objects."""

import pytest

from repro.core.config import PAPER_CLOCK_HZ, ATCConfig, DATCConfig


class TestATCConfig:
    def test_paper_defaults(self):
        c = ATCConfig()
        assert c.vth == 0.3
        assert c.clock_hz == 2000.0
        assert c.symbols_per_event == 1

    @pytest.mark.parametrize(
        "kwargs",
        [{"vth": -0.1}, {"clock_hz": 0.0}, {"symbols_per_event": 0}],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ATCConfig(**kwargs)


class TestDATCConfigDefaults:
    def test_paper_operating_point(self):
        c = DATCConfig()
        assert c.clock_hz == PAPER_CLOCK_HZ == 2000.0
        assert c.frame_sizes == (100, 200, 400, 800)
        assert c.frame_size == 100
        assert c.dac_bits == 4
        assert c.vref == 1.0
        assert c.weights == (0.35, 0.65, 1.0)
        assert c.weight_divisor == 2.0
        assert c.interval_step == 0.03
        assert c.n_levels == 16
        assert c.min_level == 1

    def test_symbols_per_event_derived(self):
        """D-ATC transmits event marker + 4-bit level = 5 symbols."""
        assert DATCConfig().symbols_per_event == 5
        assert DATCConfig(dac_bits=6, n_levels=64, initial_level=32).symbols_per_event == 7

    def test_explicit_symbols_per_event_kept(self):
        assert DATCConfig(symbols_per_event=3).symbols_per_event == 3

    def test_frame_duration(self):
        assert DATCConfig(frame_selector=0).frame_duration_s == pytest.approx(0.05)
        assert DATCConfig(frame_selector=3).frame_duration_s == pytest.approx(0.4)

    def test_lsb(self):
        assert DATCConfig().lsb_v == pytest.approx(1.0 / 16.0)


class TestDATCConfigEquation3:
    def test_level_to_voltage(self):
        c = DATCConfig()
        assert c.level_to_voltage(0) == 0.0
        assert c.level_to_voltage(8) == pytest.approx(0.5)
        assert c.level_to_voltage(15) == pytest.approx(0.9375)

    def test_custom_vref(self):
        c = DATCConfig(vref=2.0)
        assert c.level_to_voltage(8) == pytest.approx(1.0)


class TestDATCConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"frame_selector": 4},
            {"frame_selector": -1},
            {"frame_sizes": ()},
            {"frame_sizes": (0, 100)},
            {"clock_hz": 0.0},
            {"dac_bits": 0},
            {"vref": 0.0},
            {"weights": (1.0, 1.0)},
            {"weights": (-0.1, 0.65, 1.0)},
            {"weight_divisor": 0.0},
            {"interval_step": 0.0},
            {"n_levels": 8},  # mismatch with dac_bits=4
            {"min_level": 16},
            {"initial_level": 16},
            {"initial_level": 0},  # below min_level=1
            {"symbols_per_event": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DATCConfig(**kwargs)

    def test_frozen(self):
        c = DATCConfig()
        with pytest.raises(AttributeError):
            c.dac_bits = 8

    def test_fixed_weights_accessor(self):
        w = DATCConfig().fixed_weights()
        assert (w.w1, w.w2, w.w3) == (90, 166, 256)
