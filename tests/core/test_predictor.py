"""Tests for the threshold predictor (Listing 1 / Eqn. 1)."""

import pytest

from repro.core.config import DATCConfig
from repro.core.intervals import interval_levels_float, select_level
from repro.core.predictor import ThresholdPredictor


class TestSelectLevel:
    def test_listing1_floor_is_one(self):
        levels = interval_levels_float(100)
        assert select_level(0.0, levels) == 1
        assert select_level(5.0, levels) == 1  # below interval_level_2 = 9

    def test_top_level(self):
        levels = interval_levels_float(100)
        assert select_level(48.0, levels) == 15
        assert select_level(100.0, levels) == 15

    def test_boundary_inclusive(self):
        """Listing 1 uses >=, so hitting a level exactly selects it."""
        levels = interval_levels_float(100)
        assert select_level(9.0, levels) == 2
        assert select_level(8.999, levels) == 1

    def test_monotone_in_avr(self):
        levels = interval_levels_float(100)
        selections = [select_level(a, levels) for a in range(0, 60)]
        assert selections == sorted(selections)

    def test_custom_min_level(self):
        levels = interval_levels_float(100)
        assert select_level(0.0, levels, min_level=0) == 0

    def test_invalid_min_level(self):
        levels = interval_levels_float(100)
        with pytest.raises(ValueError):
            select_level(0.0, levels, min_level=16)


class TestPredictorFloat:
    def test_initial_state(self):
        p = ThresholdPredictor(DATCConfig(initial_level=8))
        assert p.level == 8
        assert p.vth == pytest.approx(0.5)
        assert p.history == (0, 0)

    def test_average_weighted_formula(self):
        """AVR = (1*N3 + 0.65*N2 + 0.35*N1) / 2 (paper Listing 1)."""
        p = ThresholdPredictor(DATCConfig())
        p.update(40)  # history becomes (0, 40)
        p.update(60)  # history becomes (40, 60)
        expected = (1.0 * 20 + 0.65 * 60 + 0.35 * 40) / 2.0
        assert p.average(20) == pytest.approx(expected)

    def test_update_shifts_history(self):
        p = ThresholdPredictor(DATCConfig())
        p.update(10)
        assert p.history == (0, 10)
        p.update(20)
        assert p.history == (10, 20)
        p.update(30)
        assert p.history == (20, 30)

    def test_update_returns_new_level(self):
        p = ThresholdPredictor(DATCConfig())
        # Three saturated frames: AVR = 100 >= 48 -> level 15.
        for _ in range(3):
            level = p.update(100)
        assert level == 15
        assert p.level == 15

    def test_quiet_input_floors_at_min_level(self):
        p = ThresholdPredictor(DATCConfig())
        for _ in range(3):
            p.update(0)
        assert p.level == 1

    def test_count_out_of_range_rejected(self):
        p = ThresholdPredictor(DATCConfig())
        with pytest.raises(ValueError):
            p.average(101)
        with pytest.raises(ValueError):
            p.average(-1)

    def test_reset(self):
        p = ThresholdPredictor(DATCConfig(initial_level=8))
        p.update(50)
        p.reset()
        assert p.level == 8
        assert p.history == (0, 0)


class TestPredictorQuantized:
    def test_matches_float_on_equal_counts(self):
        """Equal counts: both arithmetics give the count exactly."""
        pf = ThresholdPredictor(DATCConfig(quantized=False))
        pq = ThresholdPredictor(DATCConfig(quantized=True))
        for _ in range(3):
            lf = pf.update(37)
            lq = pq.update(37)
        assert lf == lq

    def test_quantized_average_is_integer(self):
        p = ThresholdPredictor(DATCConfig(quantized=True))
        p.update(13)
        avr = p.average(29)
        assert avr == int(avr)

    def test_levels_close_to_float_everywhere(self):
        """Q8 rounding can shift the level by at most one step, and only
        right at an interval boundary."""
        pf = ThresholdPredictor(DATCConfig(quantized=False))
        pq = ThresholdPredictor(DATCConfig(quantized=True))
        import numpy as np

        rng = np.random.default_rng(11)
        diffs = []
        for _ in range(200):
            n = int(rng.integers(0, 101))
            diffs.append(abs(pf.update(n) - pq.update(n)))
        assert max(diffs) <= 1


class TestSteadyState:
    @pytest.mark.parametrize(
        "duty,expected",
        [
            (0.0, 1),
            (0.05, 1),   # below interval_level_2 = 0.09
            (0.09, 2),
            (0.25, 7),   # 25 >= 24 (level 7)
            (0.48, 15),
            (1.0, 15),
        ],
    )
    def test_fixed_point_of_duty(self, duty, expected):
        p = ThresholdPredictor(DATCConfig())
        assert p.steady_state_level(duty) == expected

    def test_steady_state_matches_repeated_updates(self):
        p = ThresholdPredictor(DATCConfig())
        duty = 0.3
        count = int(duty * p.config.frame_size)
        for _ in range(5):
            p.update(count)
        assert p.level == p.steady_state_level(duty)

    def test_invalid_duty(self):
        p = ThresholdPredictor(DATCConfig())
        with pytest.raises(ValueError):
            p.steady_state_level(1.5)
