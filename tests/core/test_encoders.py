"""Tests for the streaming/batched encoder engine (repro.core.encoders)."""

import numpy as np
import pytest

from repro.analog.comparator import Comparator
from repro.core.atc import atc_encode
from repro.core.config import ATCConfig, DATCConfig
from repro.core.datc import datc_encode
from repro.core.encoders import (
    ATCEncoder,
    DATCEncoder,
    atc_encode_batch,
    datc_encode_batch,
    encode_batch,
)
from repro.digital.synchronizer import clock_sample_indices, n_whole_clocks


def chunked(x, sizes):
    """Split ``x`` into chunks cycling through ``sizes``."""
    out, i, s = [], 0, 0
    while i < x.size:
        n = sizes[s % len(sizes)]
        s += 1
        out.append(x[i : i + n])
        i += n
    return out


def assert_datc_equal(one_shot, streamed):
    (s1, t1), (s2, t2) = one_shot, streamed
    assert np.array_equal(s1.times, s2.times)
    assert np.array_equal(s1.levels, s2.levels)
    assert s1.duration_s == s2.duration_s
    assert s1.symbols_per_event == s2.symbols_per_event
    assert np.array_equal(t1.d_in, t2.d_in)
    assert np.array_equal(t1.levels, t2.levels)
    assert np.array_equal(t1.vth, t2.vth)
    assert np.array_equal(t1.frame_levels, t2.frame_levels)
    assert np.array_equal(t1.frame_ones, t2.frame_ones)
    assert np.array_equal(t1.frame_avr, t2.frame_avr)


class TestATCStreaming:
    @pytest.mark.parametrize(
        "sizes", [[1], [7], [1000], [100_000], [3, 0, 250, 1, 999]]
    )
    def test_chunked_matches_one_shot(self, mid_pattern, sizes):
        stream, trace = atc_encode(mid_pattern.emg, mid_pattern.fs)
        enc = ATCEncoder(mid_pattern.fs)
        for c in chunked(mid_pattern.emg, sizes):
            enc.push(c)
        trace2 = enc.finalize()
        assert np.array_equal(stream.times, enc.stream.times)
        assert stream.duration_s == enc.stream.duration_s
        assert np.array_equal(trace.d_in, trace2.d_in)
        assert trace.vth == trace2.vth

    def test_incremental_events_cover_the_one_shot_stream(self, mid_pattern):
        stream, _ = atc_encode(mid_pattern.emg, mid_pattern.fs)
        enc = ATCEncoder(mid_pattern.fs)
        parts = [enc.push(c) for c in chunked(mid_pattern.emg, [777])]
        enc.finalize()
        times = np.concatenate([p.times for p in parts])
        assert np.array_equal(times, stream.times)

    def test_hysteresis_comparator_state_carried(self, mid_pattern):
        comp = Comparator(hysteresis_v=0.05)
        stream, trace = atc_encode(mid_pattern.emg, mid_pattern.fs, comparator=comp)
        enc = ATCEncoder(mid_pattern.fs, comparator=comp)
        for c in chunked(mid_pattern.emg, [313]):
            enc.push(c)
        trace2 = enc.finalize()
        assert np.array_equal(stream.times, enc.stream.times)
        assert np.array_equal(trace.d_in, trace2.d_in)

    def test_noisy_comparator_chunked_matches_one_shot(self, mid_pattern):
        comp = Comparator(noise_rms_v=0.02)
        stream, _ = atc_encode(
            mid_pattern.emg,
            mid_pattern.fs,
            comparator=comp,
            rng=np.random.default_rng(7),
        )
        enc = ATCEncoder(
            mid_pattern.fs, comparator=comp, rng=np.random.default_rng(7)
        )
        for c in chunked(mid_pattern.emg, [911]):
            enc.push(c)
        enc.finalize()
        assert np.array_equal(stream.times, enc.stream.times)


class TestDATCStreaming:
    @pytest.mark.parametrize(
        "sizes",
        [
            [1],  # single-sample chunks
            [60],  # smaller than one frame (100 clocks = 125 samples)
            [125],  # exactly one frame of samples
            [137],  # chunk boundary mid-frame
            [100_000],  # whole signal at once
            [3, 0, 250, 1, 999],  # mixed, including empty
        ],
    )
    def test_chunked_matches_one_shot(self, mid_pattern, sizes):
        one_shot = datc_encode(mid_pattern.emg, mid_pattern.fs)
        enc = DATCEncoder(mid_pattern.fs)
        for c in chunked(mid_pattern.emg, sizes):
            enc.push(c)
        trace = enc.finalize()
        assert_datc_equal(one_shot, (enc.stream, trace))

    def test_quantized_chunked_matches_one_shot(self, mid_pattern):
        config = DATCConfig(quantized=True)
        one_shot = datc_encode(mid_pattern.emg, mid_pattern.fs, config)
        enc = DATCEncoder(mid_pattern.fs, config)
        for c in chunked(mid_pattern.emg, [333]):
            enc.push(c)
        trace = enc.finalize()
        assert_datc_equal(one_shot, (enc.stream, trace))

    def test_incremental_streams_are_ordered_and_complete(self, mid_pattern):
        one_shot, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        enc = DATCEncoder(mid_pattern.fs)
        parts = [enc.push(c) for c in chunked(mid_pattern.emg, [617])]
        enc.finalize()
        times = np.concatenate([p.times for p in parts])
        levels = np.concatenate([p.levels for p in parts])
        # finalize() may add trailing partial-frame events not seen by push
        n = times.size
        assert np.all(np.diff(times) > 0)
        assert np.array_equal(times, one_shot.times[:n])
        assert np.array_equal(levels, one_shot.levels[:n])

    def test_drain_delivers_partial_frame_flush(self, mid_pattern):
        """push* -> finalize -> drain hands out every event exactly once,
        including those the trailing partial frame fires inside finalize."""
        emg = mid_pattern.emg[:5100]  # cut mid-contraction, mid-frame
        one_shot, _ = datc_encode(emg, mid_pattern.fs)
        enc = DATCEncoder(mid_pattern.fs)
        parts = [enc.push(c) for c in chunked(emg, [617])]
        enc.finalize()
        flushed = enc.drain()
        assert flushed.n_events > 0  # the partial frame really fired
        times = np.concatenate([p.times for p in parts] + [flushed.times])
        levels = np.concatenate([p.levels for p in parts] + [flushed.levels])
        assert np.array_equal(times, one_shot.times)
        assert np.array_equal(levels, one_shot.levels)
        assert enc.drain().n_events == 0  # idempotent once drained
        assert np.array_equal(enc.stream.times, one_shot.times)

    def test_empty_first_chunk(self):
        enc = DATCEncoder(2500.0)
        events = enc.push(np.zeros(0))
        assert events.n_events == 0
        assert events.duration_s == 0.0

    def test_noisy_comparator_chunked_matches_one_shot(self, mid_pattern):
        comp = Comparator(hysteresis_v=0.02, noise_rms_v=0.01)
        one_shot = datc_encode(
            mid_pattern.emg,
            mid_pattern.fs,
            comparator=comp,
            rng=np.random.default_rng(11),
        )
        enc = DATCEncoder(
            mid_pattern.fs, comparator=comp, rng=np.random.default_rng(11)
        )
        for c in chunked(mid_pattern.emg, [457]):
            enc.push(c)
        trace = enc.finalize()
        assert_datc_equal(one_shot, (enc.stream, trace))

    def test_bounded_memory(self, mid_pattern):
        enc = DATCEncoder(mid_pattern.fs)
        for c in chunked(mid_pattern.emg, [500]):
            enc.push(c)
            assert enc._tail.size <= 500 + 2  # O(chunk), not O(signal)
            assert enc._frame_buf.size < enc.config.frame_size

    def test_too_short_signal_raises_at_finalize(self):
        enc = DATCEncoder(2500.0)
        enc.push(np.zeros(1))  # one sample covers no 2 kHz clock period
        with pytest.raises(ValueError, match="too short"):
            enc.finalize()

    def test_push_after_finalize_rejected(self, mid_pattern):
        enc = DATCEncoder(mid_pattern.fs)
        enc.push(mid_pattern.emg)
        enc.finalize()
        with pytest.raises(RuntimeError):
            enc.push(mid_pattern.emg)
        with pytest.raises(RuntimeError):
            enc.finalize()

    def test_non_1d_chunk_rejected(self):
        enc = DATCEncoder(2500.0)
        with pytest.raises(ValueError, match="1-D"):
            enc.push(np.zeros((2, 10)))

    def test_invalid_fs_rejected(self):
        with pytest.raises(ValueError, match="fs"):
            DATCEncoder(0.0)


class TestBatchedEncoding:
    def test_datc_batch_matches_per_signal_loop(self, small_dataset):
        patterns = [small_dataset.pattern(i) for i in range(4)]
        fs = patterns[0].fs
        batch = np.stack([p.emg for p in patterns])
        for (stream, trace), p in zip(datc_encode_batch(batch, fs), patterns):
            assert_datc_equal(datc_encode(p.emg, fs), (stream, trace))

    def test_datc_batch_quantized_matches_loop(self, small_dataset):
        patterns = [small_dataset.pattern(i) for i in range(3)]
        fs = patterns[0].fs
        config = DATCConfig(quantized=True)
        batch = np.stack([p.emg for p in patterns])
        for (stream, trace), p in zip(
            datc_encode_batch(batch, fs, config), patterns
        ):
            assert_datc_equal(datc_encode(p.emg, fs, config), (stream, trace))

    def test_atc_batch_matches_per_signal_loop(self, small_dataset):
        patterns = [small_dataset.pattern(i) for i in range(4)]
        fs = patterns[0].fs
        batch = np.stack([p.emg for p in patterns])
        for (stream, trace), p in zip(atc_encode_batch(batch, fs), patterns):
            one_stream, one_trace = atc_encode(p.emg, fs)
            assert np.array_equal(one_stream.times, stream.times)
            assert np.array_equal(one_trace.d_in, trace.d_in)

    def test_list_of_signals_accepted(self, small_dataset):
        patterns = [small_dataset.pattern(i) for i in range(2)]
        fs = patterns[0].fs
        as_list = datc_encode_batch([p.emg for p in patterns], fs)
        as_array = datc_encode_batch(np.stack([p.emg for p in patterns]), fs)
        for (sl, _), (sa, _) in zip(as_list, as_array):
            assert np.array_equal(sl.times, sa.times)

    def test_dispatch_on_config_type(self, small_dataset):
        pattern = small_dataset.pattern(1)
        batch = pattern.emg[np.newaxis, :]
        atc_stream, _ = encode_batch(batch, pattern.fs, ATCConfig())[0]
        datc_stream, _ = encode_batch(batch, pattern.fs, DATCConfig())[0]
        default_stream, _ = encode_batch(batch, pattern.fs)[0]
        assert not atc_stream.has_levels
        assert datc_stream.has_levels
        assert np.array_equal(default_stream.times, datc_stream.times)

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError, match="2-D"):
            datc_encode_batch(np.zeros(100), 2500.0)
        with pytest.raises(ValueError, match="same length"):
            datc_encode_batch([np.zeros(100), np.zeros(200)], 2500.0)
        with pytest.raises(ValueError, match="at least one"):
            datc_encode_batch([], 2500.0)
        with pytest.raises(ValueError, match="too short"):
            datc_encode_batch(np.zeros((2, 1)), 2500.0)
        with pytest.raises(TypeError):
            encode_batch(np.zeros((1, 2500)), 2500.0, config="datc")


class TestClockSampleIndices:
    def test_matches_the_encoders_inline_formula(self):
        n_samples, fs, clock_hz = 50_000, 2500.0, 2000.0
        n_clocks = n_whole_clocks(n_samples, fs, clock_hz)
        expected = np.ceil(
            np.arange(1, n_clocks + 1) * (fs / clock_hz) - 1e-9
        ).astype(np.int64) - 1
        expected = np.clip(expected, 0, n_samples - 1)
        assert np.array_equal(
            clock_sample_indices(n_samples, fs, clock_hz), expected
        )

    def test_windowed_resume_matches_full_sequence(self):
        full = clock_sample_indices(10_000, 2500.0, 2000.0)
        head = clock_sample_indices(10_000, 2500.0, 2000.0, n_clocks=100)
        tail = clock_sample_indices(10_000, 2500.0, 2000.0, start_clock=100)
        assert np.array_equal(np.concatenate([head, tail]), full)

    def test_equal_rates_are_identity(self):
        idx = clock_sample_indices(1000, 2000.0, 2000.0)
        assert np.array_equal(idx, np.arange(1000))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            clock_sample_indices(1000, 2500.0, 2000.0, start_clock=10_000)
        with pytest.raises(ValueError):
            clock_sample_indices(1000, 2500.0, 2000.0, n_clocks=10_000)


class TestManyPushDrain:
    """Regression for the O(n^2) drain/stream accumulation fix.

    Long-lived sessions drain after every push; the event history now
    lives in amortised-O(1) grow-buffers, so each ``drain``/``.stream``
    must cost O(new events) — and, regardless of representation, the
    outputs must be unchanged.
    """

    def test_many_push_drains_unchanged(self, mid_pattern):
        one_shot, _ = datc_encode(
            mid_pattern.emg, mid_pattern.fs, DATCConfig()
        )
        enc = DATCEncoder(mid_pattern.fs, DATCConfig())
        drained = []
        for c in chunked(mid_pattern.emg, [97]):  # many small pushes
            drained.append(enc.push(c))
            drained.append(enc.drain())  # extra drains stay empty + cheap
            _ = enc.stream  # .stream on the hot path must stay cheap too
        enc.finalize()
        drained.append(enc.drain())  # the partial-frame flush
        times = np.concatenate([d.times for d in drained])
        levels = np.concatenate([d.levels for d in drained])
        assert np.array_equal(times, one_shot.times)
        assert np.array_equal(levels, one_shot.levels)
        assert np.array_equal(enc.stream.times, one_shot.times)
        assert np.array_equal(enc.stream.levels, one_shot.levels)

    def test_history_views_stable_across_growth(self):
        """Earlier drains stay valid after the buffers grow underneath."""
        rng = np.random.default_rng(11)
        fs = 2500.0
        enc = ATCEncoder(fs, ATCConfig())
        first = None
        for _ in range(64):
            d = enc.push(rng.normal(0.0, 0.5, size=503))
            if first is None and d.n_events:
                first = d.times.copy(), d
        enc.finalize()
        assert first is not None
        times_snapshot, stream = first
        # The grow-buffer's append-only prefix guarantee: the stream we
        # handed out early is untouched by hundreds of later appends.
        assert np.array_equal(stream.times, times_snapshot)
