"""Tests for the EventStream container."""

import numpy as np
import pytest

from repro.core.events import EventStream, merge_streams


def make_stream(times, duration=10.0, levels=None, spe=1):
    return EventStream(
        times=np.asarray(times, dtype=float),
        duration_s=duration,
        levels=None if levels is None else np.asarray(levels),
        symbols_per_event=spe,
    )


class TestConstruction:
    def test_basic_properties(self):
        s = make_stream([1.0, 2.0, 3.0])
        assert s.n_events == 3
        assert s.mean_rate_hz == pytest.approx(0.3)
        assert not s.has_levels

    def test_symbol_accounting_atc(self):
        s = make_stream([1.0] * 1, spe=1)
        assert s.n_symbols == 1

    def test_symbol_accounting_datc(self):
        """Paper Sec. III-B: 3724 events x 5 symbols = 18620."""
        times = np.linspace(0.1, 9.9, 3724)
        s = make_stream(times, levels=np.ones(3724, dtype=int), spe=5)
        assert s.n_symbols == 18_620

    def test_empty_stream(self):
        s = make_stream([])
        assert s.n_events == 0
        assert s.n_symbols == 0

    def test_times_outside_duration_rejected(self):
        with pytest.raises(ValueError):
            make_stream([11.0], duration=10.0)
        with pytest.raises(ValueError):
            make_stream([-1.0])

    def test_decreasing_times_rejected(self):
        with pytest.raises(ValueError):
            make_stream([2.0, 1.0])

    def test_levels_shape_checked(self):
        with pytest.raises(ValueError):
            make_stream([1.0, 2.0], levels=[1])

    def test_bad_duration_rejected(self):
        with pytest.raises(ValueError):
            make_stream([1.0], duration=0.0)

    def test_bad_spe_rejected(self):
        with pytest.raises(ValueError):
            make_stream([1.0], spe=0)


class TestWindows:
    def test_counts_sum_to_n_events(self):
        rng = np.random.default_rng(0)
        times = np.sort(rng.uniform(0, 10, 137))
        s = make_stream(times)
        assert s.counts_in_windows(0.7).sum() == 137

    def test_uniform_rate_counts(self):
        times = np.arange(0.25, 10.0, 0.5)
        s = make_stream(times)
        counts = s.counts_in_windows(1.0)
        assert np.all(counts == 2)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            make_stream([1.0]).counts_in_windows(0.0)


class TestSliceAndDrop:
    def test_slice_rereferences_times(self):
        s = make_stream([1.0, 2.0, 3.0, 4.0], levels=[1, 2, 3, 4])
        sub = s.slice(1.5, 3.5)
        assert np.allclose(sub.times, [0.5, 1.5])
        assert sub.levels.tolist() == [2, 3]
        assert sub.duration_s == pytest.approx(2.0)

    def test_slice_bounds_checked(self):
        s = make_stream([1.0])
        with pytest.raises(ValueError):
            s.slice(5.0, 4.0)
        with pytest.raises(ValueError):
            s.slice(0.0, 11.0)

    def test_drop_events_keeps_metadata(self):
        s = make_stream([1.0, 2.0, 3.0], levels=[5, 6, 7], spe=5)
        kept = s.drop_events(np.array([True, False, True]))
        assert kept.n_events == 2
        assert kept.levels.tolist() == [5, 7]
        assert kept.symbols_per_event == 5
        assert kept.duration_s == s.duration_s

    def test_drop_mask_shape_checked(self):
        s = make_stream([1.0, 2.0])
        with pytest.raises(ValueError):
            s.drop_events(np.array([True]))


class TestLevels:
    def test_level_voltages_eqn3(self):
        s = make_stream([1.0, 2.0], levels=[8, 15])
        v = s.level_voltages(vref=1.0, dac_bits=4)
        assert np.allclose(v, [0.5, 0.9375])

    def test_level_voltages_requires_levels(self):
        with pytest.raises(ValueError):
            make_stream([1.0]).level_voltages()

    def test_inter_event_intervals(self):
        s = make_stream([1.0, 3.0, 6.0])
        assert np.allclose(s.inter_event_intervals(), [2.0, 3.0])


class TestMerge:
    def test_merge_sorts_by_time(self):
        a = make_stream([1.0, 4.0])
        b = make_stream([2.0, 3.0])
        m = merge_streams([a, b])
        assert np.allclose(m.times, [1.0, 2.0, 3.0, 4.0])

    def test_merge_preserves_levels_when_all_have_them(self):
        a = make_stream([1.0], levels=[3], spe=5)
        b = make_stream([0.5], levels=[7], spe=5)
        m = merge_streams([a, b])
        assert m.levels.tolist() == [7, 3]

    def test_merge_drops_levels_when_mixed(self):
        a = make_stream([1.0], levels=[3])
        b = make_stream([0.5])
        assert merge_streams([a, b]).levels is None

    def test_merge_requires_matching_duration(self):
        a = make_stream([1.0], duration=10.0)
        b = make_stream([1.0], duration=5.0)
        with pytest.raises(ValueError):
            merge_streams([a, b])

    def test_merge_requires_matching_spe(self):
        a = make_stream([1.0], spe=1)
        b = make_stream([1.0], spe=5)
        with pytest.raises(ValueError):
            merge_streams([a, b])

    def test_merge_empty_list_rejected(self):
        with pytest.raises(ValueError):
            merge_streams([])
