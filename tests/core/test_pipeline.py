"""Tests for the end-to-end encode/reconstruct pipeline helpers."""

import numpy as np
import pytest

from repro.core.config import ATCConfig, DATCConfig
from repro.core.pipeline import run_atc, run_datc


class TestRunAtc:
    def test_result_fields(self, mid_pattern):
        r = run_atc(mid_pattern)
        assert r.scheme == "atc"
        assert r.n_events == r.stream.n_events
        assert r.n_symbols == r.n_events  # 1 symbol per ATC event
        assert r.reconstruction.size == int(mid_pattern.duration_s * r.fs_out)
        assert -100.0 <= r.correlation_pct <= 100.0

    def test_good_threshold_correlates(self, mid_pattern):
        r = run_atc(mid_pattern, ATCConfig(vth=0.15))
        assert r.correlation_pct > 85.0

    def test_excessive_threshold_fails(self, weak_pattern):
        """A fixed 0.5 V threshold on a weak subject misses everything."""
        r = run_atc(weak_pattern, ATCConfig(vth=0.5))
        assert r.n_events <= 2
        assert r.correlation_pct < 50.0


class TestRunDatc:
    def test_result_fields(self, mid_pattern):
        r = run_datc(mid_pattern)
        assert r.scheme == "datc"
        assert r.n_symbols == 5 * r.n_events
        assert r.stream.has_levels

    def test_correlates_on_all_subject_strengths(self, small_dataset):
        """The adaptation claim: D-ATC works without per-subject trimming."""
        for pid in range(len(small_dataset)):
            r = run_datc(small_dataset.pattern(pid))
            assert r.correlation_pct > 80.0, f"pattern {pid}"

    def test_beats_fixed_threshold_on_weak_subject(self, weak_pattern):
        atc = run_atc(weak_pattern, ATCConfig(vth=0.3))
        datc = run_datc(weak_pattern)
        assert datc.correlation_pct > atc.correlation_pct + 10.0

    def test_custom_config_respected(self, mid_pattern):
        r = run_datc(mid_pattern, DATCConfig(frame_selector=2))
        assert isinstance(r.trace.frame_size, int)
        assert r.trace.frame_size == 400
