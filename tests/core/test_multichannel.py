"""Tests for the multi-channel D-ATC system."""

import numpy as np
import pytest

from repro.core.config import DATCConfig
from repro.core.multichannel import MultiChannelDATC
from repro.rx.correlation import aligned_correlation_percent
from repro.signals.emg import EMGModel, synthesize_emg
from repro.signals.envelope import arv_envelope
from repro.signals.force import mvc_grip_protocol, sinusoidal_profile


@pytest.fixture(scope="module")
def channel_signals():
    fs = 2500.0
    duration = 6.0
    rng = np.random.default_rng(3)
    profiles = [
        mvc_grip_protocol(duration, fs),
        sinusoidal_profile(duration, fs, mean=0.4, amplitude=0.2, frequency_hz=0.5),
        mvc_grip_protocol(duration, fs, max_level=0.5, n_contractions=3),
    ]
    gains = (0.5, 0.25, 0.7)
    signals = [
        synthesize_emg(p, fs, EMGModel(gain_v=g), rng)
        for p, g in zip(profiles, gains)
    ]
    return fs, signals


class TestMultiChannelDATC:
    def test_symbols_per_event(self):
        system = MultiChannelDATC(n_channels=4)
        # 1 marker + 2 address + 4 level = 7.
        assert system.symbols_per_event == 7

    def test_encode_merges_all_channels(self, channel_signals):
        fs, signals = channel_signals
        system = MultiChannelDATC(n_channels=3)
        result = system.encode(signals, fs)
        assert len(result.channel_streams) == 3
        assert result.n_events == sum(s.n_events for s in result.channel_streams)
        assert result.n_symbols == result.n_events * system.symbols_per_event

    def test_decode_recovers_channels(self, channel_signals):
        fs, signals = channel_signals
        system = MultiChannelDATC(n_channels=3)
        result = system.encode(signals, fs)
        decoded = system.decode(result.merged)
        for original, recovered in zip(result.channel_streams, decoded):
            assert np.allclose(recovered.times, original.times)
            assert np.array_equal(recovered.levels, original.levels)

    def test_reconstruct_tracks_each_channel(self, channel_signals):
        fs, signals = channel_signals
        system = MultiChannelDATC(n_channels=3)
        result = system.encode(signals, fs)
        reconstructions = system.reconstruct(result.merged)
        for signal, recon in zip(signals, reconstructions):
            reference = arv_envelope(signal, fs)
            assert aligned_correlation_percent(recon, reference) > 80.0

    def test_arbiter_spacing_respected(self, channel_signals):
        fs, signals = channel_signals
        system = MultiChannelDATC(n_channels=3, min_spacing_s=1e-4)
        result = system.encode(signals, fs)
        if result.merged.n_events > 1:
            assert np.all(np.diff(result.merged.times) >= 1e-4 - 1e-12)

    def test_wrong_signal_count_rejected(self, channel_signals):
        fs, signals = channel_signals
        system = MultiChannelDATC(n_channels=2)
        with pytest.raises(ValueError):
            system.encode(signals, fs)

    def test_2d_array_input_matches_list_input(self, channel_signals):
        fs, signals = channel_signals
        system = MultiChannelDATC(n_channels=3)
        from_list = system.encode(signals, fs)
        from_array = system.encode(np.stack(signals), fs)
        for a, b in zip(from_list.channel_streams, from_array.channel_streams):
            assert np.array_equal(a.times, b.times)
            assert np.array_equal(a.levels, b.levels)
        assert np.array_equal(from_list.merged.times, from_array.merged.times)

    def test_non_2d_array_rejected(self, channel_signals):
        fs, signals = channel_signals
        system = MultiChannelDATC(n_channels=3)
        with pytest.raises(ValueError, match="2-D"):
            system.encode(np.concatenate(signals), fs)

    def test_unequal_channel_lengths_rejected(self, channel_signals):
        fs, signals = channel_signals
        ragged = [signals[0], signals[1], signals[2][:-100]]
        system = MultiChannelDATC(n_channels=3)
        with pytest.raises(ValueError, match="same length"):
            system.encode(ragged, fs)

    def test_invalid_channel_count(self):
        with pytest.raises(ValueError):
            MultiChannelDATC(n_channels=0)

    def test_custom_config_propagates(self, channel_signals):
        fs, signals = channel_signals
        config = DATCConfig(frame_selector=1)
        system = MultiChannelDATC(n_channels=3, config=config)
        result = system.encode(signals, fs)
        assert all(t.frame_size == 200 for t in result.traces)
