"""Tests for the D-ATC behavioural encoder, including RTL equivalence."""

import numpy as np
import pytest

from repro.analog.comparator import Comparator
from repro.analog.dac import DAC
from repro.core.config import DATCConfig
from repro.core.datc import datc_encode
from repro.digital.dtc_rtl import DTCRtl


class TestDatcEncodeBasics:
    def test_stream_carries_levels(self, mid_pattern):
        stream, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        assert stream.has_levels
        assert stream.levels.size == stream.n_events
        assert stream.symbols_per_event == 5

    def test_levels_in_dac_range(self, mid_pattern):
        stream, trace = datc_encode(mid_pattern.emg, mid_pattern.fs)
        if stream.n_events:
            assert stream.levels.min() >= 1
            assert stream.levels.max() <= 15
        assert trace.levels.min() >= 1
        assert trace.levels.max() <= 15

    def test_trace_dimensions(self, mid_pattern):
        config = DATCConfig()
        _, trace = datc_encode(mid_pattern.emg, mid_pattern.fs, config)
        n_clocks = int(mid_pattern.duration_s * config.clock_hz)
        assert trace.n_clocks == n_clocks
        assert trace.n_frames == n_clocks // config.frame_size
        assert trace.frame_ones.size == trace.n_frames
        assert trace.frame_avr.size == trace.n_frames

    def test_vth_from_levels_eqn3(self, mid_pattern):
        _, trace = datc_encode(mid_pattern.emg, mid_pattern.fs)
        assert np.allclose(trace.vth, trace.levels / 16.0)

    def test_level_constant_within_frames(self, mid_pattern):
        config = DATCConfig()
        _, trace = datc_encode(mid_pattern.emg, mid_pattern.fs, config)
        fs_frame = config.frame_size
        for f in range(trace.n_frames):
            seg = trace.levels[f * fs_frame : (f + 1) * fs_frame]
            assert np.all(seg == seg[0])

    def test_frame_ones_consistent_with_d_in(self, mid_pattern):
        config = DATCConfig()
        _, trace = datc_encode(mid_pattern.emg, mid_pattern.fs, config)
        for f in range(trace.n_frames):
            seg = trace.d_in[f * config.frame_size : (f + 1) * config.frame_size]
            assert seg.sum() == trace.frame_ones[f]

    def test_threshold_tracks_amplitude(self, small_dataset):
        """The mean selected level must be higher for a strong subject
        than for a weak one — the core adaptation claim."""
        weak = small_dataset.pattern(0)
        strong = small_dataset.pattern(3)
        _, t_weak = datc_encode(weak.emg, weak.fs)
        _, t_strong = datc_encode(strong.emg, strong.fs)
        assert t_strong.levels.mean() > t_weak.levels.mean() + 1.0

    def test_deterministic(self, mid_pattern):
        a, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        b, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.levels, b.levels)

    def test_event_times_on_clock_grid(self, mid_pattern):
        config = DATCConfig()
        stream, _ = datc_encode(mid_pattern.emg, mid_pattern.fs, config)
        ticks = stream.times * config.clock_hz
        assert np.allclose(ticks, np.round(ticks))

    def test_vth_at_times_matches_event_levels(self, mid_pattern):
        config = DATCConfig()
        stream, trace = datc_encode(mid_pattern.emg, mid_pattern.fs, config)
        vths = trace.vth_at_times(stream.times - 0.5 / config.clock_hz)
        assert np.allclose(vths, stream.levels / 16.0)

    def test_duty_cycle_regulated(self, small_dataset):
        """Whatever the subject amplitude, D-ATC keeps the sampled duty
        cycle within the interval ladder's working band."""
        for pid in range(len(small_dataset)):
            p = small_dataset.pattern(pid)
            _, trace = datc_encode(p.emg, p.fs)
            active = trace.frame_ones[trace.frame_ones > 2]  # skip rests
            if active.size:
                assert active.mean() < 0.6 * 100


class TestDatcEncodeOptions:
    def test_frame_selector_changes_update_rate(self, mid_pattern):
        _, t100 = datc_encode(mid_pattern.emg, mid_pattern.fs, DATCConfig(frame_selector=0))
        _, t800 = datc_encode(mid_pattern.emg, mid_pattern.fs, DATCConfig(frame_selector=3))
        assert t100.n_frames == 8 * t800.n_frames

    def test_nonideal_dac_applies_inl_per_level(self, mid_pattern):
        """An INL-skewed DAC shifts every applied threshold by the INL of
        its code (the DTC feedback then re-adapts the *levels*, so the
        mean effective threshold stays matched to the signal — which is
        itself the adaptation working as intended)."""
        inl = tuple(0.4 for _ in range(16))
        dac = DAC(n_bits=4, inl_lsb=inl)
        _, skewed = datc_encode(mid_pattern.emg, mid_pattern.fs, dac=dac)
        assert np.allclose(skewed.vth, (skewed.levels + 0.4) / 16.0)

    def test_dac_bits_mismatch_rejected(self, mid_pattern):
        with pytest.raises(ValueError):
            datc_encode(mid_pattern.emg, mid_pattern.fs, dac=DAC(n_bits=6))

    def test_noisy_comparator_requires_rng(self, mid_pattern):
        comp = Comparator(noise_rms_v=0.01)
        with pytest.raises(ValueError):
            datc_encode(mid_pattern.emg, mid_pattern.fs, comparator=comp)

    def test_comparator_hysteresis_reduces_events(self, mid_pattern):
        base, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        hyst, _ = datc_encode(
            mid_pattern.emg, mid_pattern.fs, comparator=Comparator(hysteresis_v=0.08)
        )
        assert hyst.n_events < base.n_events

    def test_too_short_signal_rejected(self):
        with pytest.raises(ValueError):
            datc_encode(np.zeros(1), 2500.0)

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            datc_encode(np.zeros((5, 5)), 2500.0)


class TestRtlEquivalence:
    """The paper's "Verilog results perfectly match the Matlab simulation
    outputs" — here: the cycle-accurate DTC reproduces the behavioural
    encoder bit-for-bit when both use the quantised arithmetic."""

    @pytest.mark.parametrize("frame_selector", [0, 1])
    def test_levels_match_on_real_pattern(self, mid_pattern, frame_selector):
        config = DATCConfig(frame_selector=frame_selector, quantized=True)
        _, trace = datc_encode(mid_pattern.emg, mid_pattern.fs, config)

        dtc = DTCRtl(frame_selector=frame_selector, initial_level=config.initial_level)
        out = dtc.run(trace.d_in)

        assert np.array_equal(out["set_vth"], trace.levels)
        assert np.array_equal(out["frame_levels"], trace.frame_levels)
        assert np.array_equal(out["frame_ones"], trace.frame_ones)

    def test_levels_match_on_weak_pattern(self, weak_pattern):
        config = DATCConfig(quantized=True)
        _, trace = datc_encode(weak_pattern.emg, weak_pattern.fs, config)
        dtc = DTCRtl(initial_level=config.initial_level)
        out = dtc.run(trace.d_in)
        assert np.array_equal(out["set_vth"], trace.levels)

    def test_quantized_and_float_levels_close(self, mid_pattern):
        """The Q8 datapath may differ from the float reference by at most
        one DAC step, and only at interval boundaries."""
        _, tf = datc_encode(mid_pattern.emg, mid_pattern.fs, DATCConfig(quantized=False))
        _, tq = datc_encode(mid_pattern.emg, mid_pattern.fs, DATCConfig(quantized=True))
        assert np.max(np.abs(tf.levels - tq.levels)) <= 1
