"""Tests for the fixed-threshold ATC encoder."""

import numpy as np
import pytest

from repro.core.atc import atc_encode, rising_edges
from repro.core.config import ATCConfig


class TestRisingEdges:
    def test_simple_edge(self):
        assert rising_edges(np.array([0, 0, 1, 1, 0, 1])).tolist() == [2, 5]

    def test_initial_state_suppresses_first(self):
        assert rising_edges(np.array([1, 1, 0, 1]), initial=1).tolist() == [3]
        assert rising_edges(np.array([1, 1, 0, 1]), initial=0).tolist() == [0, 3]

    def test_empty(self):
        assert rising_edges(np.zeros(0)).size == 0

    def test_all_ones_single_edge(self):
        assert rising_edges(np.ones(10)).tolist() == [0]

    def test_count_matches_block_count(self):
        rng = np.random.default_rng(5)
        bits = (rng.random(1000) < 0.5).astype(np.uint8)
        # Number of rising edges == number of maximal 1-blocks (init 0).
        padded = np.concatenate([[0], bits])
        blocks = np.count_nonzero(np.diff(padded) == 1)
        assert rising_edges(bits).size == blocks


class TestAtcEncode:
    def test_sine_above_threshold_counts_cycles(self):
        """A rectified 50 Hz sine crossing Vth yields ~2 events per period
        (two rectified lobes per cycle)."""
        fs = 2500.0
        t = np.arange(0, 2.0, 1 / fs)
        x = 0.8 * np.sin(2 * np.pi * 50 * t)
        stream, _ = atc_encode(x, fs, ATCConfig(vth=0.3))
        expected = 2 * 50 * 2.0
        assert abs(stream.n_events - expected) <= 0.1 * expected

    def test_signal_below_threshold_yields_nothing(self, rng):
        fs = 2500.0
        x = 0.05 * rng.standard_normal(5000)
        stream, trace = atc_encode(x, fs, ATCConfig(vth=0.5))
        assert stream.n_events == 0
        assert trace.duty_cycle == 0.0

    def test_event_times_on_clock_grid(self, mid_pattern):
        config = ATCConfig(vth=0.3)
        stream, _ = atc_encode(mid_pattern.emg, mid_pattern.fs, config)
        ticks = stream.times * config.clock_hz
        assert np.allclose(ticks, np.round(ticks))

    def test_single_symbol_per_event(self, mid_pattern):
        stream, _ = atc_encode(mid_pattern.emg, mid_pattern.fs)
        assert stream.symbols_per_event == 1
        assert stream.n_symbols == stream.n_events

    def test_lower_threshold_gives_more_duty(self, mid_pattern):
        _, lo = atc_encode(mid_pattern.emg, mid_pattern.fs, ATCConfig(vth=0.1))
        _, hi = atc_encode(mid_pattern.emg, mid_pattern.fs, ATCConfig(vth=0.5))
        assert lo.duty_cycle > hi.duty_cycle

    def test_rectify_flag(self):
        fs = 2000.0
        x = -0.5 * np.ones(2000)  # negative DC
        with_rect, _ = atc_encode(x, fs, ATCConfig(vth=0.3), rectify=True)
        without, _ = atc_encode(x, fs, ATCConfig(vth=0.3), rectify=False)
        assert with_rect.n_events == 1  # crosses once at t=0 and stays up
        assert without.n_events == 0

    def test_trace_n_clocks(self, mid_pattern):
        config = ATCConfig()
        _, trace = atc_encode(mid_pattern.emg, mid_pattern.fs, config)
        expected = int(mid_pattern.duration_s * config.clock_hz)
        assert trace.n_clocks == expected

    def test_too_short_signal_rejected(self):
        with pytest.raises(ValueError):
            atc_encode(np.zeros(1), 2500.0)

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError):
            atc_encode(np.zeros((10, 2)), 2500.0)

    def test_bad_fs_rejected(self):
        with pytest.raises(ValueError):
            atc_encode(np.zeros(100), 0.0)

    def test_deterministic(self, mid_pattern):
        a, _ = atc_encode(mid_pattern.emg, mid_pattern.fs)
        b, _ = atc_encode(mid_pattern.emg, mid_pattern.fs)
        assert np.array_equal(a.times, b.times)
