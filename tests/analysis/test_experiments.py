"""Tests for the experiment drivers (reduced-size dataset variants)."""

import pytest

from repro.analysis.experiments import (
    PAPER_FIG5,
    PAPER_SYMBOLS,
    run_fig2,
    run_fig3,
    run_fig5,
    run_fig6,
    run_fig7,
    run_symbol_comparison,
    run_table1,
)
from repro.signals.dataset import default_dataset


@pytest.fixture(scope="module")
def paper_dataset():
    """The full-length dataset (patterns are generated lazily, so tests
    only pay for the handful of patterns they touch)."""
    return default_dataset()


class TestFig2:
    def test_concept_demo_shape(self):
        r = run_fig2()
        # The high constant threshold misses the weak (middle) segment...
        assert r.atc_high.per_frame[3:6].sum() == 0
        # ...which D-ATC senses.
        assert r.datc.per_frame[3:6].sum() > 0
        # The low threshold fires far more on the strong segment.
        assert r.atc_low.total > r.atc_high.total

    def test_format_table(self):
        text = run_fig2().format_table()
        assert "frame" in text and "D-ATC" in text


class TestFig3:
    def test_datc_beats_atc(self, paper_dataset):
        r = run_fig3(dataset=paper_dataset)
        assert r.datc.correlation_pct > r.atc.correlation_pct
        assert r.correlation_advantage_pct > 1.0

    def test_datc_events_moderately_higher(self, paper_dataset):
        """Paper: D-ATC spends ~17% more events than ATC@0.3 V; our
        synthetic pattern lands in the same 1.1-1.7x band."""
        r = run_fig3(dataset=paper_dataset)
        assert 1.05 < r.event_ratio < 1.8

    def test_datc_correlation_magnitude(self, paper_dataset):
        """Paper: 96.41%; ours must land in the mid-90s too."""
        r = run_fig3(dataset=paper_dataset)
        assert r.datc.correlation_pct > 94.0

    def test_format_table(self, paper_dataset):
        text = run_fig3(dataset=paper_dataset).format_table()
        assert "96.41" in text  # the paper column


class TestFig5Reduced:
    def test_shape_on_subset(self, paper_dataset):
        """Run 24 of the 190 patterns (3 per subject): the qualitative
        Fig. 5 claims must already hold."""
        r = run_fig5(n_patterns=24, dataset=paper_dataset)
        a_lo, a_hi = r.atc.correlation_range
        d_lo, d_hi = r.datc.correlation_range
        # D-ATC is uniformly high...
        assert d_lo > PAPER_FIG5["datc_corr_range_pct"][0]
        # ...while fixed-threshold ATC collapses for weak subjects.
        assert a_lo < 70.0
        # And the D-ATC band is tighter.
        assert (d_hi - d_lo) < (a_hi - a_lo)

    def test_event_stability(self, paper_dataset):
        r = run_fig5(n_patterns=24, dataset=paper_dataset)
        assert r.datc.event_spread < 0.5 * r.atc.event_spread


class TestFig6:
    def test_iso_correlation_costs_events(self, paper_dataset):
        """Paper: lowering ATC's Vth to 0.2 V matches D-ATC's correlation
        but costs more events (5821 vs 3724)."""
        r = run_fig6(dataset=paper_dataset)
        assert r.correlation_gap_pct < 3.0
        assert r.event_ratio > 1.1

    def test_format_table(self, paper_dataset):
        assert "5821" in run_fig6(dataset=paper_dataset).format_table()


class TestFig7:
    def test_tradeoff_curves(self, paper_dataset):
        r = run_fig7(pattern_ids=(23, 57), vths=(0.1, 0.2, 0.3, 0.5), dataset=paper_dataset)
        # ATC events decrease monotonically with the threshold.
        for pid in r.pattern_ids:
            events = [p.n_events for p in r.atc_sweeps[pid]]
            assert events == sorted(events, reverse=True)

    def test_datc_not_dominated_by_common_thresholds(self, paper_dataset):
        """No single fixed threshold from {0.2, 0.3} beats D-ATC on both
        axes for every pattern — the reason adaptation exists."""
        r = run_fig7(pattern_ids=(23, 57, 120), vths=(0.2, 0.3), dataset=paper_dataset)
        for pid in r.pattern_ids:
            assert r.datc_dominates(pid)


class TestSymbolComparison:
    def test_paper_packet_count_exact(self, paper_dataset):
        r = run_symbol_comparison(dataset=paper_dataset)
        assert r.packet_symbols == PAPER_SYMBOLS["packet_based"] == 600_000

    def test_ordering_matches_paper(self, paper_dataset):
        """packet >> D-ATC > ATC@0.2 > ATC@0.3 in symbol cost."""
        r = run_symbol_comparison(dataset=paper_dataset)
        assert r.packet_symbols > 30 * r.datc_symbols
        assert r.datc_symbols > r.atc_0v2_symbols > r.atc_0v3_symbols

    def test_datc_symbols_are_five_per_event(self, paper_dataset):
        r = run_symbol_comparison(dataset=paper_dataset)
        assert r.datc_symbols == 5 * r.datc_events


class TestTable1:
    def test_reproduces_paper_rows(self):
        t1 = run_table1()
        assert t1.n_ports == 12
        assert t1.power_supply_v == 1.8
        assert abs(t1.n_cells - 512) / 512 < 0.15
