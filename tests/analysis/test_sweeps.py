"""Tests for parameter sweeps (fast variants on the small dataset)."""

import numpy as np
import pytest

from repro.analysis.sweeps import (
    atc_threshold_sweep,
    dac_resolution_sweep,
    dataset_sweep,
    frame_size_sweep,
    link_erasure_sweep,
    pulse_loss_sweep,
    weight_sweep,
)
from repro.core.config import ATCConfig


class TestAtcThresholdSweep:
    def test_events_decrease_with_threshold(self, mid_pattern):
        points = atc_threshold_sweep(mid_pattern, [0.05, 0.2, 0.4, 0.6])
        events = [p.n_events for p in points]
        assert events == sorted(events, reverse=True)

    def test_point_fields(self, mid_pattern):
        pt = atc_threshold_sweep(mid_pattern, [0.3])[0]
        assert pt.parameter == 0.3
        assert pt.n_symbols == pt.n_events


class TestDatasetSweep:
    def test_covers_requested_patterns(self, small_dataset):
        res = dataset_sweep(small_dataset, "datc", limit=4)
        assert res.pattern_ids.tolist() == [0, 1, 2, 3]
        assert res.correlations_pct.size == 4

    def test_datc_tighter_than_atc(self, small_dataset):
        """The Fig. 5 claim on the small dataset: D-ATC's correlation
        range and event spread are tighter than fixed-threshold ATC's."""
        atc = dataset_sweep(small_dataset, "atc", atc_config=ATCConfig(vth=0.3))
        datc = dataset_sweep(small_dataset, "datc")
        a_lo, a_hi = atc.correlation_range
        d_lo, d_hi = datc.correlation_range
        assert (d_hi - d_lo) < (a_hi - a_lo)
        assert datc.event_spread < atc.event_spread
        assert datc.correlation_mean > atc.correlation_mean

    def test_invalid_scheme(self, small_dataset):
        with pytest.raises(ValueError):
            dataset_sweep(small_dataset, "adc")

    def test_jobs_identical_to_sequential(self, small_dataset):
        seq = dataset_sweep(small_dataset, "datc", limit=4)
        par = dataset_sweep(small_dataset, "datc", limit=4, jobs=3)
        assert np.array_equal(seq.correlations_pct, par.correlations_pct)
        assert np.array_equal(seq.n_events, par.n_events)

    def test_threshold_sweep_jobs_identical(self, mid_pattern):
        vths = [0.1, 0.2, 0.3, 0.4]
        seq = atc_threshold_sweep(mid_pattern, vths)
        par = atc_threshold_sweep(mid_pattern, vths, jobs=4)
        assert [p.n_events for p in seq] == [p.n_events for p in par]
        assert [p.correlation_pct for p in seq] == [p.correlation_pct for p in par]


class TestFrameSizeSweep:
    def test_four_points(self, mid_pattern):
        points = frame_size_sweep(mid_pattern)
        assert [p.parameter for p in points] == [100.0, 200.0, 400.0, 800.0]

    def test_short_frames_correlate_on_short_pattern(self, mid_pattern):
        """On a 4 s recording only the fast frames (100/200 clocks) have
        enough update cycles to track; the slow ones merely stay sane.
        (The benchmark harness exercises all four on full 20 s patterns.)"""
        points = {int(p.parameter): p for p in frame_size_sweep(mid_pattern)}
        assert points[100].correlation_pct > 85.0
        assert points[200].correlation_pct > 80.0
        for p in points.values():
            assert p.n_events > 0
            assert p.correlation_pct > 40.0


class TestDacResolutionSweep:
    def test_symbol_cost_grows_with_bits(self, mid_pattern):
        points = dac_resolution_sweep(mid_pattern, (2, 4, 6))
        per_event = [p.n_symbols / max(p.n_events, 1) for p in points]
        assert per_event == sorted(per_event)
        assert per_event[1] == pytest.approx(5.0)

    def test_four_bits_sufficient(self, mid_pattern):
        """The paper's design choice: beyond 4 bits the correlation gain
        is marginal (<2%)."""
        points = {int(p.parameter): p for p in dac_resolution_sweep(mid_pattern, (4, 6))}
        assert points[6].correlation_pct - points[4].correlation_pct < 2.0

    def test_two_bits_degrade(self, mid_pattern):
        points = {int(p.parameter): p for p in dac_resolution_sweep(mid_pattern, (2, 4))}
        assert points[2].correlation_pct <= points[4].correlation_pct + 1.0


class TestPulseLossSweep:
    def test_zero_loss_matches_baseline(self, mid_pattern):
        points = pulse_loss_sweep(mid_pattern, (0.0,))
        assert points[0].parameter == 0.0

    def test_graceful_degradation(self, mid_pattern):
        """Correlation must degrade gracefully: 20% loss costs only a few
        points of correlation (the paper's artifact-robustness claim)."""
        points = pulse_loss_sweep(mid_pattern, (0.0, 0.2, 0.5))
        base, mid, high = (p.correlation_pct for p in points)
        assert mid > base - 5.0
        assert high > base - 15.0

    def test_events_drop_with_loss(self, mid_pattern):
        points = pulse_loss_sweep(mid_pattern, (0.0, 0.3))
        assert points[1].n_events < points[0].n_events

    def test_invalid_probability(self, mid_pattern):
        with pytest.raises(ValueError):
            pulse_loss_sweep(mid_pattern, (1.0,))

    def test_ndarray_grid_accepted(self, mid_pattern):
        """Sweep grids are often np.linspace arrays, not lists."""
        points = pulse_loss_sweep(mid_pattern, np.linspace(0.0, 0.3, 3))
        assert [p.parameter for p in points] == [0.0, 0.15, 0.3]


class TestLinkErasureSweep:
    @pytest.fixture(scope="class")
    def stream(self, mid_pattern):
        from repro.core.datc import datc_encode

        stream, _ = datc_encode(mid_pattern.emg, mid_pattern.fs)
        return stream

    def test_clean_point_is_perfect(self, stream):
        points = link_erasure_sweep(stream, (0.0, 0.3))
        assert points[0].event_delivery_ratio == 1.0
        assert points[0].level_error_ratio == 0.0

    def test_delivery_degrades(self, stream):
        points = link_erasure_sweep(stream, (0.0, 0.5))
        assert points[1].event_delivery_ratio < points[0].event_delivery_ratio

    def test_grid_order_and_fields(self, stream):
        probs = (0.2, 0.0, 0.1)
        points = link_erasure_sweep(stream, probs)
        assert [p.erasure_prob for p in points] == list(probs)
        assert all(p.n_pulses == points[0].n_pulses for p in points)
        assert points[0].tx_energy_j > 0

    def test_deterministic_for_seed(self, stream):
        a = link_erasure_sweep(stream, (0.3,), seed=5)
        b = link_erasure_sweep(stream, (0.3,), seed=5)
        assert a == b

    def test_invalid_probability(self, stream):
        with pytest.raises(ValueError):
            link_erasure_sweep(stream, (1.5,))

    def test_empty_grid(self, stream):
        assert link_erasure_sweep(stream, ()) == []


class TestSnrSweep:
    def test_clean_snr_matches_baseline(self, mid_pattern):
        from repro.analysis.sweeps import snr_sweep
        from repro.core.pipeline import run_datc

        points = snr_sweep(mid_pattern, (40.0,))
        base = run_datc(mid_pattern)
        assert points[0].correlation_pct == pytest.approx(
            base.correlation_pct, abs=2.0
        )

    def test_degrades_with_noise(self, mid_pattern):
        from repro.analysis.sweeps import snr_sweep

        points = snr_sweep(mid_pattern, (30.0, 0.0))
        assert points[1].correlation_pct < points[0].correlation_pct

    def test_moderate_noise_tolerated(self, mid_pattern):
        """10 dB SNR — a poor but realistic electrode — must still carry
        most of the force information."""
        from repro.analysis.sweeps import snr_sweep

        points = snr_sweep(mid_pattern, (10.0,))
        assert points[0].correlation_pct > 80.0

    def test_atc_scheme_supported(self, mid_pattern):
        from repro.analysis.sweeps import snr_sweep

        points = snr_sweep(mid_pattern, (20.0,), scheme="atc")
        assert len(points) == 1

    def test_ndarray_grid_accepted(self, mid_pattern):
        from repro.analysis.sweeps import snr_sweep

        points = snr_sweep(mid_pattern, np.array([30.0, 10.0]))
        assert [p.parameter for p in points] == [30.0, 10.0]

    def test_invalid_scheme(self, mid_pattern):
        from repro.analysis.sweeps import snr_sweep

        with pytest.raises(ValueError):
            snr_sweep(mid_pattern, (20.0,), scheme="x")


class TestWeightSweep:
    def test_runs_all_sets(self, mid_pattern):
        results = weight_sweep(mid_pattern)
        assert len(results) == 4
        for weights, point in results:
            assert point.correlation_pct > 70.0

    def test_paper_weights_competitive(self, mid_pattern):
        """The paper's (0.35, 0.65, 1.0) must be within a few % of the
        best weight set tried."""
        results = weight_sweep(mid_pattern)
        best = max(p.correlation_pct for _, p in results)
        paper = results[0][1].correlation_pct
        assert paper > best - 3.0

    def test_zero_sum_rejected(self, mid_pattern):
        with pytest.raises(ValueError):
            weight_sweep(mid_pattern, ((0.0, 0.0, 0.0),))

    def test_generator_input_accepted(self, mid_pattern):
        """A one-shot iterable grid must not be silently exhausted."""
        sets = ((0.35, 0.65, 1.0), (1.0, 1.0, 1.0))
        results = weight_sweep(mid_pattern, (w for w in sets))
        assert [w for w, _ in results] == list(sets)
        assert len(results) == 2
