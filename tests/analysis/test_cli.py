"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_registered(self):
        parser = build_parser()
        for command in (
            ["fig2"], ["fig3"], ["fig5"], ["fig6"], ["fig7"], ["symbols"],
            ["table1"], ["timing"], ["verilog"], ["vcd"], ["report"], ["encode"],
            ["bench"], ["run"], ["sweep"],
            ["queue", "submit", "--db", "q.db"],
            ["queue", "status", "--db", "q.db"],
            ["queue", "reset", "--db", "q.db"],
            ["worker", "--db", "q.db", "--store", "s"],
            ["store", "fsck", "s"],
        ):
            args = parser.parse_args(command)
            assert callable(args.func)

    def test_queue_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["queue"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestCommands:
    def test_table1_prints(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Number of cells" in out

    def test_timing_prints(self, capsys):
        assert main(["timing"]) == 0
        assert "critical path" in capsys.readouterr().out

    def test_fig2_prints(self, capsys):
        assert main(["fig2"]) == 0
        assert "D-ATC" in capsys.readouterr().out

    def test_verilog_to_stdout(self, capsys):
        assert main(["verilog", "-o", "-"]) == 0
        assert "module dtc_top" in capsys.readouterr().out

    def test_verilog_to_file(self, tmp_path, capsys):
        out = str(tmp_path / "dtc.v")
        assert main(["verilog", "-o", out]) == 0
        assert "endmodule" in open(out).read()

    def test_vcd_to_file(self, tmp_path, capsys):
        out = str(tmp_path / "dtc.vcd")
        assert main(["vcd", "-o", out, "--cycles", "300"]) == 0
        assert "$enddefinitions" in open(out).read()

    def test_encode_npz(self, tmp_path, capsys):
        from repro.signals.io import load_event_stream

        out = str(tmp_path / "events.npz")
        assert main(["encode", "-o", out]) == 0
        stream = load_event_stream(out)
        assert stream.n_events > 0
        assert stream.symbols_per_event == 5

    def test_encode_csv(self, tmp_path, capsys):
        out = str(tmp_path / "events.csv")
        assert main(["encode", "-o", out]) == 0
        header = open(out).readline().strip()
        assert header == "time_s,level,vth_v"

    def test_fig5_reduced(self, capsys):
        assert main(["fig5", "--patterns", "8"]) == 0
        assert "correlation over 8 patterns" in capsys.readouterr().out

    def test_fig5_with_jobs(self, capsys):
        assert main(["fig5", "--patterns", "6", "--jobs", "2"]) == 0
        assert "correlation over 6 patterns" in capsys.readouterr().out

    def test_bench_prints_all_paths(self, capsys):
        assert (
            main(
                [
                    "bench", "--scheme", "both", "--signals", "2",
                    "--duration", "2", "--repeats", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        for needle in ("one-shot loop", "chunked", "batched 2-D", "[atc]", "[datc]"):
            assert needle in out

    def test_bench_link_prints_all_paths(self, capsys):
        assert (
            main(
                [
                    "bench", "--link", "--scheme", "datc", "--signals", "2",
                    "--duration", "2", "--repeats", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        for needle in (
            "link throughput", "per-stream loop", "per-stream vectorised",
            "batched", "[datc]",
        ):
            assert needle in out


def parse_speedups(out: str) -> "list[float]":
    """The 'N.Nx' speedup figures a bench table reports, in row order."""
    return [
        float(tok[:-1])
        for line in out.splitlines()
        for tok in line.split()
        if tok.endswith("x") and tok[:-1].replace(".", "", 1).isdigit()
    ]


class TestBenchSubcommands:
    """Smoke-run each `bench` stage and parse its speedup/equality report."""

    def test_bench_rx_reports_speedups_and_equality(self, capsys):
        assert (
            main(
                [
                    "bench", "--rx", "--scheme", "atc", "--signals", "2",
                    "--duration", "2", "--repeats", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "receiver throughput" in out
        assert "speedup" in out
        # One speedup per table row; the loop baseline row is exactly 1.0x.
        speedups = parse_speedups(out)
        assert len(speedups) >= 3
        assert speedups[0] == 1.0
        # Equality is asserted inside the bench; with correlation the run
        # prints the loop-vs-batched comparison line.
        assert "with correlation" in out

    def test_bench_link_reports_speedups(self, capsys):
        assert (
            main(
                [
                    "bench", "--link", "--scheme", "atc", "--signals", "2",
                    "--duration", "2", "--repeats", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        speedups = parse_speedups(out)
        assert len(speedups) == 3  # loop, vectorised, batched
        assert speedups[0] == 1.0

    def test_bench_sweep_reports_backends_and_equality(self, capsys):
        assert (
            main(
                [
                    "bench", "--sweep", "--scheme", "datc", "--signals", "4",
                    "--duration", "2", "--jobs", "2", "--repeats", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sweep throughput" in out
        for backend in ("serial", "thread", "process"):
            assert backend in out
        speedups = parse_speedups(out)
        assert len(speedups) == 3  # one per backend
        assert speedups[0] == 1.0  # serial is the baseline row
        assert out.count("yes") == 2  # thread + process element-wise identical
        assert "baseline" in out

    def test_bench_sweep_rejects_bad_backend_combo(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--sweep", "--rx"])

    def test_bench_cache_exclusive_with_other_stages(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--cache", "--sweep"])

    def test_bench_cache_cold_vs_warm(self, tmp_path, capsys):
        assert (
            main(
                [
                    "bench", "--cache", "--scheme", "datc", "--signals", "2",
                    "--duration", "2", "--repeats", "1",
                    "--cache-dir", str(tmp_path / "cache"),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cache throughput" in out
        assert "cold (evaluate+put)" in out
        assert "warm (store hits)" in out
        assert "2 hits / 2 misses / 2 stores" in out

    def test_bench_kernels_races_the_tiers(self, capsys):
        assert (
            main(
                [
                    "bench", "--kernels", "--signals", "2",
                    "--duration", "2", "--repeats", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "kernel tier" in out
        assert "[datc encode]" in out
        assert "[fused scoring]" in out
        assert "compiled encode bit-identical to numpy: yes" in out
        assert "fused scoring max |diff|" in out
        from repro.kernels import numba_available

        if not numba_available():
            assert "FALLBACK" in out

    def test_bench_kernels_exclusive_with_other_stages(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--kernels", "--rx"])


class TestBenchTelemetry:
    """Every bench stage writes a BENCH_<area>.json trajectory point."""

    def test_bench_writes_record(self, tmp_path, capsys):
        out_dir = tmp_path / "records"
        assert (
            main(
                [
                    "bench", "--signals", "2", "--duration", "2",
                    "--repeats", "1", "--bench-out", str(out_dir),
                ]
            )
            == 0
        )
        assert "recorded ->" in capsys.readouterr().out
        import json

        records = json.loads((out_dir / "BENCH_encoder.json").read_text())
        assert len(records) == 1
        record = records[0]
        assert record["area"] == "encoder"
        assert record["headline"]["value"] > 0
        assert record["params"]["signals"] == 2
        assert record["spec_keys"]["datc"]
        assert len(record["rows"]) == 3

    def test_bench_env_dir_and_append(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "env-records"))
        argv = [
            "bench", "--kernels", "--signals", "2", "--duration", "2",
            "--repeats", "1",
        ]
        assert main(argv) == 0
        assert main(argv) == 0
        capsys.readouterr()
        import json

        records = json.loads(
            (tmp_path / "env-records" / "BENCH_kernels.json").read_text()
        )
        assert len(records) == 2

    def test_report_empty_dir_fails_pointedly(self, tmp_path, capsys):
        assert (
            main(["bench", "--report", "--bench-out", str(tmp_path)]) == 1
        )
        out = capsys.readouterr().out
        assert "no BENCH_*.json records" in out
        assert "Traceback" not in out

    @pytest.mark.parametrize(
        "text, needle",
        [
            ("{not json", "not valid JSON"),
            ("[]", "holds no records"),
            ('{"area": "queue"}', "expected a JSON list"),
        ],
    )
    def test_report_damaged_file_fails_pointedly(
        self, tmp_path, capsys, text, needle
    ):
        (tmp_path / "BENCH_queue.json").write_text(text)
        assert (
            main(["bench", "--report", "--bench-out", str(tmp_path)]) == 1
        )
        out = capsys.readouterr().out
        assert "bench --report:" in out
        assert "BENCH_queue.json" in out
        assert needle in out
        assert "Traceback" not in out

    def test_report_renders_and_gates(self, tmp_path, monkeypatch, capsys):
        from repro.analysis.telemetry import append_record, make_record

        append_record(
            make_record("encoder", "batched speedup", 4.0, []), tmp_path
        )
        assert (
            main(["bench", "--report", "--bench-out", str(tmp_path)]) == 0
        )
        out = capsys.readouterr().out
        assert "encoder" in out and "no headline regressions" in out
        # a >20% drop fails the gate; raising the knob lets it pass
        append_record(
            make_record("encoder", "batched speedup", 2.0, []), tmp_path
        )
        assert (
            main(["bench", "--report", "--bench-out", str(tmp_path)]) == 1
        )
        assert "REGRESSION" in capsys.readouterr().out
        monkeypatch.setenv("BENCH_REGRESSION_PCT", "60")
        assert (
            main(["bench", "--report", "--bench-out", str(tmp_path)]) == 0
        )
        capsys.readouterr()


class TestQueueCommands:
    """The queue/worker/store CLI surface (single in-process worker)."""

    def test_submit_worker_status_round_trip(self, tmp_path, capsys):
        db = str(tmp_path / "q.db")
        store = str(tmp_path / "store")
        assert (
            main(
                [
                    "queue", "submit", "--db", db,
                    "--patterns", "3", "--duration", "2.0",
                ]
            )
            == 0
        )
        assert "submitted 3 new shard job(s)" in capsys.readouterr().out
        # Re-submission is idempotent.
        assert (
            main(
                [
                    "queue", "submit", "--db", db,
                    "--patterns", "3", "--duration", "2.0",
                ]
            )
            == 0
        )
        assert "submitted 0 new shard job(s)" in capsys.readouterr().out
        assert main(["worker", "--db", db, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "completed 3" in out
        assert main(["queue", "status", "--db", db, "--strict"]) == 0
        assert "done 3" in capsys.readouterr().out

    def test_worker_ready_file_holds_pid(self, tmp_path, capsys):
        import os

        db = str(tmp_path / "q.db")
        ready = tmp_path / "ready"
        assert (
            main(
                [
                    "worker", "--db", db, "--store", str(tmp_path / "s"),
                    "--ready-file", str(ready),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert int(ready.read_text()) == os.getpid()

    def test_store_fsck_clean_and_damaged(self, tmp_path, capsys):
        from repro.runtime.store import ResultStore

        root = tmp_path / "store"
        store = ResultStore(root)
        store.put("k", "fp", {"x": np.arange(4)})
        assert main(["store", "fsck", str(root)]) == 0
        assert "clean" in capsys.readouterr().out
        path = store.path_for("k", "fp")
        path.write_bytes(b"garbage")
        assert main(["store", "fsck", str(root), "--no-repair"]) == 1
        assert "corrupt" in capsys.readouterr().out
        assert path.exists()  # --no-repair only reports
        assert main(["store", "fsck", str(root)]) == 1
        assert not path.exists()  # repaired: damage deleted
        assert main(["store", "fsck", str(root)]) == 0

    def test_bench_queue_exclusive_with_other_stages(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--queue", "--rx"])


class TestSpecCommands:
    """The declarative `run`/`sweep` subcommands and their cache plumbing."""

    def test_run_prints_summary(self, capsys):
        assert main(["run", "--pattern", "2", "--scheme", "atc"]) == 0
        out = capsys.readouterr().out
        assert "correlation" in out and "events" in out
        assert "on pattern 2" in out

    def test_run_dump_and_reload_spec(self, tmp_path, capsys):
        spec_path = str(tmp_path / "spec.json")
        assert main(
            ["run", "--pattern", "2", "--dump-spec", spec_path]
        ) == 0
        first = capsys.readouterr().out
        assert f"wrote {spec_path}" in first
        # Re-running from the dumped spec reproduces the same summary line.
        assert main(["run", "--pattern", "2", "--spec", spec_path]) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[-1] == second.splitlines()[-1]

    def test_run_cache_round_trip(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["run", "--pattern", "2", "--cache-dir", cache]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "1 miss(es), 1 store(s)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "1 hit(s), 0 miss(es)" in warm
        # Identical numbers on the warm path.
        assert cold.splitlines()[1] == warm.splitlines()[1]

    def test_sweep_axis_table(self, capsys):
        assert (
            main(
                [
                    "sweep", "--scheme", "atc", "--pattern", "2",
                    "--axis", "encoder.config.vth", "--values", "0.2,0.4",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "sweep of encoder.config.vth" in out
        assert out.count("\n") >= 4  # header + 2 value rows

    def test_sweep_requires_axis_or_dataset(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--pattern", "2"])

    def test_sweep_dataset_cached_warm_run_all_hits(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = [
            "sweep", "--dataset", "--patterns", "2", "--cache-dir", cache,
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "2 miss(es), 2 store(s)" in cold
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert "2 hit(s), 0 miss(es), 0 store(s)" in warm
        assert cold.splitlines()[1] == warm.splitlines()[1]

    def test_fig5_cache_dir(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["fig5", "--patterns", "2", "--cache-dir", cache]
        assert main(argv) == 0
        assert "cache:" in capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        # Both schemes' sweeps fully served from the store on the re-run.
        assert "4 hit(s), 0 miss(es), 0 store(s)" in warm
