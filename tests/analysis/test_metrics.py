"""Tests for summary metrics."""

import numpy as np
import pytest

from repro.analysis.metrics import Summary, summarize


class TestSummarize:
    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4
        assert s.mean == pytest.approx(2.5)
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == pytest.approx(2.5)

    def test_single_value(self):
        s = summarize([7.0])
        assert s.std == 0.0
        assert s.minimum == s.maximum == s.median == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(np.zeros(0))

    def test_format_row_contains_stats(self):
        row = summarize([1.0, 2.0]).format_row("metric", "%")
        assert "metric" in row and "mean=" in row and "%" in row
