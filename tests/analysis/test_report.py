"""Tests for the EXPERIMENTS.md generator."""

import pytest

from repro.analysis.report import generate_experiments_markdown, main
from repro.signals.dataset import default_dataset


@pytest.fixture(scope="module")
def quick_markdown():
    """One reduced-size generation shared by all checks (still runs every
    experiment driver end to end)."""
    return generate_experiments_markdown(
        dataset=default_dataset(), n_patterns=8
    )


class TestGenerateMarkdown:
    def test_all_sections_present(self, quick_markdown):
        for heading in (
            "# EXPERIMENTS",
            "## Fig. 2",
            "## Fig. 3",
            "## Fig. 5",
            "## Fig. 6",
            "## Fig. 7",
            "## Sec. III-B",
            "## Table I",
        ):
            assert heading in quick_markdown, heading

    def test_paper_reference_numbers_present(self, quick_markdown):
        for number in ("3183", "3724", "5821", "600,000", "96.41", "11700"):
            assert number in quick_markdown, number

    def test_shape_checks_present(self, quick_markdown):
        assert quick_markdown.count("**Shape check**") >= 6

    def test_code_blocks_balanced(self, quick_markdown):
        assert quick_markdown.count("```") % 2 == 0


class TestMainCli:
    def test_writes_file(self, tmp_path, capsys):
        out = str(tmp_path / "EXP.md")
        assert main(["--quick", "--output", out]) == 0
        text = open(out).read()
        assert "# EXPERIMENTS" in text
        assert "## Table I" in text
