"""Perf-trajectory telemetry: record files, loading, regression gate."""

import json

import pytest

from repro.analysis import telemetry


class TestBenchDir:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(telemetry.ENV_DIR, str(tmp_path / "env"))
        assert telemetry.bench_dir(tmp_path / "flag") == tmp_path / "flag"

    def test_env_var_wins_over_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(telemetry.ENV_DIR, str(tmp_path / "env"))
        assert telemetry.bench_dir() == tmp_path / "env"

    def test_default_is_benchmarks_dir_when_present(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(telemetry.ENV_DIR, raising=False)
        monkeypatch.chdir(tmp_path)
        assert str(telemetry.bench_dir()) == "."
        (tmp_path / "benchmarks").mkdir()
        assert str(telemetry.bench_dir()) == "benchmarks"

    def test_unknown_area_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown bench area"):
            telemetry.record_path("gpu", tmp_path)
        with pytest.raises(ValueError, match="unknown bench area"):
            telemetry.make_record("gpu", "m", 1.0, [])


class TestRecords:
    def test_record_shape(self):
        record = telemetry.make_record(
            "encoder",
            "batched speedup",
            3.25,
            [{"name": "a", "time_ms": 1.0, "throughput": 2.0, "speedup": 1.0}],
            params={"signals": 4},
            spec_keys={"datc": "abc"},
        )
        assert record["area"] == "encoder"
        assert record["headline"] == {
            "metric": "batched speedup",
            "value": 3.25,
        }
        assert record["host"]["numpy"]
        # The kernel tier a record was taken on must be attributable:
        # backend always one of the registry's names, numba version
        # present (None when numba is not installed).
        assert record["host"]["kernel_backend"] in ("numpy", "compiled")
        assert "numba" in record["host"]
        from repro.kernels import dispatch

        if dispatch.numba_available():
            assert isinstance(record["host"]["numba"], str)
        else:
            assert record["host"]["numba"] is None
        assert record["recorded_at"].endswith("Z")
        assert record["params"] == {"signals": 4}
        assert record["spec_keys"] == {"datc": "abc"}

    def test_append_accumulates_and_loads(self, tmp_path):
        for value in (1.0, 2.0, 3.0):
            path = telemetry.append_record(
                telemetry.make_record("rx", "speedup", value, []),
                directory=tmp_path,
            )
        assert path == tmp_path / "BENCH_rx.json"
        records = json.loads(path.read_text())
        assert [r["headline"]["value"] for r in records] == [1.0, 2.0, 3.0]
        loaded = telemetry.load_trajectories(tmp_path)
        assert set(loaded) == {"rx"}
        assert len(loaded["rx"]) == 3

    def test_corrupt_file_reads_as_empty(self, tmp_path):
        path = tmp_path / "BENCH_link.json"
        path.write_text("{not json")
        assert telemetry.load_trajectories(tmp_path) == {}
        # appending over the corrupt file starts a fresh trajectory
        telemetry.append_record(
            telemetry.make_record("link", "speedup", 2.0, []),
            directory=tmp_path,
        )
        assert len(telemetry.load_trajectories(tmp_path)["link"]) == 1


class TestRegressionGate:
    def _trajectory(self, *values):
        return {
            "encoder": [
                telemetry.make_record("encoder", "batched speedup", v, [])
                for v in values
            ]
        }

    def test_single_point_never_regresses(self):
        table, regressions = telemetry.render_report(self._trajectory(3.0), 20)
        assert "encoder" in table
        assert regressions == []

    def test_drop_within_allowance_passes(self):
        _, regressions = telemetry.render_report(
            self._trajectory(3.0, 2.5), 20
        )
        assert regressions == []

    def test_drop_beyond_allowance_flags(self):
        _, regressions = telemetry.render_report(
            self._trajectory(3.0, 2.0), 20
        )
        assert len(regressions) == 1
        assert "encoder" in regressions[0]
        assert "BENCH_REGRESSION_PCT" in regressions[0]

    def test_only_latest_vs_previous_counts(self):
        # an old dip doesn't flag once the latest point recovers
        _, regressions = telemetry.render_report(
            self._trajectory(3.0, 1.0, 3.1), 20
        )
        assert regressions == []

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(telemetry.ENV_REGRESSION_PCT, "50")
        assert telemetry.regression_pct() == 50.0
        monkeypatch.delenv(telemetry.ENV_REGRESSION_PCT)
        assert telemetry.regression_pct() == telemetry.DEFAULT_REGRESSION_PCT
