"""Perf-trajectory telemetry: record files, loading, regression gate."""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro
from repro.analysis import telemetry


class TestBenchDir:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv(telemetry.ENV_DIR, str(tmp_path / "env"))
        assert telemetry.bench_dir(tmp_path / "flag") == tmp_path / "flag"

    def test_env_var_wins_over_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv(telemetry.ENV_DIR, str(tmp_path / "env"))
        assert telemetry.bench_dir() == tmp_path / "env"

    def test_default_is_benchmarks_dir_when_present(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.delenv(telemetry.ENV_DIR, raising=False)
        monkeypatch.chdir(tmp_path)
        assert str(telemetry.bench_dir()) == "."
        (tmp_path / "benchmarks").mkdir()
        assert str(telemetry.bench_dir()) == "benchmarks"

    def test_unknown_area_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown bench area"):
            telemetry.record_path("gpu", tmp_path)
        with pytest.raises(ValueError, match="unknown bench area"):
            telemetry.make_record("gpu", "m", 1.0, [])


class TestRecords:
    def test_record_shape(self):
        record = telemetry.make_record(
            "encoder",
            "batched speedup",
            3.25,
            [{"name": "a", "time_ms": 1.0, "throughput": 2.0, "speedup": 1.0}],
            params={"signals": 4},
            spec_keys={"datc": "abc"},
        )
        assert record["area"] == "encoder"
        assert record["headline"] == {
            "metric": "batched speedup",
            "value": 3.25,
        }
        assert record["host"]["numpy"]
        # The kernel tier a record was taken on must be attributable:
        # backend always one of the registry's names, numba version
        # present (None when numba is not installed).
        assert record["host"]["kernel_backend"] in ("numpy", "compiled")
        assert "numba" in record["host"]
        from repro.kernels import dispatch

        if dispatch.numba_available():
            assert isinstance(record["host"]["numba"], str)
        else:
            assert record["host"]["numba"] is None
        assert record["recorded_at"].endswith("Z")
        assert record["params"] == {"signals": 4}
        assert record["spec_keys"] == {"datc": "abc"}

    def test_append_accumulates_and_loads(self, tmp_path):
        for value in (1.0, 2.0, 3.0):
            path = telemetry.append_record(
                telemetry.make_record("rx", "speedup", value, []),
                directory=tmp_path,
            )
        assert path == tmp_path / "BENCH_rx.json"
        records = json.loads(path.read_text())
        assert [r["headline"]["value"] for r in records] == [1.0, 2.0, 3.0]
        loaded = telemetry.load_trajectories(tmp_path)
        assert set(loaded) == {"rx"}
        assert len(loaded["rx"]) == 3

    def test_corrupt_file_reads_as_empty(self, tmp_path):
        path = tmp_path / "BENCH_link.json"
        path.write_text("{not json")
        assert telemetry.load_trajectories(tmp_path) == {}
        # appending over the corrupt file starts a fresh trajectory
        telemetry.append_record(
            telemetry.make_record("link", "speedup", 2.0, []),
            directory=tmp_path,
        )
        assert len(telemetry.load_trajectories(tmp_path)["link"]) == 1


class TestStrictLoading:
    def test_missing_file_is_not_damage(self, tmp_path):
        assert telemetry.load_trajectories(tmp_path, strict=True) == {}

    def test_corrupt_file_raises_pointed_error(self, tmp_path):
        (tmp_path / "BENCH_queue.json").write_text("{not json")
        with pytest.raises(telemetry.TelemetryError, match="not valid JSON"):
            telemetry.load_trajectories(tmp_path, strict=True)

    def test_empty_list_raises(self, tmp_path):
        (tmp_path / "BENCH_queue.json").write_text("[]")
        with pytest.raises(telemetry.TelemetryError, match="holds no records"):
            telemetry.load_trajectories(tmp_path, strict=True)

    def test_wrong_shape_raises(self, tmp_path):
        (tmp_path / "BENCH_queue.json").write_text('{"area": "queue"}')
        with pytest.raises(telemetry.TelemetryError, match="JSON list"):
            telemetry.load_trajectories(tmp_path, strict=True)

    def test_error_names_the_damaged_file(self, tmp_path):
        (tmp_path / "BENCH_rx.json").write_text("[1, 2]")
        with pytest.raises(telemetry.TelemetryError, match="BENCH_rx.json"):
            telemetry.load_trajectories(tmp_path, strict=True)


class TestConcurrentAppend:
    """The append path is a locked read-modify-write: no lost records."""

    def test_append_leaves_no_lock_sidecar(self, tmp_path):
        # The sidecar exists only while an append holds it; a clean
        # release removes it, so trajectories never accumulate litter.
        telemetry.append_record(
            telemetry.make_record("queue", "speedup", 1.0, []),
            directory=tmp_path,
        )
        assert not (tmp_path / "BENCH_queue.json.lock").exists()
        assert list(tmp_path.glob("*.lock")) == []
        assert set(telemetry.load_trajectories(tmp_path)) == {"queue"}

    def test_threaded_appends_keep_every_record(self, tmp_path):
        def write(base):
            for i in range(5):
                telemetry.append_record(
                    telemetry.make_record("queue", "speedup", base + i, []),
                    directory=tmp_path,
                )

        threads = [
            threading.Thread(target=write, args=(100.0 * t,))
            for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = telemetry.load_trajectories(tmp_path)["queue"]
        values = {r["headline"]["value"] for r in records}
        assert len(records) == 20
        assert values == {100.0 * t + i for t in range(4) for i in range(5)}

    def test_multiprocess_hammer_keeps_every_record(self, tmp_path):
        """4 writer processes x 5 appends -> exactly 20 records survive.

        This is the queue-worker scenario: peers on one host finishing
        shards and recording telemetry into the same BENCH file.
        """
        src = str(Path(repro.__file__).resolve().parent.parent)
        env = os.environ.copy()
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        child = (
            "import sys\n"
            "from repro.analysis import telemetry\n"
            "base = float(sys.argv[1])\n"
            "for i in range(5):\n"
            "    telemetry.append_record(\n"
            "        telemetry.make_record('queue', 'speedup', base + i, []),\n"
            f"        directory={str(tmp_path)!r},\n"
            "    )\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", child, str(100.0 * p)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                text=True,
            )
            for p in range(4)
        ]
        for proc in procs:
            out, _ = proc.communicate(timeout=120)
            assert proc.returncode == 0, out
        records = telemetry.load_trajectories(tmp_path, strict=True)["queue"]
        values = {r["headline"]["value"] for r in records}
        assert len(records) == 20, "concurrent append lost a record"
        assert values == {100.0 * p + i for p in range(4) for i in range(5)}

    def test_stale_fallback_lock_is_broken(self, tmp_path, monkeypatch):
        """With flock unavailable, an orphaned .lock from a dead writer
        must not wedge appends forever — mtime age breaks it."""
        monkeypatch.setitem(sys.modules, "fcntl", None)  # forces fallback
        lock = tmp_path / "BENCH_queue.json.lock"
        lock.write_text("dead-writer")
        old = lock.stat().st_mtime - 2 * telemetry.LOCK_TIMEOUT_S
        os.utime(lock, (old, old))
        telemetry.append_record(
            telemetry.make_record("queue", "speedup", 1.0, []),
            directory=tmp_path,
        )
        assert len(telemetry.load_trajectories(tmp_path)["queue"]) == 1


class TestRegressionGate:
    def _trajectory(self, *values):
        return {
            "encoder": [
                telemetry.make_record("encoder", "batched speedup", v, [])
                for v in values
            ]
        }

    def test_single_point_never_regresses(self):
        table, regressions = telemetry.render_report(self._trajectory(3.0), 20)
        assert "encoder" in table
        assert regressions == []

    def test_drop_within_allowance_passes(self):
        _, regressions = telemetry.render_report(
            self._trajectory(3.0, 2.5), 20
        )
        assert regressions == []

    def test_drop_beyond_allowance_flags(self):
        _, regressions = telemetry.render_report(
            self._trajectory(3.0, 2.0), 20
        )
        assert len(regressions) == 1
        assert "encoder" in regressions[0]
        assert "BENCH_REGRESSION_PCT" in regressions[0]

    def test_only_latest_vs_previous_counts(self):
        # an old dip doesn't flag once the latest point recovers
        _, regressions = telemetry.render_report(
            self._trajectory(3.0, 1.0, 3.1), 20
        )
        assert regressions == []

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(telemetry.ENV_REGRESSION_PCT, "50")
        assert telemetry.regression_pct() == 50.0
        monkeypatch.delenv(telemetry.ENV_REGRESSION_PCT)
        assert telemetry.regression_pct() == telemetry.DEFAULT_REGRESSION_PCT
