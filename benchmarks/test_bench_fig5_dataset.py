"""Bench: Fig. 5 — correlation across the full 190-pattern dataset.

Paper: ATC(0.3 V) correlations range 47-95.2% across patterns while D-ATC
stays within 85-98% ("lower fluctuation"), and D-ATC's event count is
stable across patterns while ATC's is not.
"""

from repro.analysis.experiments import run_fig5

from conftest import print_report


def test_fig5_full_dataset(benchmark, paper_dataset):
    result = benchmark.pedantic(
        run_fig5, kwargs={"dataset": paper_dataset}, rounds=1, iterations=1
    )
    print_report("Fig. 5 — 190-pattern correlation comparison", result.format_table())

    a_lo, a_hi = result.atc.correlation_range
    d_lo, d_hi = result.datc.correlation_range

    # D-ATC band high and tight (paper: 85-98).
    assert d_lo > 85.0
    assert result.datc_summary.mean > 93.0
    # ATC band wide, collapsing for weak subjects (paper: 47-95.2).
    assert a_lo < 60.0
    assert (a_hi - a_lo) > 2.5 * (d_hi - d_lo)
    # Event-count stability (paper: "D-ATC is even stable as a function of
    # the number of transmitted events ... constant thresholding is not").
    assert result.datc.event_spread < 0.5 * result.atc.event_spread
