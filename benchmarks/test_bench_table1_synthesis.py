"""Bench: Table I — post-synthesis results of the DTC.

Paper Table I: 1.8 V, 2 kHz, 512 cells, 12 ports, 11700 um^2, ~70 nW.
The bench regenerates the table from the structural netlist + calibrated
HV-0.18um library, and additionally reports power with *measured* register
activity (replaying a real pattern's comparator stream through the
cycle-accurate DTC — the paper's post-synthesis simulation flow).
"""

import numpy as np

from repro.analysis.experiments import run_table1
from repro.core.config import DATCConfig
from repro.core.datc import datc_encode
from repro.digital.dtc_rtl import DTCRtl
from repro.hardware import build_dtc_netlist, estimate_power, hv180_library
from repro.hardware.power import activity_from_rtl

from conftest import print_report


def test_table1_synthesis(benchmark, paper_dataset):
    table = benchmark.pedantic(run_table1, rounds=3, iterations=1)

    pattern = paper_dataset.pattern(22)
    _, trace = datc_encode(pattern.emg, pattern.fs, DATCConfig(quantized=True))
    activity = activity_from_rtl(DTCRtl(), trace.d_in)
    measured = estimate_power(build_dtc_netlist(), hv180_library(), activity=activity)

    body = table.format_table() + (
        f"\n\nwith measured activity (pattern 22 replayed through the RTL):"
        f"\n  ff activity {activity.ff_activity:.3f} -> dynamic power "
        f"{measured.dynamic_nw:.1f} nW "
        f"(clock {measured.clock_nw:.1f} + seq {measured.sequential_nw:.1f} "
        f"+ comb {measured.combinational_nw:.1f})"
    )
    print_report("Table I — simulation and synthesis results", body)

    assert table.power_supply_v == 1.8
    assert table.clock_hz == 2000.0
    assert table.n_ports == 12
    assert abs(table.n_cells - 512) / 512 < 0.15
    assert abs(table.core_area_um2 - 11_700) / 11_700 < 0.15
    assert abs(table.dynamic_power_nw - 70.0) / 70.0 < 0.30
    # Measured-activity power stays in the same decade as the ~70 nW figure.
    assert 20.0 < measured.dynamic_nw < 200.0
