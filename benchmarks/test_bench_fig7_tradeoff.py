"""Bench: Fig. 7 — events vs correlation trade-off on four patterns.

Paper: sweeping ATC's fixed threshold traces an events/correlation curve
per pattern; D-ATC sits near the knee for *every* pattern without any
per-pattern trimming, while no single fixed threshold does.
"""

from repro.analysis.experiments import run_fig7

from conftest import print_report


def test_fig7_tradeoff(benchmark, paper_dataset):
    result = benchmark.pedantic(
        run_fig7, kwargs={"dataset": paper_dataset}, rounds=1, iterations=1
    )
    print_report("Fig. 7 — events/correlation trade-off, 4 patterns", result.format_table())

    for pid in result.pattern_ids:
        # ATC's event count decreases monotonically with the threshold.
        events = [p.n_events for p in result.atc_sweeps[pid]]
        assert events == sorted(events, reverse=True)
        # D-ATC stays in the high-correlation regime on every pattern.
        assert result.datc_points[pid].correlation_pct > 88.0

    # D-ATC's worst-case correlation across the four patterns beats (or
    # matches) the best achievable by ANY single fixed threshold — that is
    # exactly the per-subject calibration burden D-ATC removes.
    n_vths = len(result.atc_sweeps[result.pattern_ids[0]])
    fixed_worsts = [
        min(result.atc_sweeps[pid][i].correlation_pct for pid in result.pattern_ids)
        for i in range(n_vths)
    ]
    datc_worst = min(
        result.datc_points[pid].correlation_pct for pid in result.pattern_ids
    )
    assert datc_worst > max(fixed_worsts) - 2.0
