"""Microbenchmarks: receiver (decode + score) throughput.

The acceptance gate of the batched receiver engine
(:mod:`repro.rx.decoders`): on a 16-pattern batch of full 20 s recordings,
the batched event-rate decode must beat the per-stream loop by >= 3x (the
loop pays a Python iteration plus an ``np.histogram`` sort per stream; the
batch bins every stream's events with one ``np.bincount``).  The hybrid
D-ATC decode carries more per-row state (level ZOH) and larger matrices,
so its gate is a lower floor; the batched correlation is asserted equal,
not faster — scoring runs on the 50 k-sample reference grid and is
memory-bound either way.
"""

import os
import time

import numpy as np
import pytest

from repro.core.config import ATCConfig, DATCConfig
from repro.core.encoders import encode_batch
from repro.rx.correlation import (
    aligned_correlation_percent,
    aligned_correlation_percent_batch,
)
from repro.rx.decoders import StreamingDecoder, reconstruct_batch, stream_chunks
from repro.rx.reconstruction import reconstruct_hybrid, reconstruct_rate

N_STREAMS = 16


@pytest.fixture(scope="module")
def batch(paper_dataset):
    """16 full-length patterns, their streams (both schemes) and references."""
    patterns = [paper_dataset.pattern(i) for i in range(N_STREAMS)]
    fs = patterns[0].fs
    signals = np.stack([p.emg for p in patterns])
    return {
        "atc": [s for s, _ in encode_batch(signals, fs, ATCConfig())],
        "datc": [s for s, _ in encode_batch(signals, fs, DATCConfig())],
        "references": np.stack([p.ground_truth_envelope() for p in patterns]),
    }


def best_of(fn, repeats=3):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _assert_decode_speedup(streams, scheme, config, loop_fn, minimum):
    # Wall-clock ratios collapse under CPU contention (co-tenant runs,
    # frequency scaling); retry a few times before calling it a failure.
    for attempt in range(3):
        loop_t, loop_out = best_of(loop_fn)
        batch_t, batch_out = best_of(
            lambda: reconstruct_batch(streams, scheme, config)
        )
        speedup = loop_t / batch_t
        print(
            f"\nbatched {scheme} decode (attempt {attempt + 1}): "
            f"loop {loop_t * 1e3:.1f} ms, batch {batch_t * 1e3:.1f} ms "
            f"-> {speedup:.1f}x"
        )
        if speedup >= minimum:
            break
    for row, one in zip(batch_out, loop_out):
        assert np.array_equal(row, one)
    assert speedup >= minimum


def test_rate_decode_batch_speedup_over_loop(batch):
    """Acceptance: batched rate decode >= 3x the per-stream loop, 16 streams.

    ~3.5x on an idle machine; RX_SPEEDUP_MIN lowers the bar on noisy
    shared runners (CI) where wall-clock ratios are unreliable.
    """
    minimum = float(os.environ.get("RX_SPEEDUP_MIN", "3.0"))
    streams = batch["atc"]
    _assert_decode_speedup(
        streams,
        "atc",
        ATCConfig(),
        lambda: [reconstruct_rate(s) for s in streams],
        minimum,
    )


def test_hybrid_decode_batch_speedup_over_loop(batch):
    """The hybrid decode gains less (per-row ZOH state, bigger matrices)."""
    minimum = float(os.environ.get("RX_DATC_SPEEDUP_MIN", "1.3"))
    config = DATCConfig()
    streams = batch["datc"]
    _assert_decode_speedup(
        streams,
        "datc",
        config,
        lambda: [
            reconstruct_hybrid(s, vref=config.vref, dac_bits=config.dac_bits)
            for s in streams
        ],
        minimum,
    )


def test_batched_scoring_matches_loop(batch):
    """One stacked correlation call == the per-stream scoring loop, exactly."""
    references = batch["references"]
    for scheme, config in (("atc", ATCConfig()), ("datc", DATCConfig())):
        recons = reconstruct_batch(batch[scheme], scheme, config)
        batched = aligned_correlation_percent_batch(recons, references)
        loop = [
            aligned_correlation_percent(recons[i], references[i])
            for i in range(N_STREAMS)
        ]
        assert np.array_equal(batched, np.array(loop))
        assert np.all(batched > 40.0)  # sanity: the decode carries signal


def test_streaming_decoder_throughput(benchmark, batch):
    """A live chunked decode must run far faster than real time."""
    stream = batch["datc"][0]
    chunk_s = 0.1  # 100 ms chunks, the wearable front-end cadence
    bounds = np.arange(chunk_s, stream.duration_s, chunk_s)
    chunks = stream_chunks(stream, np.append(bounds, stream.duration_s))

    def run():
        decoder = StreamingDecoder(scheme="datc")
        for chunk in chunks:
            decoder.push(chunk)
        decoder.finalize()
        return decoder.envelope

    envelope = benchmark(run)
    assert np.array_equal(envelope, reconstruct_hybrid(stream))
