"""Bench: DTC timing closure and generated-RTL equivalence.

The paper's hardware section runs post-synthesis timing analysis and
re-simulates the netlist against the Matlab reference.  This bench does
the analytical analogue: the static-timing budget of the critical path
(showing the 2 kHz operating point's enormous slack) and a full
equivalence run of the *generated Verilog text* against the cycle-accurate
Python model on a real pattern.
"""

import numpy as np

from repro.core.config import DATCConfig
from repro.core.datc import datc_encode
from repro.digital.dtc_rtl import DTCRtl
from repro.hardware.timing import estimate_timing
from repro.hardware.verilog import generate_dtc_verilog
from repro.hardware.verilog_sim import simulate_dtc_verilog

from conftest import print_report


def test_timing_budget(benchmark):
    report = benchmark.pedantic(estimate_timing, rounds=3, iterations=1)
    print_report("DTC static timing (HV 0.18 um, worst corner)", report.format_table())

    # Timing closes in tens of ns: 5-200 MHz f_max.
    assert 5e6 < report.f_max_hz < 200e6
    # The paper's 2 kHz clock leaves >1000x slack — the reason synthesis
    # can area-optimise everything.
    assert report.slack_ratio > 1000.0


def test_generated_verilog_matches_rtl(benchmark, paper_dataset):
    """Sec. III-C: 'Verilog results perfectly match the Matlab simulation
    outputs' — our version: the emitted Verilog, executed, matches the
    cycle-accurate model bit for bit over a full 20 s pattern."""
    pattern = paper_dataset.pattern(22)
    _, trace = datc_encode(pattern.emg, pattern.fs, DATCConfig(quantized=True))
    text = generate_dtc_verilog()

    def run():
        return simulate_dtc_verilog(text, trace.d_in)

    sim = benchmark.pedantic(run, rounds=1, iterations=1)
    delayed = np.concatenate([[0], trace.d_in[:-1]]).astype(np.uint8)
    reference = DTCRtl().run(delayed)

    n_match = int(np.sum(sim["set_vth"] == reference["set_vth"]))
    print_report(
        "Generated-Verilog equivalence",
        f"{n_match}/{sim['set_vth'].size} cycles bit-identical over "
        f"{pattern.duration_s:.0f} s ({trace.d_in.size} clock cycles)",
    )
    assert n_match == sim["set_vth"].size
