"""Microbenchmarks: encoder and RTL throughput.

These are conventional pytest-benchmark timing runs (many rounds): the
frame-vectorised behavioural encoder must process a full 20 s / 50000-
sample pattern in milliseconds, and the cycle-accurate RTL model must
sustain well over its own 2 kHz real-time clock.  The batched-vs-loop
test additionally *asserts* the speedup of the 2-D frame-vectorised
D-ATC path over the per-signal Python loop on a 16-signal batch.
"""

import os
import time

import numpy as np
import pytest

from repro.core.atc import atc_encode
from repro.core.config import ATCConfig, DATCConfig
from repro.core.datc import datc_encode
from repro.core.encoders import DATCEncoder, datc_encode_batch
from repro.digital.dtc_rtl import DTCRtl
from repro.rx.reconstruction import reconstruct_hybrid


@pytest.fixture(scope="module")
def pattern(paper_dataset):
    return paper_dataset.pattern(22)


def test_datc_encode_throughput(benchmark, pattern):
    stream, _ = benchmark(datc_encode, pattern.emg, pattern.fs, DATCConfig())
    assert stream.n_events > 0


def test_atc_encode_throughput(benchmark, pattern):
    stream, _ = benchmark(atc_encode, pattern.emg, pattern.fs, ATCConfig())
    assert stream.n_events > 0


def test_rtl_simulation_throughput(benchmark, pattern):
    _, trace = datc_encode(pattern.emg, pattern.fs, DATCConfig(quantized=True))
    d_in = trace.d_in[:4000]  # 2 s of clock cycles

    def run():
        return DTCRtl().run(d_in)

    out = benchmark(run)
    assert out["set_vth"].size == 4000


def test_reconstruction_throughput(benchmark, pattern):
    stream, _ = datc_encode(pattern.emg, pattern.fs)
    recon = benchmark(reconstruct_hybrid, stream)
    assert recon.size > 0


def test_dataset_generation_throughput(benchmark, paper_dataset):
    pattern = benchmark(paper_dataset.pattern, 7)
    assert pattern.n_samples == 50_000


def test_datc_chunked_streaming_throughput(benchmark, pattern):
    chunks = np.array_split(pattern.emg, 50)  # ~0.4 s per chunk

    def run():
        encoder = DATCEncoder(pattern.fs)
        for chunk in chunks:
            encoder.push(chunk)
        encoder.finalize()
        return encoder.stream

    stream = benchmark(run)
    one_shot, _ = datc_encode(pattern.emg, pattern.fs)
    assert np.array_equal(stream.times, one_shot.times)


def test_datc_batch_speedup_over_loop(paper_dataset):
    """Acceptance: batched D-ATC >= 3x the per-signal loop on 16 signals.

    ~8x on an idle machine; ENCODER_SPEEDUP_MIN lowers the bar on noisy
    shared runners (CI) where wall-clock ratios are unreliable.
    """
    signals = np.stack([paper_dataset.pattern(i).emg for i in range(16)])
    fs = paper_dataset.pattern(0).fs
    config = DATCConfig()

    def best_of(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
        return best, out

    minimum = float(os.environ.get("ENCODER_SPEEDUP_MIN", "3.0"))
    # Wall-clock ratios collapse under CPU contention (co-tenant runs,
    # frequency scaling); retry a few times before calling it a failure.
    for attempt in range(3):
        loop_t, loop_out = best_of(
            lambda: [datc_encode(row, fs, config) for row in signals]
        )
        batch_t, batch_out = best_of(
            lambda: datc_encode_batch(signals, fs, config)
        )
        speedup = loop_t / batch_t
        print(
            f"\nbatched D-ATC (attempt {attempt + 1}): "
            f"loop {loop_t * 1e3:.1f} ms, batch {batch_t * 1e3:.1f} ms "
            f"-> {speedup:.1f}x"
        )
        if speedup >= minimum:
            break

    for (s1, _), (s2, _) in zip(loop_out, batch_out):
        assert np.array_equal(s1.times, s2.times)
        assert np.array_equal(s1.levels, s2.levels)
    assert speedup >= minimum
