"""Microbenchmarks: encoder and RTL throughput.

These are conventional pytest-benchmark timing runs (many rounds): the
frame-vectorised behavioural encoder must process a full 20 s / 50000-
sample pattern in milliseconds, and the cycle-accurate RTL model must
sustain well over its own 2 kHz real-time clock.
"""

import numpy as np
import pytest

from repro.core.atc import atc_encode
from repro.core.config import ATCConfig, DATCConfig
from repro.core.datc import datc_encode
from repro.digital.dtc_rtl import DTCRtl
from repro.rx.reconstruction import reconstruct_hybrid


@pytest.fixture(scope="module")
def pattern(paper_dataset):
    return paper_dataset.pattern(22)


def test_datc_encode_throughput(benchmark, pattern):
    stream, _ = benchmark(datc_encode, pattern.emg, pattern.fs, DATCConfig())
    assert stream.n_events > 0


def test_atc_encode_throughput(benchmark, pattern):
    stream, _ = benchmark(atc_encode, pattern.emg, pattern.fs, ATCConfig())
    assert stream.n_events > 0


def test_rtl_simulation_throughput(benchmark, pattern):
    _, trace = datc_encode(pattern.emg, pattern.fs, DATCConfig(quantized=True))
    d_in = trace.d_in[:4000]  # 2 s of clock cycles

    def run():
        return DTCRtl().run(d_in)

    out = benchmark(run)
    assert out["set_vth"].size == 4000


def test_reconstruction_throughput(benchmark, pattern):
    stream, _ = datc_encode(pattern.emg, pattern.fs)
    recon = benchmark(reconstruct_hybrid, stream)
    assert recon.size > 0


def test_dataset_generation_throughput(benchmark, paper_dataset):
    pattern = benchmark(paper_dataset.pattern, 7)
    assert pattern.n_samples == 50_000
