"""Bench: Fig. 2 — dynamic vs constant thresholding concept demo.

Regenerates the per-frame event rasters of Fig. 2(A)-(E): a constant-high
threshold misses the weak segment, a constant-low one over-fires on the
strong segment, and D-ATC balances both while also reporting its 4-bit
level (the packet payload of Fig. 2(E)).
"""

from repro.analysis.experiments import run_fig2

from conftest import print_report


def test_fig2_concept(benchmark):
    result = benchmark.pedantic(run_fig2, rounds=3, iterations=1)
    print_report("Fig. 2 — thresholding concept", result.format_table())

    # The constant-high threshold is blind to the weak (middle) segment.
    assert result.atc_high.per_frame[3:6].sum() == 0
    # D-ATC senses it.
    assert result.datc.per_frame[3:6].sum() > 0
    # The constant-low threshold over-fires overall.
    assert result.atc_low.total > result.atc_high.total
    # The dynamic level follows the amplitude staircase: the level chosen
    # during the strong segment exceeds the weak-segment one.
    assert result.datc_levels[6:].max() > result.datc_levels[:3].max()
