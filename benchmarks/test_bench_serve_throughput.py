"""Acceptance benchmarks for the streaming session server.

The tentpole contract: ``repro bench --serve`` pushes every session's
chunks through a real TCP loopback socket into one
:class:`~repro.runtime.server.SessionServer` and must (a) produce
envelopes bit-identical to the scalar one-shot path, (b) finish a
SIGTERM drain of a live subprocess server with exit 0 and zero
unfinalized sessions, and (c) — at the gate count — beat the scalar
loop by ``SERVE_SPEEDUP_MIN``.  The speedup comes from the batched
``push_many`` decode amortised across sessions, not from parallelism:
both legs are single-threaded, so unlike the SessionBatch gate this one
does not need a multi-core box.

The smoke legs run tiny session counts where socket overhead dominates,
so they assert the *machinery* (bit-identity, drain, telemetry record,
gate exit code) and leave the speedup floor to the full-size gate.
"""

import json
import os

import pytest

from repro import cli

SMOKE_ARGS = [
    "bench",
    "--serve",
    "--serve-sessions",
    "8,32",
    "--serve-connections",
    "4",
    "--signals",
    "4",
    "--duration",
    "2",
    "--chunk",
    "500",
    "--repeats",
    "1",
]


def _smoke_record():
    """The BENCH_serve.json written by the smoke run (conftest routes
    REPRO_BENCH_DIR into the test's tmp dir)."""
    root = os.environ["REPRO_BENCH_DIR"]
    path = os.path.join(root, "BENCH_serve.json")
    assert os.path.exists(path), "smoke run must record its trajectory point"
    with open(path) as f:
        return json.load(f)


def test_cli_serve_smoke(monkeypatch, capsys):
    """`bench --serve` round-trips, drains, and records — no floor."""
    monkeypatch.delenv("SERVE_SPEEDUP_MIN", raising=False)
    rc = cli.main(SMOKE_ARGS)
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "bit-identical to scalar streaming: yes" in out
    assert "SIGTERM drain: exit 0" in out
    assert "unfinalized 0" in out
    points = _smoke_record()
    latest = points[-1]
    assert latest["area"] == "serve"
    assert latest["headline"]["value"] > 0
    names = {row["name"] for row in latest["rows"]}
    assert {"scalar-8", "served-8", "scalar-32", "served-32"} <= names
    served = [r for r in latest["rows"] if r["name"].startswith("served-")]
    for row in served:
        # Percentiles exclude the documented warmup push and are real
        # measurements, not placeholders.
        assert row["push_p50_ms"] > 0
        assert row["push_p99_ms"] >= row["push_p50_ms"]


def test_cli_serve_gate_failure_exit_code(monkeypatch, capsys):
    """An unreachable floor must flip the exit code — the CI gate bites."""
    monkeypatch.setenv("SERVE_SPEEDUP_MIN", "1e9")
    rc = cli.main(SMOKE_ARGS)
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAIL" in out


def test_serve_speedup_gate(monkeypatch, capsys):
    """Acceptance: served beats scalar at 256 sessions through the socket.

    SERVE_SPEEDUP_MIN raises/lowers the bar (CI pins it explicitly);
    the default floor is deliberately modest — the win is batched
    decode minus socket overhead, measured on shared runners.
    """
    minimum = os.environ.get("SERVE_SPEEDUP_MIN", "1.1")
    monkeypatch.setenv("SERVE_SPEEDUP_MIN", minimum)
    rc = cli.main(
        [
            "bench",
            "--serve",
            "--serve-sessions",
            "256",
            "--serve-connections",
            "32",
            "--signals",
            "4",
            "--duration",
            "2",
            "--repeats",
            "2",
        ]
    )
    out = capsys.readouterr().out
    assert rc == 0, out
    latest = _smoke_record()[-1]
    assert latest["headline"]["value"] >= float(minimum)
