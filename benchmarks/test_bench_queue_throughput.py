"""Acceptance benchmarks for the fault-tolerant experiment queue.

The tentpole contract: a ``bench --queue`` run sweeps the same dataset
through real ``repro worker`` subprocesses at each worker count, asserts
every queued result bit-identical to the serial sweep *before* any
timing is reported, and records the trajectory point to
``BENCH_queue.json``.  The ``QUEUE_SPEEDUP_MIN`` throughput gate
(acceptance floor 1.5x for 2 workers vs serial) needs a second core to
race on and self-skips on single-core boxes; the smoke legs below run
everywhere, exercising the full bench path — worker spawn/ready
handshake, submission, drain, bit-identity assertion, telemetry record,
and the gate's skip/fail exit codes.
"""

import json
import os

import pytest

from repro import cli

MULTICORE = (os.cpu_count() or 1) > 1

SMOKE_ARGS = [
    "bench",
    "--queue",
    "--queue-workers",
    "1,2",
    "--signals",
    "4",
    "--duration",
    "2",
    "--repeats",
    "1",
]


def _smoke_record():
    root = os.environ["REPRO_BENCH_DIR"]
    path = os.path.join(root, "BENCH_queue.json")
    assert os.path.exists(path), "queue bench must record its trajectory"
    with open(path) as f:
        return json.load(f)


def test_cli_queue_smoke(capsys):
    """`bench --queue` drains through real workers and records telemetry."""
    rc = cli.main(SMOKE_ARGS)
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "queued sweeps bit-identical to serial: yes" in out
    records = _smoke_record()
    record = records[-1]
    assert record["area"] == "queue"
    assert record["headline"]["metric"] == (
        "2-worker-vs-serial queued sweep speedup"
    )
    assert record["headline"]["value"] > 0
    names = [row["name"] for row in record["rows"]]
    assert names == ["serial", "queued-1", "queued-2"]
    assert record["params"]["workers"] == [1, 2]
    assert all(row["time_ms"] > 0 for row in record["rows"])


def test_cli_queue_remote_transport_smoke(capsys):
    """`bench --queue --transport remote` runs the sweep through a
    dispatcher subprocess and no-mount workers, same bit-identity gate,
    and records rows under the remote label with the transport param."""
    rc = cli.main(SMOKE_ARGS + ["--transport", "remote"])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "remote sweeps bit-identical to serial: yes" in out
    records = _smoke_record()
    record = records[-1]
    assert record["area"] == "queue"
    # Same headline metric name as the file transport: the trajectory
    # stays one comparable series across transports.
    assert record["headline"]["metric"] == (
        "2-worker-vs-serial queued sweep speedup"
    )
    names = [row["name"] for row in record["rows"]]
    assert names == ["serial", "remote-1", "remote-2"]
    assert record["params"]["transport"] == "remote"


def test_gate_skips_on_single_core(monkeypatch, capsys):
    """An unreachable floor must not fail the run on a 1-core box."""
    if MULTICORE:
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
    monkeypatch.setenv("QUEUE_SPEEDUP_MIN", "1000")
    rc = cli.main(
        ["bench", "--queue", "--queue-workers", "1", "--signals", "2",
         "--duration", "2", "--repeats", "1"]
    )
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "skipping QUEUE_SPEEDUP_MIN" in out


def test_gate_fails_below_floor_on_multicore(monkeypatch, capsys):
    """With cores available, an absurd floor exits 1 with a FAIL line."""
    if not MULTICORE:
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        pytest.skip("wall-clock gate needs a real second core")
    monkeypatch.setenv("QUEUE_SPEEDUP_MIN", "1000")
    rc = cli.main(
        ["bench", "--queue", "--queue-workers", "1", "--signals", "2",
         "--duration", "2", "--repeats", "1"]
    )
    out = capsys.readouterr().out
    assert rc == 1
    assert "below QUEUE_SPEEDUP_MIN" in out


@pytest.mark.skipif(
    not MULTICORE, reason="speedup gate needs a second core to race on"
)
def test_two_workers_meet_the_acceptance_floor(monkeypatch, capsys):
    """The acceptance gate proper: 2 workers vs serial >= 1.5x."""
    monkeypatch.setenv(
        "QUEUE_SPEEDUP_MIN", os.environ.get("QUEUE_SPEEDUP_MIN", "1.5")
    )
    rc = cli.main(
        ["bench", "--queue", "--queue-workers", "2", "--signals", "16",
         "--duration", "4", "--repeats", "2"]
    )
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "meets QUEUE_SPEEDUP_MIN" in out
