"""Ablation benches for the design choices the paper calls out.

* **DAC resolution** — "Different DAC resolution have been examined to
  determine the best trade-off between accuracy and complexity": we sweep
  2-6 bits and report correlation, symbol cost, and hardware cost.
* **Frame size** — the 2-bit Frame_selector's 100/200/400/800 options.
* **Predictor weights** — "determined empirically based on a very large
  set of data": we compare the paper's (0.35, 0.65, 1) against uniform,
  memoryless and strongly-recency-weighted alternatives.
* **Pulse loss** — "artifacts effect is similar to pulse missing": D-ATC
  correlation under event erasures.
"""

import numpy as np

from repro.analysis.sweeps import (
    dac_resolution_sweep,
    frame_size_sweep,
    pulse_loss_sweep,
    weight_sweep,
)
from repro.core.config import DATCConfig
from repro.hardware.report import generate_table1

from conftest import print_report


def test_dac_resolution_ablation(benchmark, paper_dataset):
    pattern = paper_dataset.pattern(22)
    points = benchmark.pedantic(
        dac_resolution_sweep, args=(pattern,), rounds=1, iterations=1
    )
    lines = [f"{'bits':>5} {'corr %':>8} {'events':>8} {'symbols':>9} "
             f"{'cells':>7} {'power nW':>9}"]
    for p in points:
        bits = int(p.parameter)
        t1 = generate_table1(
            DATCConfig(dac_bits=bits, n_levels=1 << bits,
                       interval_step=0.48 / (1 << bits),
                       initial_level=(1 << bits) // 2)
        )
        lines.append(
            f"{bits:>5d} {p.correlation_pct:>8.2f} {p.n_events:>8d} "
            f"{p.n_symbols:>9d} {t1.n_cells:>7d} {t1.dynamic_power_nw:>9.1f}"
        )
    print_report("Ablation — DAC resolution (accuracy vs complexity)", "\n".join(lines))

    by_bits = {int(p.parameter): p for p in points}
    # 4 bits is the knee: within 2% of 6 bits at 2 fewer symbols/event.
    assert by_bits[6].correlation_pct - by_bits[4].correlation_pct < 2.0
    # Very coarse DACs hurt.
    assert by_bits[2].correlation_pct < by_bits[4].correlation_pct + 1.0


def test_frame_size_ablation(benchmark, paper_dataset):
    pattern = paper_dataset.pattern(22)
    points = benchmark.pedantic(frame_size_sweep, args=(pattern,), rounds=1, iterations=1)
    lines = [f"{'frame':>6} {'corr %':>8} {'events':>8}"]
    lines += [
        f"{int(p.parameter):>6d} {p.correlation_pct:>8.2f} {p.n_events:>8d}"
        for p in points
    ]
    print_report("Ablation — frame size (adaptation speed)", "\n".join(lines))

    by_frame = {int(p.parameter): p for p in points}
    # On full 20 s recordings every frame size tracks well...
    for p in points:
        assert p.correlation_pct > 85.0
    # ...but the fastest frame adapts best on dynamic grip protocols.
    assert by_frame[100].correlation_pct >= by_frame[800].correlation_pct - 1.0


def test_weight_ablation(benchmark, paper_dataset):
    pattern = paper_dataset.pattern(22)
    results = benchmark.pedantic(weight_sweep, args=(pattern,), rounds=1, iterations=1)
    lines = [f"{'weights (W1,W2,W3)':>22} {'corr %':>8} {'events':>8}"]
    lines += [
        f"{str(w):>22} {p.correlation_pct:>8.2f} {p.n_events:>8d}"
        for w, p in results
    ]
    print_report("Ablation — predictor weights", "\n".join(lines))

    best = max(p.correlation_pct for _, p in results)
    paper_point = results[0][1]
    assert paper_point.correlation_pct > best - 3.0


def test_pulse_loss_ablation(benchmark, paper_dataset):
    pattern = paper_dataset.pattern(22)
    probs = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5)
    points = benchmark.pedantic(
        pulse_loss_sweep, args=(pattern, probs), rounds=1, iterations=1
    )
    lines = [f"{'loss':>6} {'corr %':>8} {'events':>8}"]
    lines += [
        f"{p.parameter:>6.2f} {p.correlation_pct:>8.2f} {p.n_events:>8d}"
        for p in points
    ]
    print_report("Ablation — robustness to pulse loss (artifact model)", "\n".join(lines))

    base = points[0].correlation_pct
    by_prob = {p.parameter: p for p in points}
    # Graceful degradation: 20% loss costs only a few correlation points.
    assert by_prob[0.2].correlation_pct > base - 5.0
    # Even half the events gone keeps the envelope usable.
    assert by_prob[0.5].correlation_pct > base - 15.0
    # Degradation is monotone-ish (allow small non-monotonic wiggle).
    corrs = [p.correlation_pct for p in points]
    assert corrs[-1] <= corrs[0]
