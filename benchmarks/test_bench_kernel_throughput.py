"""Acceptance benchmarks for the compiled kernel tier.

With numba installed, the jitted D-ATC frame scan must beat the numpy
frame loop by ``KERNEL_SPEEDUP_MIN`` (default 3x) on a 32-signal x 60 s
batch with *exact* bit-identity, and the fused correlation kernel must
stay within its documented tolerance while being no slower.  Without
numba the speedup gates skip; the fallback tests below run everywhere
and pin down the degraded-gracefully contract: one warning, results
byte-identical to the default numpy path.
"""

import os
import time
import warnings

import numpy as np
import pytest

from repro.core.config import DATCConfig
from repro.core.encoders import datc_encode_batch
from repro.kernels import dispatch
from repro.kernels.correlation import TOLERANCE_PCT
from repro.rx.correlation import aligned_correlation_percent_batch
from repro.rx.decoders import reconstruct_batch
from repro.signals.dataset import DatasetSpec

NUMBA = dispatch.numba_available()
# Wall-clock ratios on a single-core box measure scheduler noise, not
# kernels; the speedup gates need a real core to race on.
MULTICORE = (os.cpu_count() or 1) > 1


@pytest.fixture(autouse=True)
def clean_dispatch(monkeypatch):
    monkeypatch.delenv(dispatch.ENV_VAR, raising=False)
    dispatch._reset_for_tests()
    yield
    dispatch._reset_for_tests()


@pytest.fixture(scope="module")
def batch():
    """The acceptance workload: 32 signals x 60 s at the paper's rate."""
    dataset = DatasetSpec(n_patterns=32, duration_s=60.0, seed=2015)
    patterns = [dataset.pattern(i) for i in range(32)]
    signals = np.stack([p.emg for p in patterns])
    references = np.stack([p.ground_truth_envelope() for p in patterns])
    return signals, references, patterns[0].fs


def _best_of(fn, repeats=3):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _assert_streams_identical(ref, out):
    for (s_ref, t_ref), (s_out, t_out) in zip(ref, out):
        assert np.array_equal(s_out.times, s_ref.times)
        assert np.array_equal(s_out.levels, s_ref.levels)
        assert np.array_equal(t_out.d_in, t_ref.d_in)
        assert np.array_equal(t_out.vth, t_ref.vth)
        assert np.array_equal(t_out.frame_avr, t_ref.frame_avr)


@pytest.mark.skipif(not NUMBA, reason="compiled tier needs numba")
@pytest.mark.skipif(not MULTICORE, reason="wall-clock gate needs >1 core")
def test_compiled_datc_encode_speedup(batch):
    """Acceptance: compiled D-ATC batch encode >= 3x numpy, bit-exact.

    KERNEL_SPEEDUP_MIN lowers the bar on noisy shared runners.
    """
    signals, _, fs = batch
    config = DATCConfig()
    minimum = float(os.environ.get("KERNEL_SPEEDUP_MIN", "3.0"))

    with dispatch.use_backend("compiled"):
        datc_encode_batch(signals[:2, : int(fs)], fs, config)  # JIT warm-up

    for attempt in range(3):
        t_np, ref = _best_of(lambda: datc_encode_batch(signals, fs, config))
        with dispatch.use_backend("compiled"):
            t_cc, out = _best_of(
                lambda: datc_encode_batch(signals, fs, config)
            )
        speedup = t_np / t_cc
        print(
            f"\ncompiled D-ATC (attempt {attempt + 1}): "
            f"numpy {t_np * 1e3:.1f} ms, compiled {t_cc * 1e3:.1f} ms "
            f"-> {speedup:.1f}x"
        )
        if speedup >= minimum:
            break

    _assert_streams_identical(ref, out)
    assert speedup >= minimum


@pytest.mark.skipif(not NUMBA, reason="compiled tier needs numba")
@pytest.mark.skipif(not MULTICORE, reason="wall-clock gate needs >1 core")
def test_fused_scoring_tolerance_and_no_slower(batch):
    """The fused scorer stays inside TOLERANCE_PCT and is not slower."""
    signals, references, fs = batch
    config = DATCConfig()
    streams = [s for s, _ in datc_encode_batch(signals, fs, config)]
    recons = reconstruct_batch(streams, "datc", config)

    with dispatch.use_backend("compiled"):
        aligned_correlation_percent_batch(recons[:2], references[:2])  # warm

    for attempt in range(3):
        t_np, ref = _best_of(
            lambda: aligned_correlation_percent_batch(recons, references)
        )
        with dispatch.use_backend("compiled"):
            t_cc, out = _best_of(
                lambda: aligned_correlation_percent_batch(recons, references)
            )
        if t_cc <= t_np:
            break
    print(
        f"\nfused scoring: numpy {t_np * 1e3:.1f} ms, "
        f"compiled {t_cc * 1e3:.1f} ms ({t_np / t_cc:.1f}x)"
    )
    assert np.max(np.abs(out - ref)) <= TOLERANCE_PCT
    assert t_cc <= t_np


def test_fallback_results_byte_identical(batch):
    """Without numba, 'compiled' runs the numpy kernels: same bytes out.

    (With numba installed the encode comparison still holds — the D-ATC
    kernel is exact — so this test runs everywhere.)
    """
    signals, references, fs = batch
    small = signals[:4, : int(4 * fs)]
    config = DATCConfig()
    ref = datc_encode_batch(small, fs, config)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", dispatch.KernelFallbackWarning)
        with dispatch.use_backend("compiled"):
            out = datc_encode_batch(small, fs, config)
    _assert_streams_identical(ref, out)
    if not NUMBA:
        # scoring too: fallback serves the very same numpy function
        streams = [s for s, _ in ref]
        recons = reconstruct_batch(streams, "datc", config)
        refs4 = references[:4]
        scored_np = aligned_correlation_percent_batch(recons, refs4)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", dispatch.KernelFallbackWarning)
            with dispatch.use_backend("compiled"):
                scored_cc = aligned_correlation_percent_batch(recons, refs4)
        assert np.array_equal(scored_cc, scored_np)


@pytest.mark.skipif(NUMBA, reason="fallback warning only fires without numba")
def test_fallback_warns_once_per_process():
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        dispatch.use_backend("compiled")
        dispatch.active_backend()
        dispatch.active_backend()
    ours = [
        w
        for w in caught
        if issubclass(w.category, dispatch.KernelFallbackWarning)
    ]
    assert len(ours) == 1
