"""Microbenchmarks: IR-UWB link (modulate + demodulate + score) throughput.

The acceptance gates of the vectorised link engine (`repro.uwb`):

* `simulate_link_batch` on a 16-pattern batch of full 20 s D-ATC streams
  must beat the per-stream loop path (per-stream modulation, the per-pulse
  reference demodulator, per-stream matching) by >= 3x, with every output
  bit-identical.
* The vectorised OOK demodulator must beat the per-pulse reference loop by
  >= 5x on a 50k-pulse train, bit-identical on clean *and*
  erased/jittered/spurious pulse patterns.

Both ratios collapse on contended shared runners, so CI lowers the bars
via LINK_SPEEDUP_MIN / LINK_DEMOD_SPEEDUP_MIN (like RX_SPEEDUP_MIN).
"""

import os
import time

import numpy as np
import pytest

from repro.core.config import DATCConfig
from repro.core.encoders import encode_batch
from repro.core.events import EventStream
from repro.uwb.channel import UWBChannel
from repro.uwb.link import LinkConfig, _link_result, simulate_link_batch
from repro.uwb.modulation import _ook_demodulate_loop, ook_demodulate, ook_modulate

N_STREAMS = 16


@pytest.fixture(scope="module")
def datc_streams(paper_dataset):
    """16 full-length 20 s patterns encoded to D-ATC streams."""
    patterns = [paper_dataset.pattern(i) for i in range(N_STREAMS)]
    fs = patterns[0].fs
    signals = np.stack([p.emg for p in patterns])
    return [s for s, _ in encode_batch(signals, fs, DATCConfig())]


def best_of(fn, repeats=3):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def _loop_link(streams, config):
    """The pre-vectorisation per-stream link path, kept as ground truth."""
    results = []
    channel = UWBChannel()
    for stream in streams:
        bits = stream.symbols_per_event - 1
        train = ook_modulate(stream, config.symbol_period_s, bits)
        rx_stream = _ook_demodulate_loop(
            train.pulse_times, stream.duration_s, config.symbol_period_s,
            bits, clock_hz=stream.clock_hz,
        )
        results.append(_link_result(stream, rx_stream, train, config, channel))
    return results


def test_link_batch_speedup_over_loop(datc_streams):
    """Acceptance: batched link >= 3x the per-stream loop on 16 streams."""
    minimum = float(os.environ.get("LINK_SPEEDUP_MIN", "3.0"))
    config = LinkConfig()
    # Wall-clock ratios collapse under CPU contention (co-tenant runs,
    # frequency scaling); retry a few times before calling it a failure.
    for attempt in range(3):
        loop_t, loop_out = best_of(lambda: _loop_link(datc_streams, config))
        batch_t, batch_out = best_of(
            lambda: simulate_link_batch(datc_streams, config)
        )
        speedup = loop_t / batch_t
        print(
            f"\nbatched link (attempt {attempt + 1}): "
            f"loop {loop_t * 1e3:.1f} ms, batch {batch_t * 1e3:.1f} ms "
            f"-> {speedup:.1f}x"
        )
        if speedup >= minimum:
            break
    for batch, loop in zip(batch_out, loop_out):
        assert np.array_equal(batch.rx_stream.times, loop.rx_stream.times)
        assert np.array_equal(batch.rx_stream.levels, loop.rx_stream.levels)
        assert batch.n_pulses == loop.n_pulses
        assert batch.n_symbols == loop.n_symbols
        assert batch.tx_energy_j == loop.tx_energy_j
        assert batch.event_delivery_ratio == loop.event_delivery_ratio
        assert batch.level_error_ratio == loop.level_error_ratio
    assert speedup >= minimum


def _big_train(n_events=12_500, bits=4, seed=2015):
    """An OOK train of ~50k pulses (marker + full 4-bit payload each)."""
    spacing = 1e-4  # 2x the 5-slot burst span at 1e-5 s/slot
    times = (np.arange(n_events) + 1) * spacing
    levels = np.full(n_events, (1 << bits) - 1, dtype=np.int64)
    stream = EventStream(
        times=times,
        duration_s=float(times[-1] + 1.0),
        levels=levels,
        symbols_per_event=1 + bits,
    )
    return ook_modulate(stream, 1e-5, bits), stream


def test_ook_demod_vectorised_speedup():
    """Acceptance: vectorised OOK demod >= 5x the loop on a 50k-pulse train."""
    minimum = float(os.environ.get("LINK_DEMOD_SPEEDUP_MIN", "5.0"))
    train, stream = _big_train()
    assert train.n_pulses >= 50_000
    for attempt in range(3):
        loop_t, loop_rx = best_of(
            lambda: _ook_demodulate_loop(
                train.pulse_times, stream.duration_s, 1e-5, 4
            )
        )
        vec_t, vec_rx = best_of(
            lambda: ook_demodulate(train.pulse_times, stream.duration_s, 1e-5, 4)
        )
        speedup = loop_t / vec_t
        print(
            f"\nvectorised OOK demod (attempt {attempt + 1}): "
            f"loop {loop_t * 1e3:.1f} ms, vec {vec_t * 1e3:.1f} ms "
            f"-> {speedup:.1f}x"
        )
        if speedup >= minimum:
            break
    assert np.array_equal(vec_rx.times, loop_rx.times)
    assert np.array_equal(vec_rx.levels, loop_rx.levels)
    assert np.array_equal(vec_rx.levels, stream.levels)
    assert speedup >= minimum


def test_ook_demod_bit_identical_on_corrupted_train():
    """Erasures + jitter + spurious pulses: vectorised == loop, exactly."""
    train, stream = _big_train(n_events=2_000)
    rng = np.random.default_rng(7)
    channel = UWBChannel(
        erasure_prob=0.15, jitter_rms_s=1.5e-6, false_pulse_rate_hz=200.0
    )
    rx_times = channel.transmit(train, rng=rng)
    vec = ook_demodulate(rx_times, stream.duration_s, 1e-5, 4)
    loop = _ook_demodulate_loop(rx_times, stream.duration_s, 1e-5, 4)
    assert np.array_equal(vec.times, loop.times)
    assert np.array_equal(vec.levels, loop.levels)
