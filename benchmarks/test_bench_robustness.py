"""Bench: robustness of D-ATC to input SNR and to receiver decoder choice.

Three studies beyond the paper's headline figures:

* **SNR sweep** — the paper claims the scheme "is robust w.r.t. the sEMG
  signal variability"; we quantify correlation vs additive input noise
  for both schemes.
* **Decoder comparison** — the D-ATC stream supports three receiver
  decoders (rate-only, level-only, hybrid); the hybrid one used in all
  experiments must dominate on weak *and* strong subjects.
* **Link erasure sweep** — individual radiated pulses are erased by the
  channel (the paper's "artifacts effect is similar to pulse missing"
  at the physical layer); all points run through one batched
  ``simulate_link_batch`` call.
"""

from repro.analysis.sweeps import link_erasure_sweep, snr_sweep
from repro.core.datc import datc_encode
from repro.rx.correlation import aligned_correlation_percent
from repro.rx.reconstruction import (
    reconstruct_hybrid,
    reconstruct_levels,
    reconstruct_rate,
)

from conftest import print_report


def test_snr_robustness(benchmark, paper_dataset):
    pattern = paper_dataset.pattern(22)
    snrs = (30.0, 20.0, 10.0, 5.0, 0.0)

    def run():
        return (
            snr_sweep(pattern, snrs, scheme="datc"),
            snr_sweep(pattern, snrs, scheme="atc"),
        )

    datc_points, atc_points = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'SNR dB':>8} {'D-ATC corr %':>13} {'ATC corr %':>11}"]
    for d, a in zip(datc_points, atc_points):
        lines.append(f"{d.parameter:>8.0f} {d.correlation_pct:>13.2f} {a.correlation_pct:>11.2f}")
    print_report("Correlation vs input SNR (clean-signal reference)", "\n".join(lines))

    by_snr = {p.parameter: p for p in datc_points}
    # Clean-ish input: full performance.
    assert by_snr[30.0].correlation_pct > 93.0
    # Realistic poor electrode (10 dB) still usable.
    assert by_snr[10.0].correlation_pct > 80.0
    # Degradation is monotone-ish end to end.
    assert datc_points[-1].correlation_pct < datc_points[0].correlation_pct


def test_link_erasure_robustness(benchmark, paper_dataset):
    pattern = paper_dataset.pattern(22)
    stream, _ = datc_encode(pattern.emg, pattern.fs)
    probs = (0.0, 0.05, 0.1, 0.2, 0.4)

    points = benchmark.pedantic(
        lambda: link_erasure_sweep(stream, probs), rounds=1, iterations=1
    )

    lines = [f"{'erasure p':>10} {'delivery':>9} {'level err':>10} {'pulses':>9}"]
    for p in points:
        lines.append(
            f"{p.erasure_prob:>10.2f} {p.event_delivery_ratio:>9.3f} "
            f"{p.level_error_ratio:>10.3f} {p.n_pulses:>9,}"
        )
    print_report(
        "D-ATC link under pulse erasures (batched simulate_link_batch)",
        "\n".join(lines),
    )

    # Clean channel: every event and level survives.
    assert points[0].event_delivery_ratio == 1.0
    assert points[0].level_error_ratio == 0.0
    # Erasures cost delivered events and corrupt levels of survivors.
    assert points[-1].event_delivery_ratio < points[0].event_delivery_ratio
    assert points[-1].level_error_ratio > 0.0


def test_decoder_comparison(benchmark, paper_dataset):
    weak = paper_dataset.pattern(0)    # lowest-gain subject
    strong = paper_dataset.pattern(3)  # highest-gain subject

    def run():
        rows = []
        for name, pattern in (("weak", weak), ("strong", strong)):
            stream, _ = datc_encode(pattern.emg, pattern.fs)
            ref = pattern.ground_truth_envelope()
            rows.append(
                (
                    name,
                    aligned_correlation_percent(reconstruct_rate(stream), ref),
                    aligned_correlation_percent(reconstruct_levels(stream), ref),
                    aligned_correlation_percent(reconstruct_hybrid(stream), ref),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'subject':<10}{'rate-only':>11}{'level-only':>12}{'hybrid':>9}"]
    for name, r, l, h in rows:
        lines.append(f"{name:<10}{r:>11.2f}{l:>12.2f}{h:>9.2f}")
    print_report("D-ATC receiver decoders (correlation %)", "\n".join(lines))

    for name, r, l, h in rows:
        # The hybrid decoder must not lose to either component...
        assert h >= min(r, l) - 1.0, name
        # ...and must clear the quality bar on every subject strength.
        assert h > 90.0, name
