"""Microbenchmarks: sharded multi-process dataset-sweep throughput.

The acceptance gates of the execution runtime (`repro.runtime`):

* A process-sharded dataset sweep over a multi-pattern corpus (32 full
  20 s patterns: synthesis + encode + decode + score per shard) must beat
  the serial single-shard sweep by >= 2x, with the per-pattern results
  element-wise identical.
* Element-wise identity of every backend's results is asserted
  unconditionally — including on single-core machines, where only the
  wall-clock gate is skipped (no second core means no parallel speedup
  to measure, only pool overhead).

Wall-clock ratios collapse on contended shared runners, so CI lowers the
bar via SWEEP_SPEEDUP_MIN (like LINK_SPEEDUP_MIN / RX_SPEEDUP_MIN).
"""

import os
import time

import numpy as np
import pytest

from repro.api import Experiment, ExperimentSpec
from repro.signals.dataset import DatasetSpec

N_PATTERNS = 32
JOBS = min(4, os.cpu_count() or 1)


@pytest.fixture(scope="module")
def sweep_dataset():
    """A 32-pattern corpus at the paper's full 20 s pattern length."""
    return DatasetSpec(n_patterns=N_PATTERNS, duration_s=20.0, seed=2015)


def best_of(fn, repeats=2):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def assert_sweeps_identical(reference, other, label):
    assert np.array_equal(reference.pattern_ids, other.pattern_ids), label
    assert np.array_equal(reference.correlations_pct, other.correlations_pct), label
    assert np.array_equal(reference.n_events, other.n_events), label


def test_backends_element_wise_identical():
    """Every backend and shard size reproduces the serial sweep exactly."""
    dataset = DatasetSpec(n_patterns=8, duration_s=4.0, seed=2015)
    experiment = Experiment(ExperimentSpec())
    serial = experiment.dataset_sweep(dataset)
    for backend in ("thread", "process"):
        for shard_size in (None, 1, 3):
            sharded = experiment.dataset_sweep(
                dataset, jobs=2, backend=backend, shard_size=shard_size
            )
            assert_sweeps_identical(serial, sharded, (backend, shard_size))


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="process-vs-serial wall-clock gate needs >= 2 cores "
    "(a single core can only measure pool overhead)",
)
def test_process_sweep_speedup_over_serial(sweep_dataset):
    """Acceptance: process-sharded sweep >= 2x serial on the dataset sweep."""
    minimum = float(os.environ.get("SWEEP_SPEEDUP_MIN", "2.0"))
    # Wall-clock ratios collapse under CPU contention (co-tenant runs,
    # frequency scaling); retry a few times before calling it a failure.
    for attempt in range(3):
        experiment = Experiment(ExperimentSpec())
        serial_t, serial = best_of(lambda: experiment.dataset_sweep(sweep_dataset))
        proc_t, sharded = best_of(
            lambda: experiment.dataset_sweep(
                sweep_dataset, jobs=JOBS, backend="process"
            )
        )
        speedup = serial_t / proc_t
        print(
            f"\nsharded sweep (attempt {attempt + 1}): "
            f"serial {serial_t * 1e3:.1f} ms, "
            f"process x{JOBS} {proc_t * 1e3:.1f} ms -> {speedup:.1f}x"
        )
        if speedup >= minimum:
            break
    assert_sweeps_identical(serial, sharded, "process")
    assert speedup >= minimum
