"""Acceptance benchmarks for the multi-session SessionBatch runtime.

The tentpole contract: one :class:`~repro.runtime.sessions.SessionBatch`
advancing N concurrent wearers per ``push_many`` must beat N scalar
``StreamingEncoder``/``StreamingDecoder`` loops by
``SESSIONS_SPEEDUP_MIN`` (default 3x) at 256 sessions, with envelopes
bit-identical.  The speedup gate needs a real core to race on and skips
on single-core boxes; the CLI smoke legs below run everywhere — on the
default numpy tier and with the compiled tier requested (which falls
back gracefully without numba) — with a relaxed 1.2x floor so CI still
exercises the full bench path, the bit-identity assertion inside it, and
the ``BENCH_sessions.json`` telemetry record.
"""

import json
import os
import time
import warnings

import numpy as np
import pytest

from repro import cli
from repro.core.config import DATCConfig
from repro.core.encoders import DATCEncoder
from repro.kernels import dispatch
from repro.runtime.sessions import SessionBatch, SessionSpec
from repro.rx.decoders import StreamingDecoder
from repro.signals.dataset import DatasetSpec

NUMBA = dispatch.numba_available()
# Wall-clock ratios on a single-core box measure scheduler noise, not
# the batching win; the speedup gate needs a real core to race on.
MULTICORE = (os.cpu_count() or 1) > 1

SMOKE_ARGS = [
    "bench",
    "--sessions",
    "--session-counts",
    "8,32",
    "--signals",
    "4",
    "--duration",
    "2",
    "--chunk",
    "500",
    "--repeats",
    "1",
]


@pytest.fixture(autouse=True)
def clean_dispatch(monkeypatch):
    monkeypatch.delenv(dispatch.ENV_VAR, raising=False)
    dispatch._reset_for_tests()
    yield
    dispatch._reset_for_tests()


def _smoke_record(tmp_path):
    """The BENCH_sessions.json written by the smoke run (conftest routes
    REPRO_BENCH_DIR into the test's tmp dir)."""
    root = os.environ["REPRO_BENCH_DIR"]
    path = os.path.join(root, "BENCH_sessions.json")
    assert os.path.exists(path), "smoke run must record its trajectory point"
    with open(path) as f:
        return json.load(f)


@pytest.mark.parametrize("backend", ["numpy", "compiled"])
def test_cli_sessions_smoke(backend, monkeypatch, tmp_path, capsys):
    """`bench --sessions` passes a relaxed floor on every backend leg."""
    monkeypatch.setenv("SESSIONS_SPEEDUP_MIN", "1.2")
    if backend == "compiled":
        monkeypatch.setenv(dispatch.ENV_VAR, "compiled")
    dispatch._reset_for_tests()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", dispatch.KernelFallbackWarning)
        rc = cli.main(SMOKE_ARGS)
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "bit-identical to scalar streaming: yes" in out
    points = _smoke_record(tmp_path)
    latest = points[-1]
    assert latest["area"] == "sessions"
    assert latest["headline"]["value"] >= 1.2
    names = {row["name"] for row in latest["rows"]}
    assert {"scalar-8", "batch-8", "scalar-32", "batch-32"} <= names


def test_cli_sessions_gate_failure_exit_code(monkeypatch, capsys):
    """An unreachable floor must flip the exit code — the CI gate bites."""
    monkeypatch.setenv("SESSIONS_SPEEDUP_MIN", "1e9")
    rc = cli.main(SMOKE_ARGS)
    out = capsys.readouterr().out
    assert rc == 1
    assert "FAIL" in out


def _best_of(fn, repeats=3):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


@pytest.mark.skipif(not MULTICORE, reason="wall-clock gate needs >1 core")
def test_session_batch_speedup_gate():
    """Acceptance: SessionBatch >= 3x scalar at 256 sessions, bit-exact.

    SESSIONS_SPEEDUP_MIN lowers the bar on noisy shared runners.
    """
    minimum = float(os.environ.get("SESSIONS_SPEEDUP_MIN", "3.0"))
    count, chunk = 256, 1000
    dataset = DatasetSpec(n_patterns=8, duration_s=4.0, seed=2015)
    patterns = [dataset.pattern(i) for i in range(8)]
    fs = patterns[0].fs
    sigs = [patterns[i % 8].emg for i in range(count)]
    config = DATCConfig()
    spec = SessionSpec(scheme="datc", fs=fs, config=config)
    starts = list(range(0, sigs[0].size, chunk))

    def run_batch():
        batch = SessionBatch()
        sids = [batch.create(spec) for _ in range(count)]
        for s in starts:
            batch.push_many(
                {sid: sig[s : s + chunk] for sid, sig in zip(sids, sigs)}
            )
        return [batch.finalize(sid).envelope for sid in sids]

    def run_scalar():
        envs = []
        for sig in sigs:
            enc = DATCEncoder(fs, config, rectify=True)
            dec = StreamingDecoder(
                scheme="datc",
                config=config,
                fs_out=spec.fs_out,
                window_s=spec.window_s,
            )
            for s in starts:
                dec.push(enc.push(sig[s : s + chunk]))
            enc.finalize()
            dec.push(enc.drain())
            dec.finalize()
            envs.append(dec.envelope)
        return envs

    run_batch()  # warm allocators / spec-key cache
    for attempt in range(3):
        t_sc, env_sc = _best_of(run_scalar, repeats=2)
        t_ba, env_ba = _best_of(run_batch, repeats=2)
        speedup = t_sc / t_ba
        print(
            f"\nsessions (attempt {attempt + 1}): scalar {t_sc * 1e3:.0f} ms,"
            f" batch {t_ba * 1e3:.0f} ms -> {speedup:.2f}x at {count}"
        )
        if speedup >= minimum:
            break
    for a, b in zip(env_sc, env_ba):
        assert np.array_equal(a, b)
    assert speedup >= minimum
