"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures on the
full-size dataset (190 patterns x 20 s where the paper uses it) and prints
the paper-vs-measured rows.  Heavy experiments run with
``benchmark.pedantic(rounds=1)`` — the interesting output is the table,
the timing is a bonus.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
tables inline).
"""

from __future__ import annotations

import pytest

from repro.signals.dataset import default_dataset


@pytest.fixture(autouse=True)
def _bench_records_to_tmp(tmp_path, monkeypatch):
    """Keep BENCH_*.json telemetry out of the repo when benches run the CLI."""
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path / "bench-records"))


@pytest.fixture(scope="session")
def paper_dataset():
    """The full 190-pattern, 20 s dataset (patterns generated lazily)."""
    return default_dataset()


def print_report(title: str, body: str) -> None:
    """Uniform report formatting for all benches."""
    bar = "=" * 72
    print(f"\n{bar}\n{title}\n{bar}\n{body}\n")
