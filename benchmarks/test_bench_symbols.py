"""Bench: Sec. III-B — transmitted-symbol comparison for a 20 s wave.

Paper bullet list:
  * packet-based (12-bit ADC): 12 x 50000 = 600000 symbols
  * ATC (0.3 V):  3183 symbols
  * ATC (0.2 V):  5821 symbols
  * D-ATC:        3724 x 5 = 18620 symbols
Shape: event encoders are orders of magnitude below the packet baseline;
D-ATC pays 5x per event but stays ~1-3% of the packet cost.
"""

from repro.analysis.experiments import run_symbol_comparison
from repro.uwb.link import packet_baseline_accounting

from conftest import print_report


def test_symbol_comparison(benchmark, paper_dataset):
    result = benchmark.pedantic(
        run_symbol_comparison, kwargs={"dataset": paper_dataset}, rounds=1, iterations=1
    )
    overhead = packet_baseline_accounting(result.n_samples)
    body = result.format_table() + (
        f"\npacket baseline incl. framing overhead: "
        f"{int(overhead['total_symbols']):,} symbols"
    )
    print_report("Sec. III-B — symbols per 20 s sEMG wave", body)

    assert result.packet_symbols == 600_000
    # Event symbol ordering as in the paper.
    assert result.datc_symbols > result.atc_0v2_symbols > result.atc_0v3_symbols
    # Event encoders are >30x below the packet baseline (paper: ~32x for
    # D-ATC, >100x for plain ATC).
    assert result.packet_symbols > 30 * result.datc_symbols
    assert result.packet_symbols > 100 * result.atc_0v2_symbols
    # D-ATC symbols are exactly events x 5.
    assert result.datc_symbols == 5 * result.datc_events
    # Real framing makes the baseline even worse than 600000.
    assert overhead["total_symbols"] > result.packet_symbols
