"""Bench: TX energy comparison over the IR-UWB link.

Extends the paper's symbol accounting (Sec. III-B) to transmit *energy*:
with OOK, a symbol slot only costs a pulse when it carries a '1', so
D-ATC's 5-symbol bursts average ~3 pulses while the 12-bit packet baseline
pays for every other bit of 600000+.  This is the "power consumption
decrease at the TX" argument made quantitative.
"""

import numpy as np

from repro.core.config import ATCConfig, DATCConfig
from repro.core.atc import atc_encode
from repro.core.datc import datc_encode
from repro.uwb.link import LinkConfig, packet_baseline_accounting, simulate_link_batch

from conftest import print_report


def test_link_energy_comparison(benchmark, paper_dataset):
    pattern = paper_dataset.pattern(22)
    link_cfg = LinkConfig(pulse_energy_pj=30.0)

    def run():
        datc_stream, _ = datc_encode(pattern.emg, pattern.fs, DATCConfig())
        atc_stream, _ = atc_encode(pattern.emg, pattern.fs, ATCConfig(vth=0.3))
        # Both schemes ride one batched link call (heterogeneous
        # symbols-per-event is fine: modulation is per stream).
        datc_link, atc_link = simulate_link_batch(
            [datc_stream, atc_stream], link_cfg
        )
        return (
            datc_link,
            atc_link,
            packet_baseline_accounting(pattern.n_samples, pulse_energy_pj=30.0),
        )

    datc_link, atc_link, packet = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ("packet-based (12-bit ADC)", packet["total_symbols"], packet["n_pulses_ook"],
         packet["tx_energy_j"]),
        ("ATC (0.3 V)", atc_link.n_symbols, atc_link.n_pulses, atc_link.tx_energy_j),
        ("D-ATC", datc_link.n_symbols, datc_link.n_pulses, datc_link.tx_energy_j),
    ]
    lines = [f"{'system':<28}{'symbols':>12}{'pulses':>12}{'TX energy':>14}"]
    for name, symbols, pulses, energy in rows:
        lines.append(
            f"{name:<28}{int(symbols):>12,}{int(pulses):>12,}{energy * 1e9:>11.2f} uJ"
            .replace("uJ", "nJ")
        )
    print_report("TX energy per 20 s wave (OOK, 30 pJ/pulse)", "\n".join(lines))

    # The event encoders transmit orders of magnitude less energy.
    assert packet["tx_energy_j"] > 30 * datc_link.tx_energy_j
    assert datc_link.tx_energy_j > atc_link.tx_energy_j  # levels cost pulses
    # OOK average: between 1 (marker only) and 5 pulses per D-ATC event.
    per_event = datc_link.n_pulses / datc_link.tx_stream.n_events
    assert 1.0 <= per_event <= 5.0
    # Ideal link delivers every event and level.
    assert datc_link.event_delivery_ratio == 1.0
    assert datc_link.level_error_ratio == 0.0
