"""Microbenchmarks: the content-addressed result store's warm-run payoff.

Acceptance gates of the API redesign's caching layer:

* A warm ``dataset_sweep`` (every pattern served from the store) must
  beat the cold evaluation by >= 5x wall-clock.  In practice the gap is
  orders of magnitude — a warm point is one ``np.load`` of a ~300-byte
  archive vs synthesis + encode + decode + score of a 20 s pattern — so
  5x is a conservative floor; CI lowers it further via CACHE_SPEEDUP_MIN
  (shared-runner I/O jitter), like the other *_SPEEDUP_MIN knobs.
* The warm results are **bit-identical** to the cold run, and the warm
  run performs zero re-evaluations (hit-count asserted).
"""

import os
import time

import numpy as np

from repro.api import Experiment, ExperimentSpec
from repro.runtime.store import ResultStore
from repro.signals.dataset import DatasetSpec

N_PATTERNS = 8


def best_of(fn, repeats=3):
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_warm_sweep_speedup_over_cold(tmp_path):
    """Acceptance: warm cached dataset sweep >= 5x the cold evaluation."""
    minimum = float(os.environ.get("CACHE_SPEEDUP_MIN", "5.0"))
    dataset = DatasetSpec(n_patterns=N_PATTERNS, duration_s=20.0, seed=2015)
    store = ResultStore(tmp_path / "cache")
    experiment = Experiment(ExperimentSpec(), store=store)

    t0 = time.perf_counter()
    cold = experiment.dataset_sweep(dataset)
    cold_t = time.perf_counter() - t0
    assert store.stats()["stores"] == N_PATTERNS
    assert store.hits == 0

    warm_t, warm = best_of(lambda: experiment.dataset_sweep(dataset))
    speedup = cold_t / warm_t
    print(
        f"\ncached sweep: cold {cold_t * 1e3:.1f} ms, "
        f"warm {warm_t * 1e3:.1f} ms -> {speedup:.1f}x "
        f"({store.hits} hits)"
    )

    # Zero re-evaluations on the warm runs: every probe hit, nothing stored.
    assert store.hits == 3 * N_PATTERNS  # best_of ran the warm sweep 3x
    assert store.stats()["stores"] == N_PATTERNS
    # Bit-identical warm results.
    assert np.array_equal(warm.correlations_pct, cold.correlations_pct)
    assert np.array_equal(warm.n_events, cold.n_events)
    assert speedup >= minimum


def test_warm_generic_sweep_skips_encode(tmp_path):
    """The generic spec sweep is memoised per operating point too."""
    minimum = float(os.environ.get("CACHE_SPEEDUP_MIN", "5.0"))
    dataset = DatasetSpec(n_patterns=2, duration_s=20.0, seed=2015)
    pattern = dataset.pattern(1)
    store = ResultStore(tmp_path / "cache")
    # D-ATC frame sizes: the slowest encoder in the library, so the cold
    # pass is a fair stand-in for real sweep workloads.
    from repro.core.config import DATCConfig

    experiment = Experiment(ExperimentSpec(), store=store)
    grid = [DATCConfig(frame_selector=s) for s in (0, 1, 2, 3)]

    def frame_size(config):
        return config.frame_size

    t0 = time.perf_counter()
    cold = experiment.sweep(
        pattern, "encoder.config", grid, parameter=frame_size
    )
    cold_t = time.perf_counter() - t0

    warm_t, warm = best_of(
        lambda: experiment.sweep(
            pattern, "encoder.config", grid, parameter=frame_size
        )
    )
    print(
        f"\ncached frame-size sweep: cold {cold_t * 1e3:.1f} ms, "
        f"warm {warm_t * 1e3:.1f} ms -> {cold_t / warm_t:.1f}x"
    )
    assert warm == cold  # SweepPoint equality == bit identity of the floats
    assert store.stats()["stores"] == len(grid)
    assert cold_t / warm_t >= minimum
