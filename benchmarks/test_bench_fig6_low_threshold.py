"""Bench: Fig. 6 — iso-correlation event cost of lowering ATC's threshold.

Paper: dropping ATC's threshold from 0.3 V to 0.2 V recovers D-ATC's
correlation on the Fig. 3 pattern, but at 5821 events — ~56% more than
D-ATC's 3724.  Shape to reproduce: correlation parity within a few %,
ATC(0.2 V) spending measurably more events than D-ATC.
"""

from repro.analysis.experiments import PAPER_FIG6, run_fig6

from conftest import print_report


def test_fig6_low_threshold(benchmark, paper_dataset):
    result = benchmark.pedantic(
        run_fig6, kwargs={"dataset": paper_dataset}, rounds=1, iterations=1
    )
    print_report("Fig. 6 — ATC at 0.2 V vs D-ATC (iso-correlation)", result.format_table())

    # Correlation parity (the premise of the comparison).
    assert result.correlation_gap_pct < 3.0
    # ATC pays an event premium for that parity (paper factor 1.56; our
    # synthetic carrier yields a smaller but clearly >1 factor).
    assert result.event_ratio > 1.1
    assert PAPER_FIG6["atc_events"] == 5821
