"""Bench: Fig. 3 — constant (0.3 V) vs dynamic thresholding, one pattern.

Paper numbers: ATC 3183 events / ~91.4% correlation, D-ATC 3724 events
(~17% more) / 96.41% correlation (~5% better).  Our synthetic pattern must
reproduce the *shape*: D-ATC wins correlation by a clear margin at a
moderate (1.1-1.8x) event premium, with D-ATC in the mid-90s.
"""

from repro.analysis.experiments import PAPER_FIG3, run_fig3

from conftest import print_report


def test_fig3_single_pattern(benchmark, paper_dataset):
    result = benchmark.pedantic(
        run_fig3, kwargs={"dataset": paper_dataset}, rounds=1, iterations=1
    )
    print_report("Fig. 3 — ATC(0.3 V) vs D-ATC on one 20 s pattern", result.format_table())

    assert result.datc.correlation_pct > result.atc.correlation_pct + 1.0
    assert result.datc.correlation_pct > 94.0  # paper: 96.41
    assert 1.05 < result.event_ratio < 1.8     # paper: 1.17
    # Sanity against the published reference constants.
    assert PAPER_FIG3["datc_events"] == 3724
    assert PAPER_FIG3["atc_events"] == 3183
