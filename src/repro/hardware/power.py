"""Power estimation for the synthesized DTC.

Dynamic power is computed the way a gate-level power tool does::

    P_dyn = f_clk * [ sum_ff (E_clk + a_ff * E_sw)  +  sum_comb a_c * E_sw ]

where ``E_clk`` is the per-cycle clock energy of each flip-flop, ``a_ff``
the probability its output toggles in a cycle, and ``a_c`` the toggle rate
of each combinational cell.  Activities can come from a real simulation —
:func:`activity_from_rtl` replays a ``d_in`` stream through the
cycle-accurate DTC and counts actual register toggles, mirroring the
paper's flow ("the post synthesis Verilog netlist together with timing
constraint files are again used to check ... dynamic power consumption") —
or from the default activity assumption used for Table I.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..digital.dtc_rtl import DTCRtl
from .cells import CellLibrary
from .netlist import Netlist

__all__ = ["ActivityProfile", "PowerReport", "activity_from_rtl", "estimate_power"]

DEFAULT_FF_ACTIVITY = 0.18
DEFAULT_COMB_ACTIVITY = 0.25


@dataclass(frozen=True)
class ActivityProfile:
    """Switching activities (toggles per clock cycle, per cell).

    Attributes
    ----------
    ff_activity:
        Mean output-toggle probability of the flip-flops.
    comb_activity:
        Mean toggle rate of combinational cells.
    source:
        Provenance string ("default" or "rtl-simulation").
    """

    ff_activity: float = DEFAULT_FF_ACTIVITY
    comb_activity: float = DEFAULT_COMB_ACTIVITY
    source: str = "default"

    def __post_init__(self) -> None:
        if self.ff_activity < 0 or self.comb_activity < 0:
            raise ValueError("activities must be non-negative")


def activity_from_rtl(dtc: DTCRtl, d_in: np.ndarray) -> ActivityProfile:
    """Measure real register activity by replaying ``d_in`` through the DTC.

    Counts bit toggles of every architectural register per cycle; the
    combinational activity is estimated as a fixed multiple of the
    register activity (combinational nets glitch more than the registers
    driving them — 1.6x is a conventional post-synthesis assumption).
    """
    d_in = np.asarray(d_in).astype(np.uint8)
    if d_in.size == 0:
        raise ValueError("need at least one input sample")

    def state() -> "tuple[int, ...]":
        return (
            dtc.in_reg.q,
            dtc.frame_counter.q,
            dtc.ones_counter.q,
            *dtc.history.taps(),
            dtc.set_vth_reg.q,
        )

    n_ff = dtc.n_flip_flops
    toggles = 0
    prev = state()
    for bit in d_in:
        dtc.step(int(bit))
        cur = state()
        toggles += sum(bin(a ^ b).count("1") for a, b in zip(prev, cur))
        prev = cur
    ff_activity = toggles / (d_in.size * n_ff)
    return ActivityProfile(
        ff_activity=ff_activity,
        comb_activity=1.6 * ff_activity,
        source="rtl-simulation",
    )


@dataclass(frozen=True)
class PowerReport:
    """Power breakdown at a given clock and supply.

    All figures in nanowatts.
    """

    clock_nw: float
    sequential_nw: float
    combinational_nw: float
    leakage_nw: float
    clock_hz: float
    vdd_v: float
    activity: ActivityProfile

    @property
    def dynamic_nw(self) -> float:
        """Total dynamic power (clock + sequential + combinational)."""
        return self.clock_nw + self.sequential_nw + self.combinational_nw

    @property
    def total_nw(self) -> float:
        """Dynamic + leakage."""
        return self.dynamic_nw + self.leakage_nw


def estimate_power(
    netlist: Netlist,
    library: CellLibrary,
    clock_hz: float = 2000.0,
    activity: "ActivityProfile | None" = None,
) -> PowerReport:
    """Estimate DTC power for a netlist mapped on ``library``.

    The clock term charges every flip-flop's clock pin each cycle; the
    sequential and combinational terms scale with the activity profile;
    leakage sums the per-cell static figures.
    """
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    activity = activity if activity is not None else ActivityProfile()

    clock_j = 0.0
    seq_j = 0.0
    comb_j = 0.0
    leak_w = 0.0
    for name, count in netlist.instances.items():
        cell = library.cell(name)
        leak_w += count * cell.leakage_pw * 1e-12
        if cell.clock_energy_fj > 0:  # sequential
            clock_j += count * cell.clock_energy_fj * 1e-15
            seq_j += count * activity.ff_activity * cell.switch_energy_fj * 1e-15
        else:
            comb_j += count * activity.comb_activity * cell.switch_energy_fj * 1e-15

    return PowerReport(
        clock_nw=clock_j * clock_hz * 1e9,
        sequential_nw=seq_j * clock_hz * 1e9,
        combinational_nw=comb_j * clock_hz * 1e9,
        leakage_nw=leak_w * 1e9,
        clock_hz=clock_hz,
        vdd_v=library.vdd_v,
        activity=activity,
    )
