"""Static timing model for the DTC.

The paper's flow runs post-synthesis timing analysis; this module provides
the analytical equivalent: a per-stage delay budget of the DTC's critical
path (the end-of-frame path: ones counter -> weighted sum -> interval
comparison -> priority encoder -> ``Set_Vth`` setup) in a high-voltage
0.18 um process, and the resulting maximum clock.

The result makes the paper's operating point vivid: the block closes
timing in tens of nanoseconds while the application clocks it at 2 kHz —
six orders of magnitude of slack, which is why synthesis can minimise
area (ripple carry everywhere) and why voltage scaling has so much room.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import DATCConfig
from ..digital.fixed_point import FixedWeights

__all__ = ["TimingParameters", "TimingReport", "estimate_timing"]


@dataclass(frozen=True)
class TimingParameters:
    """Per-cell delays of the HV 0.18 um library (worst-case corner, ns)."""

    clk_to_q_ns: float = 0.65
    setup_ns: float = 0.35
    full_adder_ns: float = 0.48   # carry-in to carry-out
    mux_ns: float = 0.30
    gate_ns: float = 0.18         # basic NAND/NOR stage
    comparator_bit_ns: float = 0.25

    def __post_init__(self) -> None:
        for name in (
            "clk_to_q_ns",
            "setup_ns",
            "full_adder_ns",
            "mux_ns",
            "gate_ns",
            "comparator_bit_ns",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")


@dataclass(frozen=True)
class TimingReport:
    """Critical-path breakdown and derived clock limits."""

    stages: "dict[str, float]" = field(default_factory=dict)
    clock_hz: float = 2000.0

    @property
    def critical_path_ns(self) -> float:
        """Total register-to-register delay of the worst path."""
        return sum(self.stages.values())

    @property
    def f_max_hz(self) -> float:
        """Maximum clock frequency the path supports."""
        return 1e9 / self.critical_path_ns

    @property
    def slack_at_clock_s(self) -> float:
        """Positive slack at the operating clock (paper: 2 kHz)."""
        return 1.0 / self.clock_hz - self.critical_path_ns * 1e-9

    @property
    def slack_ratio(self) -> float:
        """How many times faster than required the logic is."""
        return self.f_max_hz / self.clock_hz

    def format_table(self) -> str:
        """Per-stage text breakdown."""
        lines = [f"{'stage':<28}{'delay (ns)':>12}"]
        lines.append("-" * 40)
        for stage, delay in self.stages.items():
            lines.append(f"{stage:<28}{delay:>12.2f}")
        lines.append("-" * 40)
        lines.append(f"{'critical path':<28}{self.critical_path_ns:>12.2f}")
        lines.append(f"f_max = {self.f_max_hz / 1e6:.1f} MHz; at "
                     f"{self.clock_hz / 1e3:.0f} kHz the slack ratio is "
                     f"{self.slack_ratio:,.0f}x")
        return "\n".join(lines)


def estimate_timing(
    config: "DATCConfig | None" = None,
    params: "TimingParameters | None" = None,
    clock_hz: float = 2000.0,
) -> TimingReport:
    """Walk the end-of-frame critical path of the DTC.

    Path: ones-counter Q -> +1 ripple increment -> three-term weighted sum
    (two shift-add partial products in series with the accumulation, all
    ripple carry) -> widest interval comparison -> priority encoder ->
    ``Set_Vth`` setup.
    """
    config = config if config is not None else DATCConfig()
    params = params if params is not None else TimingParameters()
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")

    weights = FixedWeights.from_floats(config.weights, config.weight_frac_bits)
    cnt_w = max(int(max(config.frame_sizes)).bit_length(), 4)
    acc_w = cnt_w + config.weight_frac_bits + 2

    # Shift-add partial-product depth: popcount-1 adders per constant
    # multiply, plus the final two accumulations, rippling acc_w bits.
    def popcount(x: int) -> int:
        return bin(x).count("1")

    adder_levels = max(popcount(weights.w2) - 1, popcount(weights.w1) - 1, 0) + 2

    stages = {
        "ones counter clk-to-q": params.clk_to_q_ns,
        "counter increment (ripple)": cnt_w * params.full_adder_ns * 0.5,
        "weighted sum (shift-add)": adder_levels * acc_w * params.full_adder_ns * 0.25
        + acc_w * params.full_adder_ns * 0.5,
        "interval comparison": cnt_w * params.comparator_bit_ns,
        "priority encoder": (config.n_levels - 1) * params.gate_ns * 0.5,
        "level mux + setup": params.mux_ns + params.setup_ns,
    }
    return TimingReport(stages=stages, clock_hz=clock_hz)
