"""Standard-cell library model for a high-voltage 0.18 um CMOS process.

The paper synthesizes the DTC "using a digital standard cell library in a
high voltage 0.18 um CMOS technology" (Synopsys) and reports Table I:
1.8 V, 2 kHz, 512 cells, 12 ports, 11700 um^2 core area, ~70 nW dynamic
power.  We cannot run Synopsys, so this module provides a calibrated
library model: per-cell area, switched capacitance/energy and leakage with
magnitudes representative of HV 0.18 um libraries.  The *calibration*
anchors the default DTC netlist near Table I; the *scaling* (vs. counter
width, DAC bits, frame count) is structural and meaningful for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StdCell", "CellLibrary", "hv180_library"]


@dataclass(frozen=True)
class StdCell:
    """One library cell.

    Attributes
    ----------
    name:
        Cell identifier (drive-1 variants only; sizing is beyond scope).
    area_um2:
        Placed cell area.
    switch_energy_fj:
        Energy per output transition at VDD (includes internal power —
        the dominant term in Synopsys "dynamic power" reports).
    clock_energy_fj:
        Energy per *clock edge pair* regardless of data activity
        (non-zero only for sequential cells).
    leakage_pw:
        Static leakage (HV 0.18 um leaks very little).
    """

    name: str
    area_um2: float
    switch_energy_fj: float
    clock_energy_fj: float = 0.0
    leakage_pw: float = 1.0

    def __post_init__(self) -> None:
        if self.area_um2 <= 0:
            raise ValueError(f"{self.name}: area_um2 must be positive")
        if self.switch_energy_fj < 0 or self.clock_energy_fj < 0 or self.leakage_pw < 0:
            raise ValueError(f"{self.name}: energies/leakage must be non-negative")


@dataclass(frozen=True)
class CellLibrary:
    """A named collection of cells plus process corner metadata."""

    name: str
    vdd_v: float
    process: str
    cells: "dict[str, StdCell]"

    def __post_init__(self) -> None:
        if self.vdd_v <= 0:
            raise ValueError(f"vdd_v must be positive, got {self.vdd_v}")
        if not self.cells:
            raise ValueError("library must contain at least one cell")

    def cell(self, name: str) -> StdCell:
        """Look up a cell; raises ``KeyError`` with the known names."""
        if name not in self.cells:
            raise KeyError(
                f"unknown cell {name!r}; library has {sorted(self.cells)}"
            )
        return self.cells[name]

    def scaled(self, vdd_v: float) -> "CellLibrary":
        """The same library re-characterised at a different supply.

        Dynamic energy scales with VDD^2; leakage roughly linearly.
        Supports the voltage-scaling ablation bench.
        """
        if vdd_v <= 0:
            raise ValueError(f"vdd_v must be positive, got {vdd_v}")
        ratio2 = (vdd_v / self.vdd_v) ** 2
        ratio = vdd_v / self.vdd_v
        cells = {
            n: StdCell(
                name=c.name,
                area_um2=c.area_um2,
                switch_energy_fj=c.switch_energy_fj * ratio2,
                clock_energy_fj=c.clock_energy_fj * ratio2,
                leakage_pw=c.leakage_pw * ratio,
            )
            for n, c in self.cells.items()
        }
        return CellLibrary(
            name=f"{self.name}@{vdd_v:.2f}V", vdd_v=vdd_v, process=self.process, cells=cells
        )


def hv180_library() -> CellLibrary:
    """The calibrated high-voltage 0.18 um / 1.8 V library model.

    Areas follow typical 0.18 um standard-cell footprints (NAND2 ~= 12.5
    um^2, scan-less DFF with reset ~= 58 um^2); energies are calibrated so
    the default DTC netlist lands near Table I's ~70 nW at 2 kHz with
    typical activity (HV libraries have markedly larger parasitics than
    core-voltage ones, hence the generous per-toggle energies).
    """
    cells = {
        "INV": StdCell("INV", area_um2=6.3, switch_energy_fj=45.0, leakage_pw=0.6),
        "BUF": StdCell("BUF", area_um2=9.4, switch_energy_fj=60.0, leakage_pw=0.8),
        "NAND2": StdCell("NAND2", area_um2=12.5, switch_energy_fj=70.0, leakage_pw=1.0),
        "NOR2": StdCell("NOR2", area_um2=12.5, switch_energy_fj=70.0, leakage_pw=1.0),
        "AND3": StdCell("AND3", area_um2=15.6, switch_energy_fj=85.0, leakage_pw=1.2),
        "XOR2": StdCell("XOR2", area_um2=25.0, switch_energy_fj=120.0, leakage_pw=1.6),
        "MUX2": StdCell("MUX2", area_um2=18.8, switch_energy_fj=105.0, leakage_pw=1.5),
        "AOI21": StdCell("AOI21", area_um2=15.6, switch_energy_fj=80.0, leakage_pw=1.2),
        "HA": StdCell("HA", area_um2=31.3, switch_energy_fj=150.0, leakage_pw=2.0),
        "FA": StdCell("FA", area_um2=40.0, switch_energy_fj=230.0, leakage_pw=3.0),
        "DFFR": StdCell(
            "DFFR",
            area_um2=58.0,
            switch_energy_fj=260.0,
            clock_energy_fj=350.0,
            leakage_pw=4.0,
        ),
    }
    return CellLibrary(name="hv180_generic", vdd_v=1.8, process="0.18um HV CMOS", cells=cells)
