"""Synthesis cost model: cell library, DTC netlist, area and power."""

from .cells import CellLibrary, StdCell, hv180_library
from .netlist import Netlist, build_dtc_netlist
from .power import ActivityProfile, PowerReport, activity_from_rtl, estimate_power
from .report import PAPER_TABLE1, TableOne, generate_table1
from .synthesis import SynthesisReport, synthesize
from .timing import TimingParameters, TimingReport, estimate_timing
from .verilog import generate_dtc_verilog
from .verilog_sim import ParsedDTC, parse_dtc_verilog, simulate_dtc_verilog

__all__ = [
    "CellLibrary",
    "StdCell",
    "hv180_library",
    "Netlist",
    "build_dtc_netlist",
    "ActivityProfile",
    "PowerReport",
    "activity_from_rtl",
    "estimate_power",
    "PAPER_TABLE1",
    "TableOne",
    "generate_table1",
    "SynthesisReport",
    "synthesize",
    "TimingParameters",
    "TimingReport",
    "estimate_timing",
    "generate_dtc_verilog",
    "ParsedDTC",
    "parse_dtc_verilog",
    "simulate_dtc_verilog",
]
