"""Executable semantics for the emitted DTC Verilog.

We cannot ship Modelsim, but we can still *execute* the RTL we emit:
this module parses the constants baked into the generated text — the
frame-size mux, the Intervals LUT entries, the Q-format weights, the
shift, the reset/floor levels — and runs the module's documented
clocked semantics on a ``D_in`` stream.

The point is closing the code-generation loop: if
:func:`repro.hardware.verilog.generate_dtc_verilog` ever bakes a wrong
constant or drops a priority-chain branch, simulation of the *text*
diverges from :class:`repro.digital.dtc_rtl.DTCRtl` and the equivalence
tests catch it.  The interpreter deliberately reads everything from the
Verilog source, not from the config object.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

__all__ = ["ParsedDTC", "parse_dtc_verilog", "simulate_dtc_verilog"]


@dataclass(frozen=True)
class ParsedDTC:
    """Constants recovered from the generated Verilog text."""

    frame_sizes: "tuple[int, ...]"
    interval_tables: "tuple[tuple[int, ...], ...]"  # per frame selector
    w1: int
    w2: int
    w3: int
    shift: int
    reset_level: int
    floor_level: int
    priority_levels: "tuple[int, ...]"  # descending order of the if-chain

    @property
    def n_levels(self) -> int:
        """Levels per interval table."""
        return len(self.interval_tables[0])


def parse_dtc_verilog(text: str) -> ParsedDTC:
    """Recover the DTC's constants from its generated Verilog."""
    # Frame-size mux entries: "<sel_bits>'d<sel>: frame_size = <w>'d<size>;"
    frame_entries = re.findall(r"'d(\d+): frame_size = \d+'d(\d+);", text)
    if not frame_entries:
        raise ValueError("no frame-size mux found; is this a generated DTC module?")
    frame_sizes = tuple(
        int(size) for _, size in sorted(frame_entries, key=lambda kv: int(kv[0]))
    )

    # Interval LUT: per selector block, "interval_level[i] = <w>'d<value>;".
    # Case arms appear in selector order, then a default block (ignored by
    # taking only the first len(frame_sizes) blocks).
    blocks = re.split(r"'d\d+: begin", text)[1:]
    tables = []
    for block in blocks[: len(frame_sizes)]:
        # Truncate at the arm's closing "end" so the trailing default
        # block (which repeats selector 0's entries) is not absorbed
        # into the last table.
        block = block.split("\n            end")[0]
        entries = re.findall(r"interval_level\[(\d+)\] = \d+'d(\d+);", block)
        if entries:
            table = [0] * (max(int(i) for i, _ in entries) + 1)
            for i, value in entries:
                table[int(i)] = int(value)
            tables.append(tuple(table))
    if len(tables) != len(frame_sizes):
        raise ValueError(
            f"found {len(tables)} interval tables for {len(frame_sizes)} frame sizes"
        )

    weights = re.search(
        r"(\d+) \* count_now \+ (\d+) \* n_one3 \+\s*\n?\s*(\d+) \* n_one2;", text
    )
    if weights is None:
        raise ValueError("weighted-sum expression not found")
    w3, w2, w1 = (int(g) for g in weights.groups())

    shift = re.search(r"weighted_sum >> (\d+);", text)
    if shift is None:
        raise ValueError("accumulator shift not found")

    reset = re.search(r"Set_Vth       <= \d+'d(\d+);", text)
    if reset is None:
        raise ValueError("reset level not found")

    chain = re.findall(r"\(avr >= interval_level\[(\d+)\]\)", text)
    if not chain:
        raise ValueError("priority chain not found")
    floor = re.findall(r"next_level = \d+'d(\d+);", text)

    return ParsedDTC(
        frame_sizes=frame_sizes,
        interval_tables=tuple(tables),
        w1=w1,
        w2=w2,
        w3=w3,
        shift=int(shift.group(1)),
        reset_level=int(reset.group(1)),
        floor_level=int(floor[-1]),  # the final else branch
        priority_levels=tuple(int(c) for c in chain),
    )


def simulate_dtc_verilog(
    text: str,
    d_in: np.ndarray,
    frame_selector: int = 0,
) -> "dict[str, np.ndarray]":
    """Execute the generated module's clocked semantics on ``d_in``.

    Returns per-cycle ``set_vth``, ``d_out`` and ``end_of_frame`` exactly
    as the RTL's output ports would show them (``D_out`` is the
    ``In_reg`` output, i.e. the input delayed by one clock).
    """
    parsed = parse_dtc_verilog(text)
    if not 0 <= frame_selector < len(parsed.frame_sizes):
        raise ValueError(
            f"frame_selector {frame_selector} out of range "
            f"[0, {len(parsed.frame_sizes)})"
        )
    frame_size = parsed.frame_sizes[frame_selector]
    intervals = parsed.interval_tables[frame_selector]

    d_in = np.asarray(d_in).astype(np.uint8)
    n = d_in.size
    set_vth_out = np.empty(n, dtype=np.int64)
    d_out = np.empty(n, dtype=np.uint8)
    eof_out = np.empty(n, dtype=bool)

    # Registers (reset state).
    in_reg = 0
    frame_counter = 0
    ones_counter = 0
    n_one1 = n_one2 = n_one3 = 0
    set_vth = parsed.reset_level
    end_of_frame = 0

    for k in range(n):
        # --- combinational, evaluated with current register values ---
        frame_done = (frame_counter + 1) == frame_size
        ones_inc = in_reg
        count_now = ones_counter + ones_inc
        weighted = (
            parsed.w3 * count_now + parsed.w2 * n_one3 + parsed.w1 * n_one2
        )
        avr = weighted >> parsed.shift
        next_level = parsed.floor_level
        for level in parsed.priority_levels:
            if avr >= intervals[level]:
                next_level = level
                break

        # Output ports reflect the register values *during* this cycle.
        set_vth_out[k] = set_vth
        d_out[k] = in_reg
        eof_out[k] = bool(end_of_frame)

        # --- clock edge: register updates ---
        end_of_frame = 1 if frame_done else 0
        if frame_done:
            n_one1, n_one2, n_one3 = n_one2, n_one3, count_now
            frame_counter = 0
            ones_counter = 0
            set_vth = next_level
        else:
            frame_counter += 1
            if ones_inc:
                ones_counter += 1
        in_reg = int(d_in[k])

    return {"set_vth": set_vth_out, "d_out": d_out, "end_of_frame": eof_out}
