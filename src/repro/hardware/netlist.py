"""Structural elaboration of the DTC into standard cells.

The gate-count formulas below transcribe the Fig. 4 architecture block by
block, as a synthesis tool would map it after constant propagation:

* sequential: ``In_reg`` + frame counter + ones counter + the 3-deep
  ``N_one`` history + ``Set_Vth`` + ``End_of_frame`` flag;
* two ripple incrementers (half-adder chains with carry gating);
* the end-of-frame equality comparator against the (muxed) frame size;
* the Predictor's shift-and-add weighted average — the Q8 weights 166 and
  90 each have popcount 4, so each constant multiply is 3 adders and the
  final accumulation 2 more (the ``>> 9`` is wiring);
* 15 constant-threshold magnitude comparators plus the priority encoder
  of Listing 1 (constant comparison simplifies to ~width/2 gates each);
* the Intervals "LUT", which constant-folds to a 2-bit barrel shift
  (the four frame sizes scale the base constants by exact powers of two);
* the debug/state output mux of the 8-bit ``Dbg_state`` port;
* control/glue plus a post-synthesis buffer allowance.

Every block's count scales with the architecture parameters (counter
width, DAC bits, number of frame sizes), so the ablation benches get
meaningful area/power trends, and the default configuration is anchored
near Table I (512 cells).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.config import DATCConfig
from ..digital.dtc_rtl import DTCPorts
from ..digital.fixed_point import FixedWeights

__all__ = ["Netlist", "build_dtc_netlist"]


def _popcount(x: int) -> int:
    return bin(x).count("1")


@dataclass(frozen=True)
class Netlist:
    """A flat cell-count netlist plus port metadata.

    Attributes
    ----------
    name:
        Top-level module name.
    instances:
        Mapping cell-type -> instance count.
    ports:
        The top-level port list (name, width, direction).
    blocks:
        Per-block cell budgets, for reporting and ablation plots.
    """

    name: str
    instances: "dict[str, int]"
    ports: "tuple[tuple[str, int, str], ...]"
    blocks: "dict[str, int]" = field(default_factory=dict)

    @property
    def n_cells(self) -> int:
        """Total placed cells."""
        return sum(self.instances.values())

    @property
    def n_ports(self) -> int:
        """Top-level ports (paper Table I: 12)."""
        return len(self.ports)

    @property
    def n_sequential(self) -> int:
        """Flip-flop count."""
        return self.instances.get("DFFR", 0)

    @property
    def n_combinational(self) -> int:
        """Combinational cell count."""
        return self.n_cells - self.n_sequential


def build_dtc_netlist(config: "DATCConfig | None" = None) -> Netlist:
    """Elaborate the DTC for a given configuration.

    The returned counts are the post-synthesis mapping estimate described
    in the module docstring.
    """
    config = config if config is not None else DATCConfig()
    width = max(int(max(config.frame_sizes)).bit_length(), 4)  # counters (paper: 10)
    level_bits = config.dac_bits
    n_levels = config.n_levels
    n_frame_sizes = len(config.frame_sizes)
    weights = FixedWeights.from_floats(config.weights, config.weight_frac_bits)
    # Effective adder width after synthesis: the final ``>> (frac_bits+1)``
    # lets the tool truncate low-order partial-sum bits, so the carry
    # chains settle near the counter width rather than the full
    # ``width + frac_bits`` accumulator.
    sum_width = width + 2

    instances: "dict[str, int]" = {}
    blocks: "dict[str, int]" = {}

    def add(block: str, cell: str, count: int) -> None:
        if count <= 0:
            return
        instances[cell] = instances.get(cell, 0) + count
        blocks[block] = blocks.get(block, 0) + count

    # --- Sequential elements -------------------------------------------
    n_ff = 1 + width + width + 3 * width + level_bits + 1  # Fig. 4 registers
    add("registers", "DFFR", n_ff)

    # --- Counters: ripple incrementers with enable gating ---------------
    for _ in range(2):  # frame counter + ones counter
        add("counters", "HA", width)
        add("counters", "NAND2", width - 1)  # carry chain gating
        add("counters", "AND3", 2)  # enable / clear strobes

    # --- End-of-frame comparator (counter == muxed frame size) ----------
    add("eof_compare", "XOR2", width)
    add("eof_compare", "NOR2", (width + 2) // 3)
    add("eof_compare", "AND3", 1)

    # --- Frame-size select mux (n-to-1, counter width) ------------------
    add("frame_mux", "MUX2", width * max(n_frame_sizes - 1, 0))

    # --- Predictor: shift-and-add weighted average ----------------------
    n_adders = max(_popcount(weights.w2) - 1, 0) + max(_popcount(weights.w1) - 1, 0) + 2
    add("predictor_avg", "FA", n_adders * sum_width)

    # --- Interval comparators + priority encoder (Listing 1) ------------
    comparators = n_levels - 1
    add("interval_compare", "NAND2", comparators * ((width + 1) // 2))
    add("interval_compare", "INV", comparators)
    add("priority_encoder", "AOI21", comparators)
    add("priority_encoder", "NAND2", level_bits * 2)

    # --- Intervals LUT: constant-folded barrel shift ---------------------
    shift_stages = max(n_frame_sizes - 1, 0).bit_length()
    add("interval_lut", "MUX2", width * shift_stages)

    # --- Debug/state output mux (8-bit Dbg_state port) -------------------
    add("debug_mux", "MUX2", 8 * 3)
    add("debug_mux", "BUF", 8)

    # --- Control / glue ---------------------------------------------------
    add("control", "NAND2", 14)
    add("control", "NOR2", 8)
    add("control", "INV", 12)
    add("control", "AND3", 6)

    # --- Post-synthesis buffering / fanout fix (clock + high-fanout nets) -
    comb_so_far = sum(instances.values()) - instances.get("DFFR", 0)
    add("buffers", "BUF", round(0.10 * comb_so_far) + n_ff // 4)

    return Netlist(
        name="dtc_top",
        instances=instances,
        ports=DTCPorts().ports,
        blocks=blocks,
    )
