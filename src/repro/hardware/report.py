"""Table I generation: the paper's simulation-and-synthesis summary.

Paper Table I (0.18 um HV CMOS, Synopsys):

========================  =============
Power supply              1.8 V
System clock frequency    2 kHz
Number of cells           512
Number of ports           12
Core area                 11700 um^2
Dynamic power consumption ~70 nW
========================  =============
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import DATCConfig
from .cells import CellLibrary, hv180_library
from .netlist import build_dtc_netlist
from .power import ActivityProfile, PowerReport, estimate_power
from .synthesis import SynthesisReport, synthesize

__all__ = ["TableOne", "PAPER_TABLE1", "generate_table1"]

PAPER_TABLE1 = {
    "power_supply_v": 1.8,
    "clock_hz": 2000.0,
    "n_cells": 512,
    "n_ports": 12,
    "core_area_um2": 11700.0,
    "dynamic_power_nw": 70.0,
}


@dataclass(frozen=True)
class TableOne:
    """Our regenerated Table I plus the underlying reports."""

    power_supply_v: float
    clock_hz: float
    n_cells: int
    n_ports: int
    core_area_um2: float
    dynamic_power_nw: float
    synthesis: SynthesisReport
    power: PowerReport

    def as_dict(self) -> "dict[str, float]":
        """Rows keyed like :data:`PAPER_TABLE1` for direct comparison."""
        return {
            "power_supply_v": self.power_supply_v,
            "clock_hz": self.clock_hz,
            "n_cells": float(self.n_cells),
            "n_ports": float(self.n_ports),
            "core_area_um2": self.core_area_um2,
            "dynamic_power_nw": self.dynamic_power_nw,
        }

    def format_table(self) -> str:
        """Side-by-side paper-vs-model text table."""
        rows = [
            ("Power supply", f"{PAPER_TABLE1['power_supply_v']:.1f} V", f"{self.power_supply_v:.1f} V"),
            ("System clock frequency", "2 kHz", f"{self.clock_hz / 1000:.0f} kHz"),
            ("Number of cells", "512", f"{self.n_cells}"),
            ("Number of ports", "12", f"{self.n_ports}"),
            ("Core area", "11700 um^2", f"{self.core_area_um2:.0f} um^2"),
            ("Dynamic power consumption", "~70 nW", f"{self.dynamic_power_nw:.1f} nW"),
        ]
        header = f"{'quantity':<28}{'paper':>14}{'model':>14}"
        lines = [header, "-" * len(header)]
        lines += [f"{q:<28}{p:>14}{m:>14}" for q, p, m in rows]
        return "\n".join(lines)


def generate_table1(
    config: "DATCConfig | None" = None,
    library: "CellLibrary | None" = None,
    clock_hz: float = 2000.0,
    activity: "ActivityProfile | None" = None,
) -> TableOne:
    """Regenerate Table I for a DTC configuration."""
    config = config if config is not None else DATCConfig()
    library = library if library is not None else hv180_library()
    netlist = build_dtc_netlist(config)
    syn = synthesize(netlist, library)
    power = estimate_power(netlist, library, clock_hz=clock_hz, activity=activity)
    return TableOne(
        power_supply_v=library.vdd_v,
        clock_hz=clock_hz,
        n_cells=syn.n_cells,
        n_ports=syn.n_ports,
        core_area_um2=syn.core_area_um2,
        dynamic_power_nw=power.dynamic_nw,
        synthesis=syn,
        power=power,
    )
