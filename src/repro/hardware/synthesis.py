"""Synthesis report: map a netlist onto a library and total the costs."""

from __future__ import annotations

from dataclasses import dataclass

from .cells import CellLibrary, hv180_library
from .netlist import Netlist

__all__ = ["SynthesisReport", "synthesize"]


@dataclass(frozen=True)
class SynthesisReport:
    """Area/cell accounting of a mapped netlist.

    Attributes
    ----------
    netlist, library:
        The inputs.
    cell_area_um2:
        Summed standard-cell area.
    core_area_um2:
        Cell area divided by the core utilisation.  The default
        utilisation of 1.0 matches how Synopsys reports "core area"
        post-synthesis (total cell area); pass < 1 for floorplan studies.
    utilization:
        The assumed core utilisation.
    """

    netlist: Netlist
    library: CellLibrary
    cell_area_um2: float
    core_area_um2: float
    utilization: float

    @property
    def n_cells(self) -> int:
        """Total mapped cells (paper Table I: 512)."""
        return self.netlist.n_cells

    @property
    def n_ports(self) -> int:
        """Top-level ports (paper Table I: 12)."""
        return self.netlist.n_ports

    def area_by_block(self) -> "dict[str, float]":
        """Approximate area share per architectural block.

        Distributes each block's cell count at the netlist-average area
        per cell (blocks are tracked by count, not by cell type).
        """
        if self.netlist.n_cells == 0:
            return {}
        avg = self.cell_area_um2 / self.netlist.n_cells
        return {b: n * avg for b, n in self.netlist.blocks.items()}


def synthesize(
    netlist: Netlist,
    library: "CellLibrary | None" = None,
    utilization: float = 1.0,
) -> SynthesisReport:
    """Map ``netlist`` on ``library`` and report cells/ports/area."""
    library = library if library is not None else hv180_library()
    if not 0.0 < utilization <= 1.0:
        raise ValueError(f"utilization must be in (0, 1], got {utilization}")
    cell_area = sum(
        count * library.cell(name).area_um2 for name, count in netlist.instances.items()
    )
    return SynthesisReport(
        netlist=netlist,
        library=library,
        cell_area_um2=cell_area,
        core_area_um2=cell_area / utilization,
        utilization=utilization,
    )
