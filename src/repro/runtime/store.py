"""Content-addressed on-disk result store for repeated experiments.

The sweeps and figure drivers evaluate deterministic functions of
``(experiment spec, input data)``: the same :class:`repro.api.ExperimentSpec`
on the same pattern always produces the same correlation / event counts.
:class:`ResultStore` memoises those evaluations on disk, keyed by the pair

* ``spec_key`` — the experiment's stable content hash
  (:meth:`repro.api.ExperimentSpec.key`), identical across processes,
  Python versions and spawn-mode workers, and
* ``fingerprint`` — a content hash of the input data (a raw signal's
  bytes, or a dataset spec + pattern id for lazily generated patterns).

Entries are ``.npz`` archives of plain numpy arrays, written atomically
(temp file + ``os.replace``) so a crashed or concurrent run never leaves a
half-written entry behind, and sharded into 256 two-hex-digit
subdirectories so a large cache never piles every entry into one
directory.  A corrupt entry (truncated file, bad zip, wrong arrays) is
deleted and treated as a miss — the store self-heals and the caller simply
re-evaluates.

Hit/miss accounting lives on the instance (``hits`` / ``misses`` /
``stores`` / ``corrupt``), so a warm re-run can *assert* that it
re-evaluated nothing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path

import numpy as np

__all__ = [
    "ENGINE_REVISION",
    "ResultStore",
    "fingerprint_arrays",
    "fingerprint_value",
]

# Revision of the *evaluation engine's numerics*, folded into every entry
# address.  Bump it whenever a change alters what an experiment computes
# for the same spec (decoder arithmetic, scoring formula, RNG layout):
# old caches then miss cleanly instead of silently serving stale numbers.
# Spec *format* changes are versioned separately (repro.api's
# SPEC_FORMAT_VERSION, part of the hashed spec itself).
ENGINE_REVISION = 1


def _hash_update_array(h, arr: np.ndarray) -> None:
    """Fold one array (dtype + shape + bytes) into a running hash."""
    arr = np.ascontiguousarray(arr)
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())


def fingerprint_arrays(*arrays) -> str:
    """Content hash of one or more numpy arrays (dtype + shape + bytes)."""
    h = hashlib.sha256()
    for arr in arrays:
        _hash_update_array(h, np.asarray(arr))
    return h.hexdigest()


def _jsonable(value):
    """Canonical JSON-compatible form of a fingerprint payload."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return {"__array_sha256__": fingerprint_arrays(value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot fingerprint a {type(value).__name__}: {value!r}")


def fingerprint_value(value) -> str:
    """Stable content hash of a JSON-able structure (dataclasses allowed).

    Used for inputs that are cheap to *describe* but expensive to
    *materialise* — e.g. ``(DatasetSpec, pattern_id)`` fingerprints let a
    warm dataset sweep skip pattern synthesis entirely.  Large arrays are
    folded in by content hash, so mixed payloads are fine.
    """
    payload = json.dumps(
        _jsonable(value), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultStore:
    """On-disk content-addressed cache of experiment results.

    Parameters
    ----------
    root:
        Directory holding the cache (created if missing).  A store is
        cheap to construct and safe to share across runs; concurrent
        writers are safe because entries are immutable and written
        atomically.

    Usage::

        store = ResultStore("~/.cache/repro")
        arrays = store.get(spec.key(), fingerprint)
        if arrays is None:
            arrays = expensive_evaluation()
            store.put(spec.key(), fingerprint, arrays)
    """

    def __init__(self, root: "str | os.PathLike") -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        # One store instance may back every thread of a multi-session
        # server: the counters and the read-check-delete cycle of a
        # corrupt entry are guarded so concurrent access never loses an
        # increment or double-deletes.  On-disk entries were already safe
        # (immutable, atomic os.replace).
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @staticmethod
    def entry_id(spec_key: str, fingerprint: str) -> str:
        """The content address of a ``(spec, data)`` pair.

        Includes :data:`ENGINE_REVISION`, so results computed by an older
        engine revision can never satisfy a newer one's lookup.
        """
        return hashlib.sha256(
            f"engine{ENGINE_REVISION}\x00{spec_key}\x00{fingerprint}".encode()
        ).hexdigest()

    def path_for(self, spec_key: str, fingerprint: str) -> Path:
        """Where the entry for ``(spec_key, fingerprint)`` lives on disk."""
        entry = self.entry_id(spec_key, fingerprint)
        return self.root / entry[:2] / f"{entry}.npz"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, spec_key: str, fingerprint: str) -> "dict[str, np.ndarray] | None":
        """Fetch a cached result, or ``None`` on miss.

        A corrupt entry (unreadable archive) is deleted, counted in
        ``corrupt``, and reported as a miss — the store self-heals.
        """
        path = self.path_for(spec_key, fingerprint)
        if not path.exists():
            with self._lock:
                self.misses += 1
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                out = {name: archive[name] for name in archive.files}
        except Exception:
            with self._lock:
                self.corrupt += 1
                self.misses += 1
                try:
                    path.unlink()
                except OSError:
                    pass
            return None
        with self._lock:
            self.hits += 1
        return out

    def put(
        self, spec_key: str, fingerprint: str, arrays: "dict[str, np.ndarray]"
    ) -> Path:
        """Persist one result atomically; returns the entry path."""
        if not arrays:
            raise ValueError("refusing to store an empty result")
        path = self.path_for(spec_key, fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".npz"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **{k: np.asarray(v) for k, v in arrays.items()})
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock:
            self.stores += 1
        return path

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for _ in self.root.glob("??/*.npz"))

    def stats(self) -> "dict[str, int]":
        """This instance's access counters (not persisted)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "corrupt": self.corrupt,
            }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        for path in self.root.glob("??/*.npz"):
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n

    def __repr__(self) -> str:
        return (
            f"ResultStore({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )
