"""Content-addressed on-disk result store for repeated experiments.

The sweeps and figure drivers evaluate deterministic functions of
``(experiment spec, input data)``: the same :class:`repro.api.ExperimentSpec`
on the same pattern always produces the same correlation / event counts.
:class:`ResultStore` memoises those evaluations on disk, keyed by the pair

* ``spec_key`` — the experiment's stable content hash
  (:meth:`repro.api.ExperimentSpec.key`), identical across processes,
  Python versions and spawn-mode workers, and
* ``fingerprint`` — a content hash of the input data (a raw signal's
  bytes, or a dataset spec + pattern id for lazily generated patterns).

Entries are ``.npz`` archives of plain numpy arrays, written atomically
(temp file + ``os.replace``) so a crashed or concurrent run never leaves a
half-written entry behind, and sharded into 256 two-hex-digit
subdirectories so a large cache never piles every entry into one
directory.  Every entry carries a ``__checksum__`` of its payload arrays,
verified on read: a corrupt entry (truncated file, bad zip, flipped
bits) is deleted and treated as a miss — the store self-heals and the
caller simply re-evaluates.  :meth:`ResultStore.fsck` (CLI: ``repro
store fsck``) audits the whole store at once, which is how a shared
multi-worker cache gets checked after a messy crash.

Hit/miss accounting lives on the instance (``hits`` / ``misses`` /
``stores`` / ``corrupt``), so a warm re-run can *assert* that it
re-evaluated nothing.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path

import numpy as np

__all__ = [
    "CHECKSUM_KEY",
    "ENGINE_REVISION",
    "FsckReport",
    "ResultStore",
    "checksum_arrays",
    "fingerprint_arrays",
    "fingerprint_value",
]

# Revision of the *evaluation engine's numerics*, folded into every entry
# address.  Bump it whenever a change alters what an experiment computes
# for the same spec (decoder arithmetic, scoring formula, RNG layout):
# old caches then miss cleanly instead of silently serving stale numbers.
# Spec *format* changes are versioned separately (repro.api's
# SPEC_FORMAT_VERSION, part of the hashed spec itself).
ENGINE_REVISION = 1


def _hash_update_array(h, arr: np.ndarray) -> None:
    """Fold one array (dtype + shape + bytes) into a running hash."""
    arr = np.ascontiguousarray(arr)
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())


def fingerprint_arrays(*arrays) -> str:
    """Content hash of one or more numpy arrays (dtype + shape + bytes)."""
    h = hashlib.sha256()
    for arr in arrays:
        _hash_update_array(h, np.asarray(arr))
    return h.hexdigest()


# Reserved array name holding an entry's payload checksum.  Written by
# every put(), verified (and stripped) by every get().
CHECKSUM_KEY = "__checksum__"


def checksum_arrays(arrays: "dict[str, np.ndarray]") -> str:
    """Order-independent content hash of a named-array payload."""
    h = hashlib.sha256()
    for name in sorted(arrays):
        h.update(name.encode())
        h.update(b"\x00")
        _hash_update_array(h, np.asarray(arrays[name]))
    return h.hexdigest()


def _entry_damage(arrays: "dict[str, np.ndarray]") -> "str | None":
    """Why a loaded entry fails checksum verification (None = intact).

    Entries with no :data:`CHECKSUM_KEY` predate checksums and verify
    vacuously here; ``fsck`` flags them separately.
    """
    declared = arrays.get(CHECKSUM_KEY)
    if declared is None:
        return None
    payload = {k: v for k, v in arrays.items() if k != CHECKSUM_KEY}
    if not payload:
        return "entry holds no payload arrays"
    try:
        expected = declared.item()
    except (AttributeError, ValueError):
        return f"malformed {CHECKSUM_KEY} array"
    if not isinstance(expected, str) or expected != checksum_arrays(payload):
        return f"payload does not match its {CHECKSUM_KEY}"
    return None


@dataclasses.dataclass(frozen=True)
class FsckReport:
    """What :meth:`ResultStore.fsck` found (and, with repair, removed)."""

    scanned: int
    intact: int
    unverified: int  # pre-checksum entries: readable, but unverifiable
    corrupt: "tuple[tuple[str, str], ...]"  # (entry path, damage reason)
    stray_tmp: int  # leftover .tmp-* files from crashed writers
    repaired: bool  # whether corrupt entries and strays were deleted

    @property
    def damaged(self) -> int:
        """How many entries failed verification."""
        return len(self.corrupt)

    @property
    def clean(self) -> bool:
        """True when every scanned entry verified (strays don't count)."""
        return not self.corrupt

    def summary(self) -> str:
        """One line for logs and the ``repro store fsck`` CLI."""
        state = "clean" if self.clean else f"{self.damaged} corrupt"
        bits = [f"{self.scanned} entries scanned", state]
        if self.unverified:
            bits.append(f"{self.unverified} pre-checksum (unverified)")
        if self.stray_tmp:
            verb = "removed" if self.repaired else "found"
            bits.append(f"{self.stray_tmp} stray tmp files {verb}")
        return "; ".join(bits)


def _jsonable(value):
    """Canonical JSON-compatible form of a fingerprint payload."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                f.name: _jsonable(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return {"__array_sha256__": fingerprint_arrays(value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot fingerprint a {type(value).__name__}: {value!r}")


def fingerprint_value(value) -> str:
    """Stable content hash of a JSON-able structure (dataclasses allowed).

    Used for inputs that are cheap to *describe* but expensive to
    *materialise* — e.g. ``(DatasetSpec, pattern_id)`` fingerprints let a
    warm dataset sweep skip pattern synthesis entirely.  Large arrays are
    folded in by content hash, so mixed payloads are fine.
    """
    payload = json.dumps(
        _jsonable(value), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultStore:
    """On-disk content-addressed cache of experiment results.

    Parameters
    ----------
    root:
        Directory holding the cache (created if missing).  A store is
        cheap to construct and safe to share across runs; concurrent
        writers are safe because entries are immutable and written
        atomically.

    Usage::

        store = ResultStore("~/.cache/repro")
        arrays = store.get(spec.key(), fingerprint)
        if arrays is None:
            arrays = expensive_evaluation()
            store.put(spec.key(), fingerprint, arrays)
    """

    def __init__(self, root: "str | os.PathLike") -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        # One store instance may back every thread of a multi-session
        # server: the counters and the read-check-delete cycle of a
        # corrupt entry are guarded so concurrent access never loses an
        # increment or double-deletes.  On-disk entries were already safe
        # (immutable, atomic os.replace).
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @staticmethod
    def entry_id(spec_key: str, fingerprint: str) -> str:
        """The content address of a ``(spec, data)`` pair.

        Includes :data:`ENGINE_REVISION`, so results computed by an older
        engine revision can never satisfy a newer one's lookup.
        """
        return hashlib.sha256(
            f"engine{ENGINE_REVISION}\x00{spec_key}\x00{fingerprint}".encode()
        ).hexdigest()

    def path_for(self, spec_key: str, fingerprint: str) -> Path:
        """Where the entry for ``(spec_key, fingerprint)`` lives on disk."""
        entry = self.entry_id(spec_key, fingerprint)
        return self.root / entry[:2] / f"{entry}.npz"

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def get(self, spec_key: str, fingerprint: str) -> "dict[str, np.ndarray] | None":
        """Fetch a cached result, or ``None`` on miss.

        A corrupt entry — unreadable archive, or payload not matching the
        ``__checksum__`` it was written with — is deleted, counted in
        ``corrupt``, and reported as a miss: the store self-heals.
        Entries written before checksums existed load unverified.
        """
        path = self.path_for(spec_key, fingerprint)
        if not path.exists():
            with self._lock:
                self.misses += 1
            return None
        try:
            with np.load(path, allow_pickle=False) as archive:
                out = {name: archive[name] for name in archive.files}
        except Exception:
            return self._quarantine_corrupt(path)
        if _entry_damage(out) is not None:
            return self._quarantine_corrupt(path)
        out.pop(CHECKSUM_KEY, None)
        with self._lock:
            self.hits += 1
        return out

    def _quarantine_corrupt(self, path: Path) -> None:
        """Delete a damaged entry and account for it as a miss."""
        with self._lock:
            self.corrupt += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
        return None

    def put(
        self, spec_key: str, fingerprint: str, arrays: "dict[str, np.ndarray]"
    ) -> Path:
        """Persist one result atomically; returns the entry path.

        The payload's :func:`checksum_arrays` hash rides along in the
        entry under :data:`CHECKSUM_KEY`, so later reads (and ``fsck``)
        can tell silent on-disk corruption from a valid entry.
        """
        if not arrays:
            raise ValueError("refusing to store an empty result")
        if CHECKSUM_KEY in arrays:
            raise ValueError(f"{CHECKSUM_KEY!r} is a reserved array name")
        payload = {k: np.asarray(v) for k, v in arrays.items()}
        payload[CHECKSUM_KEY] = np.array(checksum_arrays(payload))
        path = self.path_for(spec_key, fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".npz"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock:
            self.stores += 1
        return path

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _entry_paths(self) -> "list[Path]":
        """Every real entry on disk, in deterministic order.

        ``pathlib`` globs match dotfiles, so a crashed writer's leftover
        ``.tmp-*.npz`` would otherwise masquerade as an entry here.
        """
        return sorted(
            path
            for path in self.root.glob("??/*.npz")
            if not path.name.startswith(".")
        )

    def _stray_tmp_paths(self) -> "list[Path]":
        """Leftover atomic-write temp files (a crash between write and
        rename leaves one behind; harmless, but fsck sweeps them up)."""
        return sorted(self.root.glob("??/.tmp-*"))

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        return len(self._entry_paths())

    def fsck(self, repair: bool = True) -> FsckReport:
        """Audit every on-disk entry against its ``__checksum__``.

        Walks the whole store, re-reading each entry and verifying its
        payload checksum — the batch version of the check ``get`` runs
        per lookup, which is how a *shared* store gets audited after a
        worker crash without enumerating every ``(spec, fingerprint)``
        pair that might live in it.  With ``repair=True`` (default)
        corrupt entries and stray ``.tmp-*`` files are deleted, so the
        next lookup re-evaluates instead of failing; ``repair=False``
        only reports.  Run it on a quiescent store — a live writer's
        in-flight temp file would be swept as a stray.

        Entries written before checksums existed are readable but
        unverifiable; they are counted ``unverified``, never deleted.
        """
        strays = self._stray_tmp_paths()
        intact = unverified = 0
        corrupt: "list[tuple[str, str]]" = []
        entries = self._entry_paths()
        for path in entries:
            try:
                with np.load(path, allow_pickle=False) as archive:
                    arrays = {name: archive[name] for name in archive.files}
            except Exception as exc:
                corrupt.append(
                    (str(path), f"unreadable archive ({type(exc).__name__})")
                )
                continue
            damage = _entry_damage(arrays)
            if damage is not None:
                corrupt.append((str(path), damage))
            elif CHECKSUM_KEY not in arrays:
                unverified += 1
            else:
                intact += 1
        if repair:
            for path_str, _reason in corrupt:
                try:
                    os.unlink(path_str)
                except OSError:
                    pass
            for path in strays:
                try:
                    path.unlink()
                except OSError:
                    pass
            if corrupt:
                with self._lock:
                    self.corrupt += len(corrupt)
        return FsckReport(
            scanned=len(entries),
            intact=intact,
            unverified=unverified,
            corrupt=tuple(corrupt),
            stray_tmp=len(strays),
            repaired=repair,
        )

    def stats(self) -> "dict[str, int]":
        """This instance's access counters (not persisted)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "corrupt": self.corrupt,
            }

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        n = 0
        for path in self._entry_paths():
            try:
                path.unlink()
                n += 1
            except OSError:
                pass
        return n

    def __repr__(self) -> str:
        return (
            f"ResultStore({str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )
