"""Fault-tolerant distributed experiment queue (sqlite-WAL jobs table).

The spec + store layer made every experiment a deterministic function of
``(spec.key(), data fingerprint)``; this module adds the missing piece of
multi-node dispatch: a *jobs table* any number of workers can pull open
shards from, with all the machinery the happy path doesn't need until a
worker dies mid-shard.

One sqlite database (WAL mode, so N processes read while one writes)
holds one row per job, keyed ``(spec_key, fingerprint)`` — the same pair
the :class:`~repro.runtime.store.ResultStore` addresses results by.  The
status lifecycle::

            submit                claim(worker)
    (new) ---------> open -------------------------> leased
                      ^                                |
                      |  retry w/ backoff (transient)  |-- complete --> done
                      |<-------------------------------|
                      |         lease expired          |-- fail ------+
                      |<-------------------------------|              |
                      |                                               v
                      +------------------ reset ------------------- error
                                                               (quarantined)

* **Leases, not locks.**  ``claim`` marks a row ``leased`` with the
  worker's id, a heartbeat timestamp and a lease duration.  Workers
  heartbeat while executing; a worker that is SIGKILLed simply stops
  heartbeating, and any peer's next ``claim`` reclaims the expired row
  (``reap``).  No coordinator process exists to crash.
* **Fencing.**  Every downstream transition (``heartbeat``, ``complete``,
  ``fail``, ``release``) is conditional on *still holding the lease*: a
  stalled worker whose shard was reclaimed cannot mark the row done out
  from under the peer that re-ran it.  Result writes need no fencing —
  store entries are content-addressed and idempotent.
* **Retries vs quarantine.**  A failed attempt re-opens the row with
  capped exponential backoff plus deterministic jitter until
  ``max_attempts`` is exhausted; then the row is quarantined
  (``status='error'``) with the worker's full formatted traceback logged
  in the row.  Transient faults therefore succeed on a later attempt
  while deterministic bugs stop burning CPU after ``max_attempts``
  tries; ``reset()`` (CLI: ``repro queue reset``) re-opens quarantined
  rows after the bug is fixed.  :meth:`ExperimentQueue.raise_first_error`
  re-raises a quarantined failure with the logged traceback chained on
  as a :class:`~repro.runtime.executors.RemoteTraceback` ``__cause__`` —
  the same convention the process backend uses.

Since PR 10 the lifecycle contract lives in
:class:`~repro.runtime.transport.QueueBackend`: :class:`SqliteBackend`
(here) is the storage engine, :class:`ExperimentQueue` is a thin
frontend over *any* backend — pass a path and get sqlite, pass a
:class:`~repro.runtime.transport.RemoteBackend` and the identical
semantics run against a ``repro dispatch`` server with no shared mount
(see ``docs/DISPATCH.md``).

Workers (:func:`run_worker`, CLI: ``repro worker``) pull one shard at a
time, execute it through :class:`repro.api.Experiment` and write the
shared store; results are bit-identical to the serial path whatever the
worker count, crash schedule or retry history, because every batched
stage is bit-identical per row and the store returns exactly what one
evaluation produced.  On SIGTERM a worker drains gracefully: it finishes
the shard it is executing, releases any prefetched-but-unstarted leases,
and exits 0.

Every timed method takes an optional ``now`` so tests drive the lease
clock logically; production callers leave it ``None`` (wall clock).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import sqlite3
import threading
import time
import traceback
import uuid
from dataclasses import dataclass

import numpy as np

from .executors import plan_shards
from .faults import FaultPlan, InjectedFault
from .store import ResultStore
from .transport import (
    Job,
    QueueBackend,
    RemoteBackend,
    RemoteStore,
    _backoff_jitter,
)

__all__ = [
    "DEFAULT_LEASE_S",
    "DEFAULT_MAX_ATTEMPTS",
    "ExperimentQueue",
    "Job",
    "SqliteBackend",
    "WorkerStats",
    "execute_job",
    "install_sigterm_drain",
    "new_worker_id",
    "run_worker",
    "STATUSES",
]

STATUSES = ("open", "leased", "done", "error")
DEFAULT_LEASE_S = 30.0
DEFAULT_MAX_ATTEMPTS = 3

# The dataset fields a queue job serialises; subjects are re-derived from
# the seed on the worker, so explicit-subject datasets are rejected at
# submit time (they have no canonical JSON form).
_DATASET_FIELDS = ("n_patterns", "n_subjects", "fs", "duration_s", "seed")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    spec_key     TEXT NOT NULL,
    fingerprint  TEXT NOT NULL,
    spec_json    TEXT NOT NULL,
    payload      TEXT NOT NULL,
    status       TEXT NOT NULL DEFAULT 'open',
    attempt      INTEGER NOT NULL DEFAULT 0,
    max_attempts INTEGER NOT NULL,
    worker_id    TEXT,
    heartbeat    REAL,
    lease_s      REAL NOT NULL DEFAULT 0,
    not_before   REAL NOT NULL DEFAULT 0,
    error        TEXT,
    traceback    TEXT,
    created_at   REAL NOT NULL,
    updated_at   REAL NOT NULL,
    PRIMARY KEY (spec_key, fingerprint)
);
CREATE INDEX IF NOT EXISTS jobs_status ON jobs (status, not_before);
"""


class SqliteBackend(QueueBackend):
    """The sqlite-WAL jobs table (one connection per instance).

    Parameters
    ----------
    path:
        Database file, shared by every worker (``":memory:"`` works for
        single-connection tests; workers need a real file).
    backoff_base_s / backoff_cap_s / backoff_jitter:
        Retry delay after a failed attempt ``a`` is
        ``min(cap, base * 2**(a-1)) * (1 + jitter * u)`` with ``u``
        deterministic in ``(spec_key, fingerprint, a)``.

    Instances are thread-safe (one internal lock around the shared
    connection); cross-process safety comes from sqlite itself
    (WAL + busy timeout + single-statement or IMMEDIATE transactions).
    """

    def __init__(
        self,
        path: "str | os.PathLike",
        backoff_base_s: float = 0.5,
        backoff_cap_s: float = 30.0,
        backoff_jitter: float = 0.25,
    ) -> None:
        if backoff_base_s < 0 or backoff_cap_s < 0 or backoff_jitter < 0:
            raise ValueError("backoff parameters must be non-negative")
        self.path = str(path)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.backoff_jitter = float(backoff_jitter)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            self.path,
            timeout=30.0,
            isolation_level=None,  # autocommit; explicit BEGIN where needed
            check_same_thread=False,
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.executescript(_SCHEMA)

    def close(self) -> None:
        """Close the underlying connection (the file is the state)."""
        with self._lock:
            self._conn.close()

    def spawn(self) -> "SqliteBackend":
        """A fresh connection to the same database file."""
        return SqliteBackend(
            self.path,
            backoff_base_s=self.backoff_base_s,
            backoff_cap_s=self.backoff_cap_s,
            backoff_jitter=self.backoff_jitter,
        )

    def __repr__(self) -> str:
        return f"SqliteBackend({self.path!r})"

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        spec_key: str,
        fingerprint: str,
        spec: dict,
        payload: dict,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        now: "float | None" = None,
    ) -> bool:
        """Insert one job row; returns False when the key already exists.

        Re-submitting is idempotent: an existing row (whatever its
        status) is left untouched, so a second ``queue submit`` of the
        same sweep never duplicates or resets work.
        """
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        now = self._now(now)
        with self._lock:
            cursor = self._conn.execute(
                "INSERT OR IGNORE INTO jobs (spec_key, fingerprint, spec_json,"
                " payload, status, max_attempts, created_at, updated_at)"
                " VALUES (?, ?, ?, ?, 'open', ?, ?, ?)",
                (
                    spec_key,
                    fingerprint,
                    json.dumps(spec, sort_keys=True),
                    json.dumps(payload, sort_keys=True),
                    int(max_attempts),
                    now,
                    now,
                ),
            )
            return cursor.rowcount == 1

    # ------------------------------------------------------------------
    # The lease lifecycle
    # ------------------------------------------------------------------
    def reap(self, now: "float | None" = None) -> int:
        """Reclaim every expired lease; returns how many rows changed.

        A leased row whose last heartbeat is more than its lease duration
        in the past belongs to a dead (or wedged) worker.  The loss is
        logged in the row; the row re-opens for any peer unless its
        attempts are already exhausted, in which case it is quarantined
        like any other failure.  Called implicitly by every ``claim``.
        """
        now = self._now(now)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                n = self._reap_locked(now)
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return n

    def _reap_locked(self, now: float) -> int:
        rows = self._conn.execute(
            "SELECT spec_key, fingerprint, worker_id, attempt, max_attempts"
            " FROM jobs WHERE status='leased' AND heartbeat + lease_s <= ?",
            (now,),
        ).fetchall()
        for row in rows:
            message = (
                f"lease expired: worker {row['worker_id']!r} stopped "
                f"heartbeating (attempt {row['attempt']}/{row['max_attempts']})"
            )
            if row["attempt"] >= row["max_attempts"]:
                self._conn.execute(
                    "UPDATE jobs SET status='error', worker_id=NULL,"
                    " error=?, updated_at=? WHERE spec_key=? AND fingerprint=?",
                    (
                        message + "; attempts exhausted -> quarantined",
                        now,
                        row["spec_key"],
                        row["fingerprint"],
                    ),
                )
            else:
                not_before = now + self._backoff_s(
                    row["spec_key"], row["fingerprint"], row["attempt"]
                )
                self._conn.execute(
                    "UPDATE jobs SET status='open', worker_id=NULL,"
                    " not_before=?, error=?, updated_at=?"
                    " WHERE spec_key=? AND fingerprint=?",
                    (
                        not_before,
                        message,
                        now,
                        row["spec_key"],
                        row["fingerprint"],
                    ),
                )
        return len(rows)

    def claim(
        self,
        worker_id: str,
        lease_s: float = DEFAULT_LEASE_S,
        now: "float | None" = None,
    ) -> "Job | None":
        """Atomically lease the oldest claimable open job, if any.

        Expired peer leases are reclaimed first, so a pool of workers
        needs no separate janitor.  Claiming counts as starting an
        attempt (``attempt`` increments).  Returns ``None`` when nothing
        is claimable right now (the queue may still hold backed-off or
        leased rows — see :meth:`unfinished`).
        """
        if lease_s <= 0:
            raise ValueError(f"lease_s must be positive, got {lease_s}")
        now = self._now(now)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._reap_locked(now)
                row = self._conn.execute(
                    "SELECT * FROM jobs WHERE status='open' AND not_before<=?"
                    " ORDER BY created_at, spec_key, fingerprint LIMIT 1",
                    (now,),
                ).fetchone()
                if row is None:
                    self._conn.execute("COMMIT")
                    return None
                attempt = row["attempt"] + 1
                self._conn.execute(
                    "UPDATE jobs SET status='leased', worker_id=?, attempt=?,"
                    " heartbeat=?, lease_s=?, updated_at=?"
                    " WHERE spec_key=? AND fingerprint=?",
                    (
                        worker_id,
                        attempt,
                        now,
                        float(lease_s),
                        now,
                        row["spec_key"],
                        row["fingerprint"],
                    ),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise
        return Job(
            spec_key=row["spec_key"],
            fingerprint=row["fingerprint"],
            spec=json.loads(row["spec_json"]),
            payload=json.loads(row["payload"]),
            attempt=attempt,
            max_attempts=row["max_attempts"],
            lease_s=float(lease_s),
            worker_id=worker_id,
        )

    def heartbeat(self, job: Job, now: "float | None" = None) -> bool:
        """Refresh the lease; False means it was lost (stop working)."""
        now = self._now(now)
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET heartbeat=?, updated_at=?"
                " WHERE spec_key=? AND fingerprint=? AND status='leased'"
                " AND worker_id=?",
                (now, now, job.spec_key, job.fingerprint, job.worker_id),
            )
            return cursor.rowcount == 1

    def complete(self, job: Job, now: "float | None" = None) -> bool:
        """Mark a leased job done (fenced); False means the lease was lost.

        A stalled worker whose shard was reclaimed and re-run by a peer
        gets ``False`` here and must discard the outcome — its store
        writes were idempotent, its row transition is rejected.  A prior
        attempt's logged failure is kept for the audit trail.
        """
        now = self._now(now)
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET status='done', worker_id=NULL, updated_at=?"
                " WHERE spec_key=? AND fingerprint=? AND status='leased'"
                " AND worker_id=?",
                (now, job.spec_key, job.fingerprint, job.worker_id),
            )
            return cursor.rowcount == 1

    def fail(
        self,
        job: Job,
        error: str,
        tb: "str | None" = None,
        retryable: bool = True,
        now: "float | None" = None,
    ) -> "str | None":
        """Record a failed attempt (fenced).

        Returns the row's new status: ``"open"`` (requeued with backoff),
        ``"error"`` (quarantined — attempts exhausted or the failure was
        declared non-retryable), or ``None`` when the lease was already
        lost and the report was fenced off.  The full worker traceback is
        logged in the row either way.
        """
        now = self._now(now)
        quarantine = (not retryable) or job.attempt >= job.max_attempts
        with self._lock:
            if quarantine:
                cursor = self._conn.execute(
                    "UPDATE jobs SET status='error', worker_id=NULL,"
                    " error=?, traceback=?, updated_at=?"
                    " WHERE spec_key=? AND fingerprint=? AND status='leased'"
                    " AND worker_id=?",
                    (
                        error,
                        tb,
                        now,
                        job.spec_key,
                        job.fingerprint,
                        job.worker_id,
                    ),
                )
            else:
                not_before = now + self._backoff_s(
                    job.spec_key, job.fingerprint, job.attempt
                )
                cursor = self._conn.execute(
                    "UPDATE jobs SET status='open', worker_id=NULL,"
                    " not_before=?, error=?, traceback=?, updated_at=?"
                    " WHERE spec_key=? AND fingerprint=? AND status='leased'"
                    " AND worker_id=?",
                    (
                        not_before,
                        error,
                        tb,
                        now,
                        job.spec_key,
                        job.fingerprint,
                        job.worker_id,
                    ),
                )
            if cursor.rowcount != 1:
                return None
        return "error" if quarantine else "open"

    def release(self, job: Job, now: "float | None" = None) -> bool:
        """Hand back an unstarted lease (fenced); the attempt is uncounted.

        The SIGTERM drain path: a worker that prefetched shards it will
        never start returns them immediately instead of letting the
        leases time out.
        """
        now = self._now(now)
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET status='open', worker_id=NULL,"
                " attempt=attempt-1, not_before=?, updated_at=?"
                " WHERE spec_key=? AND fingerprint=? AND status='leased'"
                " AND worker_id=?",
                (now, now, job.spec_key, job.fingerprint, job.worker_id),
            )
            return cursor.rowcount == 1

    def reset(self, now: "float | None" = None) -> int:
        """Re-open every quarantined row; returns how many were re-opened.

        Attempts restart from zero (the bug is presumed fixed); the last
        logged failure stays in the row until the next transition
        overwrites it.
        """
        now = self._now(now)
        with self._lock:
            cursor = self._conn.execute(
                "UPDATE jobs SET status='open', attempt=0, not_before=0,"
                " worker_id=NULL, updated_at=? WHERE status='error'",
                (now,),
            )
            return cursor.rowcount

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counts(self) -> "dict[str, int]":
        """Row count per status (every status present, zero-filled)."""
        out = {status: 0 for status in STATUSES}
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM jobs GROUP BY status"
            ).fetchall()
        for row in rows:
            out[row["status"]] = row["n"]
        return out

    def rows(self, status: "str | None" = None) -> "list[dict]":
        """A snapshot of job rows (optionally one status), as dicts."""
        if status is not None and status not in STATUSES:
            raise ValueError(
                f"status must be one of {STATUSES}, got {status!r}"
            )
        query = "SELECT * FROM jobs"
        params: tuple = ()
        if status is not None:
            query += " WHERE status=?"
            params = (status,)
        query += " ORDER BY created_at, spec_key, fingerprint"
        with self._lock:
            rows = self._conn.execute(query, params).fetchall()
        return [dict(row) for row in rows]


class ExperimentQueue:
    """The jobs-table frontend over a pluggable backend.

    ``ExperimentQueue(path)`` opens the classic sqlite-WAL table
    (:class:`SqliteBackend`); ``ExperimentQueue(backend)`` wraps any
    ready-made :class:`~repro.runtime.transport.QueueBackend` — e.g. a
    :class:`~repro.runtime.transport.RemoteBackend` talking to a
    ``repro dispatch`` server — behind the identical API, so sweep
    drivers and tests are backend-agnostic.  Everything
    backend-independent lives here: dataset sharding
    (:meth:`submit_dataset`), drain accounting and the quarantine
    re-raise; the lease verbs delegate.

    Parameters
    ----------
    source:
        A database path (sqlite) or a :class:`QueueBackend` instance
        (adopted as-is; the backoff parameters then come from it).
    backoff_base_s / backoff_cap_s / backoff_jitter:
        Retry delay after a failed attempt ``a`` is
        ``min(cap, base * 2**(a-1)) * (1 + jitter * u)`` with ``u``
        deterministic in ``(spec_key, fingerprint, a)``.
    """

    def __init__(
        self,
        source: "str | os.PathLike | QueueBackend",
        backoff_base_s: float = 0.5,
        backoff_cap_s: float = 30.0,
        backoff_jitter: float = 0.25,
    ) -> None:
        if isinstance(source, QueueBackend):
            self.backend = source
        else:
            self.backend = SqliteBackend(
                source,
                backoff_base_s=backoff_base_s,
                backoff_cap_s=backoff_cap_s,
                backoff_jitter=backoff_jitter,
            )

    # -- frontend plumbing ---------------------------------------------
    @property
    def path(self) -> str:
        """The backend's location (file path or ``dispatch://`` URL)."""
        return self.backend.path

    @property
    def backoff_base_s(self) -> float:
        return self.backend.backoff_base_s

    @property
    def backoff_cap_s(self) -> float:
        return self.backend.backoff_cap_s

    @property
    def backoff_jitter(self) -> float:
        return self.backend.backoff_jitter

    def _backoff_s(self, spec_key: str, fingerprint: str, attempt: int) -> float:
        return self.backend._backoff_s(spec_key, fingerprint, attempt)

    def close(self) -> None:
        """Close the backend connection (the queue state persists)."""
        self.backend.close()

    def __enter__(self) -> "ExperimentQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        counts = self.counts()
        body = ", ".join(f"{s}={counts[s]}" for s in STATUSES)
        return f"ExperimentQueue({self.path!r}, {body})"

    @staticmethod
    def _now(now: "float | None") -> float:
        return time.time() if now is None else float(now)

    # -- delegated lease lifecycle -------------------------------------
    def submit(
        self,
        spec_key: str,
        fingerprint: str,
        spec: dict,
        payload: dict,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        now: "float | None" = None,
    ) -> bool:
        """Insert one job row; returns False when the key already exists."""
        return self.backend.submit(
            spec_key, fingerprint, spec, payload,
            max_attempts=max_attempts, now=now,
        )

    def claim(
        self,
        worker_id: str,
        lease_s: float = DEFAULT_LEASE_S,
        now: "float | None" = None,
    ) -> "Job | None":
        """Atomically lease the oldest claimable open job, if any."""
        return self.backend.claim(worker_id, lease_s=lease_s, now=now)

    def heartbeat(self, job: Job, now: "float | None" = None) -> bool:
        """Refresh the lease; False means it was lost (stop working)."""
        return self.backend.heartbeat(job, now=now)

    def complete(self, job: Job, now: "float | None" = None) -> bool:
        """Mark a leased job done (fenced); False means the lease was lost."""
        return self.backend.complete(job, now=now)

    def fail(
        self,
        job: Job,
        error: str,
        tb: "str | None" = None,
        retryable: bool = True,
        now: "float | None" = None,
    ) -> "str | None":
        """Record a failed attempt (fenced); the row's new status or None."""
        return self.backend.fail(
            job, error, tb=tb, retryable=retryable, now=now
        )

    def release(self, job: Job, now: "float | None" = None) -> bool:
        """Hand back an unstarted lease (fenced); the attempt is uncounted."""
        return self.backend.release(job, now=now)

    def reap(self, now: "float | None" = None) -> int:
        """Reclaim every expired lease; returns how many rows changed."""
        return self.backend.reap(now=now)

    def reset(self, now: "float | None" = None) -> int:
        """Re-open every quarantined row; returns how many were re-opened."""
        return self.backend.reset(now=now)

    def counts(self) -> "dict[str, int]":
        """Row count per status (every status present, zero-filled)."""
        return self.backend.counts()

    def rows(self, status: "str | None" = None) -> "list[dict]":
        """A snapshot of job rows (optionally one status), as dicts."""
        return self.backend.rows(status)

    def total(self) -> int:
        """Total number of job rows."""
        return self.backend.total()

    def unfinished(self) -> int:
        """Rows still in flight (open or leased)."""
        return self.backend.unfinished()

    def errors(self) -> "list[dict]":
        """The quarantined rows (status ``'error'``), with tracebacks."""
        return self.backend.errors()

    def raise_first_error(self) -> None:
        """Re-raise the first quarantined failure, traceback chained.

        The logged worker traceback arrives as a
        :class:`~repro.runtime.executors.RemoteTraceback` ``__cause__``,
        the same convention ``map_jobs``'s process backend uses, so the
        original failure site shows up in the caller's output.
        """
        self.backend.raise_first_error()

    # -- dataset sharding ----------------------------------------------
    def submit_dataset(
        self,
        spec,
        dataset,
        limit: "int | None" = None,
        shard_size: "int | None" = None,
        workers_hint: int = 4,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        now: "float | None" = None,
    ) -> int:
        """Shard a dataset sweep into jobs; returns how many were inserted.

        Shards come from :func:`~repro.runtime.executors.plan_shards`
        (``~4 * workers_hint`` shards by default, ``shard_size``
        overrides), each job carrying the spec dict, the dataset's
        generating fields and its pattern ids.  Workers write per-pattern
        summaries to the shared store under exactly the addresses
        :meth:`repro.api.Experiment.dataset_sweep` uses, so collecting
        the finished sweep is one *warm* ``dataset_sweep`` call — zero
        re-evaluations, bit-identical to the serial path.
        """
        from ..api import ExperimentSpec, dataset_fingerprint
        from ..signals.dataset import DatasetSpec

        if not isinstance(spec, ExperimentSpec):
            raise TypeError(
                f"spec must be an ExperimentSpec, got {type(spec).__name__}"
            )
        fields = {name: getattr(dataset, name) for name in _DATASET_FIELDS}
        if DatasetSpec(**fields) != dataset:
            raise ValueError(
                "queue jobs serialise a dataset by its generating fields "
                f"{_DATASET_FIELDS}; this dataset carries explicit subjects "
                "that would not survive the round-trip"
            )
        n = dataset.n_patterns if limit is None else min(limit, dataset.n_patterns)
        if n < 1:
            raise ValueError(f"nothing to submit: limit={limit}")
        spec_dict = spec.to_dict()
        spec_key = spec.key()
        base = dataset_fingerprint(dataset)
        from .store import fingerprint_value

        submitted = 0
        for shard in plan_shards(n, max(workers_hint, 1), shard_size):
            ids = list(range(shard.start, shard.stop))
            fingerprint = fingerprint_value({"dataset": base, "ids": ids})
            payload = {"kind": "dataset_shard", "dataset": fields, "ids": ids}
            submitted += self.submit(
                spec_key,
                fingerprint,
                spec_dict,
                payload,
                max_attempts=max_attempts,
                now=now,
            )
        return submitted


# ----------------------------------------------------------------------
# Job execution
# ----------------------------------------------------------------------
def execute_job(job: Job, store) -> int:
    """Run one claimed job against the shared store; returns evaluations.

    A ``dataset_shard`` job regenerates its patterns, evaluates the ones
    missing from the store through the fully batched
    :meth:`repro.api.Experiment.run` pipeline, and persists per-pattern
    summaries under the same ``(spec.key(), dataset-point fingerprint)``
    addresses a cached :meth:`~repro.api.Experiment.dataset_sweep` reads.
    Skipping already-stored patterns makes re-runs of a reclaimed,
    half-finished shard cheap and keeps every path idempotent.  ``store``
    is any object with the store ``get``/``put`` surface — the on-disk
    :class:`~repro.runtime.store.ResultStore` or a
    :class:`~repro.runtime.transport.RemoteStore` shipping blobs to the
    dispatcher.
    """
    from ..api import (
        Experiment,
        ExperimentSpec,
        dataset_fingerprint,
        dataset_point_fingerprint,
    )
    from ..signals.dataset import DatasetSpec

    kind = job.payload.get("kind")
    if kind != "dataset_shard":
        raise ValueError(f"unknown job kind {kind!r}")
    spec = ExperimentSpec.from_dict(job.spec)
    dataset = DatasetSpec(**job.payload["dataset"])
    ids = [int(i) for i in job.payload["ids"]]
    base = dataset_fingerprint(dataset)
    key = spec.key()
    fingerprints = {i: dataset_point_fingerprint(base, i) for i in ids}
    todo = [i for i in ids if store.get(key, fingerprints[i]) is None]
    if todo:
        patterns = [dataset.pattern(i) for i in todo]
        results = Experiment(spec).run(patterns)
        for i, result in zip(todo, results):
            store.put(
                key,
                fingerprints[i],
                {
                    "correlation_pct": np.float64(result.correlation_pct),
                    "n_events": np.int64(result.n_events),
                },
            )
    return len(todo)


# ----------------------------------------------------------------------
# The worker loop
# ----------------------------------------------------------------------
def new_worker_id() -> str:
    """A globally unique worker identity (host, pid, random suffix)."""
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:8]}"


@dataclass
class WorkerStats:
    """What one :func:`run_worker` call did, by outcome."""

    worker_id: str
    claimed: int = 0
    completed: int = 0
    requeued: int = 0  # failed attempts sent back for retry
    quarantined: int = 0  # failures that exhausted max_attempts
    lost: int = 0  # outcomes fenced off (lease expired under us)
    released: int = 0  # unstarted leases returned on drain
    evaluated: int = 0  # patterns actually computed (store misses)


class _Heartbeat:
    """A daemon thread refreshing one job's lease on its own connection."""

    def __init__(self, spawn, job: Job, interval_s: float) -> None:
        self.lost = False
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(spawn, job, interval_s), daemon=True
        )
        self._thread.start()

    def _run(self, spawn, job: Job, interval_s: float) -> None:
        backend = spawn()
        try:
            while not self._stop.wait(interval_s):
                if not backend.heartbeat(job):
                    self.lost = True
                    return
        finally:
            backend.close()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join()


def run_worker(
    queue_path: "str | os.PathLike | None" = None,
    store_root: "str | os.PathLike | None" = None,
    worker_id: "str | None" = None,
    lease_s: float = DEFAULT_LEASE_S,
    poll_s: float = 0.2,
    max_idle_s: "float | None" = 0.0,
    max_jobs: "int | None" = None,
    prefetch: int = 1,
    heartbeat_s: "float | None" = None,
    faults: "FaultPlan | None" = None,
    should_stop=None,
    log=None,
    *,
    dispatcher: "str | None" = None,
    idle_cap_s: float = 2.0,
    sleep=None,
    clock=None,
) -> WorkerStats:
    """Pull and execute shards until the queue drains (or we are stopped).

    The loop: claim up to ``prefetch`` jobs, heartbeat each while it
    executes, ``complete``/``fail`` it (fenced), repeat.  The worker
    exits when the queue holds jobs and none are unfinished ("drained"),
    when the queue has held *no jobs at all* for ``max_idle_s`` seconds
    (a startup grace for workers launched before the sweep is submitted;
    ``0`` = exit immediately if empty, ``None`` = wait forever), when
    ``max_jobs`` attempts have been claimed, or when
    ``should_stop()`` turns true (the SIGTERM drain: the in-flight shard
    finishes, prefetched leases are released, exit is clean).

    With ``dispatcher="host:port"`` the worker needs no shared mount:
    the queue is a :class:`~repro.runtime.transport.RemoteBackend` and
    results ship to the dispatcher's store through a
    :class:`~repro.runtime.transport.RemoteStore`; ``queue_path`` /
    ``store_root`` must then be None.

    Empty claims back off: consecutive idle polls wait
    ``min(idle_cap_s, poll_s * 2**idle)`` with deterministic jitter
    (reset by the next successful claim), so a large idle fleet probes
    the queue at a trickle instead of hammering it at ``1/poll_s`` Hz.
    ``sleep`` and ``clock`` are injectable for tests (default
    ``time.sleep`` / ``time.monotonic``).

    ``faults`` applies the deterministic injectors from
    :mod:`repro.runtime.faults` — see that module for the taxonomy.
    """
    if prefetch < 1:
        raise ValueError(f"prefetch must be >= 1, got {prefetch}")
    if dispatcher is not None:
        if queue_path is not None or store_root is not None:
            raise ValueError(
                "pass either dispatcher=... or queue_path/store_root, not both"
            )
        queue = ExperimentQueue(RemoteBackend(dispatcher, faults=faults))
        store = RemoteStore(dispatcher, faults=faults)
    else:
        if queue_path is None or store_root is None:
            raise ValueError(
                "run_worker needs queue_path and store_root (or dispatcher=)"
            )
        queue = ExperimentQueue(queue_path)
        store = ResultStore(store_root)
    sleep = time.sleep if sleep is None else sleep
    clock = time.monotonic if clock is None else clock
    worker_id = worker_id or new_worker_id()
    stats = WorkerStats(worker_id=worker_id)
    heartbeat_s = (
        max(lease_s / 4.0, 0.02) if heartbeat_s is None else heartbeat_s
    )
    say = log or (lambda message: None)
    backlog: "list[Job]" = []
    idle_since: "float | None" = None
    idle_polls = 0  # consecutive empty claims since the last success
    try:
        while True:
            if should_stop is not None and should_stop():
                for job in backlog:
                    if queue.release(job):
                        stats.released += 1
                say(f"{worker_id}: stop requested, drained cleanly")
                break
            budget = prefetch - len(backlog)
            if max_jobs is not None:
                budget = min(budget, max_jobs - stats.claimed)
            for _ in range(budget):
                job = queue.claim(worker_id, lease_s=lease_s)
                if job is None:
                    break
                idle_polls = 0
                stats.claimed += 1
                backlog.append(job)
            if not backlog:
                if max_jobs is not None and stats.claimed >= max_jobs:
                    break
                total = queue.total()
                if total > 0 and queue.unfinished() == 0:
                    break  # drained: every row is done or quarantined
                if idle_since is None:
                    idle_since = clock()
                if (
                    total == 0
                    and max_idle_s is not None
                    and clock() - idle_since >= max_idle_s
                ):
                    break  # nothing was ever submitted within the grace
                # Exponent clamped: past ~2**30 the doubling is
                # academic and 2.0**idle_polls overflows a float.
                delay = min(idle_cap_s, poll_s * 2.0 ** min(idle_polls, 30))
                delay *= 1.0 + 0.25 * _backoff_jitter(
                    worker_id, "idle", idle_polls
                )
                idle_polls += 1
                sleep(delay)
                continue
            idle_since = None
            job = backlog.pop(0)
            fault = (
                faults.match(job.fingerprint, job.attempt)
                if faults is not None
                else None
            )
            heartbeat = _Heartbeat(queue.backend.spawn, job, heartbeat_s)
            try:
                if fault is not None and fault.kind == "crash":
                    # SIGKILL equivalent: no cleanup, no finally blocks.
                    os._exit(137)
                if fault is not None and fault.kind == "stall":
                    heartbeat.stop()
                    time.sleep(fault.stall_s)
                if fault is not None and fault.kind == "error":
                    raise InjectedFault(
                        f"injected transient error on "
                        f"{job.fingerprint[:12]} attempt {job.attempt}"
                    )
                stats.evaluated += execute_job(job, store)
            except BaseException as exc:
                heartbeat.stop()
                outcome = queue.fail(
                    job,
                    error=f"{type(exc).__name__}: {exc}",
                    tb=traceback.format_exc(),
                )
                if outcome == "open":
                    stats.requeued += 1
                elif outcome == "error":
                    stats.quarantined += 1
                else:
                    stats.lost += 1
                say(
                    f"{worker_id}: {job.fingerprint[:12]} attempt "
                    f"{job.attempt} failed -> {outcome or 'lease lost'}"
                )
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
            else:
                heartbeat.stop()
                if queue.complete(job):
                    stats.completed += 1
                    say(f"{worker_id}: {job.fingerprint[:12]} done")
                else:
                    stats.lost += 1
                    say(
                        f"{worker_id}: {job.fingerprint[:12]} completion "
                        "fenced off (lease was reclaimed)"
                    )
            finally:
                heartbeat.stop()
    finally:
        queue.close()
        if dispatcher is not None:
            store.close()
    return stats


def install_sigterm_drain() -> "threading.Event":
    """SIGTERM -> a drain event (for ``should_stop``); returns the event.

    Only usable from the main thread (signal semantics); the CLI worker
    installs it so ``kill <pid>`` finishes the current shard instead of
    dropping it, and SIGINT keeps its default KeyboardInterrupt.
    """
    event = threading.Event()

    def _handler(signum, frame):  # noqa: ARG001 — signal signature
        event.set()

    signal.signal(signal.SIGTERM, _handler)
    return event
