"""Asyncio client for :class:`~repro.runtime.server.SessionServer`.

:class:`StreamingClient` speaks the newline-delimited JSON protocol
(``docs/SERVING.md``): sample chunks travel as base64 float64, replies
carry envelopes/streams the same way, and every reply is matched to its
request in FIFO order on the connection (the server answers strictly in
order).  Unsolicited ``{"event": ...}`` notices — drain completions,
goodbyes — are collected on :attr:`events` as they interleave with
replies.

The client is also the attachment point for the chaos rig's
``"disconnect"`` injector: give it a :class:`~repro.runtime.faults.FaultPlan`
(or set ``REPRO_FAULTS``) and it consults the plan before every push
with fingerprint ``"<name>:<sid>"`` and the session's 1-based push
count as the attempt number; a match aborts the TCP transport with no
goodbye — the deterministic replay of a wearer walking out of range.

Quickstart::

    client = await StreamingClient.connect(host, port)
    sid = await client.create(SessionSpec(fs=2500.0))
    for chunk in chunks:
        await client.push(sid, chunk)        # retries "busy" replies
    result = await client.finalize(sid)      # SessionResult: stream+envelope
    await client.close()
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from .faults import FaultPlan
from .server import (
    MAX_LINE_BYTES,
    decode_chunk,  # noqa: F401  (re-exported for tests building frames)
    pack_array,
    unpack_floats,
    unpack_ints,
)
from .sessions import SessionResult, SessionSpec
from ..core.events import EventStream

__all__ = ["ServerReplyError", "ServerBusy", "StreamingClient"]


class ServerReplyError(RuntimeError):
    """The server answered ``{"ok": false, ...}``.

    :attr:`code` is the machine-readable ``error`` field (``"busy"``,
    ``"shed"``, ``"reaped"``, ``"finalized"``, ``"draining"``,
    ``"too-short"``, ...); ``detail`` (when present) is human-readable.
    """

    def __init__(self, code: str, reply: dict) -> None:
        detail = reply.get("detail")
        super().__init__(code if detail is None else f"{code}: {detail}")
        self.code = code
        self.reply = reply


class ServerBusy(ServerReplyError):
    """Backpressure: the session's ingest queue is full, push again later."""


def _stream_from_reply(reply: dict) -> EventStream:
    return EventStream(
        times=unpack_floats(reply["times"]),
        duration_s=float(reply["duration_s"]),
        levels=unpack_ints(reply.get("levels")),
        clock_hz=float(reply.get("clock_hz", 0.0)),
        symbols_per_event=int(reply.get("symbols_per_event", 1)),
    )


class StreamingClient:
    """One connection's view of the streaming session server.

    Create with :meth:`connect` (or use ``async with``).  A single
    client can own many sessions; for thousands of sessions, open a
    handful of clients and spread the sessions across them (the bench
    uses ~32 connections for 1k+ sessions).

    Parameters
    ----------
    name:
        Fault-plan fingerprint prefix (``"<name>:<sid>"``).
    faults:
        Optional :class:`~repro.runtime.faults.FaultPlan`; defaults to
        the plan in ``REPRO_FAULTS`` when set.  Only ``"disconnect"``
        injectors apply here.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        name: str = "client",
        faults: "FaultPlan | None" = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self.name = name
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self.events: "list[dict]" = []  # unsolicited server notices
        self._push_counts: "dict[int, int]" = {}
        self._closed = False

    @classmethod
    async def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: str = "client",
        faults: "FaultPlan | None" = None,
    ) -> "StreamingClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE_BYTES
        )
        return cls(reader, writer, name=name, faults=faults)

    async def __aenter__(self) -> "StreamingClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Framing
    # ------------------------------------------------------------------
    def _send(self, msg: dict) -> None:
        if self._closed:
            raise ConnectionError("client is closed")
        self._writer.write(
            json.dumps(msg, separators=(",", ":")).encode() + b"\n"
        )

    async def _read_reply(self) -> dict:
        """Next in-order reply; queues interleaved event notices."""
        while True:
            line = await self._reader.readline()
            if not line:
                raise ConnectionError("server closed the connection")
            msg = json.loads(line)
            if "event" in msg:
                self.events.append(msg)
                continue
            return msg

    async def _rpc(self, msg: dict) -> dict:
        self._send(msg)
        await self._writer.drain()
        reply = await self._read_reply()
        if not reply.get("ok", False):
            code = reply.get("error", "error")
            if code == "busy":
                raise ServerBusy(code, reply)
            raise ServerReplyError(code, reply)
        return reply

    async def wait_event(self, timeout: "float | None" = None) -> dict:
        """Block until an unsolicited notice arrives (drain/goodbye)."""
        if self.events:
            return self.events.pop(0)

        async def _next():
            while True:
                line = await self._reader.readline()
                if not line:
                    raise ConnectionError("server closed the connection")
                msg = json.loads(line)
                if "event" in msg:
                    return msg
                # A reply with no request in flight is a protocol error.
                raise RuntimeError(f"unexpected reply while idle: {msg}")

        return await asyncio.wait_for(_next(), timeout)

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    async def create(self, spec: "SessionSpec | None" = None) -> int:
        """Open a session; returns the server-assigned session id."""
        payload = (spec if spec is not None else SessionSpec()).to_dict()
        reply = await self._rpc({"op": "create", "spec": payload})
        sid = int(reply["sid"])
        self._push_counts[sid] = 0
        return sid

    async def create_many(
        self, spec: "SessionSpec | None", n: int
    ) -> "list[int]":
        """Open ``n`` same-spec sessions in one frame; returns their ids."""
        payload = (spec if spec is not None else SessionSpec()).to_dict()
        reply = await self._rpc({"op": "create", "spec": payload, "n": int(n)})
        sids = [int(sid) for sid in reply["sids"]]
        for sid in sids:
            self._push_counts[sid] = 0
        return sids

    def _consult_faults(self, sid: int) -> None:
        """Abort the transport if the plan schedules a disconnect here."""
        attempt = self._push_counts.get(sid, 0) + 1
        self._push_counts[sid] = attempt
        if self.faults is None:
            return
        fault = self.faults.match(f"{self.name}:{sid}", attempt)
        if fault is not None and fault.kind == "disconnect":
            self.abort()
            raise ConnectionResetError(
                f"injected disconnect before push {attempt} of session {sid}"
            )

    async def push(
        self,
        sid: int,
        chunk,
        *,
        retry_busy: bool = True,
        busy_backoff_s: float = 0.002,
        max_retries: int = 1000,
    ) -> int:
        """Send one sample chunk; returns the session's queued depth.

        A ``busy`` reply (backpressure) is retried after
        ``busy_backoff_s`` — the decode pump only needs a moment — up to
        ``max_retries`` times; pass ``retry_busy=False`` to surface
        :class:`ServerBusy` instead.
        """
        self._consult_faults(sid)
        msg = {
            "op": "push",
            "sid": int(sid),
            "data": pack_array(np.asarray(chunk, dtype=float)),
        }
        for _ in range(max_retries):
            try:
                reply = await self._rpc(msg)
            except ServerBusy:
                if not retry_busy:
                    raise
                await asyncio.sleep(busy_backoff_s)
                continue
            return int(reply.get("queued", 0))
        raise ServerBusy("busy", {"error": "busy", "sid": sid})

    async def push_all(self, chunks: "dict[int, np.ndarray]") -> "dict[int, dict]":
        """Batched push to many sessions in a single ``pushm`` frame —
        one round trip for the whole wave instead of one per session,
        and one JSON frame to parse server-side.  At 1k concurrent
        sessions this is the difference between the socket boundary
        costing a few percent and costing more than the decode.

        ``busy`` replies are retried until every session's chunk is
        accepted; other per-session failures raise
        :class:`ServerReplyError`.  Returns ``{sid: reply}``.
        """
        done: "dict[int, dict]" = {}
        todo = dict(chunks)
        while todo:
            sids, arrays = [], []
            for sid, chunk in todo.items():
                self._consult_faults(sid)
                sids.append(int(sid))
                arrays.append(np.asarray(chunk, dtype=float))
            frame = {
                "op": "pushm",
                "sids": sids,
                "lens": [a.size for a in arrays],
                "data": pack_array(
                    np.concatenate(arrays) if arrays else np.empty(0)
                ),
            }
            self._send(frame)
            await self._writer.drain()
            reply = await self._read_reply()
            if not reply.get("ok", False):
                raise ServerReplyError(reply.get("error", "error"), reply)
            retry = {}
            for sid, result in zip(sids, reply["results"]):
                if not result.get("ok", False):
                    if result.get("error") == "busy":
                        retry[sid] = todo[sid]
                        # The retry re-consults the fault plan with a
                        # fresh attempt number; undo the optimistic count
                        # so attempts keep matching *delivered* pushes.
                        self._push_counts[sid] -= 1
                        continue
                    raise ServerReplyError(
                        result.get("error", "error"), result
                    )
                done[sid] = result
            todo = retry
            if todo:
                await asyncio.sleep(0.002)
        return done

    async def drain(self, sid: int) -> EventStream:
        """Events the session fired since its last drain."""
        reply = await self._rpc({"op": "drain", "sid": int(sid)})
        return _stream_from_reply(reply)

    async def finalize(self, sid: int) -> SessionResult:
        """Flush and close the session; returns its full stream+envelope.

        The envelope is bit-identical to the scalar one-shot path on the
        concatenated chunks (the ``SessionBatch`` contract, preserved
        through the socket).
        """
        reply = await self._rpc({"op": "finalize", "sid": int(sid)})
        return SessionResult(
            session_id=int(reply["sid"]),
            stream=_stream_from_reply(reply),
            envelope=unpack_floats(reply["envelope"]),
        )

    async def stats(self) -> dict:
        """The server's operational counters (see ``ServerStats``)."""
        reply = await self._rpc({"op": "stats"})
        return reply["stats"]

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    async def close(self) -> None:
        """Polite goodbye: ``close`` verb, then shut the transport."""
        if self._closed:
            return
        try:
            self._send({"op": "close"})
            await self._writer.drain()
            await self._read_reply()
        except (ConnectionError, RuntimeError):
            pass
        self.abort()

    def abort(self) -> None:
        """Drop the TCP transport immediately — no goodbye, no flush."""
        self._closed = True
        transport = self._writer.transport
        if transport is not None:
            transport.abort()
