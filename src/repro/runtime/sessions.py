"""Vectorized multi-session streaming runtime (``SessionBatch``).

One always-on process must multiplex many concurrent encode -> decode
sessions (one per wearer).  Driving a scalar
:class:`~repro.core.encoders.StreamingEncoder` /
:class:`~repro.rx.decoders.StreamingDecoder` pair per session costs a
Python call stack per session per chunk — at hundreds of sessions the
interpreter dwarfs the numpy work.  :class:`SessionBatch` applies the
same loop -> batch transformation that made ``encode_batch`` /
``reconstruct_batch`` fast to the *streaming* runtime: every session's
encoder state (dense tail, frame buffer, predictor registers, comparator
flop) and decoder state (O(n_bins) bin-count accumulators) lives in
packed struct-of-arrays, and one :meth:`SessionBatch.push_many` call
advances all pushed sessions together through whole-batch numpy ops plus
the ``"session_frames"`` kernel (numpy flavour below; numba tier in
:mod:`repro.kernels.sessions`, dispatched through the
:mod:`repro.kernels` registry).

Contract
--------
Every session's event stream and decoded envelope is **bit-identical**
to a scalar ``StreamingEncoder``/``StreamingDecoder`` fed the same chunk
sequence, for *any* interleaving of pushes across sessions (asserted in
``tests/runtime/test_sessions.py`` and the hypothesis suite in
``tests/properties/test_sessions_properties.py``).  The batched paths
model ideal comparison only — non-ideal comparators/DACs and noisy RNG
draws stay on the scalar 1-D paths, exactly like ``encode_batch``.

Heterogeneity and lifecycle
---------------------------
Sessions whose :meth:`SessionSpec.key` match are packed into one
homogeneous sub-batch (shared clock/frame/predictor constants — the
paper's multi-channel D-ATC structure); a ``push_many`` spanning several
specs advances each sub-batch in one batched call.  Sessions join
(:meth:`SessionBatch.create`) and leave (:meth:`SessionBatch.leave`)
dynamically: slots are pooled, reused, and compacted when a sub-batch
empties out.

The live sequence mirrors the scalar one: ``push_many* ->
finalize(sid) -> drain(sid)`` (D-ATC's trailing partial frame fires its
events inside ``finalize``; ``drain``/``drain_many`` deliver incremental
event chunks at any point).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

import numpy as np

from ..core.atc import rising_edges
from ..core.config import ATCConfig, DATCConfig
from ..core.events import EventStream
from ..core.predictor import ThresholdPredictor
from ..kernels.dispatch import get_kernel, register_kernel
from ..rx.reconstruction import level_zoh
from ..rx.windowing import grid_edges
from ..signals.envelope import moving_average

__all__ = [
    "SESSION_SPEC_VERSION",
    "SessionBatch",
    "SessionResult",
    "SessionSpec",
]

SESSION_SPEC_VERSION = 1


@dataclasses.dataclass(frozen=True)
class SessionSpec:
    """The operating point of one streaming session (TX + RX).

    Sessions with equal :meth:`key` share every batched constant (clock,
    frame size, predictor ladder, decode grid), so ``SessionBatch`` packs
    them into one homogeneous sub-batch.

    Parameters
    ----------
    scheme:
        ``"atc"`` or ``"datc"``.
    fs:
        Input sampling rate in Hz.
    config:
        Encoder/decoder operating point; defaults to the scheme's paper
        operating point.
    rectify:
        Full-wave rectify each chunk before thresholding.
    fs_out, window_s, silence_timeout_s, decay_tau_s, rate_weight:
        Receiver parameters, mirroring
        :class:`~repro.rx.decoders.StreamingDecoder`.
    """

    scheme: str = "datc"
    fs: float = 2000.0
    config: "ATCConfig | DATCConfig | None" = None
    rectify: bool = True
    fs_out: float = 100.0
    window_s: float = 0.25
    silence_timeout_s: float = 0.5
    decay_tau_s: float = 0.5
    rate_weight: float = 0.7

    def __post_init__(self) -> None:
        if self.scheme not in ("atc", "datc"):
            raise ValueError(
                f"scheme must be 'atc' or 'datc', got {self.scheme!r}"
            )
        if self.fs <= 0:
            raise ValueError(f"fs must be positive, got {self.fs}")
        if self.fs_out <= 0:
            raise ValueError(f"fs_out must be positive, got {self.fs_out}")
        if self.window_s <= 0:
            raise ValueError(f"window_s must be positive, got {self.window_s}")
        if self.silence_timeout_s <= 0:
            raise ValueError(
                f"silence_timeout_s must be positive, got "
                f"{self.silence_timeout_s}"
            )
        if self.decay_tau_s <= 0:
            raise ValueError(
                f"decay_tau_s must be positive, got {self.decay_tau_s}"
            )
        if not 0.0 <= self.rate_weight <= 1.0:
            raise ValueError(
                f"rate_weight must be within [0, 1], got {self.rate_weight}"
            )
        if self.config is None:
            config = ATCConfig() if self.scheme == "atc" else DATCConfig()
            object.__setattr__(self, "config", config)
        expected = ATCConfig if self.scheme == "atc" else DATCConfig
        if not isinstance(self.config, expected):
            raise TypeError(
                f"scheme {self.scheme!r} needs a {expected.__name__}, got "
                f"{type(self.config).__name__}"
            )

    def to_dict(self) -> dict:
        """Canonical JSON-able form (the hashed identity of the spec)."""
        return {
            "version": SESSION_SPEC_VERSION,
            "scheme": self.scheme,
            "fs": self.fs,
            "config_type": type(self.config).__name__,
            "config": dataclasses.asdict(self.config),
            "rectify": self.rectify,
            "fs_out": self.fs_out,
            "window_s": self.window_s,
            "silence_timeout_s": self.silence_timeout_s,
            "decay_tau_s": self.decay_tau_s,
            "rate_weight": self.rate_weight,
        }

    def key(self) -> str:
        """Stable content hash; equal keys batch into one sub-batch."""
        cached = getattr(self, "_key", None)
        if cached is None:
            payload = json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(payload.encode()).hexdigest()
            # Frozen dataclass: memoised through object.__setattr__ (the
            # hash sits on the hot push path of every session).
            object.__setattr__(self, "_key", cached)
        return cached

    @classmethod
    def from_dict(cls, data: dict) -> "SessionSpec":
        """Rebuild from :meth:`to_dict` output (the wire/server format).

        Round-trips exactly: ``SessionSpec.from_dict(spec.to_dict())``
        has the same :meth:`key` as ``spec``.  Validation runs as usual,
        so a malformed payload fails with the same pointed errors as a
        direct construction.
        """
        data = dict(data)
        version = data.pop("version", SESSION_SPEC_VERSION)
        if version != SESSION_SPEC_VERSION:
            raise ValueError(
                f"unsupported SessionSpec version {version!r} "
                f"(this build speaks {SESSION_SPEC_VERSION})"
            )
        config_type = data.pop("config_type", None)
        config = data.pop("config", None)
        if config is not None and not isinstance(config, (ATCConfig, DATCConfig)):
            by_name = {"ATCConfig": ATCConfig, "DATCConfig": DATCConfig}
            if config_type not in by_name:
                raise ValueError(
                    f"config_type must be one of {sorted(by_name)}, "
                    f"got {config_type!r}"
                )
            fields = dict(config)
            for name in ("frame_sizes", "weights"):
                if name in fields and fields[name] is not None:
                    fields[name] = tuple(fields[name])
            config = by_name[config_type](**fields)
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown SessionSpec fields: {unknown}")
        return cls(config=config, **data)


@dataclasses.dataclass(frozen=True)
class SessionResult:
    """What :meth:`SessionBatch.finalize` hands back for one session."""

    session_id: int
    stream: EventStream  # every event the session fired (one-shot form)
    envelope: np.ndarray  # decoded envelope on the fs_out grid


# ----------------------------------------------------------------------
# The "session_frames" kernel (numpy flavour)
# ----------------------------------------------------------------------
@register_kernel("session_frames", "numpy")
def _session_frames_numpy(
    P: np.ndarray,
    navail: np.ndarray,
    emitted: np.ndarray,
    last_bit: np.ndarray,
    n_one1: np.ndarray,
    n_one2: np.ndarray,
    level: np.ndarray,
    config: DATCConfig,
):
    """Advance every pushed D-ATC session through its completed frames.

    ``P`` is the packed frame-assembly matrix: row ``r`` holds that
    session's ``navail[r]`` buffered clocked samples starting at column
    0 (columns beyond are garbage, never read), whose global clock index
    is ``emitted[r] + column``.  Register arrays (``last_bit``,
    ``n_one1``, ``n_one2``, ``level``) are updated **in place** for rows
    with completed frames; rows still short of a frame are untouched.

    Returns ``(ev_row, ev_clk, ev_lvl)`` int64 arrays sorted by (row,
    clock): the rising-edge events fired, with the level in force when
    each fired.  Per-row arithmetic is bit-identical to the scalar
    ``DATCEncoder`` frame loop (same IEEE op order as
    ``_BatchPredictor`` — this is the ``"session_frames"`` numpy
    flavour; :mod:`repro.kernels.sessions` provides the fused compiled
    tier, gated by exact equality).
    """
    k = P.shape[0]
    frame_size = config.frame_size
    ladder = np.asarray(ThresholdPredictor(config).interval_ladder, dtype=float)
    min_level = int(config.min_level)
    vref = float(config.vref)
    n_codes = float(1 << config.dac_bits)
    w1, w2, w3 = config.weights
    divisor = config.weight_divisor
    if config.quantized:
        fixed = config.fixed_weights()
        fw1, fw2, fw3, shift = fixed.w1, fixed.w2, fixed.w3, fixed.shift
    n_frames = navail // frame_size
    max_f = int(n_frames.max()) if k else 0
    rows_parts: "list[np.ndarray]" = []
    clk_parts: "list[np.ndarray]" = []
    lvl_parts: "list[np.ndarray]" = []
    for f in range(max_f):
        live = n_frames > f
        # Eqn. (3) with the reference (vref * level) / 2**Nb op order.
        vth = vref * level.astype(float) / n_codes
        bits = P[:, f * frame_size : (f + 1) * frame_size] > vth[:, None]
        prev = np.concatenate([(last_bit == 1)[:, None], bits[:, :-1]], axis=1)
        edge = bits & ~prev & live[:, None]
        r_i, c_i = np.nonzero(edge)
        rows_parts.append(r_i)
        clk_parts.append(emitted[r_i] + f * frame_size + c_i)
        lvl_parts.append(level[r_i])
        ones = bits.sum(axis=1)
        if config.quantized:
            acc = fw3 * ones + fw2 * n_one2 + fw1 * n_one1
            avr = (acc >> shift).astype(float)
        else:
            avr = (w3 * ones + w2 * n_one2 + w1 * n_one1) / divisor
        sel = np.searchsorted(ladder, avr, side="right") - 1
        new_level = np.maximum(sel, min_level).astype(np.int64)
        level[...] = np.where(live, new_level, level)
        n_one1[...] = np.where(live, n_one2, n_one1)
        n_one2[...] = np.where(live, ones.astype(np.int64), n_one2)
        last_bit[...] = np.where(live, bits[:, -1].astype(np.int64), last_bit)
    if not rows_parts:
        z = np.zeros(0, dtype=np.int64)
        return z, z, z
    r = np.concatenate(rows_parts)
    c = np.concatenate(clk_parts)
    lv = np.concatenate(lvl_parts)
    # The frame loop emits frame-major; the contract is row-major with
    # ascending clocks per row (a stable sort keeps frames in order).
    order = np.argsort(r, kind="stable")
    return r[order], c[order], lv[order]


# ----------------------------------------------------------------------
# One homogeneous sub-batch (equal spec.key())
# ----------------------------------------------------------------------
class _SubBatch:
    """Packed struct-of-arrays state for sessions sharing one spec.

    Row ``slot`` of every array is one session.  Slots are pooled
    (``release`` -> free list -> ``acquire``) and the arrays are
    compacted when the batch empties out, so a long-lived server's
    memory tracks its *live* population.
    """

    _MIN_ROWS = 8

    def __init__(self, spec: SessionSpec) -> None:
        self.spec = spec
        self.scheme = spec.scheme
        self.fs = float(spec.fs)
        self.config = spec.config
        self.clock_hz = float(spec.config.clock_hz)
        self.fs_out = float(spec.fs_out)
        self.window = max(1, int(round(spec.window_s * spec.fs_out)))
        self.frame_size = (
            spec.config.frame_size if self.scheme == "datc" else 0
        )
        self.has_levels = self.scheme == "datc"
        # Dense samples a future clock edge can still capture: bounded by
        # one clock period plus slack (grown defensively if ever needed).
        self.tail_cap = int(np.ceil(self.fs / self.clock_hz)) + 4
        self.cap = self._MIN_ROWS
        self._alloc(self.cap)
        self._ev_cap = 64
        self._ev_clk = np.zeros((self.cap, self._ev_cap), dtype=np.int64)
        self._ev_lvl = (
            np.zeros((self.cap, self._ev_cap), dtype=np.int64)
            if self.has_levels
            else None
        )
        self._bin_cap = 64
        self._counts = np.zeros((self.cap, self._bin_cap), dtype=np.intp)
        self._edges = grid_edges(self._bin_cap, self.fs_out)
        self._free: "list[int]" = list(range(self.cap))
        self.slot_of: "dict[int, int]" = {}  # session id -> row

    def _alloc(self, cap: int) -> None:
        self._active = np.zeros(cap, dtype=bool)
        self._finalized = np.zeros(cap, dtype=bool)
        self._sid = np.full(cap, -1, dtype=np.int64)
        self._ns = np.zeros(cap, dtype=np.int64)
        self._nclk_sampled = np.zeros(cap, dtype=np.int64)
        self._nclk_emitted = np.zeros(cap, dtype=np.int64)
        self._last_bit = np.zeros(cap, dtype=np.int64)
        self._tail_len = np.zeros(cap, dtype=np.int64)
        self._tail = np.zeros((cap, self.tail_cap), dtype=float)
        self._frame_len = np.zeros(cap, dtype=np.int64)
        self._frame_buf = np.zeros((cap, max(self.frame_size, 1)), dtype=float)
        self._n_one1 = np.zeros(cap, dtype=np.int64)
        self._n_one2 = np.zeros(cap, dtype=np.int64)
        self._level = np.zeros(cap, dtype=np.int64)
        self._ev_len = np.zeros(cap, dtype=np.int64)
        self._counted = np.zeros(cap, dtype=np.int64)
        self._drained = np.zeros(cap, dtype=np.int64)
        self._n_bins = np.zeros(cap, dtype=np.int64)

    @property
    def n_active(self) -> int:
        return len(self.slot_of)

    # -- slot lifecycle -------------------------------------------------
    def acquire(self, sid: int) -> int:
        if not self._free:
            self._grow_rows(2 * self.cap)
        slot = self._free.pop()
        self._reset_slot(slot)
        self._active[slot] = True
        self._sid[slot] = sid
        self.slot_of[sid] = slot
        return slot

    def release(self, sid: int) -> None:
        slot = self.slot_of.pop(sid)
        self._active[slot] = False
        self._sid[slot] = -1
        self._free.append(slot)
        if self.cap > 2 * self._MIN_ROWS and self.n_active <= self.cap // 4:
            self._compact()

    def _reset_slot(self, slot: int) -> None:
        self._finalized[slot] = False
        self._ns[slot] = 0
        self._nclk_sampled[slot] = 0
        self._nclk_emitted[slot] = 0
        self._last_bit[slot] = 0
        self._tail_len[slot] = 0
        self._frame_len[slot] = 0
        self._n_one1[slot] = 0
        self._n_one2[slot] = 0
        self._level[slot] = (
            self.config.initial_level if self.has_levels else 0
        )
        self._ev_len[slot] = 0
        self._counted[slot] = 0
        self._drained[slot] = 0
        self._n_bins[slot] = 0
        self._counts[slot, :] = 0

    def _grow_rows(self, new_cap: int) -> None:
        old = self.__dict__.copy()
        self._alloc(new_cap)
        for name in (
            "_active", "_finalized", "_sid", "_ns", "_nclk_sampled",
            "_nclk_emitted", "_last_bit", "_tail_len", "_tail",
            "_frame_len", "_frame_buf", "_n_one1", "_n_one2", "_level",
            "_ev_len", "_counted", "_drained", "_n_bins",
        ):
            getattr(self, name)[: self.cap] = old[name]
        for name, cols in (("_ev_clk", self._ev_cap), ("_counts", self._bin_cap)):
            grown = np.zeros((new_cap, cols), dtype=old[name].dtype)
            grown[: self.cap] = old[name]
            setattr(self, name, grown)
        if self.has_levels:
            grown = np.zeros((new_cap, self._ev_cap), dtype=np.int64)
            grown[: self.cap] = old["_ev_lvl"]
            self._ev_lvl = grown
        self._free.extend(range(self.cap, new_cap))
        self.cap = new_cap

    def _compact(self) -> None:
        """Repack live rows to the front; shrink to fit the population."""
        live = np.flatnonzero(self._active)
        new_cap = self._MIN_ROWS
        while new_cap < 2 * live.size:
            new_cap *= 2
        matrices = {
            "_tail": self._tail[live],
            "_frame_buf": self._frame_buf[live],
            "_ev_clk": self._ev_clk[live],
            "_counts": self._counts[live],
        }
        if self.has_levels:
            matrices["_ev_lvl"] = self._ev_lvl[live]
        vectors = {
            name: getattr(self, name)[live]
            for name in (
                "_active", "_finalized", "_sid", "_ns", "_nclk_sampled",
                "_nclk_emitted", "_last_bit", "_tail_len", "_frame_len",
                "_n_one1", "_n_one2", "_level", "_ev_len", "_counted",
                "_drained", "_n_bins",
            )
        }
        self.cap = new_cap
        self._alloc(new_cap)
        for name, packed in vectors.items():
            getattr(self, name)[: live.size] = packed
        self._ev_clk = np.zeros((new_cap, self._ev_cap), dtype=np.int64)
        self._ev_clk[: live.size] = matrices["_ev_clk"]
        self._counts = np.zeros((new_cap, self._bin_cap), dtype=np.intp)
        self._counts[: live.size] = matrices["_counts"]
        self._tail[: live.size] = matrices["_tail"]
        self._frame_buf[: live.size] = matrices["_frame_buf"]
        if self.has_levels:
            self._ev_lvl = np.zeros((new_cap, self._ev_cap), dtype=np.int64)
            self._ev_lvl[: live.size] = matrices["_ev_lvl"]
        self._free = list(range(live.size, new_cap))
        self.slot_of = {
            int(self._sid[i]): i for i in range(live.size)
        }

    # -- storage growth -------------------------------------------------
    def _ensure_ev_cap(self, need: int) -> None:
        if need <= self._ev_cap:
            return
        cap = self._ev_cap
        while cap < need:
            cap *= 2
        grown = np.zeros((self.cap, cap), dtype=np.int64)
        grown[:, : self._ev_cap] = self._ev_clk
        self._ev_clk = grown
        if self.has_levels:
            grown = np.zeros((self.cap, cap), dtype=np.int64)
            grown[:, : self._ev_cap] = self._ev_lvl
            self._ev_lvl = grown
        self._ev_cap = cap

    def _ensure_bin_cap(self, need: int) -> None:
        if need <= self._bin_cap:
            return
        cap = self._bin_cap
        while cap < need:
            cap *= 2
        grown = np.zeros((self.cap, cap), dtype=np.intp)
        grown[:, : self._bin_cap] = self._counts
        self._counts = grown
        # Edge values are prefix-stable (k / fs_out): the longer array
        # serves every earlier logical grid too.
        self._edges = grid_edges(cap, self.fs_out)
        self._bin_cap = cap

    def _ensure_tail_cap(self, need: int) -> None:
        if need <= self.tail_cap:
            return
        grown = np.zeros((self.cap, need), dtype=float)
        grown[:, need - self.tail_cap :] = self._tail  # stay right-aligned
        self._tail = grown
        self.tail_cap = need

    # -- the batched advance -------------------------------------------
    def push(self, slots: "list[int]", chunks: "list[np.ndarray]") -> int:
        """Advance the pushed sessions by one chunk each; count new events.

        The whole-batch mirror of ``StreamingEncoder.push`` +
        ``StreamingDecoder.push``: clock-edge resampling, frame assembly,
        predictor updates, edge detection and bin counting all run as
        single numpy/kernel calls over the pushed rows, with ragged
        chunk lengths handled by padding + per-row masks.
        """
        k = len(slots)
        rows = np.asarray(slots, dtype=np.intp)
        L = np.array([c.size for c in chunks], dtype=np.int64)
        l_max = int(L.max()) if k else 0
        X = np.zeros((k, l_max), dtype=float)
        for j, c in enumerate(chunks):
            if c.size:
                X[j, : c.size] = c
        if self.spec.rectify:
            np.abs(X, out=X)

        ratio = self.fs / self.clock_hz
        ns0 = self._ns[rows]
        ns1 = ns0 + L
        # Same IEEE op order as n_whole_clocks: floor((n / fs) * clock).
        total = np.floor((ns1 / self.fs) * self.clock_hz).astype(np.int64)
        start = self._nclk_sampled[rows]
        n_new = total - start
        k_max = int(n_new.max()) if k else 0

        # Tail bookkeeping (scalar _advance): the earliest future capture
        # point is clock total+1's sample; everything before it is dead.
        next_idx = np.ceil((total + 1) * ratio - 1e-9).astype(np.int64) - 1
        offset0 = ns0 - self._tail_len[rows]
        new_offset = np.where(
            n_new > 0,
            np.minimum(np.maximum(next_idx, offset0), ns1),
            offset0,
        )
        new_len = ns1 - new_offset
        if k:
            self._ensure_tail_cap(int(new_len.max()))

        # Combined sample matrix: [right-aligned tail | padded chunk];
        # global sample index g lives at column g - ns0 + tail_cap.
        C = np.concatenate([self._tail[rows], X], axis=1)

        new_events = 0
        if k_max > 0:
            c_nums = (
                start[:, None]
                + np.arange(1, k_max + 1, dtype=np.int64)[None, :]
            )
            # Same expression as clock_sample_indices, per row.
            idx = np.ceil(c_nums * ratio - 1e-9).astype(np.int64) - 1
            np.clip(idx, 0, np.maximum(ns1 - 1, 0)[:, None], out=idx)
            col = idx - ns0[:, None] + self.tail_cap
            x_clk = np.take_along_axis(C, col, axis=1)
            valid = np.arange(k_max)[None, :] < n_new[:, None]
            if self.scheme == "atc":
                new_events = self._emit_atc(rows, x_clk, valid, n_new)
            else:
                new_events = self._emit_datc(rows, x_clk, n_new, k_max)

        # Write back the sample/tail registers.
        p = np.arange(self.tail_cap, dtype=np.int64)[None, :]
        new_tail = np.take_along_axis(C, L[:, None] + p, axis=1)
        new_tail[p < (self.tail_cap - new_len)[:, None]] = 0.0
        self._tail[rows] = new_tail
        self._tail_len[rows] = new_len
        self._ns[rows] = ns1
        self._nclk_sampled[rows] = total

        # Decoder side: extend each session's grid and fold the newly
        # assignable events into the packed bin counts (O(chunk) work).
        n_bins_new = np.floor((ns1 / self.fs) * self.fs_out).astype(np.int64)
        if k:
            self._ensure_bin_cap(int(n_bins_new.max()))
        self._n_bins[rows] = n_bins_new
        self._count_new_bins(rows)
        return new_events

    def _emit_atc(self, rows, x_clk, valid, n_new) -> int:
        """Compare + edge-detect the new clocked samples (ATC rows)."""
        bits = (x_clk > self.config.vth) & valid
        prev = np.concatenate(
            [(self._last_bit[rows] == 1)[:, None], bits[:, :-1]], axis=1
        )
        edge = bits & ~prev & valid
        r_i, c_i = np.nonzero(edge)
        clk = self._nclk_emitted[rows][r_i] + c_i
        last_col = np.maximum(n_new - 1, 0)[:, None]
        lb_new = np.take_along_axis(bits, last_col, axis=1).ravel()
        self._last_bit[rows] = np.where(
            n_new > 0, lb_new.astype(np.int64), self._last_bit[rows]
        )
        self._nclk_emitted[rows] += n_new
        return self._append_events(rows, r_i, clk, None)

    def _emit_datc(self, rows, x_clk, n_new, k_max) -> int:
        """Assemble frames and scan them through the session kernel."""
        k = rows.size
        frame_size = self.frame_size
        navail = self._frame_len[rows] + n_new
        width = frame_size + k_max
        P = np.zeros((k, width), dtype=float)
        P[:, :frame_size] = self._frame_buf[rows]
        cols = (
            self._frame_len[rows][:, None]
            + np.arange(k_max, dtype=np.int64)[None, :]
        )
        np.put_along_axis(P, cols, x_clk, axis=1)

        emitted = self._nclk_emitted[rows].copy()
        lb = self._last_bit[rows].copy()
        n1 = self._n_one1[rows].copy()
        n2 = self._n_one2[rows].copy()
        lv = self._level[rows].copy()
        ev_row, ev_clk, ev_lvl = get_kernel("session_frames")(
            P, navail, emitted, lb, n1, n2, lv, self.config
        )
        self._last_bit[rows] = lb
        self._n_one1[rows] = n1
        self._n_one2[rows] = n2
        self._level[rows] = lv

        n_frames = navail // frame_size
        self._nclk_emitted[rows] += n_frames * frame_size
        leftover = navail - n_frames * frame_size
        fcols = np.minimum(
            (n_frames * frame_size)[:, None]
            + np.arange(frame_size, dtype=np.int64)[None, :],
            width - 1,
        )
        new_fb = np.take_along_axis(P, fcols, axis=1)
        new_fb[np.arange(frame_size)[None, :] >= leftover[:, None]] = 0.0
        self._frame_buf[rows] = new_fb
        self._frame_len[rows] = leftover
        return self._append_events(rows, ev_row, ev_clk, ev_lvl)

    def _append_events(self, rows, r_i, clk, lvl) -> int:
        """Scatter row-major (row, clock[, level]) events into the history."""
        if r_i.size == 0:
            return 0
        counts = np.bincount(r_i, minlength=rows.size)
        self._ensure_ev_cap(int((self._ev_len[rows] + counts).max()))
        starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        within = np.arange(r_i.size) - starts[r_i]
        gr = rows[r_i]
        pos = self._ev_len[rows][r_i] + within
        self._ev_clk[gr, pos] = clk
        if self.has_levels:
            self._ev_lvl[gr, pos] = lvl
        self._ev_len[rows] += counts
        return int(r_i.size)

    def _count_new_bins(self, rows) -> None:
        """Fold newly assignable events into the packed bin counts.

        An event is assignable once its bin lies strictly inside the
        current grid (events at/after the youngest edge stay pending —
        the scalar ``StreamingDecoder`` rule); assignable events form a
        prefix of each row's uncounted suffix because times and bins are
        non-decreasing.
        """
        u = self._ev_len[rows] - self._counted[rows]
        total = int(u.sum())
        if total == 0:
            return
        k = rows.size
        rr = np.repeat(np.arange(k), u)
        offs = np.concatenate([[0], np.cumsum(u)[:-1]])
        within = np.arange(total) - np.repeat(offs, u)
        gr = rows[rr]
        pos = self._counted[rows][rr] + within
        t = (self._ev_clk[gr, pos] + 1) / self.clock_hz
        n_row = self._n_bins[rows][rr]
        # O(1)-per-event bin assignment with one-step corrections (the
        # binned_counts_batch trick): exact edges[b] <= t < edges[b+1].
        e = self._edges
        b = np.clip((t * self.fs_out).astype(np.intp), 0, np.maximum(n_row - 1, 0))
        b -= t < e[b]
        b += t >= e[np.minimum(b + 1, n_row)]
        countable = b < n_row
        if np.any(countable):
            flat = gr[countable] * self._bin_cap + b[countable]
            np.add.at(self._counts.reshape(-1), flat, 1)
            self._counted[rows] += np.bincount(rr[countable], minlength=k)

    # -- per-session views ----------------------------------------------
    def duration(self, slot: int) -> float:
        return int(self._ns[slot]) / self.fs

    def _stream_from(self, slot: int, start: int, stop: int) -> EventStream:
        idx = self._ev_clk[slot, start:stop]
        levels = (
            self._ev_lvl[slot, start:stop].copy() if self.has_levels else None
        )
        return EventStream(
            times=(idx + 1) / self.clock_hz,
            duration_s=self.duration(slot),
            levels=levels,
            clock_hz=self.clock_hz,
            symbols_per_event=self.config.symbols_per_event,
        )

    def drain(self, slot: int) -> EventStream:
        out = self._stream_from(slot, int(self._drained[slot]), int(self._ev_len[slot]))
        self._drained[slot] = self._ev_len[slot]
        return out

    def full_stream(self, slot: int) -> EventStream:
        return self._stream_from(slot, 0, int(self._ev_len[slot]))

    def has_undrained(self, slot: int) -> bool:
        return int(self._ev_len[slot]) > int(self._drained[slot])

    # -- finalize --------------------------------------------------------
    def finalize(self, slot: int) -> np.ndarray:
        """Flush the trailing frame + pending bins; return the envelope."""
        if self._finalized[slot]:
            raise RuntimeError("finalize() called twice")
        if self._nclk_sampled[slot] == 0:
            raise ValueError(
                f"signal too short: {int(self._ns[slot])} samples at "
                f"{self.fs} Hz covers no {self.clock_hz} Hz clock period"
            )
        self._finalized[slot] = True
        if self.has_levels and self._frame_len[slot] > 0:
            self._flush_partial_frame(slot)
        return self._finalize_envelope(slot)

    def _flush_partial_frame(self, slot: int) -> None:
        """The scalar trailing-partial-frame rule: compare, fire, no update."""
        f_len = int(self._frame_len[slot])
        segment = self._frame_buf[slot, :f_len]
        level = int(self._level[slot])
        vth = self.config.level_to_voltage(level)
        bits = (segment > vth).astype(np.uint8)
        idx = rising_edges(bits, initial=int(self._last_bit[slot]))
        clk = idx + int(self._nclk_emitted[slot])
        self._last_bit[slot] = int(bits[-1])
        self._nclk_emitted[slot] += f_len
        self._frame_len[slot] = 0
        if clk.size:
            self._ensure_ev_cap(int(self._ev_len[slot]) + clk.size)
            pos = int(self._ev_len[slot])
            self._ev_clk[slot, pos : pos + clk.size] = clk
            self._ev_lvl[slot, pos : pos + clk.size] = level
            self._ev_len[slot] += clk.size

    def _finalize_envelope(self, slot: int) -> np.ndarray:
        n = int(self._n_bins[slot])
        counted = int(self._counted[slot])
        ev_len = int(self._ev_len[slot])
        if ev_len > counted:
            if n == 0:
                raise ValueError(
                    "duration too short for the requested output rate"
                )
            pend = (self._ev_clk[slot, counted:ev_len] + 1) / self.clock_hz
            edges = self._edges[: n + 1]
            idx = np.searchsorted(edges, pend, side="right") - 1
            idx[pend == edges[-1]] = n - 1  # the final grid's right-closed bin
            inside = (idx >= 0) & (idx < n)
            if np.any(inside):
                self._counts[slot, :n] += np.bincount(idx[inside], minlength=n)
            self._counted[slot] = ev_len
        counts = self._counts[slot, :n].astype(float)
        rate = moving_average(counts, self.window) * self.fs_out
        if self.scheme == "atc":
            return rate
        # D-ATC hybrid: combine the level ZOH and the normalised rate
        # exactly as StreamingDecoder.finalize / reconstruct_hybrid.
        spec = self.spec
        if ev_len == 0:
            level = np.zeros(n)
        else:
            level = level_zoh(
                self.full_stream(slot),
                self.fs_out,
                vref=self.config.vref,
                dac_bits=self.config.dac_bits,
                silence_timeout_s=spec.silence_timeout_s,
                decay_tau_s=spec.decay_tau_s,
            )
        peak = rate.max() if rate.size else 0.0
        rate_norm = rate / peak if peak > 0 else rate
        combined = level * (
            1.0 - spec.rate_weight + spec.rate_weight * rate_norm
        )
        return moving_average(combined, self.window)


# ----------------------------------------------------------------------
# The public engine
# ----------------------------------------------------------------------
class SessionBatch:
    """N concurrent streaming sessions advanced by whole-batch calls.

    Usage::

        batch = SessionBatch()
        a = batch.create(SessionSpec(scheme="datc", fs=2500.0))
        b = batch.create(SessionSpec(scheme="datc", fs=2500.0))
        while chunks:
            batch.push_many({a: chunk_a, b: chunk_b})   # one batched call
        result_a = batch.finalize(a)    # SessionResult(stream, envelope)
        batch.leave(a)                  # slot returns to the pool

    Sessions with equal ``spec.key()`` advance together in one
    homogeneous sub-batch; a heterogeneous ``push_many`` costs one
    batched call per distinct spec.  ``drain``/``drain_many`` expose the
    incremental event chunks (the scalar ``push* -> finalize -> drain``
    contract) for callers that forward events to a live receiver or
    link.
    """

    def __init__(self) -> None:
        self._groups: "dict[str, _SubBatch]" = {}
        self._by_sid: "dict[int, _SubBatch]" = {}
        self._next_sid = 0

    # -- lifecycle -------------------------------------------------------
    def create(self, spec: SessionSpec) -> int:
        """Open a streaming session; returns its session id."""
        if not isinstance(spec, SessionSpec):
            raise TypeError(
                f"spec must be a SessionSpec, got {type(spec).__name__}"
            )
        key = spec.key()
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = _SubBatch(spec)
        sid = self._next_sid
        self._next_sid += 1
        group.acquire(sid)
        self._by_sid[sid] = group
        return sid

    def leave(self, sid: int) -> None:
        """Close a session and return its slot to the pool."""
        group = self._group(sid)
        group.release(sid)
        del self._by_sid[sid]

    def _group(self, sid: int) -> _SubBatch:
        group = self._by_sid.get(sid)
        if group is None:
            raise KeyError(f"unknown session id {sid}")
        return group

    @property
    def n_sessions(self) -> int:
        """Sessions currently open (finalized-but-not-left included)."""
        return len(self._by_sid)

    @property
    def n_groups(self) -> int:
        """Distinct homogeneous sub-batches currently held."""
        return len(self._groups)

    def session_ids(self) -> "list[int]":
        return sorted(self._by_sid)

    def spec(self, sid: int) -> SessionSpec:
        return self._group(sid).spec

    # -- streaming -------------------------------------------------------
    def push_many(self, chunks: "dict[int, np.ndarray]") -> int:
        """Advance every pushed session by its chunk; count new events.

        ``chunks`` maps session id -> 1-D sample chunk (ragged lengths,
        empty chunks allowed).  All sessions sharing a spec advance in
        one batched call.  Event/envelope state after any sequence of
        ``push_many`` calls is bit-identical to scalar per-session
        streaming, regardless of how pushes interleave.
        """
        grouped: "dict[int, tuple[_SubBatch, list[int], list[np.ndarray]]]" = {}
        for sid, chunk in chunks.items():
            group = self._group(sid)
            slot = group.slot_of[sid]
            if group._finalized[slot]:
                raise RuntimeError("push() called after finalize()")
            x = np.asarray(chunk, dtype=float)
            if x.ndim != 1:
                raise ValueError(f"chunk must be 1-D, got shape {x.shape}")
            entry = grouped.get(id(group))
            if entry is None:
                entry = grouped[id(group)] = (group, [], [])
            entry[1].append(slot)
            entry[2].append(x)
        new_events = 0
        for group, slots, xs in grouped.values():
            new_events += group.push(slots, xs)
        return new_events

    def drain(self, sid: int) -> EventStream:
        """Events fired since the last drain (empty stream when none)."""
        group = self._group(sid)
        return group.drain(group.slot_of[sid])

    def drain_many(self) -> "dict[int, EventStream]":
        """Drain every session holding undrained events."""
        out = {}
        for sid, group in self._by_sid.items():
            slot = group.slot_of[sid]
            if group.has_undrained(slot):
                out[sid] = group.drain(slot)
        return out

    def finalize(self, sid: int) -> SessionResult:
        """Flush a session; return its full stream and decoded envelope.

        The session stays registered (so ``drain`` can still deliver the
        finalize-flushed events) until :meth:`leave` frees its slot.
        """
        group = self._group(sid)
        slot = group.slot_of[sid]
        envelope = group.finalize(slot)
        return SessionResult(
            session_id=sid,
            stream=group.full_stream(slot),
            envelope=envelope,
        )
