"""Execution runtime: sharded sweeps, streaming ingestion, session batching.

``executors`` puts pluggable serial/thread/process backends behind the
library-wide :func:`map_jobs` fan-out contract; ``ingest`` drives the
streaming encoder/decoder pair from async chunk sources; ``sessions``
packs N concurrent streaming sessions into one vectorized
:class:`SessionBatch` engine.  See ``docs/SCALING.md`` and
``docs/STREAMING.md``.
"""

from .executors import (
    BACKENDS,
    RemoteTraceback,
    default_jobs,
    map_jobs,
    plan_shards,
    resolve_backend,
)
from .ingest import AsyncStreamingPipeline, run_sessions
from .sessions import SessionBatch, SessionResult, SessionSpec
from .store import ResultStore, fingerprint_arrays, fingerprint_value

__all__ = [
    "AsyncStreamingPipeline",
    "BACKENDS",
    "RemoteTraceback",
    "ResultStore",
    "SessionBatch",
    "SessionResult",
    "SessionSpec",
    "default_jobs",
    "fingerprint_arrays",
    "fingerprint_value",
    "map_jobs",
    "plan_shards",
    "resolve_backend",
    "run_sessions",
]
