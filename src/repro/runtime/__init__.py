"""Execution runtime: sharded sweeps, streaming ingestion, session batching.

``executors`` puts pluggable serial/thread/process backends behind the
library-wide :func:`map_jobs` fan-out contract; ``ingest`` drives the
streaming encoder/decoder pair from async chunk sources; ``sessions``
packs N concurrent streaming sessions into one vectorized
:class:`SessionBatch` engine; ``queue`` + ``faults`` add the
fault-tolerant multi-worker jobs table and its deterministic chaos
test-rig; ``transport`` + ``dispatcher`` lift the queue contract behind
a pluggable :class:`QueueBackend` and serve it over TCP
(:class:`RemoteBackend` / :class:`RemoteStore` dialing a
``repro dispatch`` server) so workers need no shared mount; ``server``
+ ``client`` put an always-on socket front (:class:`SessionServer` /
:class:`StreamingClient`) over one ``SessionBatch`` with backpressure,
load-shedding and graceful drain.  See ``docs/SCALING.md``,
``docs/STREAMING.md``, ``docs/QUEUE.md``, ``docs/DISPATCH.md`` and
``docs/SERVING.md``.
"""

from .executors import (
    BACKENDS,
    RemoteTraceback,
    default_jobs,
    map_jobs,
    plan_shards,
    resolve_backend,
)
from .client import ServerBusy, ServerReplyError, StreamingClient
from .dispatcher import DispatcherServer, DispatcherThread
from .faults import FaultPlan, FaultSpec, InjectedFault
from .ingest import AsyncStreamingPipeline, run_sessions
from .queue import ExperimentQueue, Job, SqliteBackend, WorkerStats, run_worker
from .server import ServerStats, SessionServer
from .sessions import SessionBatch, SessionResult, SessionSpec
from .store import (
    FsckReport,
    ResultStore,
    fingerprint_arrays,
    fingerprint_value,
)
from .transport import (
    DispatchError,
    QueueBackend,
    RemoteBackend,
    RemoteStore,
    TransportError,
)

__all__ = [
    "AsyncStreamingPipeline",
    "BACKENDS",
    "DispatchError",
    "DispatcherServer",
    "DispatcherThread",
    "ExperimentQueue",
    "FaultPlan",
    "FaultSpec",
    "FsckReport",
    "InjectedFault",
    "Job",
    "QueueBackend",
    "RemoteBackend",
    "RemoteStore",
    "RemoteTraceback",
    "ResultStore",
    "ServerBusy",
    "ServerReplyError",
    "ServerStats",
    "SessionBatch",
    "SessionResult",
    "SessionServer",
    "SessionSpec",
    "SqliteBackend",
    "StreamingClient",
    "TransportError",
    "WorkerStats",
    "default_jobs",
    "fingerprint_arrays",
    "fingerprint_value",
    "map_jobs",
    "plan_shards",
    "resolve_backend",
    "run_sessions",
    "run_worker",
]
