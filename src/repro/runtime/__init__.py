"""Execution runtime: sharded sweep backends + async streaming ingestion.

``executors`` puts pluggable serial/thread/process backends behind the
library-wide :func:`map_jobs` fan-out contract; ``ingest`` drives the
streaming encoder/decoder pair from async chunk sources.  See
``docs/SCALING.md``.
"""

from .executors import (
    BACKENDS,
    RemoteTraceback,
    default_jobs,
    map_jobs,
    plan_shards,
    resolve_backend,
)
from .ingest import AsyncStreamingPipeline
from .store import ResultStore, fingerprint_arrays, fingerprint_value

__all__ = [
    "AsyncStreamingPipeline",
    "BACKENDS",
    "RemoteTraceback",
    "ResultStore",
    "default_jobs",
    "fingerprint_arrays",
    "fingerprint_value",
    "map_jobs",
    "plan_shards",
    "resolve_backend",
]
