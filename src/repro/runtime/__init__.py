"""Execution runtime: sharded sweeps, streaming ingestion, session batching.

``executors`` puts pluggable serial/thread/process backends behind the
library-wide :func:`map_jobs` fan-out contract; ``ingest`` drives the
streaming encoder/decoder pair from async chunk sources; ``sessions``
packs N concurrent streaming sessions into one vectorized
:class:`SessionBatch` engine; ``queue`` + ``faults`` add the
fault-tolerant multi-worker jobs table and its deterministic chaos
test-rig; ``server`` + ``client`` put an always-on socket front
(:class:`SessionServer` / :class:`StreamingClient`) over one
``SessionBatch`` with backpressure, load-shedding and graceful drain.
See ``docs/SCALING.md``, ``docs/STREAMING.md``, ``docs/QUEUE.md`` and
``docs/SERVING.md``.
"""

from .executors import (
    BACKENDS,
    RemoteTraceback,
    default_jobs,
    map_jobs,
    plan_shards,
    resolve_backend,
)
from .client import ServerBusy, ServerReplyError, StreamingClient
from .faults import FaultPlan, FaultSpec, InjectedFault
from .ingest import AsyncStreamingPipeline, run_sessions
from .queue import ExperimentQueue, Job, WorkerStats, run_worker
from .server import ServerStats, SessionServer
from .sessions import SessionBatch, SessionResult, SessionSpec
from .store import (
    FsckReport,
    ResultStore,
    fingerprint_arrays,
    fingerprint_value,
)

__all__ = [
    "AsyncStreamingPipeline",
    "BACKENDS",
    "ExperimentQueue",
    "FaultPlan",
    "FaultSpec",
    "FsckReport",
    "InjectedFault",
    "Job",
    "RemoteTraceback",
    "ResultStore",
    "ServerBusy",
    "ServerReplyError",
    "ServerStats",
    "SessionBatch",
    "SessionResult",
    "SessionServer",
    "SessionSpec",
    "StreamingClient",
    "WorkerStats",
    "default_jobs",
    "fingerprint_arrays",
    "fingerprint_value",
    "map_jobs",
    "plan_shards",
    "resolve_backend",
    "run_sessions",
    "run_worker",
]
