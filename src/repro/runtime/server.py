"""Always-on streaming session server: sockets in, envelopes out.

:class:`~repro.runtime.sessions.SessionBatch` made *decoding* thousands
of concurrent wearers cheap; this module puts a long-running process in
front of it.  :class:`SessionServer` is an asyncio TCP server speaking a
newline-delimited JSON protocol (sample chunks ride as base64 float64,
see ``docs/SERVING.md``) that multiplexes every connected client's
sessions over **one** ``SessionBatch``: a pump task repeatedly gathers
one queued chunk per session and advances them all in a single
``push_many`` call, so the per-chunk decode cost is batched exactly as
in the in-process engine, and sessions whose
:meth:`~repro.runtime.sessions.SessionSpec.key` match share a
homogeneous sub-batch for free.

Operational semantics (the part a socket boundary forces you to get
right):

Backpressure
    Each session owns a bounded ingest queue (``max_pending`` chunks).
    A ``push`` that would overflow it is **refused** with a ``busy``
    reply — the slow consumer is told to back off instead of growing an
    unbounded buffer server-side.  Accepted chunks are acknowledged
    immediately; decode happens asynchronously in the pump.

Load shedding
    When global ingest outruns decode — total queued chunks across all
    sessions exceed ``max_total_pending`` — whole sessions are **shed**,
    newest-joined first (they have the least sunk state), until the
    backlog is back under the limit.  Shed sessions are released
    without finalize; subsequent operations on them answer
    ``{"error": "shed"}`` and the count is reported in ``stats``.

Idle reaping
    A session that receives no pushes for ``silence_timeout_s`` seconds
    (and has nothing queued) is reaped: released, slot returned to the
    pool, subsequent operations answer ``{"error": "reaped"}``.  The
    default is off; servers fronting flaky radios set it to a small
    multiple of the spec's own ``silence_timeout_s``.

Graceful drain
    :meth:`SessionServer.request_drain` (the CLI wires SIGTERM to it)
    stops accepting ``create``/``push``, lets the pump flush every
    queued chunk, then finalizes every remaining session — trailing
    partial frames fire their events, decoder tails flush — and sends
    each owning connection a ``{"event": "drained", ...}`` notice
    carrying the final envelope before closing with
    ``{"event": "goodbye"}``.  ``serve_forever`` then returns with zero
    unfinalized sessions, mirroring ``run_worker``'s SIGTERM contract.

Fault tolerance
    A client that disconnects mid-session (cable pull, the chaos rig's
    ``"disconnect"`` injector) orphans its live sessions; they are
    released immediately and counted.  A malformed frame gets one
    pointed error reply and the connection is dropped — framing can no
    longer be trusted.  ``finalize`` is terminal: later operations on
    the session answer ``{"error": "finalized"}``.

Bit-identity is inherited, not re-implemented: every session's envelope
is whatever ``SessionBatch`` produces, which is bit-identical to the
scalar one-shot path (asserted through the full socket round-trip in
``tests/runtime/test_server.py`` and ``bench --serve``).
"""

from __future__ import annotations

import asyncio
import base64
import binascii
import collections
import dataclasses
import json
import traceback

import numpy as np

from .sessions import SessionBatch, SessionSpec

__all__ = [
    "PROTOCOL_VERSION",
    "ServerStats",
    "SessionServer",
    "pack_array",
    "unpack_floats",
    "unpack_ints",
]

PROTOCOL_VERSION = 1

# Generous frame cap: a 1 Mi-sample float64 chunk is ~10.7 MiB of
# base64; anything larger is a protocol violation, not a big chunk.
MAX_LINE_BYTES = 16 * 1024 * 1024


# ----------------------------------------------------------------------
# Wire helpers (shared with the client)
# ----------------------------------------------------------------------
def pack_array(values: "np.ndarray | None") -> "str | None":
    """Base64 of the array's little-endian bytes (``None`` passes through).

    float64 for sample/envelope/time payloads, int64 for levels — the
    dtype travels implicitly per field (the protocol fixes it), and the
    round-trip is bit-exact.
    """
    if values is None:
        return None
    arr = np.ascontiguousarray(values)
    if arr.dtype.kind == "f":
        arr = arr.astype("<f8", copy=False)
    else:
        arr = arr.astype("<i8", copy=False)
    return base64.b64encode(arr.tobytes()).decode("ascii")


def _unpack(text: "str | None", dtype: str) -> "np.ndarray | None":
    if text is None:
        return None
    try:
        # strict_mode rejects invalid characters at C speed; the plain
        # b64decode silently *drops* them, turning garbage into an
        # empty-but-accepted chunk.
        raw = binascii.a2b_base64(text.encode("ascii"), strict_mode=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise ValueError(f"invalid base64 payload: {exc}")
    width = np.dtype(dtype).itemsize
    if len(raw) % width:
        raise ValueError(
            f"payload length {len(raw)} is not a whole number of "
            f"{width}-byte items"
        )
    arr = np.frombuffer(raw, dtype=dtype)
    if arr.dtype.isnative:
        return arr  # zero-copy view (read-only, callers don't mutate)
    return arr.astype(dtype[1:], copy=True)


def unpack_floats(text: "str | None") -> "np.ndarray | None":
    """Inverse of :func:`pack_array` for float64 payloads."""
    return _unpack(text, "<f8")


def unpack_ints(text: "str | None") -> "np.ndarray | None":
    """Inverse of :func:`pack_array` for int64 payloads."""
    return _unpack(text, "<i8")


def decode_chunk(msg: dict) -> np.ndarray:
    """The sample chunk of one ``push`` frame (``data`` b64 or ``samples``)."""
    if "data" in msg and msg["data"] is not None:
        chunk = unpack_floats(msg["data"])
    elif "samples" in msg:
        chunk = np.asarray(msg["samples"], dtype=float)
    else:
        raise ValueError("push needs 'data' (base64 float64) or 'samples'")
    if chunk.ndim != 1:
        raise ValueError(f"chunk must be 1-D, got shape {chunk.shape}")
    return chunk


# ----------------------------------------------------------------------
# Server state
# ----------------------------------------------------------------------
@dataclasses.dataclass
class ServerStats:
    """Operational counters, exposed verbatim by the ``stats`` verb."""

    n_connections: int = 0  # accepted over the server's lifetime
    n_created: int = 0
    n_pushed_chunks: int = 0  # accepted into a session queue
    n_decoded_chunks: int = 0  # advanced through push_many
    n_busy: int = 0  # pushes refused by per-session backpressure
    n_shed: int = 0  # sessions shed by global overload
    n_reaped: int = 0  # sessions reaped for silence
    n_orphaned: int = 0  # live sessions lost to a closed connection
    n_malformed: int = 0  # frames that dropped their connection
    n_finalized: int = 0  # client-requested finalizes
    n_drain_finalized: int = 0  # finalized server-side during drain
    n_aborted: int = 0  # drain finalizes on too-short sessions

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class _Session:
    __slots__ = (
        "sid", "spec", "conn", "pending", "last_activity", "seq", "state",
    )

    def __init__(self, sid, spec, conn, seq, now) -> None:
        self.sid = sid
        self.spec = spec
        self.conn = conn
        self.pending: "collections.deque[np.ndarray]" = collections.deque()
        self.last_activity = now
        self.seq = seq
        self.state = "live"


class _Connection:
    __slots__ = ("writer", "sids", "alive")

    def __init__(self, writer) -> None:
        self.writer = writer
        self.sids: "set[int]" = set()
        self.alive = True


class SessionServer:
    """One process serving thousands of concurrent streaming sessions.

    Usage (tests, embedded)::

        server = SessionServer(port=0, max_sessions=4096)
        await server.start()
        host, port = server.address
        ...                       # clients connect and stream
        server.request_drain()
        stats = await server.serve_forever()   # returns once drained

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    max_sessions:
        ``create`` beyond this many live sessions answers
        ``{"error": "server-full"}``.
    max_pending:
        Per-session ingest queue depth; a push beyond it answers
        ``busy`` (backpressure).
    max_total_pending:
        Global queued-chunk budget; exceeding it sheds newest-joined
        sessions until back under.  ``None`` (default) derives
        ``4 * max(64, max_sessions)`` — bounded, but roomy enough that
        only a genuine ingest-outruns-decode imbalance triggers it.
    silence_timeout_s:
        Idle-session reaping threshold (``None`` disables).
    tick_s:
        Pump wake-up period when idle — the reaping granularity.
    batch:
        The :class:`SessionBatch` to multiplex over (default: a fresh
        one).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_sessions: int = 4096,
        max_pending: int = 32,
        max_total_pending: "int | None" = None,
        silence_timeout_s: "float | None" = None,
        tick_s: float = 0.05,
        batch: "SessionBatch | None" = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if max_total_pending is not None and max_total_pending < 1:
            raise ValueError(
                f"max_total_pending must be >= 1, got {max_total_pending}"
            )
        if silence_timeout_s is not None and silence_timeout_s <= 0:
            raise ValueError(
                f"silence_timeout_s must be positive, got {silence_timeout_s}"
            )
        if tick_s <= 0:
            raise ValueError(f"tick_s must be positive, got {tick_s}")
        self._host = host
        self._port = port
        self.max_sessions = max_sessions
        self.max_pending = max_pending
        self.max_total_pending = (
            4 * max(64, max_sessions)
            if max_total_pending is None
            else max_total_pending
        )
        self.silence_timeout_s = silence_timeout_s
        self.tick_s = tick_s
        self.stats = ServerStats()
        self._batch = batch if batch is not None else SessionBatch()
        self._sessions: "dict[int, _Session]" = {}  # join order preserved
        self._tombstones: "dict[int, str]" = {}  # sid -> terminal state
        self._conns: "set[_Connection]" = set()
        self._n_pending = 0  # queued chunks across all sessions
        self._seq = 0
        self._draining = False
        self._drained = asyncio.Event()
        self._work = asyncio.Event()
        self._paused = False
        self._resume = asyncio.Event()
        self._resume.set()
        self._server: "asyncio.AbstractServer | None" = None
        self._conn_tasks: "set[asyncio.Task]" = set()
        self._pump_task: "asyncio.Task | None" = None
        self._pump_error: "str | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the socket and start the pump."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=MAX_LINE_BYTES,
        )
        self._pump_task = asyncio.ensure_future(self._pump())

    @property
    def address(self) -> "tuple[str, int]":
        """The bound ``(host, port)`` (resolves ``port=0``)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def n_sessions(self) -> int:
        """Live sessions (queued or quiet, not yet finalized/released)."""
        return len(self._sessions)

    @property
    def n_pending_chunks(self) -> int:
        """Chunks accepted but not yet advanced through the batch."""
        return self._n_pending

    @property
    def draining(self) -> bool:
        return self._draining

    def request_drain(self) -> None:
        """Begin the graceful drain (idempotent; SIGTERM points here)."""
        self._draining = True
        self._work.set()
        self._resume.set()  # drain overrides a test-paused pump

    async def serve_forever(self) -> ServerStats:
        """Run until a drain completes; returns the final counters."""
        await self._drained.wait()
        if self._pump_task is not None:
            await self._pump_task
        if self._pump_error is not None:
            raise RuntimeError(f"session pump died:\n{self._pump_error}")
        return self.stats

    async def aclose(self) -> None:
        """Hard stop: cancel the pump, drop every connection, unbind."""
        if self._pump_task is not None and not self._pump_task.done():
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
        for conn in list(self._conns):
            self._close_connection(conn)
        # Let handler tasks observe their closed transports (EOF) and
        # exit, so loop teardown doesn't cancel them mid-read (noisy
        # tracebacks); cancel only the ones that don't wind down.
        if self._conn_tasks:
            _, stuck = await asyncio.wait(list(self._conn_tasks), timeout=1.0)
            for task in stuck:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._drained.set()

    # Test hooks: freeze the pump so backpressure/shedding paths are
    # reachable deterministically (the pump otherwise drains queues as
    # fast as they fill on a local socket).
    def pause_pump(self) -> None:
        self._paused = True
        self._resume.clear()

    def resume_pump(self) -> None:
        self._paused = False
        self._resume.set()

    # ------------------------------------------------------------------
    # The pump: batched decode + reaping + drain completion
    # ------------------------------------------------------------------
    async def _pump(self) -> None:
        loop = asyncio.get_running_loop()
        try:
            while True:
                if self._paused and not self._draining:
                    await self._resume.wait()
                    continue
                pushes: "dict[int, np.ndarray]" = {}
                for sid, sess in self._sessions.items():
                    if sess.pending:
                        pushes[sid] = sess.pending.popleft()
                if pushes:
                    self._n_pending -= len(pushes)
                    self._batch.push_many(pushes)
                    self.stats.n_decoded_chunks += len(pushes)
                self._reap(loop.time())
                if self._draining and self._n_pending == 0:
                    await self._finish_drain()
                    return
                if pushes:
                    await asyncio.sleep(0)  # stay fair to the handlers
                    continue
                self._work.clear()
                # Re-check after clearing so a push that landed between
                # the scan and the clear is never a lost wakeup.
                if self._n_pending or self._draining:
                    continue
                try:
                    await asyncio.wait_for(self._work.wait(), self.tick_s)
                except (asyncio.TimeoutError, TimeoutError):
                    pass
        except asyncio.CancelledError:
            raise
        except Exception:  # pragma: no cover - defensive: surface, don't hang
            self._pump_error = traceback.format_exc()
            for conn in list(self._conns):
                self._close_connection(conn)
            if self._server is not None:
                self._server.close()
            self._drained.set()

    def _reap(self, now: float) -> None:
        if self.silence_timeout_s is None:
            return
        victims = [
            sess
            for sess in self._sessions.values()
            if not sess.pending
            and now - sess.last_activity > self.silence_timeout_s
        ]
        for sess in victims:
            self._release(sess, "reaped")
            self.stats.n_reaped += 1

    def _shed_overflow(self) -> None:
        while self._n_pending > self.max_total_pending and self._sessions:
            victim = max(self._sessions.values(), key=lambda s: s.seq)
            self._release(victim, "shed")
            self.stats.n_shed += 1

    def _release(self, sess: _Session, state: str) -> None:
        """Drop a live session without finalizing (shed/reap/orphan)."""
        self._n_pending -= len(sess.pending)
        sess.pending.clear()
        sess.state = state
        self._tombstones[sess.sid] = state
        self._sessions.pop(sess.sid, None)
        sess.conn.sids.discard(sess.sid)
        self._batch.leave(sess.sid)

    async def _finish_drain(self) -> None:
        """Finalize every remaining session, notify owners, shut down."""
        if self._server is not None:
            self._server.close()
        for sid in list(self._sessions):
            sess = self._sessions[sid]
            try:
                result = self._batch.finalize(sid)
            except ValueError as exc:
                # Too short to cover one clock period: nothing to flush.
                notice = {
                    "event": "drained",
                    "sid": sid,
                    "ok": False,
                    "error": "too-short",
                    "detail": str(exc),
                }
                sess.state = "aborted"
                self.stats.n_aborted += 1
            else:
                notice = {
                    "event": "drained",
                    "sid": sid,
                    "ok": True,
                    "envelope": pack_array(result.envelope),
                    "n_events": int(result.stream.n_events),
                    "duration_s": float(result.stream.duration_s),
                }
                sess.state = "drained"
                self.stats.n_drain_finalized += 1
            self._tombstones[sid] = sess.state
            del self._sessions[sid]
            sess.conn.sids.discard(sid)
            self._batch.leave(sid)
            if sess.conn.alive:
                await self._send(sess.conn, notice)
        for conn in list(self._conns):
            if conn.alive:
                await self._send(conn, {"event": "goodbye", "reason": "drained"})
            self._close_connection(conn)
        if self._server is not None:
            await self._server.wait_closed()
        self._drained.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        conn = _Connection(writer)
        self._conns.add(conn)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self.stats.n_connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.stats.n_malformed += 1
                    await self._send(
                        conn,
                        {"ok": False, "error": "malformed",
                         "detail": "frame exceeds the line limit"},
                    )
                    break
                if not line:
                    break  # EOF: client went away
                if not line.strip():
                    continue
                try:
                    msg = json.loads(line)
                    if not isinstance(msg, dict):
                        raise ValueError("frame must be a JSON object")
                except ValueError as exc:
                    self.stats.n_malformed += 1
                    await self._send(
                        conn,
                        {"ok": False, "error": "malformed", "detail": str(exc)},
                    )
                    break  # framing can no longer be trusted
                reply = await self._dispatch(conn, msg)
                if reply is not None:
                    if "id" in msg:
                        reply["id"] = msg["id"]
                    await self._send(conn, reply)
                if msg.get("op") == "close":
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._drop_connection(conn)

    def _drop_connection(self, conn: _Connection) -> None:
        for sid in list(conn.sids):
            sess = self._sessions.get(sid)
            if sess is not None:
                self._release(sess, "orphaned")
                self.stats.n_orphaned += 1
        self._close_connection(conn)

    def _close_connection(self, conn: _Connection) -> None:
        conn.alive = False
        self._conns.discard(conn)
        try:
            conn.writer.close()
        except Exception:
            pass

    async def _send(self, conn: _Connection, payload: dict) -> None:
        if not conn.alive:
            return
        try:
            conn.writer.write(
                json.dumps(payload, separators=(",", ":")).encode() + b"\n"
            )
            await conn.writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            conn.alive = False

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    async def _dispatch(self, conn: _Connection, msg: dict) -> "dict | None":
        op = msg.get("op")
        if op == "create":
            return self._op_create(conn, msg)
        if op == "push":
            return self._op_push(conn, msg)
        if op == "pushm":
            return self._op_pushm(conn, msg)
        if op == "drain":
            return await self._op_drain(conn, msg)
        if op == "finalize":
            return await self._op_finalize(conn, msg)
        if op == "stats":
            return self._op_stats()
        if op == "close":
            return {"ok": True, "closing": True}
        return {"ok": False, "error": "unknown-op", "detail": repr(op)}

    def _lookup(self, msg: dict) -> "tuple[_Session | None, dict | None]":
        sid = msg.get("sid")
        if not isinstance(sid, int):
            return None, {
                "ok": False, "error": "bad-sid", "detail": repr(sid)
            }
        sess = self._sessions.get(sid)
        if sess is None:
            state = self._tombstones.get(sid)
            error = state if state is not None else "unknown-session"
            return None, {"ok": False, "error": error, "sid": sid}
        return sess, None

    def _op_create(self, conn: _Connection, msg: dict) -> dict:
        n = msg.get("n")
        if n is not None and (not isinstance(n, int) or n < 1):
            return {"ok": False, "error": "bad-spec",
                    "detail": f"n must be a positive integer, got {n!r}"}
        if self._draining:
            return {"ok": False, "error": "draining"}
        if len(self._sessions) + (n or 1) > self.max_sessions:
            return {"ok": False, "error": "server-full",
                    "max_sessions": self.max_sessions}
        try:
            spec_data = msg.get("spec")
            if isinstance(spec_data, dict):
                spec = SessionSpec.from_dict(spec_data)
            elif spec_data is None:
                spec = SessionSpec()
            else:
                raise ValueError("spec must be a JSON object")
        except (TypeError, ValueError) as exc:
            return {"ok": False, "error": "bad-spec", "detail": str(exc)}
        now = asyncio.get_running_loop().time()
        sids = []
        for _ in range(n or 1):
            sid = self._batch.create(spec)
            self._seq += 1
            sess = _Session(sid, spec, conn, self._seq, now)
            self._sessions[sid] = sess
            conn.sids.add(sid)
            self.stats.n_created += 1
            sids.append(sid)
        reply = {"ok": True, "spec_key": spec.key()}
        if n is None:
            reply["sid"] = sids[0]
        else:
            reply["sids"] = sids
        return reply

    def _push_chunk(self, sid, chunk: np.ndarray) -> dict:
        """Enqueue one decoded chunk; the shared push/pushm core."""
        sess, error = self._lookup({"sid": sid})
        if error is not None:
            return error
        if self._draining:
            return {"ok": False, "error": "draining", "sid": sess.sid}
        if len(sess.pending) >= self.max_pending:
            self.stats.n_busy += 1
            return {
                "ok": False,
                "error": "busy",
                "sid": sess.sid,
                "pending": len(sess.pending),
            }
        sess.pending.append(chunk)
        sess.last_activity = asyncio.get_running_loop().time()
        self._n_pending += 1
        self.stats.n_pushed_chunks += 1
        self._work.set()
        self._shed_overflow()
        if sess.state != "live":  # the pusher itself was just shed
            return {"ok": False, "error": sess.state, "sid": sess.sid}
        return {"ok": True, "sid": sess.sid, "queued": len(sess.pending)}

    def _op_push(self, conn: _Connection, msg: dict) -> dict:
        try:
            chunk = decode_chunk(msg)
        except ValueError as exc:
            return {"ok": False, "error": "bad-chunk", "detail": str(exc)}
        return self._push_chunk(msg.get("sid"), chunk)

    def _op_pushm(self, conn: _Connection, msg: dict) -> dict:
        """Batched push: one frame carries chunks for many sessions.

        ``sids``/``lens`` describe how to split the concatenated float64
        ``data`` payload; each slice is enqueued exactly like a single
        ``push`` and gets its own entry in ``results`` (so ``busy``/
        tombstone outcomes stay per-session).  One frame per client wave
        instead of one per session is what keeps the socket boundary
        from erasing the batch-decode win at 1k+ sessions.
        """
        sids = msg.get("sids")
        lens = msg.get("lens")
        if (
            not isinstance(sids, list)
            or not isinstance(lens, list)
            or len(sids) != len(lens)
            or any(not isinstance(n, int) or n < 0 for n in lens)
        ):
            return {
                "ok": False, "error": "bad-chunk",
                "detail": "pushm needs matching 'sids' and 'lens' lists",
            }
        try:
            flat = unpack_floats(msg.get("data"))
            if flat is None:
                raise ValueError("pushm needs 'data' (base64 float64)")
        except ValueError as exc:
            return {"ok": False, "error": "bad-chunk", "detail": str(exc)}
        if sum(lens) != flat.size:
            return {
                "ok": False, "error": "bad-chunk",
                "detail": f"'lens' sums to {sum(lens)} but 'data' holds "
                f"{flat.size} samples",
            }
        results = []
        offset = 0
        for sid, n in zip(sids, lens):
            results.append(self._push_chunk(sid, flat[offset : offset + n]))
            offset += n
        return {"ok": True, "results": results}

    async def _flush(self, sess: _Session) -> None:
        """Wait until everything queued for this session has decoded."""
        while sess.state == "live" and sess.pending:
            self._work.set()
            if self._paused and not self._draining:
                await self._resume.wait()
            await asyncio.sleep(0)

    async def _op_drain(self, conn: _Connection, msg: dict) -> dict:
        sess, error = self._lookup(msg)
        if error is not None:
            return error
        await self._flush(sess)
        if sess.state != "live":  # shed/reaped/drained while flushing
            return {"ok": False, "error": sess.state, "sid": sess.sid}
        stream = self._batch.drain(sess.sid)
        return {
            "ok": True,
            "sid": sess.sid,
            "times": pack_array(stream.times),
            "levels": pack_array(stream.levels),
            "duration_s": float(stream.duration_s),
            "clock_hz": float(stream.clock_hz),
            "symbols_per_event": int(stream.symbols_per_event),
        }

    async def _op_finalize(self, conn: _Connection, msg: dict) -> dict:
        sess, error = self._lookup(msg)
        if error is not None:
            return error
        await self._flush(sess)
        if sess.state != "live":
            return {"ok": False, "error": sess.state, "sid": sess.sid}
        try:
            result = self._batch.finalize(sess.sid)
        except ValueError as exc:
            # Too short to cover one clock period — release the slot,
            # the session is over either way.
            self._release(sess, "aborted")
            self.stats.n_aborted += 1
            return {
                "ok": False, "error": "too-short",
                "sid": sess.sid, "detail": str(exc),
            }
        stream = result.stream
        sess.state = "finalized"
        self._tombstones[sess.sid] = "finalized"
        self._sessions.pop(sess.sid, None)
        sess.conn.sids.discard(sess.sid)
        self._batch.leave(sess.sid)
        self.stats.n_finalized += 1
        return {
            "ok": True,
            "sid": sess.sid,
            "envelope": pack_array(result.envelope),
            "times": pack_array(stream.times),
            "levels": pack_array(stream.levels),
            "duration_s": float(stream.duration_s),
            "clock_hz": float(stream.clock_hz),
            "symbols_per_event": int(stream.symbols_per_event),
        }

    def _op_stats(self) -> dict:
        payload = self.stats.to_dict()
        payload.update(
            active_sessions=len(self._sessions),
            active_connections=len(self._conns),
            pending_chunks=self._n_pending,
            groups=self._batch.n_groups,
            draining=self._draining,
            max_sessions=self.max_sessions,
            max_pending=self.max_pending,
            max_total_pending=self.max_total_pending,
            protocol=PROTOCOL_VERSION,
        )
        return {"ok": True, "stats": payload}
