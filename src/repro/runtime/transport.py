"""Pluggable queue backends + the remote dispatch transport.

The PR 8 jobs table bolted lease/fencing/retry semantics straight onto
sqlite; this module lifts the *contract* out of the storage engine so
workers can run with no shared filesystem at all:

* :class:`QueueBackend` — the abstract lease lifecycle every backend
  must implement (``submit`` / ``claim`` / ``heartbeat`` / ``complete``
  / ``fail`` / ``release`` / ``reset`` / ``reap`` / ``counts`` /
  ``rows``), with the shared pieces (backoff arithmetic, drain
  accounting, ``raise_first_error``) implemented once on the base.
  Every timed verb takes the same injectable logical ``now``, and every
  downstream transition stays fenced on ``status + worker_id`` — the
  contract the queue test suites assert, verbatim, against any
  implementation.
* :class:`RemoteBackend` — the same interface spoken over a TCP socket
  to a ``repro dispatch`` server (:mod:`repro.runtime.dispatcher`),
  using the newline-delimited JSON framing of the streaming server.
  Requests carry per-call timeouts; connect and transient socket errors
  retry with capped exponential backoff plus deterministic jitter, so a
  worker survives a dispatcher that is SIGKILLed and restarted
  mid-sweep.  Fencing tokens (the job's ``worker_id``) travel in every
  transition frame and are enforced by the dispatcher's own
  ``SqliteBackend``, so a presumed-dead worker's late ``complete`` is
  rejected server-side, never silently applied.
* :class:`RemoteStore` — a :class:`~repro.runtime.store.ResultStore`
  stand-in that ships result blobs over the same socket,
  content-addressed by the identical ``(spec_key, fingerprint)`` pairs.
  Payloads carry a :func:`~repro.runtime.store.checksum_arrays` hash
  that is recomputed and verified on *both* ends of every transfer: a
  blob corrupted in flight is rejected at ``put`` and treated as a miss
  at ``get``, mirroring the on-disk store's self-healing semantics.

Wire-level fault injection reuses the chaos rig: a ``"disconnect"``
injector in a :class:`~repro.runtime.faults.FaultPlan` (or
``REPRO_FAULTS``) makes the channel drop its socket before a matched
request — fingerprint ``"<name>:<op>"``, attempt = that op's 1-based
call count — deterministically replaying a network partition through
the reconnect path.  Other injector kinds are ignored here (they belong
to the worker loop).

See ``docs/DISPATCH.md`` for the wire verbs and the failure matrix.
"""

from __future__ import annotations

import abc
import base64
import binascii
import dataclasses
import hashlib
import json
import socket
import threading
import time

import numpy as np

from .faults import FaultPlan
from .store import CHECKSUM_KEY, checksum_arrays

__all__ = [
    "DISPATCH_PROTOCOL_VERSION",
    "DispatchError",
    "Job",
    "MAX_FRAME_BYTES",
    "QueueBackend",
    "RemoteBackend",
    "RemoteStore",
    "TransportError",
    "decode_payload",
    "encode_payload",
]

DISPATCH_PROTOCOL_VERSION = 1

# Same generous frame cap as the streaming server: a result blob for one
# shard is a few hundred bytes of base64; anything near the cap is a
# protocol violation, not a big result.
MAX_FRAME_BYTES = 16 * 1024 * 1024

STATUSES = ("open", "leased", "done", "error")
DEFAULT_LEASE_S = 30.0
DEFAULT_MAX_ATTEMPTS = 3


class TransportError(ConnectionError):
    """The dispatcher stayed unreachable past the retry window."""


class DispatchError(RuntimeError):
    """The dispatcher answered ``{"ok": false}`` with a non-builtin error."""


@dataclasses.dataclass(frozen=True)
class Job:
    """One claimed shard: everything a worker needs to execute it."""

    spec_key: str
    fingerprint: str
    spec: dict
    payload: dict
    attempt: int
    max_attempts: int
    lease_s: float
    worker_id: str

    def to_dict(self) -> dict:
        """JSON-able form (the dispatch wire format)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "Job":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            spec_key=str(data["spec_key"]),
            fingerprint=str(data["fingerprint"]),
            spec=dict(data["spec"]),
            payload=dict(data["payload"]),
            attempt=int(data["attempt"]),
            max_attempts=int(data["max_attempts"]),
            lease_s=float(data["lease_s"]),
            worker_id=str(data["worker_id"]),
        )


def _backoff_jitter(spec_key: str, fingerprint: str, attempt: int) -> float:
    """Deterministic uniform in [0, 1) — same delay on every machine."""
    digest = hashlib.sha256(
        f"backoff:{spec_key}:{fingerprint}:{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


class QueueBackend(abc.ABC):
    """The lease-lifecycle contract every queue backend implements.

    Implementations provide the storage-specific verbs; the base class
    carries what is backend-independent — the capped-exponential backoff
    schedule (``backoff_base_s`` / ``backoff_cap_s`` / ``backoff_jitter``
    attributes every implementation must set), drain accounting, and the
    quarantine re-raise.  The semantic contract, asserted by the queue
    test suites against any implementation:

    * every timed verb takes ``now`` (``None`` = wall clock) so tests
      drive the lease clock logically;
    * ``submit`` is idempotent on ``(spec_key, fingerprint)``;
    * ``claim`` reaps expired peers first and increments ``attempt``;
    * ``heartbeat`` / ``complete`` / ``fail`` / ``release`` are *fenced*:
      they apply only while the row is still ``leased`` to the caller's
      ``worker_id``, so a reclaimed worker's late writes are rejected.
    """

    backoff_base_s: float
    backoff_cap_s: float
    backoff_jitter: float
    path: str

    @staticmethod
    def _now(now: "float | None") -> float:
        return time.time() if now is None else float(now)

    def _backoff_s(self, spec_key: str, fingerprint: str, attempt: int) -> float:
        delay = min(
            self.backoff_cap_s, self.backoff_base_s * 2.0 ** max(attempt - 1, 0)
        )
        jitter = _backoff_jitter(spec_key, fingerprint, attempt)
        return delay * (1.0 + self.backoff_jitter * jitter)

    # -- storage-specific verbs ----------------------------------------
    @abc.abstractmethod
    def submit(
        self,
        spec_key: str,
        fingerprint: str,
        spec: dict,
        payload: dict,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        now: "float | None" = None,
    ) -> bool:
        """Insert one job row; False when the key already exists."""

    @abc.abstractmethod
    def claim(
        self,
        worker_id: str,
        lease_s: float = DEFAULT_LEASE_S,
        now: "float | None" = None,
    ) -> "Job | None":
        """Atomically lease the oldest claimable open job, if any."""

    @abc.abstractmethod
    def heartbeat(self, job: Job, now: "float | None" = None) -> bool:
        """Refresh the lease; False means it was lost (stop working)."""

    @abc.abstractmethod
    def complete(self, job: Job, now: "float | None" = None) -> bool:
        """Mark a leased job done (fenced); False means the lease was lost."""

    @abc.abstractmethod
    def fail(
        self,
        job: Job,
        error: str,
        tb: "str | None" = None,
        retryable: bool = True,
        now: "float | None" = None,
    ) -> "str | None":
        """Record a failed attempt (fenced); the row's new status or None."""

    @abc.abstractmethod
    def release(self, job: Job, now: "float | None" = None) -> bool:
        """Hand back an unstarted lease (fenced); the attempt is uncounted."""

    @abc.abstractmethod
    def reap(self, now: "float | None" = None) -> int:
        """Reclaim every expired lease; returns how many rows changed."""

    @abc.abstractmethod
    def reset(self, now: "float | None" = None) -> int:
        """Re-open every quarantined row; returns how many were re-opened."""

    @abc.abstractmethod
    def counts(self) -> "dict[str, int]":
        """Row count per status (every status present, zero-filled)."""

    @abc.abstractmethod
    def rows(self, status: "str | None" = None) -> "list[dict]":
        """A snapshot of job rows (optionally one status), as dicts."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the backend's connection (the queue state persists)."""

    @abc.abstractmethod
    def spawn(self) -> "QueueBackend":
        """A fresh, independent connection to the same queue.

        Heartbeat threads use this so lease refreshes never contend with
        the worker's own claim/complete traffic on one connection.
        """

    # -- shared derived queries ----------------------------------------
    def total(self) -> int:
        """Total number of job rows."""
        return sum(self.counts().values())

    def unfinished(self) -> int:
        """Rows still in flight (open or leased)."""
        counts = self.counts()
        return counts["open"] + counts["leased"]

    def errors(self) -> "list[dict]":
        """The quarantined rows (status ``'error'``), with tracebacks."""
        return self.rows("error")

    def raise_first_error(self) -> None:
        """Re-raise the first quarantined failure, traceback chained."""
        from .executors import RemoteTraceback

        failures = self.errors()
        if not failures:
            return
        row = failures[0]
        exc = RuntimeError(
            f"job {row['fingerprint'][:12]} quarantined after "
            f"{row['attempt']} attempt(s): {row['error']}"
        )
        if row["traceback"]:
            raise exc from RemoteTraceback(row["traceback"])
        raise exc

    def __enter__(self) -> "QueueBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Result-blob wire codec
# ----------------------------------------------------------------------
def encode_payload(arrays: "dict[str, np.ndarray]") -> dict:
    """Named arrays -> a JSON-able blob carrying its own checksum.

    Each array travels as ``{dtype, shape, data}`` with the raw bytes
    base64-encoded; the blob-level ``checksum`` is
    :func:`~repro.runtime.store.checksum_arrays` over the payload, which
    the receiving end recomputes before accepting the transfer.
    """
    payload = {name: np.asarray(value) for name, value in arrays.items()}
    encoded = {}
    for name, arr in payload.items():
        # NOT ascontiguousarray: that would promote 0-dim scalars to
        # 1-dim and break shape round-tripping; tobytes() already emits
        # C-order bytes for any layout.
        encoded[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "data": base64.b64encode(arr.tobytes()).decode("ascii"),
        }
    return {"arrays": encoded, "checksum": checksum_arrays(payload)}


def decode_payload(blob: dict) -> "dict[str, np.ndarray]":
    """Inverse of :func:`encode_payload`; raises ValueError on damage.

    Damage means a malformed field, base64 garbage, a byte count that
    does not tile the declared dtype/shape, or a payload that fails its
    declared ``checksum`` — the transfer-level analogue of the store's
    corrupt-entry detection.
    """
    if not isinstance(blob, dict) or "arrays" not in blob:
        raise ValueError("payload blob must carry an 'arrays' mapping")
    arrays: "dict[str, np.ndarray]" = {}
    for name, spec in blob["arrays"].items():
        try:
            raw = binascii.a2b_base64(
                spec["data"].encode("ascii"), strict_mode=True
            )
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(n) for n in spec["shape"])
        except (KeyError, TypeError, ValueError, UnicodeEncodeError) as exc:
            raise ValueError(f"malformed array {name!r} in payload: {exc}")
        if dtype.itemsize == 0 or len(raw) % dtype.itemsize:
            raise ValueError(
                f"array {name!r}: {len(raw)} bytes does not tile dtype "
                f"{dtype.str}"
            )
        arr = np.frombuffer(raw, dtype=dtype)
        try:
            arr = arr.reshape(shape)
        except ValueError:
            raise ValueError(
                f"array {name!r}: {arr.size} items do not fill shape {shape}"
            )
        arrays[name] = arr
    declared = blob.get("checksum")
    if not isinstance(declared, str) or declared != checksum_arrays(arrays):
        raise ValueError("payload does not match its declared checksum")
    return arrays


# ----------------------------------------------------------------------
# The dispatch channel (framing + reconnect)
# ----------------------------------------------------------------------
def parse_address(address) -> "tuple[str, int]":
    """``"host:port"`` (or a ``(host, port)`` pair) -> ``(host, port)``."""
    if isinstance(address, (tuple, list)) and len(address) == 2:
        return str(address[0]), int(address[1])
    text = str(address)
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"dispatcher address must be 'host:port', got {text!r}"
        )
    return host, int(port)


class DispatchChannel:
    """One blocking, auto-reconnecting request/reply socket.

    Thread-safe (one request in flight at a time); every request gets a
    per-call socket timeout, and connect or transient transport errors
    retry with capped exponential backoff + deterministic jitter until
    ``retry_window_s`` is exhausted, then raise :class:`TransportError`.
    The generous default window is what lets workers ride out a
    dispatcher SIGKILL + restart without losing their sweep.
    """

    def __init__(
        self,
        address,
        *,
        timeout_s: float = 30.0,
        retry_window_s: float = 120.0,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        name: str = "channel",
        faults: "FaultPlan | None" = None,
    ) -> None:
        self.host, self.port = parse_address(address)
        self.timeout_s = float(timeout_s)
        self.retry_window_s = float(retry_window_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.name = name
        self.faults = faults if faults is not None else FaultPlan.from_env()
        self.reconnects = 0  # completed re-connections after a drop
        self._lock = threading.Lock()
        self._sock: "socket.socket | None" = None
        self._fh = None
        self._ever_connected = False
        self._op_counts: "dict[str, int]" = {}
        self._closed = False

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _drop(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _ensure_connected(self) -> None:
        if self._sock is not None:
            return
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout_s
        )
        sock.settimeout(self.timeout_s)
        self._sock = sock
        self._fh = sock.makefile("rwb")
        if self._ever_connected:
            self.reconnects += 1
        self._ever_connected = True

    def _consult_faults(self, op: str) -> None:
        """Drop the socket when the plan schedules a disconnect here."""
        attempt = self._op_counts.get(op, 0) + 1
        self._op_counts[op] = attempt
        if self.faults is None:
            return
        fault = self.faults.match(f"{self.name}:{op}", attempt)
        if fault is not None and fault.kind == "disconnect":
            self._drop()  # the re-dial below counts as a reconnect

    def rpc(self, op: str, **fields) -> dict:
        """One request/reply round trip; retries transport-level failures.

        Every queue verb is safe to repeat after a lost reply: ``submit``
        is idempotent, the fenced transitions at worst re-apply as a
        no-op (the retry then reads "lease lost", which the worker
        already handles), and a double-``claim``'s orphaned first lease
        expires and is reaped like any dead worker's.
        """
        if self._closed:
            raise TransportError(f"channel to {self.address} is closed")
        request = dict(fields)
        request["op"] = op
        line = json.dumps(request, separators=(",", ":")).encode() + b"\n"
        if len(line) > MAX_FRAME_BYTES:
            raise ValueError(
                f"request frame of {len(line)} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte dispatch frame cap"
            )
        with self._lock:
            self._consult_faults(op)
            deadline = time.monotonic() + self.retry_window_s
            attempt = 0
            while True:
                try:
                    self._ensure_connected()
                    self._fh.write(line)
                    self._fh.flush()
                    reply_line = self._fh.readline(MAX_FRAME_BYTES + 1)
                    if not reply_line:
                        raise ConnectionError(
                            "dispatcher closed the connection"
                        )
                    if len(reply_line) > MAX_FRAME_BYTES:
                        raise ValueError(
                            "dispatcher reply exceeds the frame cap"
                        )
                    reply = json.loads(reply_line)
                except (OSError, ConnectionError) as exc:
                    self._drop()
                    attempt += 1
                    delay = min(
                        self.backoff_cap_s,
                        self.backoff_base_s * 2.0 ** (attempt - 1),
                    )
                    delay *= 1.0 + 0.25 * _backoff_jitter(
                        self.name, self.address, attempt
                    )
                    if time.monotonic() + delay > deadline:
                        raise TransportError(
                            f"dispatcher {self.address} unreachable after "
                            f"{attempt} attempt(s) over "
                            f"{self.retry_window_s:g}s: {exc}"
                        ) from exc
                    time.sleep(delay)
                    continue
                if reply.get("ok", False):
                    return reply
                self._raise_remote(reply)

    @staticmethod
    def _raise_remote(reply: dict) -> None:
        """Re-raise a server-side failure under its original type.

        The dispatcher ships the exception's type name; the builtin
        validation types re-raise as themselves so remote misuse reads
        exactly like local misuse (``pytest.raises(ValueError)`` passes
        against either backend); anything else surfaces as
        :class:`DispatchError`.
        """
        name = reply.get("error", "error")
        detail = reply.get("detail", "")
        builtin = {
            "ValueError": ValueError,
            "TypeError": TypeError,
            "KeyError": KeyError,
            "RuntimeError": RuntimeError,
        }.get(name)
        if builtin is not None:
            raise builtin(detail)
        raise DispatchError(f"{name}: {detail}" if detail else name)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._drop()


# ----------------------------------------------------------------------
# Remote queue backend
# ----------------------------------------------------------------------
class RemoteBackend(QueueBackend):
    """The :class:`QueueBackend` contract spoken to a ``repro dispatch``
    server over TCP — no shared filesystem anywhere.

    The handshake (``hello``) checks the protocol version and copies the
    server's backoff schedule onto this instance, so local
    ``_backoff_s`` predictions match what the dispatcher actually writes
    into ``not_before``.  Fencing is enforced server-side: every
    transition frame carries the job's ``worker_id`` token and the
    dispatcher's own sqlite backend applies the fenced UPDATE.
    """

    def __init__(
        self,
        address,
        *,
        timeout_s: float = 30.0,
        retry_window_s: float = 120.0,
        name: str = "queue",
        faults: "FaultPlan | None" = None,
    ) -> None:
        self._channel = DispatchChannel(
            address,
            timeout_s=timeout_s,
            retry_window_s=retry_window_s,
            name=name,
            faults=faults,
        )
        self.path = f"dispatch://{self._channel.address}"
        hello = self._channel.rpc("hello")
        protocol = hello.get("protocol")
        if protocol != DISPATCH_PROTOCOL_VERSION:
            self._channel.close()
            raise TransportError(
                f"dispatcher speaks protocol {protocol!r}, this client "
                f"needs {DISPATCH_PROTOCOL_VERSION}"
            )
        self.backoff_base_s = float(hello["backoff_base_s"])
        self.backoff_cap_s = float(hello["backoff_cap_s"])
        self.backoff_jitter = float(hello["backoff_jitter"])

    @property
    def address(self) -> str:
        """The dispatcher's ``host:port``."""
        return self._channel.address

    @property
    def reconnects(self) -> int:
        """How many times the channel re-dialed after a drop."""
        return self._channel.reconnects

    def submit(
        self,
        spec_key: str,
        fingerprint: str,
        spec: dict,
        payload: dict,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        now: "float | None" = None,
    ) -> bool:
        reply = self._channel.rpc(
            "submit",
            spec_key=spec_key,
            fingerprint=fingerprint,
            spec=spec,
            payload=payload,
            max_attempts=int(max_attempts),
            now=now,
        )
        return bool(reply["inserted"])

    def claim(
        self,
        worker_id: str,
        lease_s: float = DEFAULT_LEASE_S,
        now: "float | None" = None,
    ) -> "Job | None":
        reply = self._channel.rpc(
            "claim", worker_id=worker_id, lease_s=float(lease_s), now=now
        )
        if reply["job"] is None:
            return None
        return Job.from_dict(reply["job"])

    def heartbeat(self, job: Job, now: "float | None" = None) -> bool:
        reply = self._channel.rpc("heartbeat", job=job.to_dict(), now=now)
        return bool(reply["applied"])

    def complete(self, job: Job, now: "float | None" = None) -> bool:
        reply = self._channel.rpc("complete", job=job.to_dict(), now=now)
        return bool(reply["applied"])

    def fail(
        self,
        job: Job,
        error: str,
        tb: "str | None" = None,
        retryable: bool = True,
        now: "float | None" = None,
    ) -> "str | None":
        reply = self._channel.rpc(
            "fail",
            job=job.to_dict(),
            error=error,
            tb=tb,
            retryable=bool(retryable),
            now=now,
        )
        return reply["status"]

    def release(self, job: Job, now: "float | None" = None) -> bool:
        reply = self._channel.rpc("release", job=job.to_dict(), now=now)
        return bool(reply["applied"])

    def reap(self, now: "float | None" = None) -> int:
        return int(self._channel.rpc("reap", now=now)["reaped"])

    def reset(self, now: "float | None" = None) -> int:
        return int(self._channel.rpc("reset", now=now)["reopened"])

    def counts(self) -> "dict[str, int]":
        counts = self._channel.rpc("counts")["counts"]
        return {status: int(counts[status]) for status in STATUSES}

    def rows(self, status: "str | None" = None) -> "list[dict]":
        return self._channel.rpc("rows", status=status)["rows"]

    def close(self) -> None:
        self._channel.close()

    def spawn(self) -> "RemoteBackend":
        return RemoteBackend(
            (self._channel.host, self._channel.port),
            timeout_s=self._channel.timeout_s,
            retry_window_s=self._channel.retry_window_s,
            name=self._channel.name,
            faults=self._channel.faults,
        )

    def __repr__(self) -> str:
        return f"RemoteBackend({self.address!r})"


# ----------------------------------------------------------------------
# Remote result store
# ----------------------------------------------------------------------
class RemoteStore:
    """A worker-side result store writing through the dispatcher's disk.

    Drop-in for the slice of :class:`~repro.runtime.store.ResultStore`
    the execution path uses — ``get`` / ``put`` / ``has`` / ``stats``
    with the same ``hits`` / ``misses`` / ``stores`` / ``corrupt``
    counters — but entries live under the *dispatcher's* store root;
    nothing is written locally.  Addresses are the identical
    ``(spec_key, fingerprint)`` pairs, so a sweep collected on the
    dispatcher host afterwards is warm with zero re-evaluations.

    Integrity mirrors the on-disk store: ``put`` sends a payload
    checksum the dispatcher verifies before persisting (a corrupted
    upload raises ``ValueError`` instead of poisoning the shared cache),
    and ``get`` verifies the downloaded blob, counting a mismatch as
    ``corrupt`` + a miss so the caller re-evaluates.
    """

    def __init__(
        self,
        address,
        *,
        timeout_s: float = 30.0,
        retry_window_s: float = 120.0,
        name: str = "store",
        faults: "FaultPlan | None" = None,
    ) -> None:
        self._channel = DispatchChannel(
            address,
            timeout_s=timeout_s,
            retry_window_s=retry_window_s,
            name=name,
            faults=faults,
        )
        self.root = f"dispatch://{self._channel.address}"
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self._lock = threading.Lock()

    def get(
        self, spec_key: str, fingerprint: str
    ) -> "dict[str, np.ndarray] | None":
        """Fetch a result from the dispatcher's store, or None on miss."""
        reply = self._channel.rpc(
            "store_get", spec_key=spec_key, fingerprint=fingerprint
        )
        if reply["payload"] is None:
            with self._lock:
                self.misses += 1
            return None
        try:
            arrays = decode_payload(reply["payload"])
        except ValueError:
            with self._lock:
                self.corrupt += 1
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return arrays

    def put(
        self, spec_key: str, fingerprint: str, arrays: "dict[str, np.ndarray]"
    ) -> None:
        """Ship one result to the dispatcher's store (checksum-verified)."""
        if not arrays:
            raise ValueError("refusing to store an empty result")
        if CHECKSUM_KEY in arrays:
            raise ValueError(f"{CHECKSUM_KEY!r} is a reserved array name")
        self._channel.rpc(
            "store_put",
            spec_key=spec_key,
            fingerprint=fingerprint,
            payload=encode_payload(arrays),
        )
        with self._lock:
            self.stores += 1

    def has(self, spec_key: str, fingerprint: str) -> bool:
        """Whether the dispatcher's store holds this entry (no counters)."""
        reply = self._channel.rpc(
            "store_has", spec_key=spec_key, fingerprint=fingerprint
        )
        return bool(reply["has"])

    def stats(self) -> "dict[str, int]":
        """This instance's access counters (not the dispatcher's)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "corrupt": self.corrupt,
            }

    def close(self) -> None:
        self._channel.close()

    def __enter__(self) -> "RemoteStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"RemoteStore({self.root!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )
