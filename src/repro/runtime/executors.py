"""Pluggable execution backends for sweep and batch fan-out.

Every "map this function over that grid" loop in the library — the
analysis sweeps, :func:`repro.core.pipeline.run_batch`'s per-pattern work,
the experiment drivers — goes through one primitive, :func:`map_jobs`.
This module owns it and puts three interchangeable backends behind the
same contract:

``serial``
    A plain in-process loop.  The reference semantics every other backend
    is held to (and the default when ``jobs`` is ``None``/1).
``thread``
    ``concurrent.futures.ThreadPoolExecutor``.  The encoder / receiver
    hot loops are numpy, which releases the GIL, so threads overlap the
    heavy array work without any serialisation cost.
``process``
    ``concurrent.futures.ProcessPoolExecutor``.  Items are grouped into
    contiguous shards (:func:`plan_shards`) so each worker task amortises
    the submission/IPC cost over many grid points — the many-core path
    for full dataset sweeps.

The contract, identical on every backend:

* **Order-deterministic** — results come back in item order, element-wise
  identical to the serial loop (asserted by the runtime property suite).
* **Exception-transparent** — the error of the *first failing item in
  item order* propagates to the caller.  Serial and thread backends raise
  the original exception with its genuine traceback; the process backend
  re-raises the original exception object with the worker's formatted
  traceback chained on as a :class:`RemoteTraceback` ``__cause__``.
* **Spawn-safe** — the process backend never relies on fork-inherited
  state: the callable and items travel by pickling, so it works under
  the ``spawn`` start method too (callables must be module-level
  functions or ``functools.partial`` of one; closures/lambdas are
  rejected with a pointed error suggesting ``backend="thread"``).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

__all__ = [
    "BACKENDS",
    "RemoteTraceback",
    "default_jobs",
    "map_jobs",
    "plan_shards",
    "resolve_backend",
]

BACKENDS = ("serial", "thread", "process")


class RemoteTraceback(Exception):
    """A worker process's formatted traceback.

    Chained onto the re-raised exception as its ``__cause__`` (the
    ``multiprocessing.pool`` convention), so the original failure site
    inside the worker shows up in the caller's traceback output.
    """

    def __init__(self, tb: str) -> None:
        super().__init__(tb)
        self.tb = tb

    def __str__(self) -> str:
        return self.tb


def default_jobs() -> int:
    """Worker count used when a parallel backend is requested without ``jobs``."""
    return max(1, os.cpu_count() or 1)


def resolve_backend(backend: "str | None", jobs: "int | None") -> str:
    """The backend a ``(backend, jobs)`` pair selects.

    ``backend=None`` keeps the historical ``map_jobs`` behaviour:
    ``jobs > 1`` means the thread pool, anything else the serial loop.
    """
    if backend is None:
        return "thread" if jobs is not None and jobs > 1 else "serial"
    if backend not in BACKENDS:
        raise ValueError(
            f"backend must be one of {BACKENDS}, got {backend!r}"
        )
    return backend


def plan_shards(
    n_items: int, jobs: int, shard_size: "int | None" = None
) -> "list[slice]":
    """Contiguous, deterministic shards covering ``range(n_items)``.

    The default shard size targets ~4 shards per worker: big enough to
    amortise per-task submission/IPC cost, small enough that an uneven
    grid still load-balances.  ``shard_size`` overrides it (1 = one task
    per item).  Shards partition the index range in order, so
    concatenating per-shard results reproduces item order exactly.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if n_items == 0:
        return []
    if shard_size is None:
        shard_size = -(-n_items // (4 * jobs))  # ceil division
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [
        slice(start, min(start + shard_size, n_items))
        for start in range(0, n_items, shard_size)
    ]


def _run_shard(fn, items):
    """Worker-side shard loop: ``("ok", results)`` or ``("err", exc, tb)``.

    Errors are captured (not raised) so the parent can re-raise the first
    failure *in item order* with the worker traceback attached — raising
    here would lose the traceback at the process boundary.
    """
    try:
        return ("ok", [fn(item) for item in items])
    except BaseException as exc:  # noqa: BLE001 — transported, then re-raised
        tb = traceback.format_exc()
        try:  # exceptions with unpicklable payloads must still come home
            pickle.loads(pickle.dumps(exc))
        except Exception:
            exc = RuntimeError(f"{type(exc).__name__}: {exc}")
        return ("err", exc, tb)


def _check_picklable(fn) -> None:
    try:
        pickle.dumps(fn)
    except Exception as exc:
        raise TypeError(
            "backend='process' needs a picklable callable (a module-level "
            f"function or a functools.partial of one), got {fn!r}; use "
            "backend='thread' for closures"
        ) from exc


def _map_process(fn, items, jobs, shard_size, mp_context):
    shards = plan_shards(len(items), jobs, shard_size)
    ctx = (
        multiprocessing.get_context(mp_context)
        if isinstance(mp_context, str)
        else mp_context
    )
    out = []
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(shards)), mp_context=ctx
    ) as executor:
        for result in executor.map(
            _run_shard, [fn] * len(shards), [items[s] for s in shards]
        ):
            if result[0] == "err":
                _, exc, tb = result
                # Stop healthy shards before surfacing the error: without
                # the cancel, the pool's __exit__ would block until every
                # remaining shard ran to completion.
                executor.shutdown(wait=False, cancel_futures=True)
                raise exc from RemoteTraceback(tb)
            out.extend(result[1])
    return out


def map_jobs(
    fn,
    items,
    jobs: "int | None" = None,
    backend: "str | None" = None,
    shard_size: "int | None" = None,
    mp_context=None,
):
    """Map ``fn`` over ``items`` on the selected execution backend.

    The shared fan-out primitive behind ``run_batch`` and the analysis
    sweeps.  Results are returned in item order and are element-wise
    identical to the serial loop on every backend; the first failing
    item's exception propagates (see the module docstring for the
    per-backend traceback behaviour).

    Parameters
    ----------
    jobs:
        Worker count.  ``None`` means 1 for the serial/default backend
        and :func:`default_jobs` when ``backend`` names a parallel one.
        ``jobs <= 1`` always degenerates to the serial loop.
    backend:
        ``"serial"``, ``"thread"``, ``"process"``, or ``None`` for the
        historical behaviour (thread pool iff ``jobs > 1``).
    shard_size:
        Process-backend task granularity (items per worker task); the
        default targets ~4 shards per worker.  Ignored elsewhere.
    mp_context:
        Process-backend start method: a ``multiprocessing`` context, a
        start-method name (``"fork"``/``"spawn"``/``"forkserver"``), or
        ``None`` for the platform default.
    """
    items = list(items)
    backend = resolve_backend(backend, jobs)
    if backend == "process":
        # Validate even when the call degenerates to the serial loop, so
        # a closure never *appears* process-safe on a small smoke input.
        _check_picklable(fn)
    if jobs is None:
        jobs = 1 if backend == "serial" else default_jobs()
    if backend == "serial" or jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    if backend == "thread":
        with ThreadPoolExecutor(max_workers=jobs) as executor:
            return list(executor.map(fn, items))
    return _map_process(fn, items, jobs, shard_size, mp_context)
