"""Deterministic fault injection for the experiment queue.

The queue's recovery paths — lease expiry after a SIGKILL, capped-backoff
retries of transient errors, quarantine of deterministic ones, fencing of
a wedged worker's late writes — are exactly the paths that never run in a
happy-path test.  This module makes them *schedulable*: a
:class:`FaultPlan` is a list of :class:`FaultSpec` injectors that a
worker consults once per ``(job fingerprint, attempt)`` before executing
a shard, and every decision is a pure function of
``(plan seed, injector, fingerprint, attempt)`` — the same plan fires the
same faults on any machine, any interleaving, any retry schedule, so the
multi-worker recovery tests are reproducible on one laptop.

Three injector kinds cover the failure taxonomy:

``"error"``
    Raise :class:`InjectedFault` inside the worker.  Scoped to
    ``attempts=(1,)`` it models a *transient* failure (the retry
    succeeds); left unscoped it fires on every attempt and models a
    *deterministic* bug (the job exhausts ``max_attempts`` and lands in
    quarantine with the full traceback logged).
``"crash"``
    ``os._exit(137)`` — the worker dies mid-shard with no cleanup, no
    ``finally`` blocks, no atexit: byte-for-byte what SIGKILL leaves
    behind.  Recovery must come from a *peer* reclaiming the expired
    lease.
``"stall"``
    The worker stops heartbeating and sleeps ``stall_s`` mid-job, then
    carries on as if nothing happened.  Its lease expires, a peer
    re-runs the shard, and the stalled worker's late completion must be
    *fenced off* by the jobs table (the store itself is safe — entries
    are content-addressed and idempotent).
``"disconnect"``
    The streaming-server counterpart of ``"crash"``: a
    :class:`~repro.runtime.client.StreamingClient` consulting the plan
    aborts its TCP transport mid-conversation (no FIN handshake, no
    ``close`` verb) before sending the matched push — byte-for-byte what
    a wearer walking out of radio range leaves behind.  The server must
    release the orphaned sessions and keep serving everyone else.  The
    client's fingerprint is ``"<client name>:<sid>"`` and the attempt
    number counts that session's pushes (1-based), so a mid-session
    disconnect replays deterministically.  Queue workers ignore this
    kind.

Plans serialise to JSON and travel to worker subprocesses through the
``REPRO_FAULTS`` environment variable (or ``repro worker --faults`` /
``StreamingClient(faults=...)``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass

__all__ = [
    "ENV_FAULTS",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
]

ENV_FAULTS = "REPRO_FAULTS"
FAULT_KINDS = ("error", "crash", "stall", "disconnect")


class InjectedFault(RuntimeError):
    """The exception an ``"error"`` injector raises inside a worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One injector: *which* fault fires *when*.

    Parameters
    ----------
    kind:
        ``"error"`` (raise :class:`InjectedFault`), ``"crash"``
        (``os._exit(137)``, the deterministic SIGKILL), ``"stall"``
        (stop heartbeating and sleep ``stall_s`` mid-job) or
        ``"disconnect"`` (a streaming client aborts its socket before
        the matched push).
    match:
        Fingerprint substring filter; ``""`` matches every job.
    attempts:
        Fire only on these attempt numbers (1-based).  ``None`` fires on
        every attempt — an ``"error"`` injector then models a
        deterministic bug that must end in quarantine.
    prob:
        Probability the injector fires on a matching ``(job, attempt)``.
        Draws are deterministic in ``(plan seed, fingerprint, attempt)``,
        not wall-clock randomness.
    stall_s:
        Sleep length of a ``"stall"`` injector (ignored otherwise).
    """

    kind: str
    match: str = ""
    attempts: "tuple[int, ...] | None" = None
    prob: float = 1.0
    stall_s: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if not 0.0 <= self.prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {self.prob}")
        if self.stall_s <= 0:
            raise ValueError(f"stall_s must be positive, got {self.stall_s}")
        if self.attempts is not None:
            attempts = tuple(int(a) for a in self.attempts)
            if not attempts or any(a < 1 for a in attempts):
                raise ValueError(
                    f"attempts must be 1-based attempt numbers, got "
                    f"{self.attempts!r}"
                )
            object.__setattr__(self, "attempts", attempts)

    def to_dict(self) -> dict:
        """Canonical JSON-able form."""
        out = dataclasses.asdict(self)
        if self.attempts is not None:
            out["attempts"] = list(self.attempts)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Rebuild from :meth:`to_dict` output."""
        data = dict(data)
        if data.get("attempts") is not None:
            data["attempts"] = tuple(data["attempts"])
        return cls(**data)


def _draw(seed: int, index: int, fingerprint: str, attempt: int) -> float:
    """Deterministic uniform in [0, 1) for one (injector, job, attempt)."""
    digest = hashlib.sha256(
        f"{seed}:{index}:{fingerprint}:{attempt}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable schedule of fault injectors.

    ``match(fingerprint, attempt)`` returns the first injector that fires
    for that job attempt (or ``None``); the worker applies it.  The plan
    is pure data — evaluation has no side effects, so tests can assert
    the schedule before running it.
    """

    faults: "tuple[FaultSpec, ...]" = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise TypeError(
                    f"faults must be FaultSpec instances, got "
                    f"{type(fault).__name__}"
                )

    def match(self, fingerprint: str, attempt: int) -> "FaultSpec | None":
        """The first injector firing on this ``(job, attempt)``, if any."""
        for index, fault in enumerate(self.faults):
            if fault.match and fault.match not in fingerprint:
                continue
            if fault.attempts is not None and attempt not in fault.attempts:
                continue
            if fault.prob < 1.0 and (
                _draw(self.seed, index, fingerprint, attempt) >= fault.prob
            ):
                continue
            return fault
        return None

    # ------------------------------------------------------------------
    # Serialisation (CLI flag / subprocess environment)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical JSON-able form."""
        return {
            "seed": self.seed,
            "faults": [fault.to_dict() for fault in self.faults],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            faults=tuple(
                FaultSpec.from_dict(f) for f in data.get("faults", ())
            ),
            seed=int(data.get("seed", 0)),
        )

    def to_json(self) -> str:
        """Compact JSON (the ``repro worker --faults`` / env format)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Rebuild from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def to_env(self, env: "dict | None" = None) -> dict:
        """A copy of ``env`` (default ``os.environ``) carrying this plan."""
        out = dict(os.environ if env is None else env)
        out[ENV_FAULTS] = self.to_json()
        return out

    @classmethod
    def from_env(cls, env: "dict | None" = None) -> "FaultPlan | None":
        """The plan in ``REPRO_FAULTS``, or ``None`` when unset/empty."""
        text = (os.environ if env is None else env).get(ENV_FAULTS)
        if not text:
            return None
        return cls.from_json(text)
