"""Async streaming ingestion: chunk source -> encoder -> link -> decoder.

The paper's transmitter is an always-on device; the streaming engines
(:class:`repro.core.encoders.StreamingEncoder`,
:class:`repro.rx.decoders.StreamingDecoder`) already process arbitrary
chunks bit-identically to the one-shot paths, but until now nothing drove
them from a live source.  :class:`AsyncStreamingPipeline` is that driver:
an asyncio loop that pumps sample chunks from any (a)synchronous iterable
through ``encoder.push -> [simulate_link] -> decoder.push`` and hands
envelope samples back as they become final, closing the full TX -> RX
loop for event-driven deployments (sensor sockets, async queues, file
tails).

Bit-identity
------------
For *any* chunking — including empty and single-sample chunks — the
envelope the pipeline produces is bit-identical to the one-shot path on
the merged signal (``encode -> reconstruct``), because both streaming
engines carry exact state across chunk boundaries and the finalize
sequence follows the documented live contract
``encoder.push* -> encoder.finalize -> encoder.drain -> decoder.push ->
decoder.finalize`` (D-ATC's trailing partial frame fires its events
inside ``finalize``; ``drain`` delivers them to the receiver).

With a link layer attached (``link=LinkConfig()``), each event chunk is
transported through :func:`repro.uwb.link.simulate_link` on its way to
the decoder.  On an **ideal channel** the demodulated events are exactly
the transmitted ones, so the output stays bit-identical to the linkless
path.  A noisy channel (which, as everywhere in :mod:`repro.uwb`, needs
an explicit ``rng``) draws its erasures/jitter per chunk, so the noise
*realisation* differs from a one-shot link call (document-level caveat,
exactly like ``simulate_link_batch``); jittered or spurious pulses that
land before an already-delivered event would violate the decoder's
ordering contract and are dropped and counted
(:attr:`AsyncStreamingPipeline.n_dropped_out_of_order`).
"""

from __future__ import annotations

import asyncio

import numpy as np

from ..core.config import ATCConfig, DATCConfig
from ..core.encoders import ATCEncoder, DATCEncoder
from ..core.events import EventStream
from ..rx.decoders import StreamingDecoder
from ..uwb.link import LinkConfig, simulate_link

__all__ = ["AsyncStreamingPipeline", "run_sessions"]


async def run_sessions(sources, specs) -> dict:
    """Drive many concurrent sessions through one :class:`SessionBatch`.

    The multi-session counterpart of :meth:`AsyncStreamingPipeline.run`:
    ``sources`` maps a session name to an (a)sync iterable of sample
    chunks, ``specs`` is one shared :class:`SessionSpec` or a per-name
    mapping.  Each scheduling round pulls one chunk from every live
    source and advances them all in a **single** ``push_many`` call (the
    whole point — per-chunk cost is batched, not per-session); a source
    that ends is finalized and its slot returned to the pool while the
    rest keep streaming.  Returns ``{name: SessionResult}``.

    Every session's stream/envelope is bit-identical to running its
    chunks through a dedicated scalar pipeline (the ``SessionBatch``
    contract).
    """
    from .sessions import SessionBatch, SessionSpec

    names = list(sources)
    if isinstance(specs, SessionSpec):
        spec_of = {name: specs for name in names}
    else:
        spec_of = dict(specs)
        missing = [name for name in names if name not in spec_of]
        if missing:
            raise KeyError(f"no SessionSpec for sources {missing!r}")
    batch = SessionBatch()
    sid_of = {name: batch.create(spec_of[name]) for name in names}
    iters = {}
    for name in names:
        src = sources[name]
        if hasattr(src, "__aiter__"):
            iters[name] = (src.__aiter__(), True)
        else:
            iters[name] = (iter(src), False)
    results = {}
    alive = names
    while alive:
        pushes = {}
        still = []
        for name in alive:
            it, is_async = iters[name]
            try:
                chunk = await it.__anext__() if is_async else next(it)
            except (StopAsyncIteration, StopIteration):
                sid = sid_of[name]
                results[name] = batch.finalize(sid)
                batch.leave(sid)
                continue
            pushes[sid_of[name]] = chunk
            still.append(name)
        if pushes:
            batch.push_many(pushes)
        alive = still
        await asyncio.sleep(0)  # stay fair to the rest of the event loop
    return results


class AsyncStreamingPipeline:
    """Asyncio driver for the live TX -> (link) -> RX loop.

    Usage::

        pipe = AsyncStreamingPipeline(fs=2500.0, scheme="datc")
        async for envelope_chunk in pipe.stream(chunk_source):
            actuate(envelope_chunk)          # samples are final on arrival
        # or: envelope = await pipe.run(chunk_source)

    ``chunk_source`` may be an async iterable (socket reader, queue
    consumer) or a plain iterable; chunks are 1-D sample arrays of any
    length, including empty.  The synchronous core is also exposed
    (:meth:`push` / :meth:`finish`) for event-loop-free callers.

    Parameters
    ----------
    fs:
        Input sampling rate in Hz.
    scheme:
        ``"atc"`` (rate decoding, eager emission) or ``"datc"`` (hybrid
        decoding; envelope emitted at the end because of the global
        rate-peak normalisation — ingestion is still incremental).
    config:
        Encoder/decoder operating point (``ATCConfig``/``DATCConfig``);
        defaults to the scheme's paper operating point.
    link:
        Optional :class:`~repro.uwb.link.LinkConfig`; when given, every
        event chunk rides the behavioural IR-UWB link.
    channel, rng:
        Forwarded to :func:`~repro.uwb.link.simulate_link`.  ``channel=None``
        is the ideal channel; a noisy channel requires an ``rng`` (the
        library-wide rule), which is then drawn from on every chunk.
    fs_out, window_s:
        Receiver grid rate and smoothing window (the paper's 100 Hz /
        0.25 s defaults).
    """

    def __init__(
        self,
        fs: float,
        scheme: str = "datc",
        config: "ATCConfig | DATCConfig | None" = None,
        *,
        link: "LinkConfig | None" = None,
        channel=None,
        rng: "np.random.Generator | None" = None,
        fs_out: float = 100.0,
        window_s: float = 0.25,
        rectify: bool = True,
    ) -> None:
        if scheme not in ("atc", "datc"):
            raise ValueError(f"scheme must be 'atc' or 'datc', got {scheme!r}")
        if config is None:
            config = ATCConfig() if scheme == "atc" else DATCConfig()
        self.scheme = scheme
        self.config = config
        self.link = link
        self.channel = channel
        self.rng = rng
        encoder_cls = ATCEncoder if scheme == "atc" else DATCEncoder
        self.encoder = encoder_cls(fs, config, rectify=rectify)
        self.decoder = StreamingDecoder(
            scheme=scheme, config=config, fs_out=fs_out, window_s=window_s
        )
        self.trace = None  # encoder diagnostic trace, set by finish()
        self.n_pulses = 0
        self.tx_energy_j = 0.0
        self.n_rx_events = 0
        self.n_dropped_out_of_order = 0
        self._frontier = -np.inf  # newest event time delivered to the decoder

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    @property
    def duration_s(self) -> float:
        """Signal time covered by the chunks consumed so far."""
        return self.encoder.duration_s

    @property
    def n_samples(self) -> int:
        """Input samples consumed so far."""
        return self.encoder.n_samples

    @property
    def n_tx_events(self) -> int:
        """Events the encoder has fired so far."""
        return self.encoder.stream.n_events

    @property
    def tx_stream(self) -> EventStream:
        """All transmitted events so far, as one one-shot-equivalent stream."""
        return self.encoder.stream

    @property
    def envelope(self) -> np.ndarray:
        """All envelope samples emitted so far (complete after finish)."""
        return self.decoder.envelope

    @property
    def finished(self) -> bool:
        """True once :meth:`finish` has run (no more chunks accepted)."""
        return self.trace is not None

    # ------------------------------------------------------------------
    # Synchronous core
    # ------------------------------------------------------------------
    def push(self, samples) -> np.ndarray:
        """Consume one sample chunk; return the newly final envelope bins."""
        return self._deliver(self.encoder.push(samples))

    def finish(self) -> np.ndarray:
        """Flush both engines; return the remaining envelope samples."""
        if self.finished:
            raise RuntimeError("finish() called twice")
        self.trace = self.encoder.finalize()
        tail = self._deliver(self.encoder.drain())
        return np.concatenate([tail, self.decoder.finalize()])

    def _deliver(self, events: EventStream) -> np.ndarray:
        """Transport one event chunk (through the link, if any) to the decoder."""
        if self.link is not None and events.n_events:
            result = simulate_link(
                events, self.link, channel=self.channel, rng=self.rng
            )
            self.n_pulses += result.n_pulses
            self.tx_energy_j += result.tx_energy_j
            rx = result.rx_stream
            if rx.n_events and rx.times[0] < self._frontier:
                keep = rx.times >= self._frontier
                self.n_dropped_out_of_order += int(np.count_nonzero(~keep))
                rx = rx.drop_events(keep)
        else:
            rx = events
        if rx.n_events:
            self._frontier = float(rx.times[-1])
        self.n_rx_events += rx.n_events
        return self.decoder.push(rx)

    # ------------------------------------------------------------------
    # Async drivers
    # ------------------------------------------------------------------
    async def stream(self, source):
        """Drive the pipeline from ``source``; yield envelope chunks.

        ``source`` may be an async iterable or a plain iterable of sample
        chunks.  Both branches take an explicit ``sleep(0)`` between
        chunks so a long recording never starves the event loop — an
        async iterator whose ``__anext__`` returns already-ready chunks
        without awaiting (a pre-buffered queue, a file tail) otherwise
        never yields control, exactly like a plain iterable.  The
        final chunk yielded is :meth:`finish`'s tail, so the concatenation
        of everything yielded is the complete (one-shot-identical)
        envelope.
        """
        if hasattr(source, "__aiter__"):
            async for samples in source:
                out = self.push(samples)
                if out.size:
                    yield out
                await asyncio.sleep(0)
        else:
            for samples in source:
                out = self.push(samples)
                if out.size:
                    yield out
                await asyncio.sleep(0)
        tail = self.finish()
        if tail.size:
            yield tail

    async def run(self, source) -> np.ndarray:
        """Consume ``source`` to completion; return the full envelope."""
        async for _ in self.stream(source):
            pass
        return self.envelope

    @staticmethod
    async def run_many(sources, specs) -> dict:
        """Multi-session driver: see :func:`run_sessions`.

        One ``SessionBatch`` advances every source's session per
        scheduling round in a single batched call — the scalable
        replacement for N independent pipelines when N is large.
        """
        return await run_sessions(sources, specs)
