"""The queue dispatcher: one server, N workers, no shared mount.

``repro dispatch`` hosts a :class:`~repro.runtime.queue.SqliteBackend`
and a :class:`~repro.runtime.store.ResultStore` behind a TCP socket,
speaking the newline-delimited JSON framing of the streaming server
(:mod:`repro.runtime.server`): one JSON object per line in, one per
line out, frames capped at
:data:`~repro.runtime.transport.MAX_FRAME_BYTES`.  Workers connect with
:class:`~repro.runtime.transport.RemoteBackend` /
:class:`~repro.runtime.transport.RemoteStore` and get the exact
lease/fencing/retry semantics of the local sqlite queue — the
dispatcher adds no coordination logic of its own, it just applies each
verb to its backend, which is what keeps the two backends
behaviorally identical by construction.

Design notes:

* **The dispatcher is disposable.**  All durable state is the sqlite
  file and the store directory; SIGKILL the process mid-sweep, restart
  it on the same paths, and workers reconnect through their channel
  backoff while expired leases are reclaimed by the next ``claim``.
  Nothing in memory matters.
* **Fencing is enforced here**, by the backend's own conditional
  UPDATEs: every transition frame carries the claiming ``worker_id``
  token, so a presumed-dead worker's late ``complete`` returns
  ``applied: false`` instead of silently clobbering a peer's re-run.
* **Blob integrity is verified on both ends.**  ``store_put`` decodes
  and checksum-verifies the payload *before* touching the store (a
  corrupted upload is an error reply, not a poisoned cache entry);
  ``store_get`` re-encodes from disk with a fresh checksum the client
  verifies on arrival.
* **Errors stay typed.**  A verb that raises is answered with
  ``{"ok": false, "error": "<TypeName>", "detail": ...}`` and the
  connection stays up; the client re-raises builtin validation types
  as themselves.  Only protocol violations (unparseable JSON, an
  oversized frame) drop the connection after a best-effort error reply.

See ``docs/DISPATCH.md`` for the verb-by-verb wire reference.
"""

from __future__ import annotations

import asyncio
import json
import threading

from .queue import SqliteBackend
from .store import ResultStore
from .transport import (
    DISPATCH_PROTOCOL_VERSION,
    MAX_FRAME_BYTES,
    Job,
    decode_payload,
    encode_payload,
)

__all__ = ["DispatcherServer", "DispatcherThread"]


class DispatcherServer:
    """The asyncio request/reply server over one sqlite backend + store.

    Parameters
    ----------
    db_path:
        The jobs database (``":memory:"`` is fine — the single backend
        connection is shared by every client, serialised by the
        backend's own lock).
    store_root:
        Directory for the content-addressed result store.
    host / port:
        Bind address; port 0 picks a free port (read :attr:`address`
        after :meth:`start`).

    Handlers run in a worker thread (``asyncio.to_thread``) so a slow
    sqlite write never stalls the event loop's accept/read path.
    """

    def __init__(
        self,
        db_path: str,
        store_root: str,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.backend = SqliteBackend(db_path)
        self.store = ResultStore(store_root)
        self.host = host
        self.port = int(port)
        self._server: "asyncio.base_events.Server | None" = None
        self._stopping: "asyncio.Event | None" = None
        self.connections = 0  # lifetime accepted connections
        self.requests = 0  # lifetime well-formed requests served

    @property
    def address(self) -> "tuple[str, int]":
        """The bound ``(host, port)`` (resolves port 0 after start)."""
        return (self.host, self.port)

    async def start(self) -> None:
        """Bind the listening socket (idempotent)."""
        if self._server is not None:
            return
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.host,
            self.port,
            limit=MAX_FRAME_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_stop(self) -> None:
        """Begin shutdown; ``serve_forever`` returns once drained."""
        if self._stopping is not None:
            self._stopping.set()

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_stop`; then close everything."""
        await self.start()
        await self._stopping.wait()
        self._server.close()
        await self._server.wait_closed()
        self.backend.close()

    async def _handle_connection(self, reader, writer) -> None:
        self.connections += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    asyncio.IncompleteReadError,
                    ValueError,
                ):
                    # An over-cap frame: the stream is unframed garbage
                    # from here on, so answer once and hang up.
                    await self._reply(
                        writer,
                        {
                            "ok": False,
                            "error": "FrameTooLarge",
                            "detail": (
                                f"request frame exceeds the "
                                f"{MAX_FRAME_BYTES}-byte cap"
                            ),
                        },
                    )
                    return
                if not line:
                    return  # client hung up
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request frame must be a JSON object")
                except (UnicodeDecodeError, ValueError) as exc:
                    # Malformed JSON: framing is unrecoverable, hang up.
                    await self._reply(
                        writer,
                        {
                            "ok": False,
                            "error": "MalformedFrame",
                            "detail": str(exc),
                        },
                    )
                    return
                reply = await asyncio.to_thread(self._dispatch, request)
                await self._reply(writer, reply)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # A task cancelled at loop shutdown re-raises from any
                # await; the socket is closed either way.
                pass

    @staticmethod
    async def _reply(writer, reply: dict) -> None:
        writer.write(json.dumps(reply, separators=(",", ":")).encode() + b"\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # Verb dispatch (runs in a worker thread)
    # ------------------------------------------------------------------
    def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) else None
        if handler is None:
            return {
                "ok": False,
                "error": "UnknownOp",
                "detail": f"unknown dispatch op {op!r}",
            }
        try:
            reply = handler(request)
        except Exception as exc:  # typed error reply, connection stays up
            return {
                "ok": False,
                "error": type(exc).__name__,
                "detail": str(exc),
            }
        self.requests += 1
        reply["ok"] = True
        return reply

    def _op_hello(self, request: dict) -> dict:
        return {
            "protocol": DISPATCH_PROTOCOL_VERSION,
            "backoff_base_s": self.backend.backoff_base_s,
            "backoff_cap_s": self.backend.backoff_cap_s,
            "backoff_jitter": self.backend.backoff_jitter,
        }

    def _op_submit(self, request: dict) -> dict:
        inserted = self.backend.submit(
            str(request["spec_key"]),
            str(request["fingerprint"]),
            request["spec"],
            request["payload"],
            max_attempts=int(request.get("max_attempts", 3)),
            now=request.get("now"),
        )
        return {"inserted": inserted}

    def _op_claim(self, request: dict) -> dict:
        job = self.backend.claim(
            str(request["worker_id"]),
            lease_s=request.get("lease_s", 30.0),
            now=request.get("now"),
        )
        return {"job": None if job is None else job.to_dict()}

    def _op_heartbeat(self, request: dict) -> dict:
        job = Job.from_dict(request["job"])
        return {"applied": self.backend.heartbeat(job, now=request.get("now"))}

    def _op_complete(self, request: dict) -> dict:
        job = Job.from_dict(request["job"])
        return {"applied": self.backend.complete(job, now=request.get("now"))}

    def _op_fail(self, request: dict) -> dict:
        job = Job.from_dict(request["job"])
        status = self.backend.fail(
            job,
            str(request["error"]),
            tb=request.get("tb"),
            retryable=bool(request.get("retryable", True)),
            now=request.get("now"),
        )
        return {"status": status}

    def _op_release(self, request: dict) -> dict:
        job = Job.from_dict(request["job"])
        return {"applied": self.backend.release(job, now=request.get("now"))}

    def _op_reap(self, request: dict) -> dict:
        return {"reaped": self.backend.reap(now=request.get("now"))}

    def _op_reset(self, request: dict) -> dict:
        return {"reopened": self.backend.reset(now=request.get("now"))}

    def _op_counts(self, request: dict) -> dict:
        return {"counts": self.backend.counts()}

    def _op_rows(self, request: dict) -> dict:
        return {"rows": self.backend.rows(request.get("status"))}

    def _op_store_put(self, request: dict) -> dict:
        # Decode verifies the in-flight checksum BEFORE the store write;
        # the store's own put re-checksums for the at-rest copy.
        arrays = decode_payload(request["payload"])
        self.store.put(
            str(request["spec_key"]), str(request["fingerprint"]), arrays
        )
        return {"stored": True}

    def _op_store_get(self, request: dict) -> dict:
        arrays = self.store.get(
            str(request["spec_key"]), str(request["fingerprint"])
        )
        return {
            "payload": None if arrays is None else encode_payload(arrays)
        }

    def _op_store_has(self, request: dict) -> dict:
        path = self.store.path_for(
            str(request["spec_key"]), str(request["fingerprint"])
        )
        return {"has": path.exists()}


class DispatcherThread:
    """An in-process dispatcher on a daemon thread (tests, benchmarks).

    ``with DispatcherThread(db, store) as d:`` yields a running server;
    ``d.address`` is the ``(host, port)`` workers dial.  Exit requests a
    stop and joins the thread.
    """

    def __init__(
        self,
        db_path: str,
        store_root: str,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.server = DispatcherServer(db_path, store_root, host=host, port=port)
        self._started = threading.Event()
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    @property
    def address(self) -> "tuple[str, int]":
        return self.server.address

    def _run(self) -> None:
        async def main() -> None:
            await self.server.start()
            self._loop = asyncio.get_running_loop()
            self._started.set()
            await self.server.serve_forever()

        asyncio.run(main())

    def start(self) -> "DispatcherThread":
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("dispatcher thread failed to start")
        return self

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "DispatcherThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
