"""Command-line interface: regenerate any paper artifact from the shell.

Usage (after ``pip install -e .``)::

    python -m repro fig3                 # one figure's paper-vs-measured rows
    python -m repro fig5 --patterns 24   # reduced-size dataset sweep
    python -m repro table1               # synthesis summary
    python -m repro timing               # DTC static timing budget
    python -m repro verilog -o dtc.v     # emit synthesizable RTL
    python -m repro vcd -o dtc.vcd       # waveform dump of a real pattern
    python -m repro report --quick       # regenerate EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main"]


def _cmd_fig2(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_fig2

    print(run_fig2().format_table())
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_fig3

    print(run_fig3(pattern_id=args.pattern).format_table())
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_fig5

    print(run_fig5(n_patterns=args.patterns).format_table())
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_fig6

    print(run_fig6(pattern_id=args.pattern).format_table())
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_fig7

    print(run_fig7().format_table())
    return 0


def _cmd_symbols(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_symbol_comparison

    print(run_symbol_comparison(pattern_id=args.pattern).format_table())
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_table1

    print(run_table1().format_table())
    return 0


def _cmd_timing(args: argparse.Namespace) -> int:
    from .hardware.timing import estimate_timing

    print(estimate_timing().format_table())
    return 0


def _cmd_verilog(args: argparse.Namespace) -> int:
    from .hardware.verilog import generate_dtc_verilog

    text = generate_dtc_verilog()
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    return 0


def _cmd_vcd(args: argparse.Namespace) -> int:
    from .core.config import DATCConfig
    from .core.datc import datc_encode
    from .digital.vcd import vcd_from_dtc_run
    from .signals.dataset import default_dataset

    pattern = default_dataset().pattern(args.pattern)
    _, trace = datc_encode(pattern.emg, pattern.fs, DATCConfig(quantized=True))
    n = min(args.cycles, trace.d_in.size)
    vcd_from_dtc_run(args.output, trace.d_in[:n])
    print(f"wrote {args.output} ({n} clock cycles of pattern {args.pattern})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import main as report_main

    argv = ["--output", args.output]
    if args.quick:
        argv.append("--quick")
    return report_main(argv)


def _cmd_encode(args: argparse.Namespace) -> int:
    from .core.config import DATCConfig
    from .core.datc import datc_encode
    from .signals.dataset import default_dataset
    from .signals.io import export_events_csv, save_event_stream

    pattern = default_dataset().pattern(args.pattern)
    stream, _ = datc_encode(pattern.emg, pattern.fs, DATCConfig())
    if args.output.endswith(".csv"):
        export_events_csv(args.output, stream)
    else:
        save_event_stream(args.output, stream)
    print(
        f"pattern {args.pattern}: {stream.n_events} events "
        f"({stream.n_symbols} symbols) -> {args.output}"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="D-ATC (DATE 2015) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig2", help="Fig. 2 concept demo").set_defaults(func=_cmd_fig2)

    p = sub.add_parser("fig3", help="Fig. 3 single-pattern comparison")
    p.add_argument("--pattern", type=int, default=22)
    p.set_defaults(func=_cmd_fig3)

    p = sub.add_parser("fig5", help="Fig. 5 dataset sweep")
    p.add_argument("--patterns", type=int, default=None, help="limit pattern count")
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser("fig6", help="Fig. 6 iso-correlation comparison")
    p.add_argument("--pattern", type=int, default=22)
    p.set_defaults(func=_cmd_fig6)

    sub.add_parser("fig7", help="Fig. 7 trade-off curves").set_defaults(func=_cmd_fig7)

    p = sub.add_parser("symbols", help="Sec. III-B symbol accounting")
    p.add_argument("--pattern", type=int, default=22)
    p.set_defaults(func=_cmd_symbols)

    sub.add_parser("table1", help="Table I synthesis summary").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("timing", help="DTC static timing budget").set_defaults(
        func=_cmd_timing
    )

    p = sub.add_parser("verilog", help="emit synthesizable DTC Verilog")
    p.add_argument("-o", "--output", default="dtc.v", help="'-' for stdout")
    p.set_defaults(func=_cmd_verilog)

    p = sub.add_parser("vcd", help="dump a DTC waveform (VCD)")
    p.add_argument("-o", "--output", default="dtc.vcd")
    p.add_argument("--pattern", type=int, default=22)
    p.add_argument("--cycles", type=int, default=2000)
    p.set_defaults(func=_cmd_vcd)

    p = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--output", default="EXPERIMENTS.md")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("encode", help="encode a pattern to .npz/.csv events")
    p.add_argument("--pattern", type=int, default=22)
    p.add_argument("-o", "--output", default="events.npz")
    p.set_defaults(func=_cmd_encode)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
