"""Command-line interface: regenerate any paper artifact from the shell.

Usage (after ``pip install -e .``)::

    python -m repro fig3                 # one figure's paper-vs-measured rows
    python -m repro fig5 --patterns 24   # reduced-size dataset sweep
    python -m repro table1               # synthesis summary
    python -m repro timing               # DTC static timing budget
    python -m repro verilog -o dtc.v     # emit synthesizable RTL
    python -m repro vcd -o dtc.vcd       # waveform dump of a real pattern
    python -m repro report --quick       # regenerate EXPERIMENTS.md
    python -m repro bench                # one-shot vs chunked vs batched
    python -m repro bench --sweep        # dataset sweep across backends
    python -m repro bench --cache        # cold vs warm cached dataset sweep
    python -m repro fig5 --jobs 4 --backend process   # sharded sweep

Declarative experiment API (see docs/API.md)::

    python -m repro run --pattern 22 --dump-spec spec.json
    python -m repro run --spec spec.json --cache-dir ~/.cache/repro
    python -m repro sweep --scheme atc --axis encoder.config.vth --values 0.1,0.2,0.3
    python -m repro sweep --axis stream.drop_prob --values 0.0,0.2,0.4
    python -m repro sweep --dataset --patterns 24 --cache-dir ./cache
    python -m repro fig5 --patterns 24 --cache-dir ./cache   # warm re-runs

Distributed queue (see docs/QUEUE.md)::

    python -m repro queue submit --db q.db --patterns 32
    python -m repro worker --db q.db --store ./store    # x N, any host
    python -m repro queue status --db q.db
    python -m repro store fsck ./store
    python -m repro bench --queue                       # N-worker vs serial
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from time import perf_counter

import numpy as np

__all__ = ["main"]


def _load_spec(args: argparse.Namespace):
    """The experiment spec an invocation selects (--spec wins over --scheme)."""
    from .api import ExperimentSpec

    if getattr(args, "spec", None):
        with open(args.spec) as fh:
            return ExperimentSpec.from_json(fh.read())
    scheme = getattr(args, "scheme", None) or "datc"
    return ExperimentSpec.for_scheme(scheme)


def _open_store(args: argparse.Namespace):
    """The result store behind ``--cache-dir`` (None when uncached)."""
    if getattr(args, "cache_dir", None) is None:
        return None
    from .runtime.store import ResultStore

    return ResultStore(args.cache_dir)


def _print_store_stats(store) -> None:
    if store is not None:
        s = store.stats()
        print(
            f"cache: {s['hits']} hit(s), {s['misses']} miss(es), "
            f"{s['stores']} store(s) -> {store.root}"
        )


def _best_of(fn, repeats: int) -> "tuple[float, object]":
    """Best wall-clock over ``repeats`` runs of ``fn``, plus its output."""
    best, out = float("inf"), None
    for _ in range(repeats):
        t0 = perf_counter()
        out = fn()
        best = min(best, perf_counter() - t0)
    return best, out


def _spec_keys(schemes) -> "dict[str, str]":
    """Each scheme's canonical spec key — ties a bench record to results."""
    from .api import ExperimentSpec

    return {s: ExperimentSpec.for_scheme(s).key() for s in schemes}


def _record_bench(
    args: argparse.Namespace,
    area: str,
    headline_metric: str,
    headline_value: float,
    rows: "list[dict]",
    params: "dict | None" = None,
    spec_keys: "dict | None" = None,
    notes: "str | None" = None,
) -> None:
    """Append this run to the area's BENCH_<area>.json trajectory."""
    from .analysis.telemetry import append_record, make_record

    path = append_record(
        make_record(
            area,
            headline_metric,
            headline_value,
            rows,
            params=params,
            spec_keys=spec_keys,
            notes=notes,
        ),
        directory=getattr(args, "bench_out", None),
    )
    print(f"recorded -> {path}")


def _cmd_fig2(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_fig2

    print(run_fig2().format_table())
    return 0


def _cmd_fig3(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_fig3

    print(run_fig3(pattern_id=args.pattern).format_table())
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_fig5

    store = _open_store(args)
    print(
        run_fig5(
            n_patterns=args.patterns,
            jobs=args.jobs,
            backend=args.backend,
            store=store,
        ).format_table()
    )
    _print_store_stats(store)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .api import Experiment
    from .signals.dataset import default_dataset

    spec = _load_spec(args)
    if args.dump_spec:
        with open(args.dump_spec, "w") as fh:
            fh.write(spec.to_json() + "\n")
        print(f"wrote {args.dump_spec}")
    store = _open_store(args)
    experiment = Experiment(spec, store=store)
    pattern = default_dataset().pattern(args.pattern)
    point = experiment.evaluate(pattern)
    print(f"spec {spec.key()[:16]} ({spec.scheme}) on pattern {args.pattern}:")
    print(
        f"  correlation {point.correlation_pct:.2f}%  "
        f"events {point.n_events}  symbols {point.n_symbols}"
    )
    _print_store_stats(store)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .api import Experiment
    from .signals.dataset import default_dataset

    spec = _load_spec(args)
    store = _open_store(args)
    experiment = Experiment(spec, store=store)
    dataset = default_dataset()
    if args.dataset:
        result = experiment.dataset_sweep(
            dataset, limit=args.patterns, jobs=args.jobs, backend=args.backend
        )
        lo, hi = result.correlation_range
        print(
            f"dataset sweep [{result.scheme}] over "
            f"{result.pattern_ids.size} patterns "
            f"(spec {spec.key()[:16]}):"
        )
        print(
            f"  correlation {lo:.1f}-{hi:.1f}% "
            f"(mean {result.correlation_mean:.1f}%), "
            f"event spread {result.event_spread:.2f}"
        )
        _print_store_stats(store)
        return 0
    if not args.axis or not args.values:
        raise SystemExit("sweep needs --axis and --values (or --dataset)")
    values = [json.loads(tok) for tok in args.values.split(",")]
    pattern = dataset.pattern(args.pattern)
    try:
        points = experiment.sweep(
            pattern,
            args.axis,
            values,
            jobs=args.jobs,
            backend=args.backend,
            seed=args.seed,
        )
    except ValueError as exc:
        # e.g. an axis the selected scheme's config doesn't have
        # ("encoder.config.vth" on the default datc spec needs --scheme atc).
        raise SystemExit(f"sweep failed: {exc}")
    print(
        f"sweep of {args.axis} on pattern {args.pattern} "
        f"(spec {spec.key()[:16]}):"
    )
    print(f"{'value':>12} {'corr %':>8} {'events':>8} {'symbols':>9}")
    for point in points:
        print(
            f"{point.parameter:>12g} {point.correlation_pct:>8.2f} "
            f"{point.n_events:>8d} {point.n_symbols:>9d}"
        )
    _print_store_stats(store)
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_fig6

    print(run_fig6(pattern_id=args.pattern).format_table())
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_fig7

    print(run_fig7(jobs=args.jobs, backend=args.backend).format_table())
    return 0


def _cmd_symbols(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_symbol_comparison

    print(run_symbol_comparison(pattern_id=args.pattern).format_table())
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from .analysis.experiments import run_table1

    print(run_table1().format_table())
    return 0


def _cmd_timing(args: argparse.Namespace) -> int:
    from .hardware.timing import estimate_timing

    print(estimate_timing().format_table())
    return 0


def _cmd_verilog(args: argparse.Namespace) -> int:
    from .hardware.verilog import generate_dtc_verilog

    text = generate_dtc_verilog()
    if args.output == "-":
        print(text)
    else:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    return 0


def _cmd_vcd(args: argparse.Namespace) -> int:
    from .core.config import DATCConfig
    from .core.datc import datc_encode
    from .digital.vcd import vcd_from_dtc_run
    from .signals.dataset import default_dataset

    pattern = default_dataset().pattern(args.pattern)
    _, trace = datc_encode(pattern.emg, pattern.fs, DATCConfig(quantized=True))
    n = min(args.cycles, trace.d_in.size)
    vcd_from_dtc_run(args.output, trace.d_in[:n])
    print(f"wrote {args.output} ({n} clock cycles of pattern {args.pattern})")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import main as report_main

    argv = ["--output", args.output]
    if args.quick:
        argv.append("--quick")
    return report_main(argv)


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.report:
        return _bench_report(args)
    if args.link:
        return _bench_link(args)
    if args.rx:
        return _bench_rx(args)
    if args.sweep:
        return _bench_sweep(args)
    if args.cache:
        return _bench_cache(args)
    if args.kernels:
        return _bench_kernels(args)
    if args.sessions:
        return _bench_sessions(args)
    if args.queue:
        return _bench_queue(args)
    if args.serve:
        return _bench_serve(args)
    from .core.atc import atc_encode
    from .core.config import ATCConfig, DATCConfig
    from .core.datc import datc_encode
    from .core.encoders import ATCEncoder, DATCEncoder, encode_batch
    from .signals.dataset import DatasetSpec

    dataset = DatasetSpec(
        n_patterns=args.signals, duration_s=args.duration, seed=2015
    )
    patterns = [dataset.pattern(i) for i in range(args.signals)]
    fs = patterns[0].fs
    signals = np.stack([p.emg for p in patterns])
    n_total = signals.size

    schemes = ("atc", "datc") if args.scheme == "both" else (args.scheme,)
    record_rows: "list[dict]" = []
    headline = 1.0
    print(
        f"encoder throughput: {args.signals} signals x {args.duration:g} s "
        f"@ {fs:g} Hz ({n_total} samples), chunk={args.chunk}, "
        f"best of {args.repeats}"
    )
    header = (
        f"{'path':<22}{'time (ms)':>11}{'samples/s':>14}{'events/s':>11}"
        f"{'speedup':>9}"
    )
    for scheme in schemes:
        config = ATCConfig() if scheme == "atc" else DATCConfig()
        one_shot = atc_encode if scheme == "atc" else datc_encode
        encoder_cls = ATCEncoder if scheme == "atc" else DATCEncoder

        def run_one_shot() -> int:
            return sum(one_shot(row, fs, config)[0].n_events for row in signals)

        def run_chunked() -> int:
            total = 0
            for row in signals:
                enc = encoder_cls(fs, config)
                for start in range(0, row.size, args.chunk):
                    enc.push(row[start : start + args.chunk])
                enc.finalize()
                total += enc.stream.n_events
            return total

        def run_batched() -> int:
            return sum(s.n_events for s, _ in encode_batch(signals, fs, config))

        rows = [
            ("one-shot loop", run_one_shot),
            (f"chunked ({args.chunk})", run_chunked),
            ("batched 2-D", run_batched),
        ]
        print(f"\n[{scheme}]\n{header}\n" + "-" * len(header))
        base_t = None
        for name, fn in rows:
            t, events = _best_of(fn, args.repeats)
            base_t = t if base_t is None else base_t
            speedup = base_t / t
            if name == "batched 2-D":
                headline = speedup
            record_rows.append(
                {
                    "name": f"{scheme}:{name}",
                    "time_ms": t * 1e3,
                    "throughput": n_total / t,
                    "speedup": speedup,
                }
            )
            print(
                f"{name:<22}{t * 1e3:>11.1f}{n_total / t:>14.3g}"
                f"{events / t:>11.3g}{speedup:>8.1f}x"
            )
    _record_bench(
        args,
        "encoder",
        f"{schemes[-1]} batched-vs-loop encode speedup",
        headline,
        record_rows,
        params={
            "signals": args.signals,
            "duration_s": args.duration,
            "chunk": args.chunk,
            "repeats": args.repeats,
            "schemes": list(schemes),
        },
        spec_keys=_spec_keys(schemes),
    )
    return 0


def _bench_rx(args: argparse.Namespace) -> int:
    """Receiver throughput: per-stream loop vs chunked vs batched decode."""
    from .core.config import ATCConfig, DATCConfig
    from .core.encoders import encode_batch
    from .core.events import EventStream
    from .rx.correlation import (
        aligned_correlation_percent,
        aligned_correlation_percent_batch,
    )
    from .rx.decoders import StreamingDecoder, reconstruct_batch, stream_chunks
    from .rx.reconstruction import reconstruct_hybrid, reconstruct_rate
    from .signals.dataset import DatasetSpec

    dataset = DatasetSpec(
        n_patterns=args.signals, duration_s=args.duration, seed=2015
    )
    patterns = [dataset.pattern(i) for i in range(args.signals)]
    fs = patterns[0].fs
    signals = np.stack([p.emg for p in patterns])
    references = np.stack([p.ground_truth_envelope() for p in patterns])
    chunk_s = args.chunk / fs

    def split(stream: "EventStream") -> "list[EventStream]":
        bounds = np.arange(0.0, stream.duration_s, chunk_s)[1:]
        return stream_chunks(stream, np.append(bounds, stream.duration_s))

    schemes = ("atc", "datc") if args.scheme == "both" else (args.scheme,)
    record_rows: "list[dict]" = []
    headline = 1.0
    print(
        f"receiver throughput: {args.signals} streams x {args.duration:g} s, "
        f"decode @ 100 Hz, chunk={args.chunk} samples "
        f"({chunk_s:g} s), best of {args.repeats}"
    )
    header = (
        f"{'path':<22}{'time (ms)':>11}{'streams/s':>14}{'speedup':>9}"
    )
    for scheme in schemes:
        config = ATCConfig() if scheme == "atc" else DATCConfig()
        streams = [s for s, _ in encode_batch(signals, fs, config)]
        reconstruct = reconstruct_rate if scheme == "atc" else reconstruct_hybrid
        chunked = [split(s) for s in streams]

        def run_loop() -> "list[np.ndarray]":
            if scheme == "atc":
                return [reconstruct(s) for s in streams]
            return [
                reconstruct(s, vref=config.vref, dac_bits=config.dac_bits)
                for s in streams
            ]

        def run_chunked() -> "list[np.ndarray]":
            out = []
            for chunks in chunked:
                dec = StreamingDecoder(scheme=scheme, config=config)
                for chunk in chunks:
                    dec.push(chunk)
                dec.finalize()
                out.append(dec.envelope)
            return out

        def run_batched() -> np.ndarray:
            return reconstruct_batch(streams, scheme, config)

        rows = [
            ("per-stream loop", run_loop),
            (f"chunked ({args.chunk})", run_chunked),
            ("batched 2-D", run_batched),
        ]
        print(f"\n[{scheme}] reconstruction\n{header}\n" + "-" * len(header))
        base_t, base_recons = None, None
        for name, fn in rows:
            t, recons = _best_of(fn, args.repeats)
            if base_t is None:
                base_t, base_recons = t, recons
            elif not all(
                np.array_equal(r, b) for r, b in zip(recons, base_recons)
            ):
                raise AssertionError(
                    f"{name} reconstructions diverged from the loop"
                )
            speedup = base_t / t
            if name == "batched 2-D":
                headline = speedup
            record_rows.append(
                {
                    "name": f"{scheme}:{name}",
                    "time_ms": t * 1e3,
                    "throughput": args.signals / t,
                    "speedup": speedup,
                }
            )
            print(
                f"{name:<22}{t * 1e3:>11.1f}{args.signals / t:>14.3g}"
                f"{speedup:>8.1f}x"
            )

        # Decode + correlation, for context: scoring runs on the 50 k
        # reference grid and is memory-bound, so the end-to-end gain is
        # smaller than the reconstruction-stage gain.
        loop_t, loop_corrs = _best_of(
            lambda: [
                aligned_correlation_percent(recon, ref)
                for recon, ref in zip(run_loop(), references)
            ],
            args.repeats,
        )
        batch_t, batch_corrs = _best_of(
            lambda: aligned_correlation_percent_batch(run_batched(), references),
            args.repeats,
        )
        if not np.array_equal(np.asarray(loop_corrs), batch_corrs):
            raise AssertionError("batched correlations diverged from the loop")
        record_rows.append(
            {
                "name": f"{scheme}:decode+correlate batched",
                "time_ms": batch_t * 1e3,
                "throughput": args.signals / batch_t,
                "speedup": loop_t / batch_t,
            }
        )
        print(
            f"with correlation: loop {loop_t * 1e3:.1f} ms, "
            f"batched {batch_t * 1e3:.1f} ms ({loop_t / batch_t:.1f}x)"
        )
    _record_bench(
        args,
        "rx",
        f"{schemes[-1]} batched-vs-loop reconstruct speedup",
        headline,
        record_rows,
        params={
            "signals": args.signals,
            "duration_s": args.duration,
            "chunk": args.chunk,
            "repeats": args.repeats,
            "schemes": list(schemes),
        },
        spec_keys=_spec_keys(schemes),
    )
    return 0


def _bench_sweep(args: argparse.Namespace) -> int:
    """Sweep throughput: serial vs thread vs process-sharded dataset sweep."""
    import numpy as np

    from .api import Experiment, ExperimentSpec
    from .runtime.executors import BACKENDS, default_jobs
    from .signals.dataset import DatasetSpec

    dataset = DatasetSpec(
        n_patterns=args.signals, duration_s=args.duration, seed=2015
    )
    jobs = args.jobs if args.jobs is not None else default_jobs()
    schemes = ("atc", "datc") if args.scheme == "both" else (args.scheme,)
    record_rows: "list[dict]" = []
    headline = 1.0
    print(
        f"sweep throughput: {args.signals} patterns x {args.duration:g} s "
        f"dataset sweep, jobs={jobs}, best of {args.repeats}"
    )
    header = (
        f"{'backend':<22}{'time (ms)':>11}{'patterns/s':>14}{'speedup':>9}"
        f"{'identical':>11}"
    )
    for scheme in schemes:
        experiment = Experiment(ExperimentSpec.for_scheme(scheme))
        print(f"\n[{scheme}]\n{header}\n" + "-" * len(header))
        base_t, base = None, None
        for backend in BACKENDS:
            t, result = _best_of(
                lambda b=backend: experiment.dataset_sweep(
                    dataset, jobs=jobs, backend=b
                ),
                args.repeats,
            )
            if base is None:
                base_t, base = t, result
                identical = "baseline"
            else:
                same = np.array_equal(
                    result.correlations_pct, base.correlations_pct
                ) and np.array_equal(result.n_events, base.n_events)
                if not same:
                    raise AssertionError(
                        f"{backend} sweep diverged from the serial results"
                    )
                identical = "yes"
            speedup = base_t / t
            if backend != "serial":
                headline = max(headline, speedup)
            record_rows.append(
                {
                    "name": f"{scheme}:{backend}",
                    "time_ms": t * 1e3,
                    "throughput": args.signals / t,
                    "speedup": speedup,
                }
            )
            print(
                f"{backend:<22}{t * 1e3:>11.1f}{args.signals / t:>14.3g}"
                f"{speedup:>8.1f}x{identical:>11}"
            )
    _record_bench(
        args,
        "sweep",
        "best sharded-vs-serial sweep speedup",
        headline,
        record_rows,
        params={
            "signals": args.signals,
            "duration_s": args.duration,
            "jobs": jobs,
            "repeats": args.repeats,
            "schemes": list(schemes),
        },
        spec_keys=_spec_keys(schemes),
    )
    return 0


def _bench_cache(args: argparse.Namespace) -> int:
    """Cache throughput: cold vs warm dataset sweep through a ResultStore."""
    import shutil
    import tempfile

    from .api import Experiment, ExperimentSpec
    from .runtime.store import ResultStore
    from .signals.dataset import DatasetSpec

    dataset = DatasetSpec(
        n_patterns=args.signals, duration_s=args.duration, seed=2015
    )
    root = args.cache_dir or tempfile.mkdtemp(prefix="repro-bench-cache-")
    cleanup = args.cache_dir is None
    schemes = ("atc", "datc") if args.scheme == "both" else (args.scheme,)
    record_rows: "list[dict]" = []
    headline = 1.0
    print(
        f"cache throughput: {args.signals} patterns x {args.duration:g} s "
        f"dataset sweep, store at {root}"
    )
    header = (
        f"{'path':<22}{'time (ms)':>11}{'patterns/s':>14}{'speedup':>9}"
        f"{'identical':>11}"
    )
    try:
        for scheme in schemes:
            store = ResultStore(root)
            experiment = Experiment(
                ExperimentSpec.for_scheme(scheme), store=store
            )
            print(f"\n[{scheme}]\n{header}\n" + "-" * len(header))
            t0 = perf_counter()
            cold = experiment.dataset_sweep(dataset)
            t_cold = perf_counter() - t0
            print(
                f"{'cold (evaluate+put)':<22}{t_cold * 1e3:>11.1f}"
                f"{args.signals / t_cold:>14.3g}{1.0:>8.1f}x"
                f"{'baseline':>11}"
            )
            t_warm, warm = _best_of(
                lambda: experiment.dataset_sweep(dataset), args.repeats
            )
            same = np.array_equal(
                warm.correlations_pct, cold.correlations_pct
            ) and np.array_equal(warm.n_events, cold.n_events)
            if not same:
                raise AssertionError("warm sweep diverged from the cold run")
            headline = t_cold / t_warm
            record_rows.extend(
                [
                    {
                        "name": f"{scheme}:cold (evaluate+put)",
                        "time_ms": t_cold * 1e3,
                        "throughput": args.signals / t_cold,
                        "speedup": 1.0,
                    },
                    {
                        "name": f"{scheme}:warm (store hits)",
                        "time_ms": t_warm * 1e3,
                        "throughput": args.signals / t_warm,
                        "speedup": headline,
                    },
                ]
            )
            print(
                f"{'warm (store hits)':<22}{t_warm * 1e3:>11.1f}"
                f"{args.signals / t_warm:>14.3g}{t_cold / t_warm:>8.1f}x"
                f"{'yes':>11}"
            )
            print(
                f"store: {store.stats()['hits']} hits / "
                f"{store.stats()['misses']} misses / "
                f"{store.stats()['stores']} stores"
            )
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)
    _record_bench(
        args,
        "cache",
        f"{schemes[-1]} warm-vs-cold sweep speedup",
        headline,
        record_rows,
        params={
            "signals": args.signals,
            "duration_s": args.duration,
            "repeats": args.repeats,
            "schemes": list(schemes),
        },
        spec_keys=_spec_keys(schemes),
    )
    return 0


def _bench_link(args: argparse.Namespace) -> int:
    """Link throughput: per-stream loop demod vs vectorised vs batched."""
    from .core.config import ATCConfig, DATCConfig
    from .core.encoders import encode_batch
    from .signals.dataset import DatasetSpec
    from .uwb.channel import UWBChannel
    from .uwb.link import LinkConfig, _link_result, simulate_link, simulate_link_batch
    from .uwb.modulation import (
        _ook_demodulate_loop,
        _ppm_demodulate_loop,
        ook_modulate,
        ppm_modulate,
    )

    dataset = DatasetSpec(
        n_patterns=args.signals, duration_s=args.duration, seed=2015
    )
    patterns = [dataset.pattern(i) for i in range(args.signals)]
    fs = patterns[0].fs
    signals = np.stack([p.emg for p in patterns])

    schemes = ("atc", "datc") if args.scheme == "both" else (args.scheme,)
    record_rows: "list[dict]" = []
    headline = 1.0
    link_cfg = LinkConfig()
    modulate = ook_modulate if link_cfg.modulation == "ook" else ppm_modulate
    demod_loop = (
        _ook_demodulate_loop if link_cfg.modulation == "ook" else _ppm_demodulate_loop
    )
    print(
        f"link throughput: {args.signals} streams x {args.duration:g} s, "
        f"{link_cfg.modulation.upper()} @ {link_cfg.symbol_period_s:g} s/slot, "
        f"ideal channel, best of {args.repeats}"
    )
    header = f"{'path':<22}{'time (ms)':>11}{'streams/s':>14}{'speedup':>9}"
    ideal = UWBChannel()
    for scheme in schemes:
        config = ATCConfig() if scheme == "atc" else DATCConfig()
        streams = [s for s, _ in encode_batch(signals, fs, config)]

        # All three rows do the same work (modulate, ideal-channel
        # transmit, demodulate, match/score); only the demodulation and
        # batching strategy differs.
        def run_loop() -> "list":
            out = []
            for s in streams:
                bits = s.symbols_per_event - 1
                train = modulate(s, link_cfg.symbol_period_s, bits)
                rx = demod_loop(
                    ideal.transmit(train), s.duration_s,
                    link_cfg.symbol_period_s, bits, clock_hz=s.clock_hz,
                )
                out.append(_link_result(s, rx, train, link_cfg, ideal))
            return [r.rx_stream for r in out]

        def run_vectorised() -> "list":
            return [simulate_link(s, link_cfg).rx_stream for s in streams]

        def run_batched() -> "list":
            return [r.rx_stream for r in simulate_link_batch(streams, link_cfg)]

        rows = [
            ("per-stream loop", run_loop),
            ("per-stream vectorised", run_vectorised),
            ("batched", run_batched),
        ]
        print(f"\n[{scheme}]\n{header}\n" + "-" * len(header))
        base_t, base_out = None, None
        for name, fn in rows:
            t, out = _best_of(fn, args.repeats)
            if base_t is None:
                base_t, base_out = t, out
            elif not all(
                np.array_equal(r.times, b.times)
                and (
                    (r.levels is None and b.levels is None)
                    or np.array_equal(r.levels, b.levels)
                )
                for r, b in zip(out, base_out)
            ):
                raise AssertionError(f"{name} demodulation diverged from the loop")
            speedup = base_t / t
            if name == "batched":
                headline = speedup
            record_rows.append(
                {
                    "name": f"{scheme}:{name}",
                    "time_ms": t * 1e3,
                    "throughput": args.signals / t,
                    "speedup": speedup,
                }
            )
            print(
                f"{name:<22}{t * 1e3:>11.1f}{args.signals / t:>14.3g}"
                f"{speedup:>8.1f}x"
            )
    _record_bench(
        args,
        "link",
        f"{schemes[-1]} batched-vs-loop link speedup",
        headline,
        record_rows,
        params={
            "signals": args.signals,
            "duration_s": args.duration,
            "repeats": args.repeats,
            "schemes": list(schemes),
            "modulation": link_cfg.modulation,
        },
        spec_keys=_spec_keys(schemes),
    )
    return 0


def _bench_kernels(args: argparse.Namespace) -> int:
    """Kernel tier: numpy vs compiled D-ATC frame scan + fused scoring."""
    import warnings

    from .core.config import DATCConfig
    from .core.encoders import encode_batch
    from .kernels import dispatch
    from .kernels.correlation import TOLERANCE_PCT
    from .rx.correlation import aligned_correlation_percent_batch
    from .rx.decoders import reconstruct_batch
    from .signals.dataset import DatasetSpec

    dataset = DatasetSpec(
        n_patterns=args.signals, duration_s=args.duration, seed=2015
    )
    patterns = [dataset.pattern(i) for i in range(args.signals)]
    fs = patterns[0].fs
    signals = np.stack([p.emg for p in patterns])
    references = np.stack([p.ground_truth_envelope() for p in patterns])
    config = DATCConfig()

    compiled_real = dispatch.numba_available()
    notes = (
        None
        if compiled_real
        else "numba unavailable: compiled tier fell back to numpy"
    )
    print(
        f"kernel tier: {args.signals} signals x {args.duration:g} s "
        f"@ {fs:g} Hz, datc, best of {args.repeats}; "
        f"compiled backend {'jitted' if compiled_real else 'FALLBACK (numpy)'}"
    )

    def encode_with(backend: str):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", dispatch.KernelFallbackWarning)
            with dispatch.use_backend(backend):
                return encode_batch(signals, fs, config)

    def score_with(backend: str, recons: np.ndarray) -> np.ndarray:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", dispatch.KernelFallbackWarning)
            with dispatch.use_backend(backend):
                return aligned_correlation_percent_batch(recons, references)

    if compiled_real:
        encode_with("compiled")  # warm the JIT outside the timed region

    record_rows: "list[dict]" = []
    header = f"{'path':<26}{'time (ms)':>11}{'samples/s':>14}{'speedup':>9}"
    print(f"\n[datc encode]\n{header}\n" + "-" * len(header))
    t_np, out_np = _best_of(lambda: encode_with("numpy"), args.repeats)
    t_cc, out_cc = _best_of(lambda: encode_with("compiled"), args.repeats)
    for (s_np, tr_np), (s_cc, tr_cc) in zip(out_np, out_cc):
        same = (
            np.array_equal(s_np.times, s_cc.times)
            and np.array_equal(s_np.levels, s_cc.levels)
            and np.array_equal(tr_np.d_in, tr_cc.d_in)
            and np.array_equal(tr_np.vth, tr_cc.vth)
            and np.array_equal(tr_np.frame_avr, tr_cc.frame_avr)
        )
        if not same:
            raise AssertionError(
                "compiled D-ATC encode diverged from numpy (must be bit-exact)"
            )
    headline = t_np / t_cc
    for name, t in (("numpy", t_np), ("compiled", t_cc)):
        speedup = t_np / t
        record_rows.append(
            {
                "name": f"datc-encode:{name}",
                "time_ms": t * 1e3,
                "throughput": signals.size / t,
                "speedup": speedup,
            }
        )
        print(
            f"{name:<26}{t * 1e3:>11.1f}{signals.size / t:>14.3g}"
            f"{speedup:>8.1f}x"
        )
    print("compiled encode bit-identical to numpy: yes")

    streams = [s for s, _ in out_np]
    recons = reconstruct_batch(streams, "datc", config)
    print(f"\n[fused scoring]\n{header}\n" + "-" * len(header))
    t_np, corr_np = _best_of(lambda: score_with("numpy", recons), args.repeats)
    t_cc, corr_cc = _best_of(
        lambda: score_with("compiled", recons), args.repeats
    )
    max_diff = float(np.max(np.abs(corr_np - corr_cc))) if corr_np.size else 0.0
    if max_diff > TOLERANCE_PCT:
        raise AssertionError(
            f"fused scoring drifted {max_diff:g} pct-points from numpy "
            f"(documented tolerance {TOLERANCE_PCT:g})"
        )
    for name, t in (("numpy", t_np), ("fused compiled", t_cc)):
        speedup = t_np / t
        record_rows.append(
            {
                "name": f"scoring:{name}",
                "time_ms": t * 1e3,
                "throughput": args.signals / t,
                "speedup": speedup,
            }
        )
        print(
            f"{name:<26}{t * 1e3:>11.1f}{args.signals / t:>14.3g}"
            f"{speedup:>8.1f}x"
        )
    print(
        f"fused scoring max |diff|: {max_diff:.3g} pct-points "
        f"(tolerance {TOLERANCE_PCT:g})"
    )
    if notes:
        print(f"note: {notes}")
    _record_bench(
        args,
        "kernels",
        "compiled-vs-numpy datc encode speedup",
        headline,
        record_rows,
        params={
            "signals": args.signals,
            "duration_s": args.duration,
            "repeats": args.repeats,
            "numba": compiled_real,
        },
        spec_keys=_spec_keys(("datc",)),
        notes=notes,
    )
    return 0


def _push_percentiles(
    push_s, warmup: int = 1
) -> "tuple[float, float, float | None]":
    """Per-push latency percentiles in ms, warmup pushes excluded.

    The first push of a run pays one-off costs — allocator growth, lazy
    imports, branch-predictor and cache warmup (and JIT compilation on
    the compiled tier) — that say nothing about steady-state latency and
    used to swing recorded p99 by an order of magnitude between runs.
    Returns ``(p50_ms, p99_ms, warmup_ms)`` where ``warmup_ms`` is the
    slowest excluded push (reported separately, not hidden); when there
    are too few pushes to exclude any, all of them count and
    ``warmup_ms`` is ``None``.
    """
    times = np.asarray(push_s, dtype=float)
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    if times.size > warmup:
        steady, excluded = times[warmup:], times[:warmup]
    else:
        steady, excluded = times, times[:0]
    warmup_ms = float(excluded.max()) * 1e3 if excluded.size else None
    p50 = float(np.percentile(steady, 50)) * 1e3
    p99 = float(np.percentile(steady, 99)) * 1e3
    return p50, p99, warmup_ms


def _bench_sessions(args: argparse.Namespace) -> int:
    """Multi-session runtime: SessionBatch vs a scalar per-session loop.

    Streams the same chunk sequences through (a) one
    :class:`~repro.runtime.sessions.SessionBatch` advancing all sessions
    per ``push_many`` and (b) a scalar ``StreamingEncoder`` /
    ``StreamingDecoder`` pair per session, asserts the envelopes are
    bit-identical, and records sessions/sec plus per-push p50/p99
    latency at each session count.  When the ``SESSIONS_SPEEDUP_MIN``
    env var is set, exits 1 unless the headline batch-vs-scalar speedup
    meets it (the CI gate; ``benchmarks/test_bench_sessions_throughput``
    applies the full >=3x bar on multi-core boxes).
    """
    from .core.config import ATCConfig, DATCConfig
    from .core.encoders import ATCEncoder, DATCEncoder
    from .runtime.sessions import SessionBatch, SessionSpec
    from .rx.decoders import StreamingDecoder
    from .signals.dataset import DatasetSpec

    scheme = "datc" if args.scheme == "both" else args.scheme
    counts = sorted(
        {int(c) for c in args.session_counts.split(",") if c.strip()}
    )
    if not counts or min(counts) < 1:
        raise SystemExit("--session-counts needs positive integers")
    n_base = args.signals
    dataset = DatasetSpec(
        n_patterns=n_base, duration_s=args.duration, seed=2015
    )
    patterns = [dataset.pattern(i) for i in range(n_base)]
    fs = patterns[0].fs
    base = [p.emg for p in patterns]
    config = DATCConfig() if scheme == "datc" else ATCConfig()
    spec = SessionSpec(scheme=scheme, fs=fs, config=config)
    encoder_cls = ATCEncoder if scheme == "atc" else DATCEncoder
    chunk = args.chunk
    starts = list(range(0, base[0].size, chunk))
    print(
        f"session tier: {scheme}, {args.duration:g} s @ {fs:g} Hz per "
        f"session, {chunk}-sample chunks, best of {args.repeats}"
    )

    def run_batch(count: int):
        sigs = [base[i % n_base] for i in range(count)]
        batch = SessionBatch()
        sids = [batch.create(spec) for _ in range(count)]
        push_s = []
        for s in starts:
            t0 = perf_counter()
            batch.push_many(
                {sid: sig[s : s + chunk] for sid, sig in zip(sids, sigs)}
            )
            push_s.append(perf_counter() - t0)
        return [batch.finalize(sid).envelope for sid in sids], push_s

    def run_scalar(count: int):
        envs = []
        for i in range(count):
            sig = base[i % n_base]
            enc = encoder_cls(fs, config, rectify=True)
            dec = StreamingDecoder(
                scheme=scheme,
                config=config,
                fs_out=spec.fs_out,
                window_s=spec.window_s,
            )
            for s in starts:
                dec.push(enc.push(sig[s : s + chunk]))
            enc.finalize()
            dec.push(enc.drain())
            dec.finalize()
            envs.append(dec.envelope)
        return envs

    record_rows: "list[dict]" = []
    headline = None
    header = (
        f"{'path':<18}{'time (ms)':>11}{'sess-s/s':>11}"
        f"{'p50 (ms)':>10}{'p99 (ms)':>10}{'speedup':>9}"
    )
    print(f"\n{header}\n" + "-" * len(header))
    for count in counts:
        t_sc, env_sc = _best_of(lambda c=count: run_scalar(c), args.repeats)
        t_ba, (env_ba, push_s) = _best_of(
            lambda c=count: run_batch(c), args.repeats
        )
        for a, b in zip(env_sc, env_ba):
            if not np.array_equal(a, b):
                raise AssertionError(
                    "SessionBatch envelope diverged from scalar streaming "
                    "(must be bit-exact)"
                )
        speedup = t_sc / t_ba
        p50, p99, warmup_ms = _push_percentiles(push_s)
        session_seconds = count * args.duration
        for name, t in ((f"scalar-{count}", t_sc), (f"batch-{count}", t_ba)):
            is_batch = name.startswith("batch")
            record_rows.append(
                {
                    "name": name,
                    "time_ms": t * 1e3,
                    "throughput": session_seconds / t,
                    "speedup": t_sc / t,
                    "push_p50_ms": p50 if is_batch else None,
                    "push_p99_ms": p99 if is_batch else None,
                    "push_warmup_ms": warmup_ms if is_batch else None,
                }
            )
            print(
                f"{name:<18}{t * 1e3:>11.1f}{session_seconds / t:>11.3g}"
                f"{(f'{p50:.2f}' if is_batch else '-'):>10}"
                f"{(f'{p99:.2f}' if is_batch else '-'):>10}"
                f"{t_sc / t:>8.1f}x"
            )
        # The gate count: the largest benched count up to 256, or the
        # smallest overall when every count exceeds it.
        if headline is None or count <= 256:
            headline = speedup
    print("batch envelopes bit-identical to scalar streaming: yes")
    _record_bench(
        args,
        "sessions",
        "batch-vs-scalar speedup at the gate count",
        headline,
        record_rows,
        params={
            "counts": counts,
            "signals": args.signals,
            "duration_s": args.duration,
            "chunk": chunk,
            "repeats": args.repeats,
            "scheme": scheme,
        },
        spec_keys=_spec_keys((scheme,)),
    )
    floor_txt = os.environ.get("SESSIONS_SPEEDUP_MIN")
    if floor_txt is not None:
        floor = float(floor_txt)
        if headline < floor:
            print(
                f"FAIL: batch-vs-scalar speedup {headline:.2f}x is below "
                f"SESSIONS_SPEEDUP_MIN={floor:g}"
            )
            return 1
        print(
            f"speedup {headline:.2f}x meets SESSIONS_SPEEDUP_MIN={floor:g}"
        )
    return 0


def _spawn_serve(ready_file: str, *, extra: "list[str] | None" = None, env=None):
    """Launch one ``repro serve`` subprocess on an ephemeral loopback port.

    Same ``PYTHONPATH`` injection as :func:`_spawn_worker` so the drain
    checks work from a source checkout without installation.
    """
    import subprocess
    from pathlib import Path

    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    child_env = dict(os.environ if env is None else env)
    child_env["PYTHONPATH"] = (
        src + os.pathsep + child_env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    cmd = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
        "--ready-file",
        ready_file,
    ] + (extra or [])
    return subprocess.Popen(
        cmd,
        env=child_env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _wait_serve_ready(
    proc, ready_file: str, timeout_s: float = 60.0
) -> "tuple[int, str, int]":
    """Block until a ``repro serve`` child wrote its ready file.

    Returns ``(pid, host, port)`` — the file's first line is the pid,
    the second the resolved bind address (``--port 0`` picks a free
    port, so the parent has to learn it from here).
    """
    import time as _time

    deadline = _time.monotonic() + timeout_s
    while True:
        if proc.poll() is not None:
            raise RuntimeError(
                f"serve exited before becoming ready "
                f"(code {proc.returncode}):\n{proc.stdout.read()}"
            )
        if os.path.exists(ready_file):
            with open(ready_file) as fh:
                lines = fh.read().splitlines()
            if len(lines) >= 2:
                host, port = lines[1].split()
                return int(lines[0]), host, int(port)
        if _time.monotonic() > deadline:
            raise RuntimeError("serve subprocess never became ready")
        _time.sleep(0.01)


def _bench_serve(args: argparse.Namespace) -> int:
    """Socket-boundary serving tier: ``SessionServer`` vs scalar streaming.

    Streams the same chunk sequences through (a) a live
    :class:`~repro.runtime.server.SessionServer` — every session crossing
    the TCP loopback via :class:`~repro.runtime.client.StreamingClient`,
    multiplexed over ``--serve-connections`` pipelined connections — and
    (b) the scalar per-session ``StreamingEncoder``/``StreamingDecoder``
    loop, asserts every served envelope is bit-identical to its scalar
    one, and records sessions/sec plus per-push round-trip p50/p99 (one
    probe session pushes sequentially under full load; warmup excluded
    via ``_push_percentiles``).  Also runs a real subprocess SIGTERM
    drain: ``repro serve`` must finalize every in-flight session and
    exit 0 with zero unfinalized.  When the ``SERVE_SPEEDUP_MIN`` env
    var is set, exits 1 unless the headline served-vs-scalar speedup at
    the largest count meets it.
    """
    import asyncio
    import shutil
    import signal as _signal
    import tempfile

    from .core.config import ATCConfig, DATCConfig
    from .core.encoders import ATCEncoder, DATCEncoder
    from .runtime.client import StreamingClient
    from .runtime.server import SessionServer
    from .runtime.sessions import SessionSpec
    from .rx.decoders import StreamingDecoder
    from .signals.dataset import DatasetSpec

    scheme = "datc" if args.scheme == "both" else args.scheme
    counts = sorted(
        {int(c) for c in args.serve_sessions.split(",") if c.strip()}
    )
    if not counts or min(counts) < 1:
        raise SystemExit("--serve-sessions needs positive integers")
    n_base = args.signals
    dataset = DatasetSpec(
        n_patterns=n_base, duration_s=args.duration, seed=2015
    )
    patterns = [dataset.pattern(i) for i in range(n_base)]
    fs = patterns[0].fs
    base = [p.emg for p in patterns]
    config = DATCConfig() if scheme == "datc" else ATCConfig()
    spec = SessionSpec(scheme=scheme, fs=fs, config=config)
    encoder_cls = ATCEncoder if scheme == "atc" else DATCEncoder
    chunk = args.chunk
    starts = list(range(0, base[0].size, chunk))
    print(
        f"serve tier: {scheme}, {args.duration:g} s @ {fs:g} Hz per "
        f"session, {chunk}-sample chunks over TCP loopback "
        f"({args.serve_connections} connections), best of {args.repeats}"
    )

    def run_scalar(count: int):
        envs = []
        for i in range(count):
            sig = base[i % n_base]
            enc = encoder_cls(fs, config, rectify=True)
            dec = StreamingDecoder(
                scheme=scheme,
                config=config,
                fs_out=spec.fs_out,
                window_s=spec.window_s,
            )
            for s in starts:
                dec.push(enc.push(sig[s : s + chunk]))
            enc.finalize()
            dec.push(enc.drain())
            dec.finalize()
            envs.append(dec.envelope)
        return envs

    async def run_served(count: int):
        server = SessionServer(
            max_sessions=count, max_pending=len(starts) + 1
        )
        await server.start()
        host, port = server.address
        n_conns = max(1, min(args.serve_connections, count))
        owned = [list(range(ci, count, n_conns)) for ci in range(n_conns)]
        push_s: "list[float]" = []
        envelopes: "list" = [None] * count

        async def drive(conn_index: int, indices: "list[int]") -> None:
            client = await StreamingClient.connect(
                host, port, name=f"bench-{conn_index}"
            )
            sids = dict(
                zip(indices, await client.create_many(spec, len(indices)))
            )
            # One probe session pushes sequentially (timed round trips
            # under full load); the rest ride pipelined waves.
            probe = indices[0] if conn_index == 0 else None
            for s in starts:
                if probe is not None:
                    t0 = perf_counter()
                    await client.push(
                        sids[probe], base[probe % n_base][s : s + chunk]
                    )
                    push_s.append(perf_counter() - t0)
                wave = {
                    sids[i]: base[i % n_base][s : s + chunk]
                    for i in indices
                    if i != probe
                }
                if wave:
                    await client.push_all(wave)
            for i in indices:
                envelopes[i] = (await client.finalize(sids[i])).envelope
            await client.close()

        t0 = perf_counter()
        await asyncio.gather(
            *(drive(ci, idx) for ci, idx in enumerate(owned) if idx)
        )
        elapsed = perf_counter() - t0
        await server.aclose()
        return elapsed, envelopes, push_s

    record_rows: "list[dict]" = []
    headline = None
    header = (
        f"{'path':<18}{'time (ms)':>11}{'sess-s/s':>11}{'sess/s':>9}"
        f"{'p50 (ms)':>10}{'p99 (ms)':>10}{'speedup':>9}"
    )
    print(f"\n{header}\n" + "-" * len(header))
    for count in counts:
        t_sc, env_sc = _best_of(lambda c=count: run_scalar(c), args.repeats)
        t_sv = float("inf")
        env_sv: "list" = []
        push_s: "list[float]" = []
        for _ in range(args.repeats):
            elapsed, env_sv, push_s = asyncio.run(run_served(count))
            t_sv = min(t_sv, elapsed)
        for a, b in zip(env_sc, env_sv):
            if b is None or not np.array_equal(a, b):
                raise AssertionError(
                    "served envelope diverged from the scalar one-shot "
                    "path (must be bit-exact through the socket)"
                )
        speedup = t_sc / t_sv
        p50, p99, warmup_ms = _push_percentiles(push_s)
        session_seconds = count * args.duration
        for name, t in ((f"scalar-{count}", t_sc), (f"served-{count}", t_sv)):
            is_served = name.startswith("served")
            record_rows.append(
                {
                    "name": name,
                    "time_ms": t * 1e3,
                    "throughput": session_seconds / t,
                    "sessions_per_s": count / t,
                    "speedup": t_sc / t,
                    "push_p50_ms": p50 if is_served else None,
                    "push_p99_ms": p99 if is_served else None,
                    "push_warmup_ms": warmup_ms if is_served else None,
                }
            )
            print(
                f"{name:<18}{t * 1e3:>11.1f}{session_seconds / t:>11.3g}"
                f"{count / t:>9.3g}"
                f"{(f'{p50:.2f}' if is_served else '-'):>10}"
                f"{(f'{p99:.2f}' if is_served else '-'):>10}"
                f"{t_sc / t:>8.1f}x"
            )
        # Gate at the largest count: batching amortizes with scale, and
        # the acceptance bar is explicitly about 1k+ concurrent sessions.
        headline = speedup
    print("served envelopes bit-identical to scalar streaming: yes")

    # Honest SIGTERM drain: a real subprocess with in-flight sessions
    # must finalize them all, notify the client, and exit 0.
    n_drain = 4
    work = tempfile.mkdtemp(prefix="repro-bench-serve-")
    try:
        ready = os.path.join(work, "ready")
        proc = _spawn_serve(ready)
        try:
            _pid, host, port = _wait_serve_ready(proc, ready)

            async def drain_leg():
                client = await StreamingClient.connect(
                    host, port, name="drain"
                )
                sids = [await client.create(spec) for _ in range(n_drain)]
                for sid in sids:
                    await client.push(sid, base[0][: 2 * chunk])
                proc.send_signal(_signal.SIGTERM)
                drained = []
                while len(drained) < n_drain:
                    notice = await client.wait_event(timeout=30.0)
                    if notice.get("event") == "drained":
                        drained.append(notice)
                client.abort()
                return drained

            drained = asyncio.run(drain_leg())
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        bad = [n for n in drained if not (n.get("ok") and n.get("envelope"))]
        if bad or proc.returncode != 0 or "unfinalized 0" not in out:
            raise RuntimeError(
                f"SIGTERM drain failed: exit {proc.returncode}, "
                f"{len(bad)} bad drain notice(s), output:\n{out}"
            )
        print(
            f"SIGTERM drain: exit 0, {n_drain}/{n_drain} in-flight "
            f"sessions finalized, unfinalized 0"
        )
    finally:
        shutil.rmtree(work, ignore_errors=True)

    _record_bench(
        args,
        "serve",
        "served-vs-scalar speedup at the gate count",
        headline,
        record_rows,
        params={
            "counts": counts,
            "connections": args.serve_connections,
            "signals": n_base,
            "duration_s": args.duration,
            "chunk": chunk,
            "repeats": args.repeats,
            "scheme": scheme,
        },
        spec_keys=_spec_keys((scheme,)),
        notes="drain: subprocess SIGTERM exit 0, unfinalized 0",
    )
    floor_txt = os.environ.get("SERVE_SPEEDUP_MIN")
    if floor_txt is not None:
        floor = float(floor_txt)
        if headline < floor:
            print(
                f"FAIL: served-vs-scalar speedup {headline:.2f}x is below "
                f"SERVE_SPEEDUP_MIN={floor:g}"
            )
            return 1
        print(f"speedup {headline:.2f}x meets SERVE_SPEEDUP_MIN={floor:g}")
    return 0


def _spawn_worker(
    db: "str | None" = None,
    store_root: "str | None" = None,
    *,
    max_idle_s: float,
    dispatcher: "str | None" = None,
    ready_file: "str | None" = None,
    lease_s: "float | None" = None,
    env: "dict | None" = None,
    extra: "list[str] | None" = None,
):
    """Launch one ``repro worker`` subprocess against a shared queue.

    Either ``db`` + ``store_root`` (shared-mount sqlite) or
    ``dispatcher`` (``host:port``, no shared mount).  The child gets
    this process's ``repro`` package on ``PYTHONPATH`` so the bench
    works from a source checkout without installation.
    """
    import subprocess
    from pathlib import Path

    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    child_env = dict(os.environ if env is None else env)
    child_env["PYTHONPATH"] = (
        src + os.pathsep + child_env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    cmd = [sys.executable, "-m", "repro", "worker"]
    if dispatcher is not None:
        cmd += ["--dispatcher", dispatcher]
    else:
        cmd += ["--db", db, "--store", store_root]
    cmd += ["--max-idle", str(max_idle_s)]
    if ready_file is not None:
        cmd += ["--ready-file", ready_file]
    if lease_s is not None:
        cmd += ["--lease", str(lease_s)]
    cmd += extra or []
    return subprocess.Popen(
        cmd,
        env=child_env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _queued_sweep(spec, dataset, n_workers: int, work_root: str):
    """One queued N-worker sweep; returns (seconds, sweep result, store).

    Workers start first and idle-wait (the ``--ready-file`` handshake
    keeps interpreter/numpy start-up out of the timed region); the clock
    runs from job submission to the last worker's drained exit.  The
    finished sweep is collected with one *warm*
    ``Experiment.dataset_sweep`` over the shared store — zero
    re-evaluations, so the collected numbers are exactly what the
    workers computed.
    """
    import time as _time

    from .api import Experiment
    from .runtime.queue import ExperimentQueue
    from .runtime.store import ResultStore

    db = os.path.join(work_root, "queue.db")
    store_root = os.path.join(work_root, "store")
    ready = [
        os.path.join(work_root, f"ready-{i}") for i in range(n_workers)
    ]
    workers = [
        _spawn_worker(db, store_root, max_idle_s=120.0, ready_file=path)
        for path in ready
    ]
    try:
        deadline = _time.monotonic() + 120.0
        while not all(os.path.exists(path) for path in ready):
            for proc in workers:
                if proc.poll() is not None:
                    raise RuntimeError(
                        f"worker exited before becoming ready "
                        f"(code {proc.returncode}):\n{proc.stdout.read()}"
                    )
            if _time.monotonic() > deadline:
                raise RuntimeError("workers never became ready")
            _time.sleep(0.01)
        with ExperimentQueue(db) as queue:
            t0 = perf_counter()
            queue.submit_dataset(spec, dataset, workers_hint=n_workers)
            for proc in workers:
                proc.wait(timeout=600)
            elapsed = perf_counter() - t0
            if queue.unfinished():
                raise RuntimeError(
                    f"queue did not drain: {queue.counts()} "
                    f"(worker output: {workers[0].stdout.read()!r})"
                )
            queue.raise_first_error()
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
    store = ResultStore(store_root)
    result = Experiment(spec, store=store).dataset_sweep(dataset)
    return elapsed, result, store


def _spawn_dispatcher(db: str, store_root: str, ready_file: str):
    """Launch a ``repro dispatch`` subprocess; returns (proc, "host:port").

    Blocks on the ``--ready-file`` handshake (pid line, then the
    resolved bind address) so the caller can hand workers a dialable
    address immediately.
    """
    import subprocess
    import time as _time
    from pathlib import Path

    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        src + os.pathsep + env.get("PYTHONPATH", "")
    ).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "dispatch",
            "--db", db, "--store", store_root,
            "--port", "0", "--ready-file", ready_file,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = _time.monotonic() + 120.0
    while True:
        if proc.poll() is not None:
            raise RuntimeError(
                f"dispatcher exited before becoming ready "
                f"(code {proc.returncode}):\n{proc.stdout.read()}"
            )
        if os.path.exists(ready_file):
            with open(ready_file) as fh:
                lines = fh.read().splitlines()
            if len(lines) >= 2:
                host, port = lines[1].split()
                return proc, f"{host}:{port}"
        if _time.monotonic() > deadline:
            raise RuntimeError("dispatcher never became ready")
        _time.sleep(0.01)


def _queued_sweep_remote(spec, dataset, n_workers: int, work_root: str):
    """One dispatched N-worker sweep; returns (seconds, result, store).

    The remote-transport leg of ``bench --queue``: a ``repro dispatch``
    subprocess owns the queue db and the store, workers connect with
    ``--dispatcher host:port`` and never touch either path — the only
    shared thing is a loopback socket.  Submission goes through a
    :class:`~repro.runtime.transport.RemoteBackend` so the timed region
    exercises the full wire path; collection afterwards is one warm
    ``dataset_sweep`` over the dispatcher's (local) store root.
    """
    import time as _time

    from .api import Experiment
    from .runtime.queue import ExperimentQueue
    from .runtime.store import ResultStore
    from .runtime.transport import RemoteBackend

    db = os.path.join(work_root, "queue.db")
    store_root = os.path.join(work_root, "store")
    dispatcher, workers = None, []
    try:
        dispatcher, address = _spawn_dispatcher(
            db, store_root, os.path.join(work_root, "dispatch-ready")
        )
        ready = [
            os.path.join(work_root, f"ready-{i}") for i in range(n_workers)
        ]
        workers = [
            _spawn_worker(
                dispatcher=address, max_idle_s=120.0, ready_file=path
            )
            for path in ready
        ]
        deadline = _time.monotonic() + 120.0
        while not all(os.path.exists(path) for path in ready):
            for proc in workers:
                if proc.poll() is not None:
                    raise RuntimeError(
                        f"worker exited before becoming ready "
                        f"(code {proc.returncode}):\n{proc.stdout.read()}"
                    )
            if _time.monotonic() > deadline:
                raise RuntimeError("workers never became ready")
            _time.sleep(0.01)
        with ExperimentQueue(RemoteBackend(address)) as queue:
            t0 = perf_counter()
            queue.submit_dataset(spec, dataset, workers_hint=n_workers)
            for proc in workers:
                proc.wait(timeout=600)
            elapsed = perf_counter() - t0
            if queue.unfinished():
                raise RuntimeError(
                    f"queue did not drain: {queue.counts()} "
                    f"(worker output: {workers[0].stdout.read()!r})"
                )
            queue.raise_first_error()
    finally:
        for proc in workers:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
        if dispatcher is not None:
            if dispatcher.poll() is None:
                dispatcher.terminate()
                try:
                    dispatcher.wait(timeout=30)
                except Exception:
                    dispatcher.kill()
            dispatcher.stdout.close()
    store = ResultStore(store_root)
    result = Experiment(spec, store=store).dataset_sweep(dataset)
    return elapsed, result, store


def _bench_queue(args: argparse.Namespace) -> int:
    """Queued N-worker dataset sweep vs the serial spec path.

    Every worker count's results are asserted bit-identical to the
    serial sweep before any timing is reported.  When the
    ``QUEUE_SPEEDUP_MIN`` env var is set, exits 1 unless the 2-worker
    (or largest benched) speedup meets it — skipped with a note on
    single-core boxes, where parallel workers cannot win wall-clock.
    """
    import shutil
    import tempfile

    from .api import Experiment, ExperimentSpec
    from .signals.dataset import DatasetSpec

    scheme = "datc" if args.scheme == "both" else args.scheme
    transport = getattr(args, "transport", "file")
    sweep = _queued_sweep_remote if transport == "remote" else _queued_sweep
    label = "remote" if transport == "remote" else "queued"
    counts = sorted(
        {int(c) for c in args.queue_workers.split(",") if c.strip()}
    )
    if not counts or min(counts) < 1:
        raise SystemExit("--queue-workers needs positive integers")
    dataset = DatasetSpec(
        n_patterns=args.signals, duration_s=args.duration, seed=2015
    )
    spec = ExperimentSpec.for_scheme(scheme)
    print(
        f"queue throughput: {args.signals} patterns x {args.duration:g} s "
        f"dataset sweep [{scheme}], workers {counts}, "
        f"transport {transport}, best of {args.repeats}"
    )
    t_serial, serial = _best_of(
        lambda: Experiment(spec).dataset_sweep(dataset), args.repeats
    )
    header = (
        f"{'path':<18}{'time (ms)':>11}{'patterns/s':>13}{'speedup':>9}"
        f"{'identical':>11}"
    )
    print(f"\n{header}\n" + "-" * len(header))
    print(
        f"{'serial':<18}{t_serial * 1e3:>11.1f}"
        f"{args.signals / t_serial:>13.3g}{1.0:>8.1f}x{'baseline':>11}"
    )
    record_rows = [
        {
            "name": "serial",
            "time_ms": t_serial * 1e3,
            "throughput": args.signals / t_serial,
            "speedup": 1.0,
        }
    ]
    gate_count = max((c for c in counts if c <= 2), default=min(counts))
    headline = 1.0
    for count in counts:
        best = float("inf")
        for _ in range(args.repeats):
            work_root = tempfile.mkdtemp(prefix="repro-bench-queue-")
            try:
                elapsed, result, _store = sweep(
                    spec, dataset, count, work_root
                )
            finally:
                shutil.rmtree(work_root, ignore_errors=True)
            best = min(best, elapsed)
        same = np.array_equal(
            result.correlations_pct, serial.correlations_pct
        ) and np.array_equal(result.n_events, serial.n_events)
        if not same:
            raise AssertionError(
                f"{count}-worker {label} sweep diverged from the serial "
                "results (must be bit-identical)"
            )
        speedup = t_serial / best
        if count == gate_count:
            headline = speedup
        record_rows.append(
            {
                "name": f"{label}-{count}",
                "time_ms": best * 1e3,
                "throughput": args.signals / best,
                "speedup": speedup,
            }
        )
        print(
            f"{f'{label}-{count}':<18}{best * 1e3:>11.1f}"
            f"{args.signals / best:>13.3g}{speedup:>8.1f}x{'yes':>11}"
        )
    print(f"{label} sweeps bit-identical to serial: yes")
    _record_bench(
        args,
        "queue",
        f"{gate_count}-worker-vs-serial queued sweep speedup",
        headline,
        record_rows,
        params={
            "signals": args.signals,
            "duration_s": args.duration,
            "workers": counts,
            "repeats": args.repeats,
            "scheme": scheme,
            "transport": transport,
        },
        spec_keys=_spec_keys((scheme,)),
    )
    floor_txt = os.environ.get("QUEUE_SPEEDUP_MIN")
    if floor_txt is not None:
        floor = float(floor_txt)
        cores = os.cpu_count() or 1
        if cores < 2:
            print(
                f"skipping QUEUE_SPEEDUP_MIN={floor:g} gate: "
                f"{cores} core(s) — parallel workers cannot win wall-clock"
            )
        elif headline < floor:
            print(
                f"FAIL: {gate_count}-worker speedup {headline:.2f}x is "
                f"below QUEUE_SPEEDUP_MIN={floor:g}"
            )
            return 1
        else:
            print(
                f"speedup {headline:.2f}x meets QUEUE_SPEEDUP_MIN={floor:g}"
            )
    return 0


def _bench_report(args: argparse.Namespace) -> int:
    """Render the perf trajectory; fail on a headline regression.

    Strict about its inputs: a missing trajectory (nothing benched), an
    empty file, or a corrupt one is a pointed one-line error and exit 1,
    not a traceback or a silently thin report.
    """
    from .analysis.telemetry import (
        TelemetryError,
        bench_dir,
        load_trajectories,
        regression_pct,
        render_report,
    )

    directory = getattr(args, "bench_out", None)
    try:
        trajectories = load_trajectories(directory, strict=True)
    except TelemetryError as exc:
        print(f"bench --report: {exc}")
        return 1
    if not trajectories:
        print(
            f"bench --report: no BENCH_*.json records under "
            f"{bench_dir(directory)} (run a bench stage first)"
        )
        return 1
    allowed = regression_pct()
    table, regressions = render_report(trajectories, allowed)
    print(table)
    if regressions:
        print(f"\nREGRESSION ({len(regressions)}):")
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"\nno headline regressions (allowed drop {allowed:g}%)")
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    from .core.config import DATCConfig
    from .core.datc import datc_encode
    from .signals.dataset import default_dataset
    from .signals.io import export_events_csv, save_event_stream

    pattern = default_dataset().pattern(args.pattern)
    stream, _ = datc_encode(pattern.emg, pattern.fs, DATCConfig())
    if args.output.endswith(".csv"):
        export_events_csv(args.output, stream)
    else:
        save_event_stream(args.output, stream)
    print(
        f"pattern {args.pattern}: {stream.n_events} events "
        f"({stream.n_symbols} symbols) -> {args.output}"
    )
    return 0


def _cmd_queue_submit(args: argparse.Namespace) -> int:
    from .runtime.queue import ExperimentQueue
    from .signals.dataset import DatasetSpec

    spec = _load_spec(args)
    dataset = DatasetSpec(
        n_patterns=args.patterns, duration_s=args.duration, seed=args.seed
    )
    with ExperimentQueue(args.db) as queue:
        n = queue.submit_dataset(
            spec,
            dataset,
            shard_size=args.shard_size,
            workers_hint=args.workers_hint,
            max_attempts=args.max_attempts,
        )
        counts = queue.counts()
    total = sum(counts.values())
    print(
        f"submitted {n} new shard job(s) for spec {spec.key()[:16]} "
        f"({args.patterns} patterns) -> {args.db} ({total} total)"
    )
    return 0


def _cmd_queue_status(args: argparse.Namespace) -> int:
    from .runtime.queue import ExperimentQueue, STATUSES

    with ExperimentQueue(args.db) as queue:
        counts = queue.counts()
        errors = queue.errors()
    total = sum(counts.values())
    body = ", ".join(f"{status} {counts[status]}" for status in STATUSES)
    print(f"{args.db}: {total} job(s) — {body}")
    for row in errors:
        first_line = (row["error"] or "").splitlines()[0] if row["error"] else ""
        print(
            f"  quarantined {row['fingerprint'][:12]} "
            f"(attempt {row['attempt']}/{row['max_attempts']}): {first_line}"
        )
    if args.strict and errors:
        print(f"strict: {len(errors)} quarantined job(s)")
        return 1
    return 0


def _cmd_queue_reset(args: argparse.Namespace) -> int:
    from .runtime.queue import ExperimentQueue

    with ExperimentQueue(args.db) as queue:
        n = queue.reset()
    print(f"re-opened {n} quarantined job(s) in {args.db}")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import signal as _signal
    import threading as _threading

    from .runtime.faults import FaultPlan
    from .runtime.queue import run_worker

    if args.dispatcher is None:
        if args.db is None or args.store is None:
            raise SystemExit(
                "worker needs --db and --store (shared mount) "
                "or --dispatcher HOST:PORT (no shared mount)"
            )
    elif args.db is not None or args.store is not None:
        raise SystemExit(
            "--dispatcher replaces --db/--store; pass one form, not both"
        )
    if args.faults:
        faults = FaultPlan.from_json(args.faults)
    else:
        faults = FaultPlan.from_env()
    stop_event = _threading.Event()
    try:
        # SIGTERM -> graceful drain: finish the in-flight shard, release
        # unstarted leases, exit 0.  Installable only from the main
        # thread; in-process test callers just lose the handler.
        _signal.signal(_signal.SIGTERM, lambda signum, frame: stop_event.set())
    except ValueError:
        pass
    if args.ready_file:
        # The handshake the bench and the recovery tests key off: the
        # interpreter is up, imports are done, the loop starts now.
        with open(args.ready_file, "w") as fh:
            fh.write(f"{os.getpid()}\n")
    max_idle_s = None if args.max_idle < 0 else args.max_idle
    stats = run_worker(
        args.db,
        args.store,
        worker_id=args.worker_id,
        lease_s=args.lease,
        poll_s=args.poll,
        max_idle_s=max_idle_s,
        max_jobs=args.max_jobs,
        heartbeat_s=args.heartbeat,
        faults=faults,
        should_stop=stop_event.is_set,
        log=print if args.verbose else None,
        dispatcher=args.dispatcher,
    )
    print(
        f"worker {stats.worker_id}: claimed {stats.claimed}, "
        f"completed {stats.completed}, requeued {stats.requeued}, "
        f"quarantined {stats.quarantined}, lost {stats.lost}, "
        f"released {stats.released}, evaluated {stats.evaluated}"
    )
    return 0


def _cmd_dispatch(args: argparse.Namespace) -> int:
    """Run the queue dispatcher until SIGTERM/SIGINT.

    One dispatcher owns the jobs database and the result store; workers
    started with ``repro worker --dispatcher HOST:PORT`` need neither
    path — every queue verb and every result blob travels the socket
    (see docs/DISPATCH.md).  The process is disposable: all durable
    state is on disk, so SIGKILL + restart on the same paths simply
    resumes the sweep (workers reconnect through channel backoff and
    expired leases are reclaimed by the next claim).
    """
    import asyncio
    import signal as _signal

    from .runtime.dispatcher import DispatcherServer

    async def _run():
        server = DispatcherServer(
            args.db, args.store, host=args.host, port=args.port
        )
        await server.start()
        host, port = server.address
        print(
            f"dispatching on {host}:{port} (db {args.db}, store "
            f"{args.store}); SIGTERM stops",
            flush=True,
        )
        if args.ready_file:
            # Same handshake as `repro serve --ready-file`: pid, then
            # the resolved bind address (--port 0 picks a free port).
            with open(args.ready_file, "w") as fh:
                fh.write(f"{os.getpid()}\n{host} {port}\n")
        loop = asyncio.get_running_loop()
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # non-main thread / platform without signal support
        await server.serve_forever()
        return server

    server = asyncio.run(_run())
    print(
        f"dispatcher stopped: {server.connections} connection(s), "
        f"{server.requests} request(s) served"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the always-on streaming session server until drained.

    SIGTERM (and SIGINT) trigger the graceful drain: stop accepting,
    flush every queued chunk, finalize every in-flight session and send
    its owner the final envelope, then exit 0 — the serving counterpart
    of ``repro worker``'s drain contract.  Exit 1 only if sessions were
    somehow left unfinalized (that line, ``unfinalized N``, is what the
    bench and CI assert on).
    """
    import asyncio
    import signal as _signal

    from .runtime.server import SessionServer

    async def _run():
        server = SessionServer(
            args.host,
            args.port,
            max_sessions=args.max_sessions,
            max_pending=args.max_pending,
            max_total_pending=args.max_total_pending,
            silence_timeout_s=args.silence_timeout,
            tick_s=args.tick,
        )
        await server.start()
        host, port = server.address
        print(
            f"serving on {host}:{port} (max_sessions {args.max_sessions}, "
            f"max_pending {args.max_pending}); SIGTERM drains gracefully",
            flush=True,
        )
        if args.ready_file:
            # Same handshake as `repro worker --ready-file`, plus the
            # resolved bind address (--port 0 picks a free port).
            with open(args.ready_file, "w") as fh:
                fh.write(f"{os.getpid()}\n{host} {port}\n")
        loop = asyncio.get_running_loop()
        for signum in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_drain)
            except (NotImplementedError, ValueError, RuntimeError):
                pass  # non-main thread / platform without signal support
        stats = await server.serve_forever()
        return server, stats

    server, stats = asyncio.run(_run())
    counters = stats.to_dict()
    print(
        "drained: "
        + ", ".join(f"{k}={v}" for k, v in sorted(counters.items()))
    )
    print(f"unfinalized {server.n_sessions}")
    return 0 if server.n_sessions == 0 else 1


def _cmd_store_fsck(args: argparse.Namespace) -> int:
    from .runtime.store import ResultStore

    store = ResultStore(args.root)
    report = store.fsck(repair=not args.no_repair)
    print(f"{store.root}: {report.summary()}")
    for path, reason in report.corrupt:
        verb = "deleted" if report.repaired else "corrupt"
        print(f"  {verb}: {path}: {reason}")
    return 1 if report.damaged else 0


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="D-ATC (DATE 2015) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig2", help="Fig. 2 concept demo").set_defaults(func=_cmd_fig2)

    p = sub.add_parser("fig3", help="Fig. 3 single-pattern comparison")
    p.add_argument("--pattern", type=int, default=22)
    p.set_defaults(func=_cmd_fig3)

    p = sub.add_parser("fig5", help="Fig. 5 dataset sweep")
    p.add_argument("--patterns", type=int, default=None, help="limit pattern count")
    p.add_argument("--jobs", type=int, default=None, help="parallel workers")
    p.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default=None,
        help="execution backend for the sweep workers",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result store; a repeated run skips cached patterns",
    )
    p.set_defaults(func=_cmd_fig5)

    p = sub.add_parser(
        "run", help="evaluate one pattern under a declarative ExperimentSpec"
    )
    p.add_argument("--pattern", type=int, default=22)
    p.add_argument("--scheme", choices=("atc", "datc"), default="datc")
    p.add_argument("--spec", default=None, help="spec JSON file (overrides --scheme)")
    p.add_argument("--dump-spec", default=None, help="write the spec JSON here")
    p.add_argument("--cache-dir", default=None, help="persistent result store")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser(
        "sweep", help="generic spec-substitution sweep (or --dataset)"
    )
    p.add_argument("--pattern", type=int, default=22)
    p.add_argument("--scheme", choices=("atc", "datc"), default="datc")
    p.add_argument("--spec", default=None, help="spec JSON file (overrides --scheme)")
    p.add_argument(
        "--axis",
        default=None,
        help='spec path ("encoder.config.vth") or data axis '
        '("input.snr_db", "stream.drop_prob")',
    )
    p.add_argument(
        "--values", default=None, help="comma-separated sweep values (JSON scalars)"
    )
    p.add_argument(
        "--dataset",
        action="store_true",
        help="sweep the dataset's patterns instead of a spec axis",
    )
    p.add_argument("--patterns", type=int, default=None, help="dataset limit")
    p.add_argument("--seed", type=int, default=None, help="data-axis RNG seed")
    p.add_argument("--jobs", type=int, default=None, help="parallel workers")
    p.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default=None,
        help="execution backend for the sweep workers",
    )
    p.add_argument("--cache-dir", default=None, help="persistent result store")
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("fig6", help="Fig. 6 iso-correlation comparison")
    p.add_argument("--pattern", type=int, default=22)
    p.set_defaults(func=_cmd_fig6)

    p = sub.add_parser("fig7", help="Fig. 7 trade-off curves")
    p.add_argument("--jobs", type=int, default=None, help="parallel workers")
    p.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default=None,
        help="execution backend for the sweep workers",
    )
    p.set_defaults(func=_cmd_fig7)

    p = sub.add_parser("symbols", help="Sec. III-B symbol accounting")
    p.add_argument("--pattern", type=int, default=22)
    p.set_defaults(func=_cmd_symbols)

    sub.add_parser("table1", help="Table I synthesis summary").set_defaults(
        func=_cmd_table1
    )
    sub.add_parser("timing", help="DTC static timing budget").set_defaults(
        func=_cmd_timing
    )

    p = sub.add_parser("verilog", help="emit synthesizable DTC Verilog")
    p.add_argument("-o", "--output", default="dtc.v", help="'-' for stdout")
    p.set_defaults(func=_cmd_verilog)

    p = sub.add_parser("vcd", help="dump a DTC waveform (VCD)")
    p.add_argument("-o", "--output", default="dtc.vcd")
    p.add_argument("--pattern", type=int, default=22)
    p.add_argument("--cycles", type=int, default=2000)
    p.set_defaults(func=_cmd_vcd)

    p = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p.add_argument("--quick", action="store_true")
    p.add_argument("--output", default="EXPERIMENTS.md")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("encode", help="encode a pattern to .npz/.csv events")
    p.add_argument("--pattern", type=int, default=22)
    p.add_argument("-o", "--output", default="events.npz")
    p.set_defaults(func=_cmd_encode)

    p = sub.add_parser(
        "queue",
        help="fault-tolerant multi-worker job queue (see docs/QUEUE.md)",
    )
    qsub = p.add_subparsers(dest="action", required=True)
    q = qsub.add_parser("submit", help="shard a dataset sweep into jobs")
    q.add_argument("--db", required=True, help="shared queue database file")
    q.add_argument("--scheme", choices=("atc", "datc"), default="datc")
    q.add_argument("--spec", default=None, help="spec JSON (overrides --scheme)")
    q.add_argument("--patterns", type=_positive_int, default=16)
    q.add_argument("--duration", type=_positive_float, default=20.0)
    q.add_argument("--seed", type=int, default=2015)
    q.add_argument(
        "--shard-size", type=_positive_int, default=None,
        help="patterns per job (default: ~4 shards per hinted worker)",
    )
    q.add_argument("--workers-hint", type=_positive_int, default=4)
    q.add_argument(
        "--max-attempts", type=_positive_int, default=3,
        help="attempts before a failing job is quarantined",
    )
    q.set_defaults(func=_cmd_queue_submit)
    q = qsub.add_parser(
        "status", help="per-status job counts + quarantined failures"
    )
    q.add_argument("--db", required=True, help="shared queue database file")
    q.add_argument(
        "--strict", action="store_true",
        help="exit 1 when any job is quarantined",
    )
    q.set_defaults(func=_cmd_queue_status)
    q = qsub.add_parser("reset", help="re-open every quarantined job")
    q.add_argument("--db", required=True, help="shared queue database file")
    q.set_defaults(func=_cmd_queue_reset)

    p = sub.add_parser(
        "worker",
        help="pull and execute queued shards until the queue drains",
    )
    p.add_argument("--db", default=None, help="shared queue database file")
    p.add_argument("--store", default=None, help="shared result store dir")
    p.add_argument(
        "--dispatcher", default=None, metavar="HOST:PORT",
        help="pull jobs and ship results over a repro dispatch server "
        "instead of --db/--store (no shared mount needed)",
    )
    p.add_argument("--worker-id", default=None, help="default: host-pid-rand")
    p.add_argument(
        "--lease", type=_positive_float, default=30.0,
        help="lease seconds; a silent worker's shard is reclaimed after this",
    )
    p.add_argument("--poll", type=_positive_float, default=0.2)
    p.add_argument(
        "--max-idle", type=float, default=0.0,
        help="seconds to wait for first jobs before giving up "
        "(0 = exit if empty, negative = wait forever)",
    )
    p.add_argument(
        "--max-jobs", type=_positive_int, default=None,
        help="exit after claiming this many jobs",
    )
    p.add_argument(
        "--heartbeat", type=_positive_float, default=None,
        help="heartbeat interval (default: lease / 4)",
    )
    p.add_argument(
        "--faults", default=None,
        help="fault-plan JSON (chaos testing; or set REPRO_FAULTS)",
    )
    p.add_argument(
        "--ready-file", default=None,
        help="write this file (holding the pid) once the loop starts",
    )
    p.add_argument("--verbose", action="store_true")
    p.set_defaults(func=_cmd_worker)

    p = sub.add_parser(
        "dispatch",
        help="queue dispatcher: serve jobs + results to --dispatcher "
        "workers over TCP (see docs/DISPATCH.md)",
    )
    p.add_argument("--db", required=True, help="jobs database file")
    p.add_argument("--store", required=True, help="result store dir")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=7416,
        help="bind port (0 = pick a free one; see --ready-file)",
    )
    p.add_argument(
        "--ready-file", default=None,
        help="write pid + resolved host/port here once listening",
    )
    p.set_defaults(func=_cmd_dispatch)

    p = sub.add_parser(
        "serve",
        help="always-on streaming session server (see docs/SERVING.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=7415,
        help="bind port (0 = pick a free one; see --ready-file)",
    )
    p.add_argument(
        "--max-sessions", type=_positive_int, default=4096,
        help="concurrent session cap; create beyond it answers server-full",
    )
    p.add_argument(
        "--max-pending", type=_positive_int, default=32,
        help="per-session ingest queue depth; beyond it pushes answer busy",
    )
    p.add_argument(
        "--max-total-pending", type=_positive_int, default=None,
        help="global queued-chunk budget; beyond it newest-joined "
        "sessions are shed (default: 4 x max(64, max-sessions))",
    )
    p.add_argument(
        "--silence-timeout", type=_positive_float, default=None,
        help="reap sessions idle longer than this many seconds",
    )
    p.add_argument(
        "--tick", type=_positive_float, default=0.05,
        help="pump wake-up period when idle (reaping granularity)",
    )
    p.add_argument(
        "--ready-file", default=None,
        help="write pid + resolved host/port here once listening",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("store", help="result-store maintenance")
    ssub = p.add_subparsers(dest="action", required=True)
    s = ssub.add_parser(
        "fsck",
        help="verify every entry against its checksum; exit 1 on damage",
    )
    s.add_argument("root", help="store directory")
    s.add_argument(
        "--no-repair", action="store_true",
        help="report damage without deleting anything",
    )
    s.set_defaults(func=_cmd_store_fsck)

    p = sub.add_parser(
        "bench",
        help="encoder/receiver/link throughput: one-shot vs chunked vs batched",
    )
    stage = p.add_mutually_exclusive_group()
    stage.add_argument(
        "--rx",
        action="store_true",
        help="benchmark the receiver (decode + correlation) instead of the encoder",
    )
    stage.add_argument(
        "--link",
        action="store_true",
        help="benchmark the IR-UWB link (modulate + demodulate) instead of the encoder",
    )
    stage.add_argument(
        "--sweep",
        action="store_true",
        help="benchmark the dataset sweep across execution backends",
    )
    stage.add_argument(
        "--cache",
        action="store_true",
        help="benchmark a cold vs warm dataset sweep through the result store",
    )
    stage.add_argument(
        "--kernels",
        action="store_true",
        help="race the numpy vs compiled kernel tier (datc encode + scoring)",
    )
    stage.add_argument(
        "--sessions",
        action="store_true",
        help="benchmark the multi-session SessionBatch runtime against a "
        "scalar per-session streaming loop (SESSIONS_SPEEDUP_MIN gates)",
    )
    stage.add_argument(
        "--queue",
        action="store_true",
        help="benchmark queued N-worker sweeps against the serial path "
        "(QUEUE_SPEEDUP_MIN gates; skipped on 1-core boxes)",
    )
    stage.add_argument(
        "--serve",
        action="store_true",
        help="benchmark the socket session server against the scalar "
        "streaming loop (SERVE_SPEEDUP_MIN gates; includes a SIGTERM "
        "drain check)",
    )
    stage.add_argument(
        "--report",
        action="store_true",
        help="render the BENCH_*.json perf trajectory; exit 1 on a "
        "headline regression (BENCH_REGRESSION_PCT, default 20)",
    )
    p.add_argument("--scheme", choices=("atc", "datc", "both"), default="datc")
    p.add_argument(
        "--bench-out",
        default=None,
        help="directory for BENCH_<area>.json records "
        "(default: $REPRO_BENCH_DIR, else ./benchmarks)",
    )
    p.add_argument(
        "--cache-dir",
        default=None,
        help="store location for --cache (default: fresh temp dir, removed)",
    )
    p.add_argument(
        "--jobs", type=_positive_int, default=None,
        help="sweep workers (--sweep; default: CPU count)",
    )
    p.add_argument("--signals", type=_positive_int, default=16, help="batch rows")
    p.add_argument(
        "--duration", type=_positive_float, default=20.0, help="seconds per signal"
    )
    p.add_argument(
        "--chunk", type=_positive_int, default=1000, help="streaming chunk size"
    )
    p.add_argument("--repeats", type=_positive_int, default=3, help="best-of repeats")
    p.add_argument(
        "--session-counts",
        default="64,256,1024",
        help="comma-separated concurrent session counts (--sessions)",
    )
    p.add_argument(
        "--queue-workers",
        default="1,2",
        help="comma-separated worker counts (--queue)",
    )
    p.add_argument(
        "--transport",
        choices=("file", "remote"),
        default="file",
        help="queue transport (--queue): 'file' = shared-mount sqlite, "
        "'remote' = workers dial a repro dispatch subprocess over TCP",
    )
    p.add_argument(
        "--serve-sessions",
        default="256,1024",
        help="comma-separated concurrent session counts (--serve)",
    )
    p.add_argument(
        "--serve-connections", type=_positive_int, default=32,
        help="client connections the sessions multiplex over (--serve)",
    )
    p.set_defaults(func=_cmd_bench)

    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
