"""Receiver-side DSP: event-rate windowing, envelope reconstruction,
correlation metrics, and the batched/streaming decoder engine."""

from .calibration import (
    ForceCalibration,
    calibrate_mvc,
    rmse_mvc,
    tracking_report,
)
from .correlation import (
    aligned_correlation_percent,
    aligned_correlation_percent_batch,
    correlation_percent,
    pearson_batch,
    pearson_r,
    resample_rows_to_length,
    resample_to_length,
)
from .decoders import (
    StreamingDecoder,
    binned_counts_batch,
    event_rate_batch,
    level_zoh_batch,
    reconstruct_batch,
    stream_chunks,
)
from .reconstruction import (
    level_zoh,
    reconstruct_hybrid,
    reconstruct_levels,
    reconstruct_rate,
)
from .windowing import (
    binned_counts,
    event_rate,
    exponential_rate,
    grid_centers,
    grid_edges,
    stream_bins,
)

__all__ = [
    "ForceCalibration",
    "calibrate_mvc",
    "rmse_mvc",
    "tracking_report",
    "aligned_correlation_percent",
    "aligned_correlation_percent_batch",
    "correlation_percent",
    "pearson_batch",
    "pearson_r",
    "resample_rows_to_length",
    "resample_to_length",
    "StreamingDecoder",
    "binned_counts_batch",
    "event_rate_batch",
    "level_zoh_batch",
    "reconstruct_batch",
    "stream_chunks",
    "level_zoh",
    "reconstruct_hybrid",
    "reconstruct_levels",
    "reconstruct_rate",
    "binned_counts",
    "event_rate",
    "exponential_rate",
    "grid_centers",
    "grid_edges",
    "stream_bins",
]
