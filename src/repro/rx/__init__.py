"""Receiver-side DSP: event-rate windowing, envelope reconstruction,
correlation metrics."""

from .calibration import (
    ForceCalibration,
    calibrate_mvc,
    rmse_mvc,
    tracking_report,
)
from .correlation import (
    aligned_correlation_percent,
    correlation_percent,
    pearson_r,
    resample_to_length,
)
from .reconstruction import (
    level_zoh,
    reconstruct_hybrid,
    reconstruct_levels,
    reconstruct_rate,
)
from .windowing import binned_counts, event_rate, exponential_rate

__all__ = [
    "ForceCalibration",
    "calibrate_mvc",
    "rmse_mvc",
    "tracking_report",
    "aligned_correlation_percent",
    "correlation_percent",
    "pearson_r",
    "resample_to_length",
    "level_zoh",
    "reconstruct_hybrid",
    "reconstruct_levels",
    "reconstruct_rate",
    "binned_counts",
    "event_rate",
    "exponential_rate",
]
