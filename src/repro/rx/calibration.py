"""Force calibration: envelope units -> fraction of MVC.

The paper's protocol calibrates per subject with a Maximum Voluntary
Contraction: "One second is the duration of MVC sustained with maximum
contraction of which the mean value is taken."  This module reproduces
that step on the receiver side — the reconstructed envelope (volts for
D-ATC, events/s for ATC) is scaled by the mean value observed during the
MVC window, after which estimates read directly in %MVC and *absolute*
error metrics (not just correlation) become meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ForceCalibration", "calibrate_mvc", "rmse_mvc", "tracking_report"]


@dataclass(frozen=True)
class ForceCalibration:
    """A per-subject linear calibration ``force = envelope / mvc_value``.

    Attributes
    ----------
    mvc_value:
        Mean envelope observed during the MVC calibration window, in the
        envelope's own units.
    window:
        (start_s, stop_s) of the calibration window used.
    """

    mvc_value: float
    window: "tuple[float, float]"

    def __post_init__(self) -> None:
        if self.mvc_value <= 0:
            raise ValueError(
                f"mvc_value must be positive, got {self.mvc_value} "
                "(did the MVC window contain any signal?)"
            )

    def apply(self, envelope: np.ndarray) -> np.ndarray:
        """Convert an envelope to fraction-of-MVC, clipped to [0, 1.5].

        The ceiling allows modest overshoot above the calibration value
        (real subjects exceed their calibration MVC occasionally) while
        still bounding outliers.
        """
        force = np.asarray(envelope, dtype=float) / self.mvc_value
        return np.clip(force, 0.0, 1.5)


def calibrate_mvc(
    envelope: np.ndarray,
    fs: float,
    window: "tuple[float, float] | None" = None,
    mvc_duration_s: float = 1.0,
) -> ForceCalibration:
    """Derive a calibration from an envelope containing an MVC effort.

    With an explicit ``window`` the mean over that span is used (the
    paper's protocol).  Without one, the best ``mvc_duration_s``-long
    window (highest mean) is found automatically — convenient when the
    contraction timing is not annotated.
    """
    envelope = np.asarray(envelope, dtype=float)
    if envelope.size == 0:
        raise ValueError("cannot calibrate on an empty envelope")
    if fs <= 0:
        raise ValueError(f"fs must be positive, got {fs}")

    if window is not None:
        start, stop = window
        i0, i1 = int(round(start * fs)), int(round(stop * fs))
        if not 0 <= i0 < i1 <= envelope.size:
            raise ValueError(f"window {window} outside the envelope span")
        return ForceCalibration(
            mvc_value=float(envelope[i0:i1].mean()), window=(start, stop)
        )

    span = max(1, int(round(mvc_duration_s * fs)))
    if span >= envelope.size:
        return ForceCalibration(
            mvc_value=float(envelope.mean()), window=(0.0, envelope.size / fs)
        )
    csum = np.concatenate([[0.0], np.cumsum(envelope)])
    window_means = (csum[span:] - csum[:-span]) / span
    best = int(np.argmax(window_means))
    return ForceCalibration(
        mvc_value=float(window_means[best]),
        window=(best / fs, (best + span) / fs),
    )


def rmse_mvc(estimate: np.ndarray, reference: np.ndarray) -> float:
    """Root-mean-square error between two %MVC traces of equal length."""
    estimate = np.asarray(estimate, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if estimate.shape != reference.shape:
        raise ValueError(f"shape mismatch: {estimate.shape} vs {reference.shape}")
    if estimate.size == 0:
        raise ValueError("cannot compute RMSE on empty traces")
    return float(np.sqrt(np.mean((estimate - reference) ** 2)))


def tracking_report(estimate: np.ndarray, reference: np.ndarray) -> "dict[str, float]":
    """Absolute tracking metrics between calibrated %MVC traces.

    Returns RMSE, mean absolute error, and peak error — the quantities a
    prosthetics/exoskeleton integrator actually budgets for.
    """
    estimate = np.asarray(estimate, dtype=float)
    reference = np.asarray(reference, dtype=float)
    if estimate.shape != reference.shape:
        raise ValueError(f"shape mismatch: {estimate.shape} vs {reference.shape}")
    error = estimate - reference
    return {
        "rmse_mvc": float(np.sqrt(np.mean(error ** 2))),
        "mae_mvc": float(np.mean(np.abs(error))),
        "peak_error_mvc": float(np.max(np.abs(error))),
    }
