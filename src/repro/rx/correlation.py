"""Correlation metrics — the paper's figure of merit.

The evaluation reports "% correlation w.r.t. raw muscle force": the Pearson
correlation coefficient (x100) between the receiver-side reconstruction and
the ARV envelope of the original sEMG.  Correlation is scale- and
offset-invariant, which is what makes event-rate (ATC, arbitrary units) and
threshold-level (D-ATC, volts) reconstructions directly comparable.
"""

from __future__ import annotations

import numpy as np

from ..kernels.dispatch import get_kernel, register_kernel

__all__ = [
    "pearson_r",
    "pearson_batch",
    "correlation_percent",
    "resample_to_length",
    "resample_rows_to_length",
    "aligned_correlation_percent",
    "aligned_correlation_percent_batch",
]


def pearson_r(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation coefficient, defined as 0 for constant inputs.

    A constant reconstruction carries no force information, so treating
    its correlation as 0 (rather than NaN) gives degenerate encoders the
    score they deserve in sweeps.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValueError("need at least two samples to correlate")
    da = a - a.mean()
    db = b - b.mean()
    denom = np.sqrt(np.sum(da * da) * np.sum(db * db))
    if denom == 0.0:
        return 0.0
    return float(np.clip(np.sum(da * db) / denom, -1.0, 1.0))


def pearson_batch(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise Pearson correlation of two ``(n_rows, n_samples)`` matrices.

    One vectorised call replacing ``n_rows`` :func:`pearson_r` calls — the
    scoring half of the batched receiver.  Each row matches the scalar
    function bit for bit (numpy's axis reductions use the same pairwise
    summation as the 1-D ones), including the constant-input -> 0 rule.
    """
    # C-contiguity matters for exactness, not just speed: numpy's pairwise
    # summation blocks differently over strided rows, which would break the
    # bit-for-bit match with the scalar (contiguous 1-D) path.
    a = np.ascontiguousarray(a, dtype=float)
    b = np.ascontiguousarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(
            f"need 2-D (n_rows, n_samples) inputs, got {a.shape} and {b.shape}"
        )
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.shape[1] < 2:
        raise ValueError("need at least two samples per row to correlate")
    da = a - a.mean(axis=1, keepdims=True)
    db = b - b.mean(axis=1, keepdims=True)
    denom = np.sqrt(np.sum(da * da, axis=1) * np.sum(db * db, axis=1))
    num = np.sum(da * db, axis=1)
    ok = denom != 0.0
    out = np.zeros(a.shape[0])
    out[ok] = np.clip(num[ok] / denom[ok], -1.0, 1.0)
    return out


def correlation_percent(a: np.ndarray, b: np.ndarray) -> float:
    """The paper's metric: ``100 * pearson_r``."""
    return 100.0 * pearson_r(a, b)


def resample_to_length(x: np.ndarray, n_out: int) -> np.ndarray:
    """Linear-interpolation resample of ``x`` onto ``n_out`` points.

    Used to bring a reconstruction (on the event-clock grid) and the
    ground-truth envelope (on the dataset grid) onto a common time base;
    both cover the same duration, so index space maps linearly.
    """
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        raise ValueError("cannot resample an empty array")
    if n_out < 1:
        raise ValueError(f"n_out must be >= 1, got {n_out}")
    if x.size == n_out:
        return x.copy()
    src = np.linspace(0.0, 1.0, x.size)
    dst = np.linspace(0.0, 1.0, n_out)
    return np.interp(dst, src, x)


def resample_rows_to_length(x: np.ndarray, n_out: int) -> np.ndarray:
    """Row-wise :func:`resample_to_length` of an ``(n_rows, m)`` matrix.

    All rows share the same source grid, so the interval lookup and the
    interpolation weights are computed once and applied to every row in
    vectorised ops.  Each row equals ``np.interp`` on that row bit for bit:
    the same ``slope * (x - xp[j]) + fp[j]`` arithmetic is used, and grid
    points that coincide with a source point (including the right
    endpoint) take the source value exactly.
    """
    x = np.asarray(x, dtype=float)
    if x.ndim != 2:
        raise ValueError(f"need a 2-D (n_rows, m) matrix, got shape {x.shape}")
    m = x.shape[1]
    if m == 0:
        raise ValueError("cannot resample empty rows")
    if n_out < 1:
        raise ValueError(f"n_out must be >= 1, got {n_out}")
    if m == n_out:
        return x.copy()
    if m == 1:
        return np.repeat(x, n_out, axis=1)
    src = np.linspace(0.0, 1.0, m)
    dst = np.linspace(0.0, 1.0, n_out)
    j = np.clip(np.searchsorted(src, dst, side="right") - 1, 0, m - 2)
    # np.take keeps the gathers C-ordered (plain fancy indexing on axis 1
    # would yield F-ordered temporaries and a costly relayout); rows must
    # come back contiguous so downstream reductions match the 1-D path
    # bit for bit.
    lo = np.take(x, j, axis=1)
    hi = np.take(x, j + 1, axis=1)
    slope = (hi - lo) / (src[j + 1] - src[j])
    slope *= dst - src[j]
    slope += lo
    # np.interp special-cases the right endpoint (no slope arithmetic).
    slope[:, dst >= src[-1]] = x[:, -1][:, None]
    return slope


def aligned_correlation_percent(
    reconstruction: np.ndarray, reference: np.ndarray
) -> float:
    """Correlation % after resampling the reconstruction onto the reference grid."""
    recon = resample_to_length(reconstruction, np.asarray(reference).size)
    return correlation_percent(recon, reference)


@register_kernel("aligned_correlation", "numpy")
def _aligned_correlation_numpy(
    reconstructions: np.ndarray, references: np.ndarray
) -> np.ndarray:
    """The reference scoring path: resample rows, then stacked Pearson."""
    recons = resample_rows_to_length(reconstructions, references.shape[1])
    return 100.0 * pearson_batch(recons, references)


def aligned_correlation_percent_batch(
    reconstructions: np.ndarray, references: np.ndarray
) -> np.ndarray:
    """Row-wise :func:`aligned_correlation_percent` in two vectorised calls.

    ``reconstructions`` is ``(n_rows, m)`` (e.g. the output of
    :func:`repro.rx.decoders.reconstruct_batch`); ``references`` is the
    stacked ground-truth matrix ``(n_rows, n_ref)``.  Returns one
    correlation %% per row, matching the scalar loop bit for bit.

    Dispatches through the kernel registry (:mod:`repro.kernels`): the
    default numpy backend is exact; ``use_backend("compiled")`` swaps in
    the fused single-pass kernel, which matches within the documented
    ``repro.kernels.correlation.TOLERANCE_PCT`` (1e-8 percentage points).
    Validation happens here so both backends reject bad input alike.
    """
    references = np.asarray(references, dtype=float)
    if references.ndim != 2:
        raise ValueError(
            f"references must be 2-D (n_rows, n_ref), got shape {references.shape}"
        )
    recons = np.asarray(reconstructions, dtype=float)
    # Mirrors the checks resample_rows_to_length + pearson_batch perform
    # on the numpy path, in the same order and wording.
    if recons.ndim != 2:
        raise ValueError(
            f"need a 2-D (n_rows, m) matrix, got shape {recons.shape}"
        )
    if recons.shape[1] == 0:
        raise ValueError("cannot resample empty rows")
    n_ref = references.shape[1]
    if n_ref < 1:
        raise ValueError(f"n_out must be >= 1, got {n_ref}")
    if recons.shape[0] != references.shape[0]:
        raise ValueError(
            f"shape mismatch: {(recons.shape[0], n_ref)} vs {references.shape}"
        )
    if n_ref < 2:
        raise ValueError("need at least two samples per row to correlate")
    return get_kernel("aligned_correlation")(recons, references)
