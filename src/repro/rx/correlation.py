"""Correlation metrics — the paper's figure of merit.

The evaluation reports "% correlation w.r.t. raw muscle force": the Pearson
correlation coefficient (x100) between the receiver-side reconstruction and
the ARV envelope of the original sEMG.  Correlation is scale- and
offset-invariant, which is what makes event-rate (ATC, arbitrary units) and
threshold-level (D-ATC, volts) reconstructions directly comparable.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pearson_r",
    "correlation_percent",
    "resample_to_length",
    "aligned_correlation_percent",
]


def pearson_r(a: np.ndarray, b: np.ndarray) -> float:
    """Pearson correlation coefficient, defined as 0 for constant inputs.

    A constant reconstruction carries no force information, so treating
    its correlation as 0 (rather than NaN) gives degenerate encoders the
    score they deserve in sweeps.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValueError("need at least two samples to correlate")
    da = a - a.mean()
    db = b - b.mean()
    denom = np.sqrt(np.sum(da * da) * np.sum(db * db))
    if denom == 0.0:
        return 0.0
    return float(np.clip(np.sum(da * db) / denom, -1.0, 1.0))


def correlation_percent(a: np.ndarray, b: np.ndarray) -> float:
    """The paper's metric: ``100 * pearson_r``."""
    return 100.0 * pearson_r(a, b)


def resample_to_length(x: np.ndarray, n_out: int) -> np.ndarray:
    """Linear-interpolation resample of ``x`` onto ``n_out`` points.

    Used to bring a reconstruction (on the event-clock grid) and the
    ground-truth envelope (on the dataset grid) onto a common time base;
    both cover the same duration, so index space maps linearly.
    """
    x = np.asarray(x, dtype=float)
    if x.size == 0:
        raise ValueError("cannot resample an empty array")
    if n_out < 1:
        raise ValueError(f"n_out must be >= 1, got {n_out}")
    if x.size == n_out:
        return x.copy()
    src = np.linspace(0.0, 1.0, x.size)
    dst = np.linspace(0.0, 1.0, n_out)
    return np.interp(dst, src, x)


def aligned_correlation_percent(
    reconstruction: np.ndarray, reference: np.ndarray
) -> float:
    """Correlation % after resampling the reconstruction onto the reference grid."""
    recon = resample_to_length(reconstruction, np.asarray(reference).size)
    return correlation_percent(recon, reference)
